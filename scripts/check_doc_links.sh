#!/usr/bin/env bash
# Fail on dead intra-repo links in the top-level docs.
#
# Two classes of reference are checked, in README.md, DESIGN.md,
# ARCHITECTURE.md, and EXPERIMENTS.md:
#
#   1. Markdown links `[text](target)` whose target is a relative path
#      (external http(s):// links and pure #anchors are skipped; a
#      trailing #anchor on a relative path is stripped before the check).
#   2. Backtick-quoted repo paths like `crates/serve/src/engine.rs` or
#      `DESIGN.md` — only extensions .md/.rs/.sh/.toml are checked, so
#      gitignored artifacts (e.g. results/*.json trace dumps) and shell
#      snippets don't false-positive.
#
# Exits non-zero listing every dead link. Run from anywhere; paths are
# resolved against the repo root.

set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
docs=(README.md DESIGN.md ARCHITECTURE.md EXPERIMENTS.md)
dead=0

check() {
    local doc="$1" target="$2" kind="$3"
    # Strip a trailing #anchor, if any.
    local path="${target%%#*}"
    [ -z "$path" ] && return 0
    if [ ! -e "$root/$path" ]; then
        echo "DEAD $kind link in $doc: $target"
        dead=$((dead + 1))
    fi
}

for doc in "${docs[@]}"; do
    if [ ! -f "$root/$doc" ]; then
        echo "DEAD doc: $doc (listed in check_doc_links.sh but missing)"
        dead=$((dead + 1))
        continue
    fi

    # 1. Markdown relative links.
    while IFS= read -r target; do
        case "$target" in
        http://* | https://* | mailto:* | '#'*) continue ;;
        esac
        check "$doc" "$target" "markdown"
    done < <(grep -o '\[[^]]*\]([^)]*)' "$root/$doc" | sed 's/.*](\([^)]*\))/\1/')

    # 2. Backtick-quoted repo paths with checked extensions.
    while IFS= read -r target; do
        check "$doc" "$target" "backtick"
    done < <(grep -o '`[A-Za-z0-9_./-]*\.\(md\|rs\|sh\|toml\)`' "$root/$doc" |
        tr -d '`' | sort -u)
done

if [ "$dead" -gt 0 ]; then
    echo "check_doc_links: $dead dead link(s)"
    exit 1
fi
echo "check_doc_links: OK (${#docs[@]} docs)"
