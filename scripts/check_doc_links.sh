#!/usr/bin/env bash
# Fail on dead intra-repo links in the top-level docs.
#
# Two classes of reference are checked, in README.md, DESIGN.md,
# ARCHITECTURE.md, and EXPERIMENTS.md:
#
#   1. Markdown links `[text](target)` whose target is a relative path
#      (external http(s):// links are skipped). An #anchor — trailing on
#      a relative .md path, or a bare same-document `#fragment` — must
#      additionally match a heading in the target file, using GitHub's
#      anchor derivation (lowercase, punctuation stripped, spaces to
#      hyphens), so links to removed or renamed DESIGN.md sections fail
#      instead of silently pointing at the top of the file.
#   2. Backtick-quoted repo paths like `crates/serve/src/engine.rs` or
#      `DESIGN.md` — only extensions .md/.rs/.sh/.toml are checked, so
#      gitignored artifacts (e.g. results/*.json trace dumps) and shell
#      snippets don't false-positive.
#
# Exits non-zero listing every dead link. Run from anywhere; paths are
# resolved against the repo root.

set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
docs=(README.md DESIGN.md ARCHITECTURE.md EXPERIMENTS.md)
dead=0

# Every GitHub-style anchor a markdown file's headings generate:
# lowercase, drop everything but alphanumerics/spaces/hyphens/
# underscores, then spaces become hyphens.
anchors_of() {
    sed -n 's/^#\{1,6\} \{1,\}//p' "$1" |
        tr '[:upper:]' '[:lower:]' |
        sed 's/[^a-z0-9 _-]//g; s/ /-/g'
}

check() {
    local doc="$1" target="$2" kind="$3"
    # Strip a trailing #anchor, if any; a bare "#fragment" points back
    # into the current doc.
    local path="${target%%#*}"
    local file="${path:-$doc}"
    if [ ! -e "$root/$file" ]; then
        echo "DEAD $kind link in $doc: $target"
        dead=$((dead + 1))
        return 0
    fi
    # Anchored link into a markdown file: the fragment must match a
    # heading's derived anchor, or the section it named is gone.
    case "$file" in
    *.md)
        case "$target" in
        *'#'*)
            local anchor="${target#*#}"
            if ! anchors_of "$root/$file" | grep -qxF "$anchor"; then
                echo "DEAD anchor in $doc: $target (no matching heading in $file)"
                dead=$((dead + 1))
            fi
            ;;
        esac
        ;;
    esac
}

for doc in "${docs[@]}"; do
    if [ ! -f "$root/$doc" ]; then
        echo "DEAD doc: $doc (listed in check_doc_links.sh but missing)"
        dead=$((dead + 1))
        continue
    fi

    # 1. Markdown relative links (and same-document anchors).
    while IFS= read -r target; do
        case "$target" in
        http://* | https://* | mailto:*) continue ;;
        esac
        check "$doc" "$target" "markdown"
    done < <(grep -o '\[[^]]*\]([^)]*)' "$root/$doc" | sed 's/.*](\([^)]*\))/\1/')

    # 2. Backtick-quoted repo paths with checked extensions.
    while IFS= read -r target; do
        check "$doc" "$target" "backtick"
    done < <(grep -o '`[A-Za-z0-9_./-]*\.\(md\|rs\|sh\|toml\)`' "$root/$doc" |
        tr -d '`' | sort -u)
done

if [ "$dead" -gt 0 ]; then
    echo "check_doc_links: $dead dead link(s)"
    exit 1
fi
echo "check_doc_links: OK (${#docs[@]} docs)"
