#!/usr/bin/env bash
# Aggregates the machine-readable per-experiment results into one
# trajectory file:
#
#   results/exp*.json  ->  results/trajectory.json
#
# Every input is a single JSON object written by a bench binary via
# `lm4db_bench::write_results_json` and self-identifies with an
# `"experiment"` key; files without that key (raw trace dumps like
# expN_trace.json) are skipped. The output is a JSON object whose
# `experiments` array holds the input objects verbatim, sorted by file
# name, so downstream tooling (and the CI artifact) gets the whole
# experiment trajectory in one read without needing jq.
#
# Run from anywhere; paths resolve against the repo root. Exits non-zero
# if no experiment results exist yet.

set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
out="$root/results/trajectory.json"

collected=()
for f in "$root"/results/exp*.json; do
    [ -e "$f" ] || continue
    # Only per-experiment summaries, not raw trace/event dumps.
    grep -q '"experiment"' "$f" || continue
    collected+=("$f")
done

if [ "${#collected[@]}" -eq 0 ]; then
    echo "collect_results: no results/exp*.json summaries found" >&2
    echo "run the bench binaries first, e.g.: cargo run --release --bin expS_telemetry" >&2
    exit 1
fi

{
    printf '{\n'
    printf '  "schema": "lm4db-trajectory-v1",\n'
    printf '  "experiment_count": %d,\n' "${#collected[@]}"
    printf '  "experiments": [\n'
    sep=''
    for f in "${collected[@]}"; do
        printf '%s' "$sep"
        sep=',
'
        # Indent the file body two spaces; each input is one valid JSON
        # object, so comma-joining them yields a valid array.
        sed 's/^/    /' "$f"
    done
    printf '\n  ]\n}\n'
} > "$out"

echo "collect_results: aggregated ${#collected[@]} experiments into ${out#"$root"/}"
for f in "${collected[@]}"; do
    echo "  - ${f#"$root"/results/}"
done
