#!/usr/bin/env bash
# Prints the N (default 10) slowest tests in the workspace.
#
# Uses libtest's --report-time, which stable rustc gates behind
# -Zunstable-options; RUSTC_BOOTSTRAP=1 lets libtest accept it without a
# nightly toolchain. Per-test timing lines only appear in non-quiet output,
# so this runs the full verbose harness, serially for honest numbers.
set -euo pipefail

N="${1:-10}"

RUSTC_BOOTSTRAP=1 cargo test --workspace -- \
    -Zunstable-options --report-time --test-threads=1 2>/dev/null |
    # "test path::name ... ok <1.234s>"  ->  "1.234 path::name"
    sed -n 's/^test \(.*\) \.\.\. ok <\([0-9.]*\)s>$/\2 \1/p' |
    sort -rn |
    head -n "$N" |
    awk '{ printf "%8.3fs  %s\n", $1, $2 }'
