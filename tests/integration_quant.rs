//! Golden determinism suite for the int8 quantized decode path.
//!
//! The quantized path intentionally produces different logits than f32 —
//! it gets its own golden set (`tests/golden/quant_greedy.txt`) next to
//! the f32 one, pinned with the same bless workflow:
//! `LM4DB_BLESS=1 cargo test -p lm4db --test integration_quant`.
//!
//! Covered invariants:
//! * quantized greedy decode matches its golden byte for byte,
//! * the quantized engine output is independent of batch size,
//! * a subprocess matrix asserts the quantized fingerprint is identical
//!   across `LM4DB_THREADS` ∈ {1, 4} — i32 accumulation is exact, so
//!   quantization must not cost any determinism.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::Command;

use lm4db::serve::{Engine, EngineOptions, Request};
use lm4db::tokenize::{BOS, EOS};
use lm4db::transformer::{GptModel, KvCache, ModelConfig, QuantizedGpt};

/// Same fixed-seed trained model as the f32 golden suite.
fn golden_model() -> GptModel {
    let mut m = GptModel::new(ModelConfig::test(), 7);
    let mut opt = m.optimizer(3e-3);
    let batch = vec![
        vec![BOS, 10, 11, 12, 13, 14, EOS],
        vec![BOS, 20, 21, 22, 23, 24, EOS],
    ];
    for _ in 0..30 {
        m.train_step(&batch, &mut opt);
    }
    m
}

fn prompts() -> Vec<Vec<usize>> {
    vec![
        vec![BOS, 10],
        vec![BOS, 10, 11],
        vec![BOS, 10, 11, 12],
        vec![BOS, 10, 11, 12, 13],
        vec![BOS, 20],
        vec![BOS, 20, 21],
        vec![BOS, 20, 21, 22],
        vec![BOS, 20, 21, 22, 23],
    ]
}

const MAX_NEW: usize = 6;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name)
}

fn check_or_bless(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var("LM4DB_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} (bless with LM4DB_BLESS=1): {e}"));
    assert_eq!(
        got, want,
        "output diverged from golden {name}; bless with LM4DB_BLESS=1 if intentional"
    );
}

fn render_greedy(outputs: &[Vec<usize>]) -> String {
    let mut s = String::new();
    for (i, out) in outputs.iter().enumerate() {
        write!(s, "p{i}:").unwrap();
        for t in out {
            write!(s, " {t}").unwrap();
        }
        s.push('\n');
    }
    s
}

/// Greedy decode through the quantized KV path directly (no engine).
fn quant_greedy_direct(m: &GptModel, q: &QuantizedGpt, prefix: &[usize]) -> Vec<usize> {
    let mut cache = KvCache::new(m);
    let mut logits = cache.feed_all_quant(m, q, prefix).to_vec();
    let mut out = Vec::new();
    for _ in 0..MAX_NEW {
        let tok = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        if tok == EOS || cache.len() >= m.config().max_seq_len {
            break;
        }
        out.push(tok);
        logits = cache.feed_quant(m, q, tok).to_vec();
    }
    out
}

fn quant_engine_greedy_all(m: &GptModel, max_batch: usize) -> String {
    let mut engine = Engine::with_options(
        m,
        EngineOptions {
            max_batch,
            quantized: true,
            ..Default::default()
        },
    );
    let reqs = prompts()
        .into_iter()
        .map(|p| Request::greedy(p, MAX_NEW, EOS))
        .collect();
    let outs: Vec<Vec<usize>> = engine
        .generate_batch(reqs)
        .into_iter()
        .map(|r| r.tokens)
        .collect();
    render_greedy(&outs)
}

#[test]
fn quant_greedy_golden_direct_path() {
    let m = golden_model();
    let q = QuantizedGpt::from_model(&m);
    let outs: Vec<Vec<usize>> = prompts()
        .iter()
        .map(|p| quant_greedy_direct(&m, &q, p))
        .collect();
    check_or_bless("quant_greedy.txt", &render_greedy(&outs));
}

#[test]
fn quant_engine_reproduces_golden_at_all_batch_sizes() {
    let m = golden_model();
    for max_batch in [1, 3, 8] {
        check_or_bless("quant_greedy.txt", &quant_engine_greedy_all(&m, max_batch));
    }
}

#[test]
fn quant_decode_stays_close_to_f32_decode() {
    // The accuracy contract at golden scale: on a sharply trained pattern
    // the quantized greedy output must match f32 greedy on most prompts
    // (Exp C pins the task-level exact-match delta at ≤ 2 points).
    let m = golden_model();
    let q = QuantizedGpt::from_model(&m);
    let ps = prompts();
    let agree = ps
        .iter()
        .filter(|p| {
            let f32_out = lm4db::transformer::greedy_cached(&m, p, MAX_NEW, EOS);
            quant_greedy_direct(&m, &q, p) == f32_out
        })
        .count();
    assert!(
        agree * 4 >= ps.len() * 3,
        "quantized greedy agrees with f32 on only {agree}/{} prompts",
        ps.len()
    );
}

/// FNV-1a over a rendered output, for cross-process comparison.
fn fnv_fingerprint(all: &str) -> u64 {
    let mut fp: u64 = 0xcbf2_9ce4_8422_2325;
    for b in all.bytes() {
        fp ^= u64::from(b);
        fp = fp.wrapping_mul(0x1000_0000_01b3);
    }
    fp
}

/// Child of the thread matrix below: checks the quantized engine against
/// the golden under whatever `LM4DB_THREADS` the parent set and prints a
/// fingerprint of the rendered output.
#[test]
fn quant_golden_child_fingerprint() {
    let m = golden_model();
    let mut all = String::new();
    for max_batch in [1, 3, 8] {
        let g = quant_engine_greedy_all(&m, max_batch);
        check_or_bless("quant_greedy.txt", &g);
        all.push_str(&g);
    }
    println!("QUANT_GOLDEN_FP={:016x}", fnv_fingerprint(&all));
}

#[test]
fn quant_golden_stable_across_thread_counts() {
    if std::env::var("LM4DB_BLESS").is_ok() {
        return; // goldens are being rewritten; nothing stable to compare
    }
    let exe = std::env::current_exe().expect("current test binary");
    let mut fps = Vec::new();
    for threads in ["1", "4"] {
        let out = Command::new(&exe)
            .args(["quant_golden_child_fingerprint", "--exact", "--nocapture"])
            .env("LM4DB_THREADS", threads)
            .env_remove("LM4DB_FAULTS")
            .output()
            .expect("spawn child test");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(
            out.status.success(),
            "child failed with {threads} threads:\n{stdout}"
        );
        let fp = stdout
            .split("QUANT_GOLDEN_FP=")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .unwrap_or_else(|| panic!("no fingerprint in child output:\n{stdout}"))
            .to_string();
        fps.push((threads, fp));
    }
    assert_eq!(
        fps[0].1, fps[1].1,
        "quantized engine output depends on thread count: {fps:?}"
    );
}
