//! Routed chaos soak: the sharded serving tier under open-loop traffic
//! with `LM4DB_FAULTS` killing replicas mid-stream, reproduced
//! byte-for-byte across a subprocess matrix.
//!
//! The parent test spawns this file's child test across `LM4DB_THREADS`
//! ∈ {1, 4} and `LM4DB_TRACE` ∈ {0, 2} for two loadgen seeds (each with
//! its own fault seed), and asserts that
//!
//! * every child survives the full schedule with the router's
//!   conservation ledger balanced
//!   (`completed + cancelled + expired + failed + rejected == submitted`)
//!   and one response per submission — **zero lost requests**, whatever
//!   replicas were killed along the way,
//! * a fixed (loadgen seed, fault seed) pair reproduces the complete
//!   outcome stream — every response's outcome, tokens, and score bits,
//!   plus the router's kill/failover/breaker accounting — byte-identically
//!   at every thread count and trace level (one fingerprint per seed),
//! * the chaos actually bites: every seed's schedule kills at least one
//!   replica and fails work over, and
//! * different seeds drive visibly different schedules.
//!
//! Everything fingerprinted is on the virtual step clock: heartbeat
//! rolls are pure functions of `(fault seed, replica, tick)`, the ring
//! walk is a pure function of the member list, and the replica engines
//! are byte-deterministic at any thread count.

use std::fmt::Write as _;
use std::process::Command;

use lm4db::loadgen::{Burst, LoadGen, Phase, PromptShape, TenantSpec, Workload};
use lm4db::router::{Router, RouterOptions, RouterStats};
use lm4db::serve::{EngineOptions, TenantClass};
use lm4db::transformer::{GptModel, ModelConfig};

fn fnv_fingerprint(all: &str) -> u64 {
    let mut fp: u64 = 0xcbf2_9ce4_8422_2325;
    for b in all.bytes() {
        fp ^= u64::from(b);
        fp = fp.wrapping_mul(0x1000_0000_01b3);
    }
    fp
}

/// The fault spec a loadgen seed runs under: seed-derived so the two
/// matrix seeds also explore different kill schedules. The 2% rate is
/// tuned so a ~1200-tick run reliably kills at least one of the three
/// replicas (asserted by the parent) without flattening the whole fleet
/// every time.
fn fault_spec(seed: u64) -> String {
    format!("{}:0.02", seed * 31 + 7)
}

/// Two tenants across the tier range; base rates sum to ~1.0/tick, so
/// the burst and overload phases push the three small replicas past
/// saturation and admission control stays busy while replicas die.
fn tenant_specs() -> Vec<TenantSpec> {
    vec![
        TenantSpec {
            name: "interactive",
            rate: 0.7,
            tier: 0,
            weight: 4,
            slo_steps: 24,
            slo_wall_ms: 250,
            mix: Workload::mix(&[
                (Workload::Text2Sql, 2.0),
                (Workload::Wrangle, 2.0),
                (Workload::NeuralDb, 1.0),
            ]),
        },
        TenantSpec {
            name: "batch",
            rate: 0.3,
            tier: 2,
            weight: 1,
            slo_steps: 0,
            slo_wall_ms: 0,
            mix: Workload::mix(&[(Workload::CodeGen, 2.0), (Workload::Lm, 1.0)]),
        },
    ]
}

/// Warmup, a flash-crowd middle, then sustained overload — ~1400 ticks.
fn phases() -> Vec<Phase> {
    vec![
        Phase::poisson(400, 1.0),
        Phase::bursty(
            600,
            1.2,
            Burst {
                period: 100,
                width: 20,
                mul: 3.0,
            },
        ),
        Phase::poisson(400, 2.0),
    ]
}

/// Drives the routed schedule open-loop and renders the outcome stream
/// plus the router's step-based accounting. Asserts conservation along
/// the way; the returned string is what the matrix fingerprints.
fn routed_soak(seed: u64) -> (String, RouterStats) {
    let shape = PromptShape {
        vocab: 64,
        max_prompt: 8,
        max_new: 3,
    };
    let gen = LoadGen::new(seed, shape, tenant_specs(), phases());
    let classes: Vec<TenantClass> = gen
        .tenants()
        .iter()
        .map(|s| {
            TenantClass::new(s.name)
                .tier(s.tier)
                .weight(s.weight)
                .slo_steps(s.slo_steps)
                .slo_wall_ms(s.slo_wall_ms)
        })
        .collect();
    let model = GptModel::new(ModelConfig::test(), 7);
    let mut router = Router::new(
        &model,
        RouterOptions {
            replicas: 3,
            vnodes: 64,
            prefix_window: 6,
            heartbeat_every: 16,
            breaker_threshold: 2,
            breaker_cooldown: 64,
            engine: EngineOptions {
                max_batch: 3,
                max_queue: 10,
                tenants: classes,
                slo_admission: true,
                slo_initial_service_steps: 4,
                ..Default::default()
            },
            ..Default::default()
        },
    );

    let mut s = String::new();
    let mut submitted = 0u64;
    let mut retired = 0u64;
    let mut tick = 0u64;
    let mut more = true;
    while tick < gen.total_ticks() || more {
        if tick < gen.total_ticks() {
            for a in gen.arrivals_at(tick) {
                router.submit(a.to_request());
                submitted += 1;
            }
        }
        more = router.step();
        tick += 1;
        for r in router.take_responses() {
            retired += 1;
            write!(s, "t{tick} r{}: {:?} tokens=", r.id, r.outcome).unwrap();
            for t in &r.tokens {
                write!(s, " {t}").unwrap();
            }
            writeln!(s, " score={:08x}", r.score.to_bits()).unwrap();
        }
        assert!(
            tick < gen.total_ticks() + 100_000,
            "router failed to drain after the schedule ended"
        );
    }

    // Conservation across kills: one terminal outcome per submission.
    assert_eq!(retired, submitted, "requests lost or double-retired");
    let st = router.stats();
    assert_eq!(st.submitted, submitted);
    assert_eq!(st.terminal_total(), st.submitted, "ledger: {st:?}");
    writeln!(s, "ticks={tick} submitted={submitted}").unwrap();
    writeln!(
        s,
        "router: done={} cancel={} expire={} fail={} reject={} unroutable={} \
         kills={} failovers={} breaker=({},{},{},{}) p99_steps={}",
        st.completed,
        st.cancelled,
        st.expired,
        st.failed,
        st.rejected,
        st.no_live_replica,
        st.kills,
        st.failovers,
        st.breaker_opened,
        st.breaker_half_opened,
        st.breaker_closed,
        st.breaker_reopened,
        st.latency_steps.quantile(0.99),
    )
    .unwrap();
    for (i, rep) in st.replicas.iter().enumerate() {
        // Per-replica step-based counters only; wall-clock histograms
        // would break the byte-identical claim.
        writeln!(
            s,
            "replica{i}: routed={} alive={} breaker={:?} sub={} done={} \
             fail={} rej={} retries={} steps={}",
            rep.routed,
            rep.alive,
            rep.breaker,
            rep.engine.submitted,
            rep.engine.completed,
            rep.engine.failed,
            rep.engine.rejected,
            rep.engine.retries,
            rep.engine.steps,
        )
        .unwrap();
    }
    (s, st)
}

/// Child of the chaos matrix: runs the routed schedule for
/// `LM4DB_ROUTER_SEED` under whatever thread count, trace level, and
/// `LM4DB_FAULTS` spec the parent set, and prints the outcome-stream
/// fingerprint plus the kill/failover counts. Reaching `ROUTER_OK` means
/// every in-test assertion (conservation, drain) held.
#[test]
fn router_chaos_child() {
    // Only meaningful when the parent armed the environment; a bare
    // `cargo test` run of this binary exercises it with faults disarmed,
    // which must also hold the ledger.
    lm4db::fault::silence_injected_panics();
    let seed = std::env::var("LM4DB_ROUTER_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(21);
    let (all, st) = routed_soak(seed);
    println!("ROUTER_FP={:016x}", fnv_fingerprint(&all));
    println!("ROUTER_KILLS={}", st.kills);
    println!("ROUTER_FAILOVERS={}", st.failovers);
    println!("ROUTER_OK");
}

/// Spawns [`router_chaos_child`] across seeds × thread counts × trace
/// levels with `LM4DB_FAULTS` armed. Within a seed all four
/// configurations (plus one repeat) must agree on the fingerprint byte
/// for byte; across seeds they must differ; and each seed's schedule
/// must actually kill at least one replica and fail work over.
#[test]
fn router_chaos_matrix_is_byte_identical_across_threads_and_trace() {
    let exe = std::env::current_exe().expect("current test binary");
    let run = |seed: u64, threads: &str, trace: &str| -> (String, u64, u64) {
        let out = Command::new(&exe)
            .args(["router_chaos_child", "--exact", "--nocapture"])
            .env("LM4DB_ROUTER_SEED", seed.to_string())
            .env("LM4DB_THREADS", threads)
            .env("LM4DB_TRACE", trace)
            .env("LM4DB_FAULTS", fault_spec(seed))
            .output()
            .expect("spawn router chaos child");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(
            out.status.success(),
            "chaos child failed (seed={seed}, threads={threads}, trace={trace}):\n{stdout}\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            stdout.contains("ROUTER_OK"),
            "child never reached ROUTER_OK:\n{stdout}"
        );
        let field = |tag: &str| -> String {
            stdout
                .split(tag)
                .nth(1)
                .and_then(|s| s.split_whitespace().next())
                .unwrap_or_else(|| panic!("no {tag} in child output:\n{stdout}"))
                .to_string()
        };
        let fp = field("ROUTER_FP=");
        let kills: u64 = field("ROUTER_KILLS=").parse().unwrap();
        let failovers: u64 = field("ROUTER_FAILOVERS=").parse().unwrap();
        (fp, kills, failovers)
    };

    let mut per_seed = Vec::new();
    for seed in [21u64, 22] {
        let (reference, kills, failovers) = run(seed, "1", "0");
        assert!(
            kills >= 1,
            "seed {seed}: chaos schedule killed no replica — the matrix \
             is not exercising failover"
        );
        assert!(
            failovers >= 1,
            "seed {seed}: a replica died but nothing failed over"
        );
        for (threads, trace) in [("1", "2"), ("4", "0"), ("4", "2")] {
            let (fp, k, f) = run(seed, threads, trace);
            assert_eq!(
                reference, fp,
                "seed {seed}: outcome stream changed at threads={threads} trace={trace}"
            );
            assert_eq!((k, f), (kills, failovers), "chaos accounting drifted");
        }
        per_seed.push(reference);
    }
    // Same config twice: the fingerprint is a constant of the seed pair.
    let (again, _, _) = run(21, "1", "0");
    assert_eq!(per_seed[0], again, "fixed-seed chaos run not reproducible");
    assert_ne!(
        per_seed[0], per_seed[1],
        "seeds 21 and 22 produced identical schedules — chaos looks inert"
    );
}
