//! Integration of the production-path features: model checkpointing across
//! the training/inference boundary, KV-cache decoding inside applications,
//! and whole-summary fact checking.

use lm4db::corpus::{make_domain, DomainKind};
use lm4db::factcheck::{synthetic_summary, verify_summary, KeywordMapper, Verdict};
use lm4db::tokenize::{Bpe, Tokenizer, BOS, EOS};
use lm4db::transformer::{
    greedy, greedy_cached, pack_corpus, pretrain_gpt, GptModel, IncrementalSession, ModelConfig,
    NextToken, TrainOptions, Unconstrained,
};

#[test]
fn checkpoint_survives_pretraining_and_matches_generation() {
    let lines = lm4db::corpus::corpus(120, 5);
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    let bpe = Bpe::train(refs.iter().copied(), 250);
    let stream = pack_corpus(refs.iter().copied(), &bpe);
    let mut model = GptModel::new(
        ModelConfig {
            vocab_size: bpe.vocab().len(),
            ..ModelConfig::test()
        },
        3,
    );
    pretrain_gpt(
        &mut model,
        &stream,
        &TrainOptions {
            steps: 40,
            batch_size: 4,
            seq_len: 12,
            ..Default::default()
        },
    );
    let json = model.to_json();
    let mut restored = GptModel::from_json(&json).expect("restore");

    let mut prefix = vec![BOS];
    prefix.extend(bpe.encode("the optimizer"));
    let original = greedy(&mut model, &prefix, 6, EOS, &Unconstrained);
    let after = greedy(&mut restored, &prefix, 6, EOS, &Unconstrained);
    assert_eq!(original, after, "restored model generates differently");
}

#[test]
fn kv_cache_session_agrees_with_model_after_training() {
    let lines = lm4db::corpus::corpus(80, 9);
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    let bpe = Bpe::train(refs.iter().copied(), 250);
    let stream = pack_corpus(refs.iter().copied(), &bpe);
    let mut model = GptModel::new(
        ModelConfig {
            vocab_size: bpe.vocab().len(),
            ..ModelConfig::test()
        },
        4,
    );
    pretrain_gpt(
        &mut model,
        &stream,
        &TrainOptions {
            steps: 30,
            batch_size: 4,
            seq_len: 12,
            ..Default::default()
        },
    );
    let mut prefix = vec![BOS];
    prefix.extend(bpe.encode("the database"));
    // Cached greedy equals uncached greedy on a trained model.
    let uncached = greedy(&mut model, &prefix, 8, EOS, &Unconstrained);
    let cached = greedy_cached(&model, &prefix, 8, EOS);
    assert_eq!(uncached, cached);
    // And the session's NextToken impl matches the model's logits.
    let full = model.next_logits(&prefix);
    let mut session = IncrementalSession::new(&model);
    let inc = session.next_logits(&prefix);
    let max_diff = full
        .iter()
        .zip(inc.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(max_diff < 1e-2, "session/model divergence {max_diff}");
}

#[test]
fn summary_verification_catches_planted_errors() {
    let domain = make_domain(DomainKind::Products, 30, 13);
    let (summary, claims) = synthetic_summary(&domain, 12, 7);
    let report = verify_summary(&domain, &summary, &mut KeywordMapper);
    assert_eq!(report.sentences.len(), 12);
    // Every refuted sentence is genuinely false, and at least a few of the
    // planted falsehoods are caught.
    let mut caught = 0;
    for (sv, claim) in report.sentences.iter().zip(claims.iter()) {
        if sv.verdict == Verdict::Refuted {
            assert!(!claim.is_true, "refuted a true claim: {}", sv.sentence);
            caught += 1;
        }
    }
    assert!(caught >= 3, "only {caught} planted errors caught");
}
