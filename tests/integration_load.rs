//! Soak suite: the multi-tenant serving stack under ~10k open-loop
//! requests, reproduced byte-for-byte across a subprocess matrix.
//!
//! The parent test spawns this file's child test in subprocesses across
//! `LM4DB_THREADS` ∈ {1, 4} and `LM4DB_TRACE` ∈ {0, 2} for two loadgen
//! seeds, and asserts that
//!
//! * every child survives the full schedule with a balanced conservation
//!   ledger, globally and tenant by tenant
//!   (`completed + cancelled + expired + failed + rejected == submitted`),
//! * a fixed loadgen seed reproduces the complete outcome stream — every
//!   response's outcome, tokens, and score bits, plus the step-based
//!   per-tenant accounting — byte-identically at every thread count and
//!   trace level (one fingerprint per seed, eight ways),
//! * enabling the step-clock telemetry sampler (`LM4DB_SAMPLE_STEPS`)
//!   leaves the fingerprint untouched across the same matrix — sampling
//!   is purely observational, and
//! * different seeds drive visibly different schedules.
//!
//! Everything fingerprinted is on the virtual clock (scheduler steps);
//! wall-clock histograms are deliberately excluded. The traffic leans on
//! every loadgen feature at once: three tenants across three priority
//! tiers, a Poisson warmup, a flash-crowd bursty phase, and a sustained
//! overload phase, with SLO-aware admission shedding on top of the hard
//! queue bound.

use std::fmt::Write as _;
use std::process::Command;

use lm4db::loadgen::{Burst, LoadGen, Phase, PromptShape, TenantSpec, Workload};
use lm4db::serve::{Engine, EngineOptions, TenantClass};
use lm4db::transformer::{GptModel, ModelConfig};

fn fnv_fingerprint(all: &str) -> u64 {
    let mut fp: u64 = 0xcbf2_9ce4_8422_2325;
    for b in all.bytes() {
        fp ^= u64::from(b);
        fp = fp.wrapping_mul(0x1000_0000_01b3);
    }
    fp
}

/// Three tenants spanning the tier range, base rates summing to 2.0
/// arrivals/tick — past the tiny model's service rate once the phase
/// multipliers kick in, so admission control runs hot.
fn tenant_specs() -> Vec<TenantSpec> {
    vec![
        TenantSpec {
            name: "interactive",
            rate: 1.0,
            tier: 0,
            weight: 4,
            slo_steps: 24,
            slo_wall_ms: 250,
            mix: Workload::mix(&[
                (Workload::Text2Sql, 2.0),
                (Workload::Wrangle, 2.0),
                (Workload::FactCheck, 1.0),
                (Workload::NeuralDb, 1.0),
            ]),
        },
        TenantSpec {
            name: "analytics",
            rate: 0.6,
            tier: 1,
            weight: 2,
            slo_steps: 0,
            slo_wall_ms: 0,
            mix: Workload::mix(&[(Workload::Summarize, 2.0), (Workload::Lm, 1.0)]),
        },
        TenantSpec {
            name: "batch",
            rate: 0.4,
            tier: 2,
            weight: 1,
            slo_steps: 0,
            slo_wall_ms: 0,
            mix: Workload::mix(&[(Workload::CodeGen, 2.0), (Workload::Lm, 1.0)]),
        },
    ]
}

/// Warmup at the base rate, a flash-crowd middle (every 100 ticks a
/// 20-tick burst at 4x), then sustained 4x overload: ~11k arrivals.
fn phases() -> Vec<Phase> {
    vec![
        Phase::poisson(500, 1.0),
        Phase::bursty(
            1000,
            2.0,
            Burst {
                period: 100,
                width: 20,
                mul: 4.0,
            },
        ),
        Phase::poisson(500, 4.0),
    ]
}

/// Drives the whole schedule open-loop and renders the outcome stream
/// plus the step-based accounting. Asserts conservation along the way;
/// the returned string is what the matrix fingerprints.
fn soak_workload(seed: u64) -> String {
    let shape = PromptShape {
        vocab: 64,
        max_prompt: 8,
        max_new: 3,
    };
    let gen = LoadGen::new(seed, shape, tenant_specs(), phases());
    let classes: Vec<TenantClass> = gen
        .tenants()
        .iter()
        .map(|s| {
            TenantClass::new(s.name)
                .tier(s.tier)
                .weight(s.weight)
                .slo_steps(s.slo_steps)
                .slo_wall_ms(s.slo_wall_ms)
        })
        .collect();
    let model = GptModel::new(ModelConfig::test(), 7);
    let mut engine = Engine::with_options(
        &model,
        EngineOptions {
            max_batch: 4,
            max_queue: 12,
            tenants: classes,
            slo_admission: true,
            slo_initial_service_steps: 4,
            ..Default::default()
        },
    );

    let mut s = String::new();
    let mut base = None;
    let mut submitted = 0u64;
    let mut retired = 0u64;
    let mut tick = 0u64;
    let mut more = true;
    while tick < gen.total_ticks() || more {
        if tick < gen.total_ticks() {
            for a in gen.arrivals_at(tick) {
                let id = engine.submit(a.to_request());
                base.get_or_insert(id);
                submitted += 1;
            }
        }
        more = engine.step();
        tick += 1;
        // Render responses as they retire: position in the stream is part
        // of the reproducibility claim, not just the multiset of outcomes.
        for r in engine.take_responses() {
            retired += 1;
            write!(
                s,
                "t{tick} r{}: {:?} tokens=",
                r.id - base.unwrap(),
                r.outcome
            )
            .unwrap();
            for t in &r.tokens {
                write!(s, " {t}").unwrap();
            }
            writeln!(s, " score={:08x}", r.score.to_bits()).unwrap();
        }
        assert!(
            tick < gen.total_ticks() + 100_000,
            "engine failed to drain after the schedule ended"
        );
    }

    // Conservation: one terminal outcome per arrival, ledger balanced
    // globally and per tenant, nothing left in flight.
    assert_eq!(retired, submitted, "requests lost or double-retired");
    let st = engine.stats();
    assert_eq!(st.submitted, submitted);
    assert_eq!(st.terminal_total(), st.submitted, "ledger: {st:?}");
    assert_eq!((st.queued, st.active, st.retrying), (0, 0, 0));
    assert_eq!(st.tenants.len(), 3, "all three tenants saw traffic");
    writeln!(s, "ticks={tick} submitted={submitted}").unwrap();
    for (tenant, t) in &st.tenants {
        assert_eq!(t.terminal_total(), t.submitted, "tenant {tenant} ledger");
        assert_eq!(t.queued, 0);
        assert_eq!(
            t.latency_steps.count(),
            t.admitted,
            "tenant {tenant}: one step-latency record per admission"
        );
        // Step-based stats only — wall-clock histograms would break the
        // byte-identical claim across machines, so they stay out.
        writeln!(
            s,
            "tenant{tenant}: sub={} adm={} done={} rej={} slo_shed={} fail={} \
             cancel={} expire={} retries={} wait=({},{},{}) lat=({},{},{})",
            t.submitted,
            t.admitted,
            t.completed,
            t.rejected,
            t.slo_shed,
            t.failed,
            t.cancelled,
            t.expired,
            t.retries,
            t.queue_wait_steps.count(),
            t.queue_wait_steps.total(),
            t.queue_wait_steps.max(),
            t.latency_steps.count(),
            t.latency_steps.total(),
            t.latency_steps.max(),
        )
        .unwrap();
    }
    s
}

/// Child of the soak matrix: runs the schedule for `LM4DB_SOAK_SEED`
/// under whatever thread count and trace level the parent set, and
/// prints the outcome-stream fingerprint. Reaching `SOAK_OK` means every
/// in-test assertion (conservation, drain) held.
#[test]
fn soak_child() {
    let seed = std::env::var("LM4DB_SOAK_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(11);
    let all = soak_workload(seed);
    println!("SOAK_FP={:016x}", fnv_fingerprint(&all));
    println!("SOAK_OK");
}

/// Spawns [`soak_child`] across seeds × thread counts × trace levels.
/// Within a seed all eight configurations (plus one repeat) must agree on
/// the fingerprint byte for byte; across seeds they must differ.
#[test]
fn soak_matrix_is_byte_identical_across_threads_and_trace() {
    let exe = std::env::current_exe().expect("current test binary");
    let run = |seed: u64, threads: &str, trace: &str, sample_steps: &str| -> String {
        let out = Command::new(&exe)
            .args(["soak_child", "--exact", "--nocapture"])
            .env("LM4DB_SOAK_SEED", seed.to_string())
            .env("LM4DB_THREADS", threads)
            .env("LM4DB_TRACE", trace)
            // Telemetry sampling is step-clock-driven and must be purely
            // observational: sampler-enabled legs share the reference
            // fingerprint ("0" disables sampling).
            .env("LM4DB_SAMPLE_STEPS", sample_steps)
            // A chaos-job environment must not poison the soak run.
            .env_remove("LM4DB_FAULTS")
            .output()
            .expect("spawn soak child");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(
            out.status.success(),
            "soak child failed (seed={seed}, threads={threads}, trace={trace}):\n{stdout}\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            stdout.contains("SOAK_OK"),
            "child never reached SOAK_OK:\n{stdout}"
        );
        stdout
            .split("SOAK_FP=")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .unwrap_or_else(|| panic!("no fingerprint in child output:\n{stdout}"))
            .to_string()
    };

    let mut per_seed = Vec::new();
    for seed in [11u64, 12] {
        let reference = run(seed, "1", "0", "0");
        for (threads, trace) in [("1", "2"), ("4", "0"), ("4", "2")] {
            let fp = run(seed, threads, trace, "0");
            assert_eq!(
                reference, fp,
                "seed {seed}: outcome stream changed at threads={threads} trace={trace}"
            );
        }
        // Sampler-enabled legs: telemetry snapshots every 7 steps must not
        // perturb a single scheduling decision, at any thread count or
        // trace level.
        for (threads, trace) in [("1", "0"), ("1", "2"), ("4", "0"), ("4", "2")] {
            let fp = run(seed, threads, trace, "7");
            assert_eq!(
                reference, fp,
                "seed {seed}: sampler changed the outcome stream at \
                 threads={threads} trace={trace}"
            );
        }
        per_seed.push(reference);
    }
    // Same config twice: the fingerprint is a constant of the seed.
    let again = run(11, "1", "0", "0");
    assert_eq!(per_seed[0], again, "fixed-seed soak run not reproducible");
    assert_ne!(
        per_seed[0], per_seed[1],
        "seeds 11 and 12 produced identical schedules — generator looks inert"
    );
}
