//! Golden determinism suite for decoding and serving.
//!
//! The files under `tests/golden/` pin the exact token output (and, for
//! beam search, the exact score bits) of greedy and beam decoding on a
//! fixed-seed model. The tests assert that
//!
//! * the single-request decode paths reproduce the goldens, and
//! * the batched serving engine reproduces them **byte for byte** at batch
//!   sizes 1, 3, and 8 — batching must be invisible in the output,
//! * across worker-pool sizes: a subprocess matrix re-runs the engine
//!   checks under `LM4DB_THREADS` ∈ {1, 4} and compares fingerprints.
//!
//! Regenerate the goldens after an intentional model/decoder change with
//! `LM4DB_BLESS=1 cargo test -p lm4db --test integration_serving_golden`.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::Command;

use lm4db::serve::{Engine, EngineOptions, Request};
use lm4db::tokenize::{BOS, EOS};
use lm4db::transformer::{
    beam, greedy, greedy_cached, GptModel, IncrementalSession, ModelConfig, Unconstrained,
};

/// A fixed-seed model trained until its next-token distributions are sharp,
/// so the full-forward and incremental paths agree token for token.
fn golden_model() -> GptModel {
    let mut m = GptModel::new(ModelConfig::test(), 7);
    let mut opt = m.optimizer(3e-3);
    let batch = vec![
        vec![BOS, 10, 11, 12, 13, 14, EOS],
        vec![BOS, 20, 21, 22, 23, 24, EOS],
    ];
    for _ in 0..30 {
        m.train_step(&batch, &mut opt);
    }
    m
}

/// Eight prompts, several sharing a header so the engine's prefix cache is
/// exercised by the batched runs.
fn prompts() -> Vec<Vec<usize>> {
    vec![
        vec![BOS, 10],
        vec![BOS, 10, 11],
        vec![BOS, 10, 11, 12],
        vec![BOS, 10, 11, 12, 13],
        vec![BOS, 20],
        vec![BOS, 20, 21],
        vec![BOS, 20, 21, 22],
        vec![BOS, 20, 21, 22, 23],
    ]
}

const MAX_NEW: usize = 6;
const BEAM_WIDTH: usize = 3;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name)
}

fn check_or_bless(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var("LM4DB_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} (bless with LM4DB_BLESS=1): {e}"));
    assert_eq!(
        got, want,
        "output diverged from golden {name}; bless with LM4DB_BLESS=1 if intentional"
    );
}

fn render_greedy(outputs: &[Vec<usize>]) -> String {
    let mut s = String::new();
    for (i, out) in outputs.iter().enumerate() {
        write!(s, "p{i}:").unwrap();
        for t in out {
            write!(s, " {t}").unwrap();
        }
        s.push('\n');
    }
    s
}

/// Renders beam hypotheses with exact score bits, so a golden match really
/// is bit-identical, not just same-tokens.
fn render_beam(all: &[Vec<lm4db::transformer::Hypothesis>]) -> String {
    let mut s = String::new();
    for (i, hyps) in all.iter().enumerate() {
        for (j, h) in hyps.iter().enumerate() {
            write!(
                s,
                "p{i}.h{j}: fin={} lp={:08x} ids=",
                u8::from(h.finished),
                h.log_prob.to_bits()
            )
            .unwrap();
            for t in &h.ids {
                write!(s, " {t}").unwrap();
            }
            s.push('\n');
        }
    }
    s
}

fn engine_greedy_all(m: &GptModel, max_batch: usize) -> String {
    let mut engine = Engine::with_options(
        m,
        EngineOptions {
            max_batch,
            ..Default::default()
        },
    );
    let reqs = prompts()
        .into_iter()
        .map(|p| Request::greedy(p, MAX_NEW, EOS))
        .collect();
    let outs: Vec<Vec<usize>> = engine
        .generate_batch(reqs)
        .into_iter()
        .map(|r| r.tokens)
        .collect();
    render_greedy(&outs)
}

fn engine_beam_all(m: &GptModel, max_batch: usize) -> String {
    let mut engine = Engine::with_options(
        m,
        EngineOptions {
            max_batch,
            ..Default::default()
        },
    );
    let reqs = prompts()
        .into_iter()
        .map(|p| Request::beam(p, BEAM_WIDTH, MAX_NEW, EOS))
        .collect();
    let all: Vec<_> = engine
        .generate_batch(reqs)
        .into_iter()
        .map(|r| r.hyps)
        .collect();
    render_beam(&all)
}

#[test]
fn greedy_golden_single_request_paths() {
    let m = golden_model();
    let cached: Vec<Vec<usize>> = prompts()
        .iter()
        .map(|p| greedy_cached(&m, p, MAX_NEW, EOS))
        .collect();
    check_or_bless("greedy.txt", &render_greedy(&cached));

    // The full-forward path must agree token for token (the model is sharp
    // enough that the ~1e-3 float divergence never flips an argmax).
    let mut m = m;
    let full: Vec<Vec<usize>> = prompts()
        .iter()
        .map(|p| greedy(&mut m, p, MAX_NEW, EOS, &Unconstrained))
        .collect();
    assert_eq!(render_greedy(&full), render_greedy(&cached));
}

#[test]
fn beam_golden_single_request_path() {
    let m = golden_model();
    let all: Vec<_> = prompts()
        .iter()
        .map(|p| {
            let mut session = IncrementalSession::new(&m);
            beam(&mut session, p, BEAM_WIDTH, MAX_NEW, EOS, &Unconstrained)
        })
        .collect();
    check_or_bless("beam.txt", &render_beam(&all));
}

#[test]
fn engine_reproduces_goldens_at_all_batch_sizes() {
    let m = golden_model();
    for max_batch in [1, 3, 8] {
        check_or_bless("greedy.txt", &engine_greedy_all(&m, max_batch));
        check_or_bless("beam.txt", &engine_beam_all(&m, max_batch));
    }
}

/// Child of the thread matrix below: checks the engine against the goldens
/// under whatever `LM4DB_THREADS` the parent set, and prints a fingerprint
/// of the full rendered output for cross-process comparison.
#[test]
fn golden_child_fingerprint() {
    let m = golden_model();
    let mut all = String::new();
    for max_batch in [1, 3, 8] {
        let g = engine_greedy_all(&m, max_batch);
        let b = engine_beam_all(&m, max_batch);
        check_or_bless("greedy.txt", &g);
        check_or_bless("beam.txt", &b);
        all.push_str(&g);
        all.push_str(&b);
    }
    // FNV-1a over the rendered bytes.
    let mut fp: u64 = 0xcbf2_9ce4_8422_2325;
    for b in all.bytes() {
        fp ^= u64::from(b);
        fp = fp.wrapping_mul(0x1000_0000_01b3);
    }
    println!("SERVE_GOLDEN_FP={fp:016x}");
}

/// The batch-size sweep above runs in-process; this matrix re-runs it in
/// subprocesses across worker-thread counts {1, 4} and tracing levels
/// {off, metrics, events} and asserts the rendered outputs are identical —
/// goldens hold at every (batch, threads, trace) point, and both
/// `LM4DB_TRACE=1` and the level-2 flight recorder are purely
/// observational (DESIGN.md §5d/§5e's "tracing never changes output").
#[test]
fn golden_outputs_stable_across_thread_counts() {
    if std::env::var("LM4DB_BLESS").is_ok() {
        return; // goldens are being rewritten; nothing stable to compare
    }
    let exe = std::env::current_exe().expect("current test binary");
    let mut fps = Vec::new();
    for (threads, trace) in [
        ("1", "0"),
        ("4", "0"),
        ("1", "1"),
        ("4", "1"),
        ("1", "2"),
        ("4", "2"),
    ] {
        let out = Command::new(&exe)
            .args(["golden_child_fingerprint", "--exact", "--nocapture"])
            .env("LM4DB_THREADS", threads)
            .env("LM4DB_TRACE", trace)
            .output()
            .expect("spawn child test");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(
            out.status.success(),
            "child failed with {threads} threads, trace={trace}:\n{stdout}"
        );
        let fp = stdout
            .split("SERVE_GOLDEN_FP=")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .unwrap_or_else(|| panic!("no fingerprint in child output:\n{stdout}"))
            .to_string();
        fps.push((threads, trace, fp));
    }
    for point in &fps[1..] {
        assert_eq!(
            fps[0].2, point.2,
            "engine output depends on thread count or tracing: {fps:?}"
        );
    }
}
