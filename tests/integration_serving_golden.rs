//! Golden determinism suite for decoding and serving.
//!
//! The files under `tests/golden/` pin the exact token output (and, for
//! beam search, the exact score bits) of greedy and beam decoding on a
//! fixed-seed model. The tests assert that
//!
//! * the single-request decode paths reproduce the goldens, and
//! * the batched serving engine reproduces them **byte for byte** at batch
//!   sizes 1, 3, and 8 — batching must be invisible in the output,
//! * across worker-pool sizes: a subprocess matrix re-runs the engine
//!   checks under `LM4DB_THREADS` ∈ {1, 4} and compares fingerprints.
//!
//! Regenerate the goldens after an intentional model/decoder change with
//! `LM4DB_BLESS=1 cargo test -p lm4db --test integration_serving_golden`.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::Command;

use lm4db::lm::NGramLm;
use lm4db::serve::{Engine, EngineOptions, Request};
use lm4db::tokenize::{BOS, EOS};
use lm4db::transformer::{
    beam, greedy, greedy_cached, GptModel, IncrementalSession, ModelConfig, Unconstrained,
};

/// A fixed-seed model trained until its next-token distributions are sharp,
/// so the full-forward and incremental paths agree token for token.
fn golden_model() -> GptModel {
    let mut m = GptModel::new(ModelConfig::test(), 7);
    let mut opt = m.optimizer(3e-3);
    let batch = vec![
        vec![BOS, 10, 11, 12, 13, 14, EOS],
        vec![BOS, 20, 21, 22, 23, 24, EOS],
    ];
    for _ in 0..30 {
        m.train_step(&batch, &mut opt);
    }
    m
}

/// An n-gram draft trained on the same streams as [`golden_model`], so
/// speculative runs accept most drafts — and the goldens must hold
/// regardless, because acceptance only changes *when* tokens are
/// verified, never *which* tokens come out.
fn golden_draft() -> NGramLm {
    let mut d = NGramLm::new(4, ModelConfig::test().vocab_size);
    d.train(&[BOS, 10, 11, 12, 13, 14, EOS]);
    d.train(&[BOS, 20, 21, 22, 23, 24, EOS]);
    d
}

/// Eight prompts, several sharing a header so the engine's prefix cache is
/// exercised by the batched runs.
fn prompts() -> Vec<Vec<usize>> {
    vec![
        vec![BOS, 10],
        vec![BOS, 10, 11],
        vec![BOS, 10, 11, 12],
        vec![BOS, 10, 11, 12, 13],
        vec![BOS, 20],
        vec![BOS, 20, 21],
        vec![BOS, 20, 21, 22],
        vec![BOS, 20, 21, 22, 23],
    ]
}

const MAX_NEW: usize = 6;
const BEAM_WIDTH: usize = 3;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name)
}

fn check_or_bless(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var("LM4DB_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} (bless with LM4DB_BLESS=1): {e}"));
    assert_eq!(
        got, want,
        "output diverged from golden {name}; bless with LM4DB_BLESS=1 if intentional"
    );
}

fn render_greedy(outputs: &[Vec<usize>]) -> String {
    let mut s = String::new();
    for (i, out) in outputs.iter().enumerate() {
        write!(s, "p{i}:").unwrap();
        for t in out {
            write!(s, " {t}").unwrap();
        }
        s.push('\n');
    }
    s
}

/// Renders beam hypotheses with exact score bits, so a golden match really
/// is bit-identical, not just same-tokens.
fn render_beam(all: &[Vec<lm4db::transformer::Hypothesis>]) -> String {
    let mut s = String::new();
    for (i, hyps) in all.iter().enumerate() {
        for (j, h) in hyps.iter().enumerate() {
            write!(
                s,
                "p{i}.h{j}: fin={} lp={:08x} ids=",
                u8::from(h.finished),
                h.log_prob.to_bits()
            )
            .unwrap();
            for t in &h.ids {
                write!(s, " {t}").unwrap();
            }
            s.push('\n');
        }
    }
    s
}

fn engine_greedy_all(m: &GptModel, max_batch: usize) -> String {
    let mut engine = Engine::with_options(
        m,
        EngineOptions {
            max_batch,
            ..Default::default()
        },
    );
    let reqs = prompts()
        .into_iter()
        .map(|p| Request::greedy(p, MAX_NEW, EOS))
        .collect();
    let outs: Vec<Vec<usize>> = engine
        .generate_batch(reqs)
        .into_iter()
        .map(|r| r.tokens)
        .collect();
    render_greedy(&outs)
}

/// Greedy through the engine with speculative decoding on: an n-gram
/// draft proposes `draft_k` tokens per request, the model verifies them
/// in one batched forward. Returns the rendered output plus the
/// (drafted, accepted) counters so callers can check speculation really
/// engaged.
fn engine_greedy_spec_all(
    m: &GptModel,
    draft: &NGramLm,
    max_batch: usize,
    draft_k: usize,
) -> (String, u64, u64) {
    let mut engine = Engine::with_options(
        m,
        EngineOptions {
            max_batch,
            draft_k,
            ..Default::default()
        },
    );
    engine.set_draft(draft);
    let reqs = prompts()
        .into_iter()
        .map(|p| Request::greedy(p, MAX_NEW, EOS))
        .collect();
    let outs: Vec<Vec<usize>> = engine
        .generate_batch(reqs)
        .into_iter()
        .map(|r| r.tokens)
        .collect();
    let stats = engine.stats();
    (
        render_greedy(&outs),
        stats.drafted_tokens,
        stats.draft_accepted_tokens,
    )
}

fn engine_beam_all(m: &GptModel, max_batch: usize) -> String {
    let mut engine = Engine::with_options(
        m,
        EngineOptions {
            max_batch,
            ..Default::default()
        },
    );
    let reqs = prompts()
        .into_iter()
        .map(|p| Request::beam(p, BEAM_WIDTH, MAX_NEW, EOS))
        .collect();
    let all: Vec<_> = engine
        .generate_batch(reqs)
        .into_iter()
        .map(|r| r.hyps)
        .collect();
    render_beam(&all)
}

#[test]
fn greedy_golden_single_request_paths() {
    let m = golden_model();
    let cached: Vec<Vec<usize>> = prompts()
        .iter()
        .map(|p| greedy_cached(&m, p, MAX_NEW, EOS))
        .collect();
    check_or_bless("greedy.txt", &render_greedy(&cached));

    // The full-forward path must agree token for token (the model is sharp
    // enough that the ~1e-3 float divergence never flips an argmax).
    let mut m = m;
    let full: Vec<Vec<usize>> = prompts()
        .iter()
        .map(|p| greedy(&mut m, p, MAX_NEW, EOS, &Unconstrained))
        .collect();
    assert_eq!(render_greedy(&full), render_greedy(&cached));
}

#[test]
fn beam_golden_single_request_path() {
    let m = golden_model();
    let all: Vec<_> = prompts()
        .iter()
        .map(|p| {
            let mut session = IncrementalSession::new(&m);
            beam(&mut session, p, BEAM_WIDTH, MAX_NEW, EOS, &Unconstrained)
        })
        .collect();
    check_or_bless("beam.txt", &render_beam(&all));
}

#[test]
fn engine_reproduces_goldens_at_all_batch_sizes() {
    let m = golden_model();
    for max_batch in [1, 3, 8] {
        check_or_bless("greedy.txt", &engine_greedy_all(&m, max_batch));
        check_or_bless("beam.txt", &engine_beam_all(&m, max_batch));
    }
}

/// Speculative decoding must be invisible in the output: at every
/// `draft_k` × batch-size point, the engine with an n-gram draft
/// reproduces the same greedy golden as the non-speculative paths —
/// byte for byte — while actually speculating (drafted > 0 for k > 0).
#[test]
fn speculative_engine_reproduces_greedy_golden() {
    let m = golden_model();
    let draft = golden_draft();
    for max_batch in [1, 8] {
        for draft_k in [0, 2, 4] {
            let (g, drafted, accepted) = engine_greedy_spec_all(&m, &draft, max_batch, draft_k);
            check_or_bless("greedy.txt", &g);
            assert!(accepted <= drafted, "accepted more than drafted");
            if draft_k == 0 {
                assert_eq!(drafted, 0, "draft_k=0 must never draft");
            } else {
                assert!(drafted > 0, "draft_k={draft_k} never drafted");
                assert!(accepted > 0, "in-distribution draft never accepted");
            }
        }
    }
}

/// Child of the thread matrix below: checks the engine against the goldens
/// under whatever `LM4DB_THREADS` the parent set, and prints a fingerprint
/// of the full rendered output for cross-process comparison. Speculative
/// legs are part of the fingerprint, so the matrix also pins
/// draft/verify/rollback behaviour across worker-pool sizes and tracing
/// levels.
#[test]
fn golden_child_fingerprint() {
    let m = golden_model();
    let draft = golden_draft();
    let mut all = String::new();
    for max_batch in [1, 3, 8] {
        let g = engine_greedy_all(&m, max_batch);
        let b = engine_beam_all(&m, max_batch);
        check_or_bless("greedy.txt", &g);
        check_or_bless("beam.txt", &b);
        all.push_str(&g);
        all.push_str(&b);
        for draft_k in [2, 4] {
            let (s, drafted, _) = engine_greedy_spec_all(&m, &draft, max_batch, draft_k);
            check_or_bless("greedy.txt", &s);
            assert!(drafted > 0, "speculative leg never drafted");
            all.push_str(&s);
        }
    }
    // FNV-1a over the rendered bytes.
    let mut fp: u64 = 0xcbf2_9ce4_8422_2325;
    for b in all.bytes() {
        fp ^= u64::from(b);
        fp = fp.wrapping_mul(0x1000_0000_01b3);
    }
    println!("SERVE_GOLDEN_FP={fp:016x}");
}

/// FNV-1a over a rendered output, for cross-process comparison.
fn fnv_fingerprint(all: &str) -> u64 {
    let mut fp: u64 = 0xcbf2_9ce4_8422_2325;
    for b in all.bytes() {
        fp ^= u64::from(b);
        fp = fp.wrapping_mul(0x1000_0000_01b3);
    }
    fp
}

/// Child of the fault matrix below: a fixed mixed workload (greedy, beam,
/// scoring; bounded queue; retry budget) under whatever `LM4DB_FAULTS`
/// the parent set, rendered down to every response's outcome — including
/// `Failed` reasons and shed `Rejected`s — plus the failure-path stats.
/// Prints an `OUTCOME_FP=` fingerprint for cross-process comparison.
#[test]
fn golden_child_outcome_fingerprint() {
    lm4db::fault::silence_injected_panics();
    let m = golden_model();
    let mut engine = Engine::with_options(
        &m,
        EngineOptions {
            max_batch: 3,
            max_queue: 6,
            max_retries: 2,
            retry_backoff_steps: 2,
            ..Default::default()
        },
    );
    let mut ids = Vec::new();
    for (i, p) in prompts().into_iter().enumerate() {
        let req = match i % 3 {
            0 => Request::greedy(p, MAX_NEW, EOS),
            1 => Request::beam(p, BEAM_WIDTH, MAX_NEW, EOS),
            _ => Request::score(&p[..p.len() - 1], &p[p.len() - 1..]),
        };
        ids.push(engine.submit(req));
    }
    let base = ids[0];
    let responses = engine.run();
    assert_eq!(responses.len(), ids.len(), "every request retires once");
    let mut s = String::new();
    for r in &responses {
        write!(s, "r{}: {:?} tokens=", r.id - base, r.outcome).unwrap();
        for t in &r.tokens {
            write!(s, " {t}").unwrap();
        }
        writeln!(s, " score={:08x} hyps={}", r.score.to_bits(), r.hyps.len()).unwrap();
    }
    let st = engine.stats();
    assert_eq!(st.terminal_total(), st.submitted);
    writeln!(
        s,
        "failed={} rejected={} retries={} completed={} expired={}",
        st.failed, st.rejected, st.retries, st.completed, st.expired
    )
    .unwrap();
    println!("OUTCOME_STATS=failed:{},retries:{}", st.failed, st.retries);
    println!("OUTCOME_FP={:016x}", fnv_fingerprint(&s));
}

/// Fault-injection determinism: with `LM4DB_FAULTS` unset the outcome
/// fingerprint matches across thread counts, and at a fixed seed the
/// *faulted* run — retries, failures, sheds and all — is byte-identical
/// across thread counts, tracing levels, and repeated runs. Chaos is
/// reproducible (DESIGN.md §5f).
#[test]
fn golden_outcomes_reproducible_under_fixed_seed_faults() {
    let exe = std::env::current_exe().expect("current test binary");
    let run = |threads: &str, trace: &str, faults: Option<&str>| -> (String, String) {
        let mut cmd = Command::new(&exe);
        cmd.args(["golden_child_outcome_fingerprint", "--exact", "--nocapture"])
            .env("LM4DB_THREADS", threads)
            .env("LM4DB_TRACE", trace);
        match faults {
            Some(spec) => cmd.env("LM4DB_FAULTS", spec),
            None => cmd.env_remove("LM4DB_FAULTS"),
        };
        let out = cmd.output().expect("spawn child test");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(
            out.status.success(),
            "child aborted (threads={threads}, trace={trace}, faults={faults:?}):\n{stdout}"
        );
        let grab = |key: &str| {
            stdout
                .split(key)
                .nth(1)
                .and_then(|s| s.split_whitespace().next())
                .unwrap_or_else(|| panic!("no {key} in child output:\n{stdout}"))
                .to_string()
        };
        (grab("OUTCOME_FP="), grab("OUTCOME_STATS="))
    };

    // Baseline: no faults, outcome stream is thread-count independent.
    let (base1, base_stats) = run("1", "0", None);
    let (base4, _) = run("4", "0", None);
    assert_eq!(base1, base4, "fault-free outcomes depend on thread count");
    assert_eq!(base_stats, "failed:0,retries:0");

    // Fixed seed: same faults, same outcomes, everywhere.
    const SPEC: &str = "4242:0.05";
    let (f1, f_stats) = run("1", "0", Some(SPEC));
    let (f2, _) = run("4", "0", Some(SPEC));
    let (f3, _) = run("1", "1", Some(SPEC));
    let (f4, _) = run("1", "0", Some(SPEC)); // same config twice
    assert_eq!(f1, f2, "faulted outcomes depend on thread count");
    assert_eq!(f1, f3, "faulted outcomes depend on tracing");
    assert_eq!(f1, f4, "fixed-seed fault run is not reproducible");
    assert_ne!(f1, base1, "seeded faults left no trace in the outcomes");
    assert_ne!(
        f_stats, "failed:0,retries:0",
        "seed {SPEC} injected nothing — pick a livelier seed"
    );
}

/// The batch-size sweep above runs in-process; this matrix re-runs it in
/// subprocesses across worker-thread counts {1, 4}, tracing levels
/// {off, metrics, events}, and telemetry-sampler cadences {off, 5} and
/// asserts the rendered outputs are identical — goldens hold at every
/// (batch, threads, trace, sample) point, and `LM4DB_TRACE` at both
/// levels plus the `LM4DB_SAMPLE_STEPS` step-clock sampler are purely
/// observational (DESIGN.md §5d/§5e's "tracing never changes output",
/// extended to time-series sampling by §5k).
#[test]
fn golden_outputs_stable_across_thread_counts() {
    if std::env::var("LM4DB_BLESS").is_ok() {
        return; // goldens are being rewritten; nothing stable to compare
    }
    let exe = std::env::current_exe().expect("current test binary");
    let mut fps = Vec::new();
    for (threads, trace, sample) in [
        ("1", "0", "0"),
        ("4", "0", "0"),
        ("1", "1", "0"),
        ("4", "1", "0"),
        ("1", "2", "0"),
        ("4", "2", "0"),
        // Sampler-enabled legs: snapshotting telemetry every 5 engine
        // steps must not move a single output byte at any thread count
        // or trace level.
        ("1", "0", "5"),
        ("4", "0", "5"),
        ("1", "2", "5"),
        ("4", "2", "5"),
    ] {
        let out = Command::new(&exe)
            .args(["golden_child_fingerprint", "--exact", "--nocapture"])
            .env("LM4DB_THREADS", threads)
            .env("LM4DB_TRACE", trace)
            .env("LM4DB_SAMPLE_STEPS", sample)
            .env_remove("LM4DB_FAULTS")
            .output()
            .expect("spawn child test");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(
            out.status.success(),
            "child failed with {threads} threads, trace={trace}, sample={sample}:\n{stdout}"
        );
        let fp = stdout
            .split("SERVE_GOLDEN_FP=")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .unwrap_or_else(|| panic!("no fingerprint in child output:\n{stdout}"))
            .to_string();
        fps.push((threads, trace, sample, fp));
    }
    for point in &fps[1..] {
        assert_eq!(
            fps[0].3, point.3,
            "engine output depends on thread count, tracing, or sampling: {fps:?}"
        );
    }
}
