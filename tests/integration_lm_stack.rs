//! Cross-crate integration: tokenizer -> transformer -> decoding, and the
//! n-gram/transformer interchangeability through the `NextToken` trait.

use lm4db::lm::NGramLm;
use lm4db::tokenize::{Bpe, Tokenizer, WordPiece, BOS, EOS};
use lm4db::transformer::{
    beam, evaluate_perplexity, greedy, pack_corpus, pretrain_gpt, BertModel, GptModel, ModelConfig,
    NextToken, TrainOptions, Unconstrained,
};

fn corpus() -> Vec<String> {
    lm4db::corpus::corpus(200, 42)
}

#[test]
fn pretraining_on_generated_corpus_improves_perplexity() {
    let lines = corpus();
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    let bpe = Bpe::train(refs.iter().copied(), 300);
    let stream = pack_corpus(refs.iter().copied(), &bpe);
    let mut model = GptModel::new(
        ModelConfig {
            vocab_size: bpe.vocab().len(),
            ..ModelConfig::test()
        },
        1,
    );
    let before = evaluate_perplexity(&mut model, &stream, 12, 6, 9);
    pretrain_gpt(
        &mut model,
        &stream,
        &TrainOptions {
            steps: 120,
            batch_size: 6,
            seq_len: 12,
            ..Default::default()
        },
    );
    let after = evaluate_perplexity(&mut model, &stream, 12, 6, 9);
    assert!(
        after < before * 0.7,
        "perplexity did not improve: {before} -> {after}"
    );
}

#[test]
fn gpt_and_ngram_share_decoding_infrastructure() {
    let lines = corpus();
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    let bpe = Bpe::train(refs.iter().copied(), 300);
    let stream = pack_corpus(refs.iter().copied(), &bpe);

    let mut ngram = NGramLm::new(3, bpe.vocab().len());
    ngram.train(&stream);
    let mut gpt = GptModel::new(
        ModelConfig {
            vocab_size: bpe.vocab().len(),
            ..ModelConfig::test()
        },
        2,
    );

    let prefix = {
        let mut p = vec![BOS];
        p.extend(bpe.encode("the optimizer"));
        p
    };
    // Both models work through the same generation entry points.
    let models: Vec<&mut dyn NextToken> = vec![&mut ngram, &mut gpt];
    for m in models {
        let g = greedy(m, &prefix, 5, EOS, &Unconstrained);
        assert!(g.len() <= 5);
        let hyps = beam(m, &prefix, 2, 4, EOS, &Unconstrained);
        assert!(!hyps.is_empty());
    }
}

#[test]
fn ngram_perplexity_beats_untrained_transformer_cheaply() {
    // The "small model" can be strong on its training distribution — the
    // scale story is about *generalization and prompting*, not memorizing.
    let lines = corpus();
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    let bpe = Bpe::train(refs.iter().copied(), 300);
    let stream = pack_corpus(refs.iter().copied(), &bpe);
    let mut ngram = NGramLm::new(3, bpe.vocab().len());
    ngram.train(&stream);
    let ngram_ppl = ngram.perplexity(&stream[..200.min(stream.len())]);
    let mut untrained = GptModel::new(
        ModelConfig {
            vocab_size: bpe.vocab().len(),
            ..ModelConfig::test()
        },
        3,
    );
    let gpt_ppl = evaluate_perplexity(&mut untrained, &stream, 12, 4, 5);
    assert!(
        ngram_ppl < gpt_ppl,
        "trained n-gram ({ngram_ppl}) should beat untrained transformer ({gpt_ppl})"
    );
}

#[test]
fn bert_mlm_pretraining_runs_on_wordpiece_corpus() {
    let lines = corpus();
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    let wp = WordPiece::train(refs.iter().copied(), 300);
    let mut model = BertModel::new(
        ModelConfig {
            vocab_size: wp.vocab().len(),
            max_seq_len: 24,
            ..ModelConfig::test()
        },
        4,
    );
    let mut opt = model.optimizer(2e-3);
    let batch: Vec<Vec<usize>> = lines
        .iter()
        .take(8)
        .map(|l| {
            let mut ids = wp.encode_pair(l, None);
            ids.truncate(24);
            ids
        })
        .collect();
    let losses: Vec<f32> = (0..25)
        .map(|_| model.mlm_train_step(&batch, &mut opt))
        .collect();
    let early: f32 = losses[..5].iter().sum::<f32>() / 5.0;
    let late: f32 = losses[losses.len() - 5..].iter().sum::<f32>() / 5.0;
    assert!(late < early, "MLM loss did not drop on real corpus");
}
