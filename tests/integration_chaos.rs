//! Chaos suite: the serving stack under deterministic fault injection.
//!
//! The parent test spawns this file's child test in subprocesses with
//! `LM4DB_FAULTS=<seed>:<rate>` armed at several seeds and thread counts,
//! and asserts that
//!
//! * the process never aborts — every injected panic is confined to the
//!   task that rolled it,
//! * every submitted request retires with exactly one terminal outcome
//!   and the `Stats` ledger balances
//!   (`completed + cancelled + expired + failed + rejected == submitted`),
//! * the codegen circuit breaker keeps synthesizing through validation
//!   faults, and
//! * a fixed `(seed, threads)` configuration reproduces its outcome
//!   stream byte for byte, and the stream is thread-count independent.

use std::fmt::Write as _;
use std::process::Command;

use lm4db::codegen::{enumerate_programs, generate_tasks, BreakerOptions, Synthesizer};
use lm4db::corpus::{make_domain, DomainKind};
use lm4db::serve::{Deadline, Engine, EngineOptions, Request};
use lm4db::tokenize::{BOS, EOS};
use lm4db::transformer::{GptModel, ModelConfig};

fn fnv_fingerprint(all: &str) -> u64 {
    let mut fp: u64 = 0xcbf2_9ce4_8422_2325;
    for b in all.bytes() {
        fp ^= u64::from(b);
        fp = fp.wrapping_mul(0x1000_0000_01b3);
    }
    fp
}

/// Serving half of the child workload: a mixed batch (greedy, beam,
/// scoring) with step deadlines, cancellations, a bounded queue, and a
/// retry budget. Returns its rendered outcome stream.
fn serve_workload() -> String {
    let m = GptModel::new(ModelConfig::test(), 7);
    let mut engine = Engine::with_options(
        &m,
        EngineOptions {
            max_batch: 3,
            max_queue: 8,
            max_retries: 2,
            retry_backoff_steps: 1,
            ..Default::default()
        },
    );
    let prompts: Vec<Vec<usize>> = (0..12)
        .map(|i| {
            let mut p = vec![BOS];
            p.extend((0..(i % 4) + 1).map(|j| 10 + (i * 3 + j) % 40));
            p
        })
        .collect();
    let mut ids = Vec::new();
    for (i, p) in prompts.into_iter().enumerate() {
        let mut req = match i % 3 {
            0 => Request::greedy(p, 5, EOS),
            1 => Request::beam(p, 2, 5, EOS),
            _ => {
                let split = p.len() - 1;
                Request::score(&p[..split], &p[split..])
            }
        };
        if i % 5 == 0 {
            req = req.with_deadline(Deadline::Steps(4));
        }
        ids.push(engine.submit(req));
    }
    // Cancel one queued request now and one mid-flight.
    engine.cancel(ids[7]);
    engine.step();
    engine.cancel(ids[2]);
    let responses = engine.run();

    // Conservation: exactly one terminal response per submission.
    let got: Vec<u64> = responses.iter().map(|r| r.id).collect();
    assert_eq!(got, ids, "requests lost, invented, or double-retired");
    let st = engine.stats();
    assert_eq!(st.submitted, ids.len() as u64);
    assert_eq!(
        st.terminal_total(),
        st.submitted,
        "ledger out of balance: {st:?}"
    );
    assert_eq!((st.queued, st.active, st.retrying), (0, 0, 0));

    let base = ids[0];
    let mut s = String::new();
    for r in &responses {
        write!(s, "r{}: {:?} tokens=", r.id - base, r.outcome).unwrap();
        for t in &r.tokens {
            write!(s, " {t}").unwrap();
        }
        writeln!(s, " score={:08x}", r.score.to_bits()).unwrap();
    }
    writeln!(
        s,
        "serve: completed={} cancelled={} expired={} failed={} rejected={} retries={}",
        st.completed, st.cancelled, st.expired, st.failed, st.rejected, st.retries
    )
    .unwrap();
    s
}

/// Codegen half: the synthesize/validate loop behind the circuit breaker,
/// with `codegen/validate` fault injections counting as validation
/// failures. Returns its rendered outcome stream.
fn codegen_workload() -> String {
    let d = make_domain(DomainKind::Employees, 12, 7);
    let programs = enumerate_programs(&d);
    let tasks = generate_tasks(&d, 6, 1);
    let cfg = ModelConfig {
        max_seq_len: 96,
        ..ModelConfig::tiny(0)
    };
    let cat = d.catalog();
    let mut synth = Synthesizer::new(cfg, &tasks, &programs, 5).with_breaker(BreakerOptions {
        threshold: 2,
        cooldown: 2,
    });
    let mut s = String::new();
    for (i, t) in tasks.iter().take(4).enumerate() {
        let syn = synth.synthesize_resilient(&t.instruction, &cat, 1);
        writeln!(
            s,
            "c{i}: ok={} fallback={} attempts={} open={}",
            syn.pipeline.is_some(),
            syn.fallback,
            syn.attempts,
            synth.breaker_open()
        )
        .unwrap();
    }
    s
}

/// Child of the chaos matrix: runs the mixed workload under whatever
/// `LM4DB_FAULTS` the parent set and prints a fingerprint of every
/// outcome. Reaching the final `CHAOS_OK` line *is* the survival claim —
/// any uncontained panic would abort the child instead.
#[test]
fn chaos_child() {
    lm4db::fault::silence_injected_panics();
    let mut all = serve_workload();
    all.push_str(&codegen_workload());
    println!("CHAOS_FP={:016x}", fnv_fingerprint(&all));
    println!("CHAOS_OK");
}

/// Spawns [`chaos_child`] across fault seeds and thread counts; every
/// child must survive with a balanced ledger, outcomes must be
/// thread-count independent, and a repeated configuration must reproduce
/// its fingerprint exactly.
#[test]
fn chaos_matrix_survives_and_reproduces() {
    let exe = std::env::current_exe().expect("current test binary");
    let run = |faults: &str, threads: &str| -> String {
        let out = Command::new(&exe)
            .args(["chaos_child", "--exact", "--nocapture"])
            .env("LM4DB_FAULTS", faults)
            .env("LM4DB_THREADS", threads)
            .env("LM4DB_TRACE", "0")
            .output()
            .expect("spawn chaos child");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(
            out.status.success(),
            "chaos child aborted (faults={faults}, threads={threads}):\n{stdout}\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            stdout.contains("CHAOS_OK"),
            "child never reached CHAOS_OK:\n{stdout}"
        );
        stdout
            .split("CHAOS_FP=")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .unwrap_or_else(|| panic!("no fingerprint in child output:\n{stdout}"))
            .to_string()
    };

    // Three seeds × survival, plus a high-rate stress point.
    let fp_a1 = run("1:0.05", "1");
    let fp_b = run("2:0.05", "4");
    let fp_c = run("3:0.08", "1");
    run("4:0.50", "4");

    // Determinism: same seed across thread counts, and same config twice.
    let fp_a4 = run("1:0.05", "4");
    assert_eq!(fp_a1, fp_a4, "chaos outcomes depend on thread count");
    let fp_a1_again = run("1:0.05", "1");
    assert_eq!(fp_a1, fp_a1_again, "fixed-seed chaos run not reproducible");
    // Different seeds explore different fault schedules (they could
    // collide in principle; these particular seeds do not).
    assert!(
        fp_a1 != fp_b || fp_a1 != fp_c,
        "every seed produced identical outcomes — injector looks inert"
    );
}
