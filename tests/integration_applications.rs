//! Cross-crate integration of the data-management applications: each app
//! wired to the corpus generators and the SQL substrate end to end.

use lm4db::corpus::{make_domain, DomainKind, Severity};
use lm4db::factcheck::{evaluate as factcheck_eval, generate_claims, KeywordMapper};
use lm4db::sql::run_sql;
use lm4db::text2sql::{
    evaluate as t2s_eval, generate, paraphrase_examples, SqlTrie, TemplateBaseline,
};
use lm4db::tune::{db_bert_style, default_latency, generate_manual, Workload};
use lm4db::wrangle::{jaccard, matching_pairs, split_pairs, Confusion, ThresholdMatcher};

#[test]
fn text2sql_baseline_evaluated_on_every_domain() {
    for kind in DomainKind::all() {
        let d = make_domain(kind, 20, 13);
        let cat = d.catalog();
        let exs = generate(&d, 24, 1);
        let baseline = TemplateBaseline::new(&d);
        let (m, by_tier) = t2s_eval(|ex| baseline.translate(&ex.question), &exs, &cat);
        assert!(
            m.exec_acc() > 0.8,
            "domain {}: baseline exec acc {}",
            d.name,
            m.exec_acc()
        );
        assert_eq!(by_tier.values().map(|t| t.total).sum::<usize>(), 24);
    }
}

#[test]
fn text2sql_baseline_degrades_under_paraphrase() {
    let d = make_domain(DomainKind::Employees, 20, 13);
    let cat = d.catalog();
    let exs = generate(&d, 24, 2);
    let para = paraphrase_examples(&exs, 1.0, 7);
    let baseline = TemplateBaseline::new(&d);
    let (canon, _) = t2s_eval(|ex| baseline.translate(&ex.question), &exs, &cat);
    let (parap, _) = t2s_eval(|ex| baseline.translate(&ex.question), &para, &cat);
    assert!(
        parap.exec_acc() < canon.exec_acc(),
        "paraphrase did not hurt baseline: {} vs {}",
        parap.exec_acc(),
        canon.exec_acc()
    );
}

#[test]
fn constrained_trie_space_is_executable_across_domains() {
    for kind in DomainKind::all() {
        let d = make_domain(kind, 15, 3);
        let cat = d.catalog();
        let trie = SqlTrie::for_domain(&d);
        for sql in trie.all_queries().iter().step_by(7) {
            assert!(run_sql(sql, &cat).is_ok(), "{}: {sql}", d.name);
        }
    }
}

#[test]
fn factchecking_discriminates_true_from_false_claims() {
    let d = make_domain(DomainKind::Products, 25, 5);
    let claims = generate_claims(&d, 30, 0.0, 2);
    let acc = factcheck_eval(&d, &claims, &mut KeywordMapper);
    assert!(acc > 0.8, "fact-checking accuracy {acc}");
}

#[test]
fn entity_matching_baseline_pipeline() {
    let pairs = matching_pairs(50, Severity::light(), 3);
    let (train, test) = split_pairs(pairs, 0.6);
    let labeled: Vec<(String, String, bool)> = train
        .iter()
        .map(|p| (p.left.clone(), p.right.clone(), p.label))
        .collect();
    let matcher = ThresholdMatcher::fit(jaccard, &labeled);
    let mut c = Confusion::default();
    for p in &test {
        c.record(matcher.matches(&p.left, &p.right), p.label);
    }
    assert!(
        c.f1() > 0.6,
        "jaccard baseline too weak on light corruption: F1 {}",
        c.f1()
    );
}

#[test]
fn tuning_improves_latency_on_all_workloads() {
    let manual = generate_manual(40, 0.0, 4);
    for w in Workload::all() {
        let run = db_bert_style(&manual, w, 25, 7);
        assert!(
            run.final_latency() < default_latency(w) * 0.9,
            "{:?}: tuned {} vs default {}",
            w,
            run.final_latency(),
            default_latency(w)
        );
    }
}
