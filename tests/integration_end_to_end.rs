//! Heavyweight end-to-end flows: fine-tune real (tiny) models and drive
//! the full constrained-decoding pipelines.

use lm4db::codegen::{enumerate_programs, generate_tasks, run_pipeline, Synthesizer};
use lm4db::corpus::{facts_from_table, make_domain, DomainKind};
use lm4db::neuraldb::{AllTemplatesExtractor, ExactExtractor, NeuralDb};
use lm4db::sql::run_sql;
use lm4db::tensor::Rand;
use lm4db::text2sql::{generate, DecodeMode, SemanticParser, SqlTrie};
use lm4db::transformer::ModelConfig;

fn tiny_seq_cfg() -> ModelConfig {
    ModelConfig {
        max_seq_len: 96,
        ..ModelConfig::tiny(0)
    }
}

#[test]
fn constrained_text2sql_always_produces_executable_sql() {
    let d = make_domain(DomainKind::Students, 20, 21);
    let cat = d.catalog();
    let train = generate(&d, 24, 1);
    let trie = SqlTrie::for_domain(&d);
    let mut parser = SemanticParser::new(tiny_seq_cfg(), &train, trie, 5, 700);
    parser.fit(&train, 3, 8, 3e-3);
    for ex in generate(&d, 6, 99) {
        let pred = parser.predict(&ex.question, DecodeMode::Constrained);
        let sql = pred.sql.expect("constrained decoding must complete");
        assert!(run_sql(&sql, &cat).is_ok(), "not executable: {sql}");
    }
}

#[test]
fn constrained_codegen_always_produces_runnable_programs() {
    let d = make_domain(DomainKind::Flights, 20, 22);
    let cat = d.catalog();
    let tasks = generate_tasks(&d, 18, 1);
    let programs = enumerate_programs(&d);
    let mut synth = Synthesizer::new(tiny_seq_cfg(), &tasks, &programs, 6);
    synth.fit(&tasks, 3, 8, 3e-3);
    for t in tasks.iter().take(4) {
        let s = synth.synthesize_constrained(&t.instruction, &cat);
        let p = s.pipeline.expect("constrained synthesis must complete");
        assert!(run_pipeline(&p, &cat).is_ok());
    }
}

#[test]
fn neuraldb_agrees_with_sql_on_counts() {
    // The same data queried two ways: through SQL over the table, and
    // through the fact store built from that table's sentences.
    let d = make_domain(DomainKind::Employees, 25, 23);
    let cat = d.catalog();
    let mut rng = Rand::seeded(2);
    let facts = facts_from_table(&d.table, &d.key_col, 0.0, &mut rng);
    let db = NeuralDb::ingest(
        facts.into_iter().map(|f| f.text).collect(),
        &mut ExactExtractor,
    );
    for v in d.distinct_text_values("dept") {
        let sql = run_sql(
            &format!("SELECT COUNT(*) FROM employees WHERE dept = '{v}'"),
            &cat,
        )
        .unwrap();
        let expected = match sql.rows[0][0] {
            lm4db::sql::Value::Int(n) => n as usize,
            _ => unreachable!(),
        };
        assert_eq!(db.count("dept", &v), expected, "dept {v}");
    }
}

#[test]
fn neuraldb_extreme_matches_sql_order_by() {
    let d = make_domain(DomainKind::Employees, 25, 24);
    let cat = d.catalog();
    let mut rng = Rand::seeded(3);
    let facts = facts_from_table(&d.table, &d.key_col, 0.5, &mut rng);
    let db = NeuralDb::ingest(
        facts.into_iter().map(|f| f.text).collect(),
        &mut AllTemplatesExtractor,
    );
    let sql = run_sql(
        "SELECT name FROM employees ORDER BY salary DESC LIMIT 1",
        &cat,
    )
    .unwrap();
    let expected = match &sql.rows[0][0] {
        lm4db::sql::Value::Str(s) => s.clone(),
        _ => unreachable!(),
    };
    // Ties on salary make multiple answers legal; check the value matches.
    let got = db.extreme("salary", true).expect("no extreme");
    let got_val = db.lookup(got, "salary").unwrap();
    let expected_val = db.lookup(&expected, "salary").unwrap();
    assert_eq!(got_val, expected_val);
}
