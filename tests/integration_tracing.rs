//! Integration coverage for the level-2 flight recorder (DESIGN.md §5e).
//!
//! Two angles:
//!
//! * an in-process serving run at `LM4DB_TRACE=2` must yield a timeline and
//!   Chrome trace in which every request's lifecycle (`serve/submit` →
//!   `serve/admit` → `serve/retire`) is visible, and
//! * a **panic post-mortem**: a subprocess with requests in flight is
//!   crashed on purpose; the panic hook must leave a parseable crash dump
//!   (`LM4DB_TRACE_DUMP`) containing the metrics registry and the in-flight
//!   request's events.

use std::process::Command;

use lm4db::obs;
use lm4db::serve::{Engine, Request};
use lm4db::tokenize::BOS;
use lm4db::transformer::{GptModel, ModelConfig};
use serde_json::Value;

/// Child half of the post-mortem test. Inert unless the parent sets
/// `LM4DB_CRASH_CHILD=1`: it puts two requests in flight on a serving
/// engine and then panics mid-workload, so the dump must capture events
/// that carry those requests' ids.
#[test]
fn crash_dump_child() {
    if std::env::var("LM4DB_CRASH_CHILD").as_deref() != Ok("1") {
        return;
    }
    let model = GptModel::new(ModelConfig::test(), 7);
    let mut engine = Engine::new(&model);
    engine.submit(Request::greedy(vec![BOS, 10, 11], 8, usize::MAX));
    engine.submit(Request::greedy(vec![BOS, 20, 21], 8, usize::MAX));
    engine.step();
    panic!("induced crash with requests in flight");
}

#[test]
fn panic_produces_parseable_crash_dump() {
    let dump = std::env::temp_dir().join(format!("lm4db-crash-test-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&dump);
    let exe = std::env::current_exe().expect("current test binary");
    let out = Command::new(&exe)
        .args(["crash_dump_child", "--exact", "--nocapture"])
        .env("LM4DB_CRASH_CHILD", "1")
        .env("LM4DB_TRACE", "2")
        .env("LM4DB_TRACE_DUMP", &dump)
        .output()
        .expect("spawn child test");
    assert!(
        !out.status.success(),
        "child was supposed to panic:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let raw = std::fs::read_to_string(&dump).unwrap_or_else(|e| {
        panic!(
            "panic hook left no dump at {}: {e}\nchild stderr:\n{}",
            dump.display(),
            String::from_utf8_lossy(&out.stderr)
        )
    });
    let _ = std::fs::remove_file(&dump);
    let root = serde_json::parse_value(&raw).expect("crash dump must be valid JSON");

    // The dump explains itself: the panic message, the metrics registry,
    // and the flight recorder's Chrome trace.
    match root.get("reason") {
        Some(Value::Str(r)) => assert!(r.contains("induced crash"), "reason was {r:?}"),
        other => panic!("dump missing reason: {other:?}"),
    }
    assert!(root.get("registry").is_some(), "dump missing registry");
    let events = match root.get("trace").and_then(|t| t.get("traceEvents")) {
        Some(Value::Array(a)) => a.clone(),
        other => panic!("dump missing trace events: {other:?}"),
    };
    assert!(!events.is_empty(), "crash trace must be non-empty");

    // Request ids in a fresh process start at 0; both in-flight requests
    // must have reached the trace, attributed by id.
    let req_of = |e: &Value| match e.get("args").and_then(|a| a.get("req")) {
        Some(Value::Int(i)) => Some(*i),
        Some(Value::UInt(u)) => Some(*u as i64),
        _ => None,
    };
    for want in [0i64, 1] {
        assert!(
            events.iter().any(|e| req_of(e) == Some(want)),
            "no event in the crash dump is attributed to request {want}"
        );
    }
    // And the lifecycle instants for the admitted requests are present.
    let names: Vec<String> = events
        .iter()
        .filter_map(|e| match e.get("name") {
            Some(Value::Str(s)) => Some(s.clone()),
            _ => None,
        })
        .collect();
    for want in ["serve/submit", "serve/admit", "serve_step"] {
        assert!(
            names.iter().any(|n| n == want),
            "crash trace has no {want} event; names seen: {names:?}"
        );
    }
}

/// An in-process serving run at level 2: the timeline and breakdown must
/// attribute work to every request the engine served.
#[test]
fn serve_run_yields_request_timeline() {
    let model = GptModel::new(ModelConfig::test(), 7);
    obs::set_level(2);
    obs::flight_reset();
    let mut engine = Engine::new(&model);
    let first = engine.submit(Request::greedy(vec![BOS, 10, 11], 4, usize::MAX));
    let second = engine.submit(Request::greedy(vec![BOS, 20, 21], 4, usize::MAX));
    while engine.step() {}
    let trace = obs::flight_snapshot();
    obs::set_level(0);

    assert_eq!(trace.requests(), vec![first, second]);
    let timeline = trace.to_timeline();
    for id in [first, second] {
        assert!(
            timeline.contains(&format!("i serve/submit req={id}")),
            "timeline missing submit for {id}:\n{timeline}"
        );
        assert!(
            timeline.contains(&format!("i serve/retire req={id}")),
            "timeline missing retire for {id}:\n{timeline}"
        );
        // The per-request breakdown attributes the KV feed work.
        let phases = &trace.breakdown()[&Some(id)];
        assert!(
            phases.contains_key("kv/feed_all"),
            "no feed phase for {id}: {phases:?}"
        );
    }
}
