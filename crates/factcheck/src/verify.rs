//! Claim verification: map the claim to a query, execute it, and compare
//! the asserted value with the computed one.

use lm4db_corpus::Domain;

use crate::claims::{true_value, Claim};
use crate::mapper::ClaimMapper;

/// The verdict on one claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The mapped query's result matches the claimed value.
    Supported,
    /// The mapped query's result contradicts the claimed value.
    Refuted,
    /// The claim could not be mapped to a query.
    Unverifiable,
}

/// Extracts the asserted numeric value: the last number in the claim text.
pub fn extract_claimed_value(text: &str) -> Option<f64> {
    text.split_whitespace()
        .rev()
        .find_map(|w| w.parse::<f64>().ok())
}

/// Relative/absolute tolerance for value comparison (AVG values are
/// rendered with one decimal).
fn values_match(claimed: f64, actual: f64) -> bool {
    let abs = (claimed - actual).abs();
    abs < 0.051 || abs / actual.abs().max(1e-9) < 0.001
}

/// Verifies one claim text against the domain's data.
pub fn verify(domain: &Domain, text: &str, mapper: &mut dyn ClaimMapper) -> Verdict {
    let Some(claimed) = extract_claimed_value(text) else {
        return Verdict::Unverifiable;
    };
    let Some(meaning) = mapper.map(domain, text) else {
        return Verdict::Unverifiable;
    };
    let Some(actual) = true_value(domain, &meaning) else {
        return Verdict::Unverifiable;
    };
    let actual = (actual * 10.0).round() / 10.0;
    if values_match(claimed, actual) {
        Verdict::Supported
    } else {
        Verdict::Refuted
    }
}

/// Accuracy of a mapper's verdicts over labeled claims. `Unverifiable`
/// counts as wrong (the checker must commit).
pub fn evaluate(domain: &Domain, claims: &[Claim], mapper: &mut dyn ClaimMapper) -> f32 {
    if claims.is_empty() {
        return 0.0;
    }
    let correct = claims
        .iter()
        .filter(|c| {
            let v = verify(domain, &c.text, mapper);
            (v == Verdict::Supported) == c.is_true && v != Verdict::Unverifiable
        })
        .count();
    correct as f32 / claims.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::claims::generate_claims;
    use crate::mapper::KeywordMapper;
    use lm4db_corpus::{make_domain, DomainKind};

    fn domain() -> Domain {
        make_domain(DomainKind::Employees, 30, 7)
    }

    #[test]
    fn extracts_trailing_values() {
        assert_eq!(extract_claimed_value("the count is 42"), Some(42.0));
        assert_eq!(extract_claimed_value("the avg is 87.5"), Some(87.5));
        assert_eq!(extract_claimed_value("no numbers here"), None);
    }

    #[test]
    fn keyword_verifier_is_accurate_on_canonical_claims() {
        let d = domain();
        let claims = generate_claims(&d, 30, 0.0, 1);
        let acc = evaluate(&d, &claims, &mut KeywordMapper);
        assert!(acc > 0.85, "canonical verification accuracy {acc}");
    }

    #[test]
    fn paraphrases_break_the_keyword_verifier() {
        let d = domain();
        let canonical = generate_claims(&d, 30, 0.0, 2);
        let paraphrased = generate_claims(&d, 30, 1.0, 2);
        let acc_canon = evaluate(&d, &canonical, &mut KeywordMapper);
        let acc_para = evaluate(&d, &paraphrased, &mut KeywordMapper);
        assert!(
            acc_para < acc_canon,
            "paraphrase should hurt keywords: {acc_para} vs {acc_canon}"
        );
    }

    #[test]
    fn supported_and_refuted_verdicts_fire() {
        let d = domain();
        let claims = generate_claims(&d, 10, 0.0, 3);
        let mut saw_supported = false;
        let mut saw_refuted = false;
        for c in &claims {
            match verify(&d, &c.text, &mut KeywordMapper) {
                Verdict::Supported => saw_supported = true,
                Verdict::Refuted => saw_refuted = true,
                Verdict::Unverifiable => {}
            }
        }
        assert!(saw_supported && saw_refuted);
    }

    #[test]
    fn unmappable_claims_are_unverifiable() {
        let d = domain();
        assert_eq!(
            verify(&d, "the vibes of the team are good 7", &mut KeywordMapper),
            Verdict::Unverifiable
        );
    }
}
