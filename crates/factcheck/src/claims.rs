//! Claim generation: natural-language statements about aggregate properties
//! of a table, half of them deliberately wrong — the evaluation setup of
//! AggChecker (Jo et al., SIGMOD 2019), where text summaries of relational
//! data are verified query-by-query.

use lm4db_corpus::Domain;
use lm4db_sql::{run_sql, Value};
use lm4db_tensor::Rand;

/// The aggregate a claim asserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimAgg {
    /// Row count (optionally filtered).
    Count,
    /// Average of a numeric column.
    Avg,
    /// Maximum of a numeric column.
    Max,
    /// Minimum of a numeric column.
    Min,
}

impl ClaimAgg {
    /// All aggregates.
    pub fn all() -> [ClaimAgg; 4] {
        [ClaimAgg::Count, ClaimAgg::Avg, ClaimAgg::Max, ClaimAgg::Min]
    }

    /// SQL function name.
    pub fn sql_name(&self) -> &'static str {
        match self {
            ClaimAgg::Count => "COUNT",
            ClaimAgg::Avg => "AVG",
            ClaimAgg::Max => "MAX",
            ClaimAgg::Min => "MIN",
        }
    }

    /// Canonical NL phrasing.
    pub fn phrase(&self) -> &'static str {
        match self {
            ClaimAgg::Count => "number of",
            ClaimAgg::Avg => "average",
            ClaimAgg::Max => "maximum",
            ClaimAgg::Min => "minimum",
        }
    }

    /// Paraphrases (non-canonical phrasings).
    pub fn paraphrases(&self) -> &'static [&'static str] {
        match self {
            ClaimAgg::Count => &["count of", "total number of"],
            ClaimAgg::Avg => &["mean", "typical"],
            ClaimAgg::Max => &["highest", "largest", "top"],
            ClaimAgg::Min => &["lowest", "smallest"],
        }
    }
}

/// The structured meaning of a claim (its gold query).
#[derive(Debug, Clone, PartialEq)]
pub struct ClaimMeaning {
    /// Aggregate function.
    pub agg: ClaimAgg,
    /// Numeric column (ignored for COUNT).
    pub num_col: Option<String>,
    /// Optional equality filter `(text column, value)`.
    pub filter: Option<(String, String)>,
}

impl ClaimMeaning {
    /// Renders the gold SQL for this meaning over `table`.
    pub fn to_sql(&self, table: &str) -> String {
        let select = match self.agg {
            ClaimAgg::Count => "COUNT(*)".to_string(),
            _ => format!(
                "{}({})",
                self.agg.sql_name(),
                self.num_col.as_deref().unwrap_or("?")
            ),
        };
        match &self.filter {
            Some((col, val)) => {
                format!("SELECT {select} FROM {table} WHERE ({col} = '{val}')")
            }
            None => format!("SELECT {select} FROM {table}"),
        }
    }
}

/// A generated claim with its gold verdict.
#[derive(Debug, Clone)]
pub struct Claim {
    /// The claim sentence.
    pub text: String,
    /// The asserted numeric value.
    pub claimed_value: f64,
    /// The structured meaning (for diagnostic evaluation).
    pub meaning: ClaimMeaning,
    /// Whether the claim is actually true of the data.
    pub is_true: bool,
}

/// Evaluates a meaning against the domain's data; `None` when the query
/// returns NULL (empty filter group).
pub fn true_value(domain: &Domain, meaning: &ClaimMeaning) -> Option<f64> {
    let cat = domain.catalog();
    let sql = meaning.to_sql(&domain.table.name);
    let rs = run_sql(&sql, &cat).ok()?;
    match rs.rows.first().and_then(|r| r.first()) {
        Some(Value::Int(i)) => Some(*i as f64),
        Some(Value::Float(f)) => Some(*f),
        _ => None,
    }
}

fn render_claim(
    domain: &Domain,
    meaning: &ClaimMeaning,
    value: f64,
    paraphrase: bool,
    rng: &mut Rand,
) -> String {
    let entity = &domain.entity;
    let agg_word = if paraphrase {
        let ps = meaning.agg.paraphrases();
        ps[rng.below(ps.len())]
    } else {
        meaning.agg.phrase()
    };
    let value_text = if value.fract() == 0.0 {
        format!("{}", value as i64)
    } else {
        format!("{value:.1}")
    };
    let scope = match &meaning.filter {
        Some((col, val)) => format!("{entity}s whose {col} is {val}"),
        None => format!("all {entity}s"),
    };
    match meaning.agg {
        ClaimAgg::Count => format!("the {agg_word} {scope} is {value_text}"),
        _ => format!(
            "the {agg_word} {} of {scope} is {value_text}",
            meaning.num_col.as_deref().unwrap_or("")
        ),
    }
}

/// Generates `n` claims over `domain`; alternating true/false, with
/// paraphrased phrasing at `paraphrase_rate`.
pub fn generate_claims(domain: &Domain, n: usize, paraphrase_rate: f32, seed: u64) -> Vec<Claim> {
    let mut rng = Rand::seeded(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let agg = ClaimAgg::all()[rng.below(4)];
        let num_col = if agg == ClaimAgg::Count {
            None
        } else {
            Some(domain.num_cols[rng.below(domain.num_cols.len())].clone())
        };
        let filter = if rng.uniform() < 0.5 {
            let col = domain.text_cols[rng.below(domain.text_cols.len())].clone();
            let vals = domain.distinct_text_values(&col);
            if vals.is_empty() {
                None
            } else {
                let v = vals[rng.below(vals.len())].clone();
                Some((col, v))
            }
        } else {
            None
        };
        let meaning = ClaimMeaning {
            agg,
            num_col,
            filter,
        };
        let Some(truth) = true_value(domain, &meaning) else {
            continue;
        };
        let truth = (truth * 10.0).round() / 10.0;
        let make_true = out.len() % 2 == 0;
        let value = if make_true {
            truth
        } else {
            // A wrong value: off by 20-80%, never equal to the truth.
            let factor = 1.2 + rng.uniform() as f64 * 0.6;
            let wrong = if rng.uniform() < 0.5 {
                truth * factor
            } else {
                truth / factor
            };
            let wrong = (wrong * 10.0).round() / 10.0;
            if (wrong - truth).abs() < 0.05 {
                truth + 5.0
            } else {
                wrong
            }
        };
        let paraphrase = rng.uniform() < paraphrase_rate;
        out.push(Claim {
            text: render_claim(domain, &meaning, value, paraphrase, &mut rng),
            claimed_value: value,
            meaning,
            is_true: make_true,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm4db_corpus::{make_domain, DomainKind};

    fn domain() -> Domain {
        make_domain(DomainKind::Employees, 30, 7)
    }

    #[test]
    fn claims_alternate_truth_labels() {
        let claims = generate_claims(&domain(), 20, 0.0, 1);
        assert_eq!(claims.len(), 20);
        assert_eq!(claims.iter().filter(|c| c.is_true).count(), 10);
    }

    #[test]
    fn true_claims_match_executed_values() {
        let d = domain();
        for c in generate_claims(&d, 20, 0.0, 2) {
            let truth = true_value(&d, &c.meaning).unwrap();
            let truth = (truth * 10.0).round() / 10.0;
            if c.is_true {
                assert!(
                    (c.claimed_value - truth).abs() < 1e-6,
                    "true claim value mismatch: {} vs {truth}",
                    c.claimed_value
                );
            } else {
                assert!(
                    (c.claimed_value - truth).abs() > 1e-6,
                    "false claim accidentally true"
                );
            }
        }
    }

    #[test]
    fn meanings_render_executable_sql() {
        let d = domain();
        let cat = d.catalog();
        for c in generate_claims(&d, 16, 0.0, 3) {
            let sql = c.meaning.to_sql(&d.table.name);
            assert!(run_sql(&sql, &cat).is_ok(), "bad gold query: {sql}");
        }
    }

    #[test]
    fn claim_text_mentions_value_and_scope() {
        let d = domain();
        for c in generate_claims(&d, 10, 0.0, 4) {
            assert!(!c.text.is_empty());
            if let Some((_, v)) = &c.meaning.filter {
                assert!(c.text.contains(v), "filter value missing: {}", c.text);
            }
        }
    }

    #[test]
    fn paraphrased_claims_avoid_canonical_phrase() {
        let d = domain();
        let claims = generate_claims(&d, 30, 1.0, 5);
        let canonical = claims
            .iter()
            .filter(|c| c.text.contains(c.meaning.agg.phrase()))
            .count();
        assert!(
            canonical < claims.len() / 2,
            "too many canonical phrasings under full paraphrase"
        );
    }
}
