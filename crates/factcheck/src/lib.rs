//! # lm4db-factcheck
//!
//! Data-driven **fact checking** (§2.5): verify natural-language claims
//! about aggregate properties of a relational table by mapping each claim
//! to a candidate query, executing it, and comparing values — the
//! AggChecker pipeline, with both keyword evidence and LM evidence for the
//! claim-to-query mapping (the Scrutinizer refinement).

#![warn(missing_docs)]

pub mod claims;
pub mod mapper;
pub mod summary;
pub mod verify;

pub use claims::{generate_claims, true_value, Claim, ClaimAgg, ClaimMeaning};
pub use mapper::{ClaimMapper, KeywordMapper, LmMapper};
pub use summary::{synthetic_summary, verify_summary, SentenceVerdict, SummaryReport};
pub use verify::{evaluate, extract_claimed_value, verify, Verdict};
