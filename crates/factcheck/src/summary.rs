//! Whole-summary verification — AggChecker's actual interface: a text
//! summary contains several claim sentences; the checker verifies each and
//! reports per-sentence verdicts plus an overall assessment.

use lm4db_corpus::Domain;
use lm4db_tensor::Rand;

use crate::claims::{generate_claims, Claim};
use crate::mapper::ClaimMapper;
use crate::verify::{verify, Verdict};

/// The verdict for one sentence of a summary.
#[derive(Debug, Clone)]
pub struct SentenceVerdict {
    /// The sentence text.
    pub sentence: String,
    /// Its verdict.
    pub verdict: Verdict,
}

/// Verification report for a whole summary.
#[derive(Debug, Clone)]
pub struct SummaryReport {
    /// Per-sentence verdicts, in order.
    pub sentences: Vec<SentenceVerdict>,
}

impl SummaryReport {
    /// Number of refuted sentences.
    pub fn refuted_count(&self) -> usize {
        self.sentences
            .iter()
            .filter(|s| s.verdict == Verdict::Refuted)
            .count()
    }

    /// Number of sentences that could not be checked.
    pub fn unverifiable_count(&self) -> usize {
        self.sentences
            .iter()
            .filter(|s| s.verdict == Verdict::Unverifiable)
            .count()
    }

    /// True when every checkable sentence is supported.
    pub fn is_clean(&self) -> bool {
        self.refuted_count() == 0
    }

    /// Renders the report with markers per sentence.
    pub fn render(&self) -> String {
        self.sentences
            .iter()
            .map(|s| {
                let marker = match s.verdict {
                    Verdict::Supported => "[ok]",
                    Verdict::Refuted => "[WRONG]",
                    Verdict::Unverifiable => "[?]",
                };
                format!("{marker} {}", s.sentence)
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Splits a summary into claim sentences and verifies each against the
/// domain's data. Sentences are separated by ` . ` (period with spaces), so
/// decimal values like `87.5` inside a claim are not split.
pub fn verify_summary(
    domain: &Domain,
    summary: &str,
    mapper: &mut dyn ClaimMapper,
) -> SummaryReport {
    let sentences = summary
        .split(" . ")
        .map(|s| s.trim().trim_end_matches(" .").trim_end_matches('.').trim())
        .filter(|s| !s.is_empty())
        .map(|s| SentenceVerdict {
            sentence: s.to_string(),
            verdict: verify(domain, s, mapper),
        })
        .collect();
    SummaryReport { sentences }
}

/// Builds a synthetic summary text from `n` claims (with the given fraction
/// of false ones, as generated), returning `(summary, claims)` so tests can
/// align verdicts with ground truth.
pub fn synthetic_summary(domain: &Domain, n: usize, seed: u64) -> (String, Vec<Claim>) {
    let claims = generate_claims(domain, n, 0.0, seed);
    let mut rng = Rand::seeded(seed ^ 0x5a);
    let mut ordered = claims.clone();
    rng.shuffle(&mut ordered);
    let text = ordered
        .iter()
        .map(|c| c.text.clone())
        .collect::<Vec<_>>()
        .join(" . ");
    (format!("{text} ."), ordered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::KeywordMapper;
    use lm4db_corpus::{make_domain, DomainKind};

    fn domain() -> Domain {
        make_domain(DomainKind::Employees, 30, 7)
    }

    #[test]
    fn report_flags_false_sentences() {
        let d = domain();
        let (summary, claims) = synthetic_summary(&d, 10, 3);
        let report = verify_summary(&d, &summary, &mut KeywordMapper);
        assert_eq!(report.sentences.len(), claims.len());
        // Half the claims are false by construction; most should be caught.
        let false_count = claims.iter().filter(|c| !c.is_true).count();
        assert!(
            report.refuted_count() >= false_count.saturating_sub(2),
            "caught {} of {} false claims",
            report.refuted_count(),
            false_count
        );
    }

    #[test]
    fn verdicts_align_with_ground_truth_per_sentence() {
        let d = domain();
        let (summary, claims) = synthetic_summary(&d, 8, 5);
        let report = verify_summary(&d, &summary, &mut KeywordMapper);
        let mut agree = 0;
        for (sv, claim) in report.sentences.iter().zip(claims.iter()) {
            assert_eq!(sv.sentence, claim.text);
            if (sv.verdict == Verdict::Supported) == claim.is_true
                && sv.verdict != Verdict::Unverifiable
            {
                agree += 1;
            }
        }
        assert!(agree >= 6, "only {agree}/8 verdicts agree with truth");
    }

    #[test]
    fn clean_summary_of_true_claims() {
        let d = domain();
        // Take only the true claims.
        let claims = generate_claims(&d, 12, 0.0, 9);
        let text = claims
            .iter()
            .filter(|c| c.is_true)
            .map(|c| c.text.clone())
            .collect::<Vec<_>>()
            .join(" . ");
        let report = verify_summary(&d, &format!("{text} ."), &mut KeywordMapper);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn render_marks_each_sentence() {
        let d = domain();
        let (summary, _) = synthetic_summary(&d, 6, 11);
        let report = verify_summary(&d, &summary, &mut KeywordMapper);
        let rendered = report.render();
        assert_eq!(rendered.lines().count(), report.sentences.len());
        assert!(rendered.contains("[ok]") || rendered.contains("[WRONG]"));
    }

    #[test]
    fn empty_summary_is_trivially_clean() {
        let d = domain();
        let report = verify_summary(&d, "  ", &mut KeywordMapper);
        assert!(report.sentences.is_empty());
        assert!(report.is_clean());
    }
}
