//! Claim-to-query mapping: recovering the structured meaning (aggregate,
//! column, filter) from claim text. Two mappers, mirroring AggChecker's
//! keyword evidence vs. Scrutinizer's learned evidence:
//!
//! * [`KeywordMapper`] — exact canonical-phrase matching;
//! * [`LmMapper`] — a fine-tuned LM predicts the aggregate (robust to
//!   paraphrase), columns/values are schema-linked from the text.

use lm4db_corpus::Domain;
use lm4db_lm::{FineTunedClassifier, TextClassifier};
use lm4db_tokenize::Bpe;
use lm4db_transformer::ModelConfig;

use crate::claims::{Claim, ClaimAgg, ClaimMeaning};

/// Anything that maps claim text to a candidate meaning.
pub trait ClaimMapper {
    /// Recovers the meaning, or `None` when the claim is unmappable.
    fn map(&mut self, domain: &Domain, text: &str) -> Option<ClaimMeaning>;
}

/// Schema linking shared by both mappers: find a numeric column, then an
/// optional `whose <col> is <val>` filter.
fn link_schema(domain: &Domain, text: &str) -> (Option<String>, Option<(String, String)>) {
    let words: Vec<&str> = text.split_whitespace().collect();
    let num_col = domain
        .num_cols
        .iter()
        .find(|c| words.contains(&c.as_str()))
        .cloned();
    let mut filter = None;
    for col in &domain.text_cols {
        if !words.contains(&col.as_str()) {
            continue;
        }
        let vals = domain.distinct_text_values(col);
        if let Some(v) = words.iter().find(|w| vals.iter().any(|v| v == **w)) {
            filter = Some((col.clone(), (*v).to_string()));
            break;
        }
    }
    (num_col, filter)
}

/// Canonical-phrase keyword mapper.
pub struct KeywordMapper;

impl ClaimMapper for KeywordMapper {
    fn map(&mut self, domain: &Domain, text: &str) -> Option<ClaimMeaning> {
        let agg = if text.contains("number of") {
            ClaimAgg::Count
        } else if text.contains("average") {
            ClaimAgg::Avg
        } else if text.contains("maximum") {
            ClaimAgg::Max
        } else if text.contains("minimum") {
            ClaimAgg::Min
        } else {
            return None; // paraphrases defeat the keyword mapper
        };
        let (num_col, filter) = link_schema(domain, text);
        if agg != ClaimAgg::Count && num_col.is_none() {
            return None;
        }
        Some(ClaimMeaning {
            agg,
            num_col: if agg == ClaimAgg::Count {
                None
            } else {
                num_col
            },
            filter,
        })
    }
}

/// LM-evidence mapper: a fine-tuned classifier predicts the aggregate from
/// the full claim text, making the mapping robust to paraphrased phrasing.
pub struct LmMapper {
    agg_clf: FineTunedClassifier<Bpe>,
}

impl LmMapper {
    /// Trains the aggregate classifier on labeled claims (use claims
    /// generated with a high paraphrase rate so the model sees synonyms).
    pub fn train(cfg: ModelConfig, train: &[Claim], epochs: usize, seed: u64) -> Self {
        let bpe = Bpe::train(train.iter().map(|c| c.text.as_str()), 600);
        let labels: Vec<String> = ClaimAgg::all()
            .iter()
            .map(|a| a.sql_name().to_lowercase())
            .collect();
        let mut agg_clf = FineTunedClassifier::new(cfg, bpe, labels, seed);
        let examples: Vec<(String, usize)> = train
            .iter()
            .map(|c| {
                let label = ClaimAgg::all()
                    .iter()
                    .position(|a| *a == c.meaning.agg)
                    .unwrap();
                (c.text.clone(), label)
            })
            .collect();
        agg_clf.fit(&examples, epochs, 8, 2e-3);
        LmMapper { agg_clf }
    }
}

impl ClaimMapper for LmMapper {
    fn map(&mut self, domain: &Domain, text: &str) -> Option<ClaimMeaning> {
        let agg = ClaimAgg::all()[self.agg_clf.classify(text)];
        let (num_col, filter) = link_schema(domain, text);
        let num_col = if agg == ClaimAgg::Count {
            None
        } else {
            // Fall back to the first numeric column if linking failed; the
            // verifier will then likely refute, which is the safe direction.
            num_col.or_else(|| domain.num_cols.first().cloned())
        };
        Some(ClaimMeaning {
            agg,
            num_col,
            filter,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::claims::generate_claims;
    use lm4db_corpus::{make_domain, DomainKind};

    fn domain() -> Domain {
        make_domain(DomainKind::Employees, 30, 7)
    }

    #[test]
    fn keyword_mapper_recovers_canonical_meanings() {
        let d = domain();
        let mut m = KeywordMapper;
        let claims = generate_claims(&d, 20, 0.0, 1);
        let mut correct = 0;
        for c in &claims {
            if m.map(&d, &c.text) == Some(c.meaning.clone()) {
                correct += 1;
            }
        }
        assert!(
            correct as f32 / claims.len() as f32 > 0.9,
            "keyword mapper only got {correct}/{}",
            claims.len()
        );
    }

    #[test]
    fn keyword_mapper_fails_on_paraphrases() {
        let d = domain();
        let mut m = KeywordMapper;
        // "mean salary" is a paraphrase of "average salary".
        assert_eq!(m.map(&d, "the mean salary of all employees is 80"), None);
        assert_eq!(m.map(&d, "the highest age of all employees is 60"), None);
    }

    #[test]
    fn lm_mapper_handles_paraphrases_after_training() {
        let d = domain();
        // Train on heavily paraphrased claims (labels come from generation).
        let train = generate_claims(&d, 60, 0.7, 2);
        let cfg = ModelConfig {
            max_seq_len: 32,
            ..ModelConfig::test()
        };
        let mut m = LmMapper::train(cfg, &train, 15, 3);
        // Held-out paraphrased claims: the aggregate should be recovered
        // more often than the keyword mapper manages (which is ~0 on pure
        // paraphrases for the aggregate word).
        let test = generate_claims(&d, 20, 1.0, 9);
        let mut lm_agg_correct = 0;
        let mut kw_mapped = 0;
        let mut kw = KeywordMapper;
        for c in &test {
            if let Some(meaning) = m.map(&d, &c.text) {
                if meaning.agg == c.meaning.agg {
                    lm_agg_correct += 1;
                }
            }
            if kw.map(&d, &c.text).is_some() {
                kw_mapped += 1;
            }
        }
        assert!(
            lm_agg_correct > kw_mapped,
            "LM mapper ({lm_agg_correct}) should beat keyword mapper ({kw_mapped}) on paraphrases"
        );
    }

    #[test]
    fn schema_linking_finds_filters() {
        let d = domain();
        let mut m = KeywordMapper;
        let vals = d.distinct_text_values("dept");
        let v = &vals[0];
        let text = format!("the number of employees whose dept is {v} is 4");
        let meaning = m.map(&d, &text).unwrap();
        assert_eq!(meaning.filter, Some(("dept".to_string(), v.clone())));
    }
}
