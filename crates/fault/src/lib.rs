//! # lm4db-fault
//!
//! Deterministic, seeded fault injection for the LM4DB stack — the chaos
//! half of the fault-tolerance story (DESIGN.md §5f). Production code is
//! instrumented with [`point`] calls at the places where real deployments
//! fail (a kernel on a pool thread, a request's feed pass, a synthesized
//! program's validation); the injector decides, purely as a function of a
//! seed and the call site, whether that point panics, stalls, or proceeds.
//! Recovery paths — pool task poisoning, request quarantine and retry,
//! admission shedding, the codegen circuit breaker — are then exercised by
//! reproducible chaos tests instead of hand-written mocks.
//!
//! **Arming.** `LM4DB_FAULTS=<seed>:<rate>` arms the injector from the
//! environment (e.g. `LM4DB_FAULTS=42:0.05` for a 5% fault rate at seed
//! 42), or [`configure`] arms it programmatically. Unset, every
//! instrumentation point costs one relaxed atomic load plus a branch —
//! the same tri-state-atomic pattern as `LM4DB_TRACE`, with the same
//! ≤ 1% overhead contract (pinned by `expO_fault_tolerance`).
//!
//! **Determinism.** A decision is a pure function of `(seed, site, salt)`
//! — no global RNG stream, no clock — so it does not depend on thread
//! interleaving: the same seed produces the same faults at any
//! `LM4DB_THREADS`, and a fixed-seed chaos run is exactly reproducible.
//! Callers choose the salt so that retries re-roll (a transient fault) and
//! distinct requests fault independently.
//!
//! # Examples
//!
//! ```
//! use lm4db_fault as fault;
//!
//! fault::configure(42, 1.0); // every instrumented point faults
//! assert!(fault::roll("doc/site", 7).is_some());
//! fault::configure(42, 0.0); // armed, but nothing fires
//! assert!(fault::roll("doc/site", 7).is_none());
//! fault::disarm();
//! assert!(!fault::armed());
//! ```

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Once;

/// Arming state: 0 = unresolved (consult `LM4DB_FAULTS` on first use),
/// 1 = disarmed, 2 = armed.
static STATE: AtomicU8 = AtomicU8::new(0);
/// The armed seed (valid only when `STATE == 2`).
static SEED: AtomicU64 = AtomicU64::new(0);
/// Fault probability as a fixed-point threshold in units of 2⁻³². A roll
/// fires when the decision hash's upper 32 bits fall below this.
static RATE_BITS: AtomicU32 = AtomicU32::new(0);
/// Monotonic dispatch ticket: lets call sites that run many times under
/// one name (pool task fan-outs) salt each dispatch distinctly. Increments
/// happen on the (serial) dispatching thread, so ticket numbers are
/// deterministic for a deterministic driver regardless of pool size.
static TICKET: AtomicU64 = AtomicU64::new(0);

/// What an armed instrumentation point has been told to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic with an `"injected fault at <site>"` message. Exercises the
    /// catch-unwind / quarantine / retry paths.
    Panic,
    /// Stall for a fixed busy-spin — a deterministic stand-in for a slow
    /// kernel or a descheduled worker. Exercises deadline and latency
    /// accounting without changing any result.
    Delay,
}

/// Whether the injector is armed. One relaxed atomic load plus a branch
/// after the first call — the entire disabled-path cost of a [`point`].
#[inline]
pub fn armed() -> bool {
    match STATE.load(Ordering::Relaxed) {
        0 => init_from_env(),
        s => s == 2,
    }
}

/// Arms the injector programmatically, overriding `LM4DB_FAULTS`.
/// `rate` is the per-point fault probability, clamped to `[0, 1]`.
pub fn configure(seed: u64, rate: f64) {
    SEED.store(seed, Ordering::Relaxed);
    RATE_BITS.store(rate_to_bits(rate), Ordering::Relaxed);
    STATE.store(2, Ordering::Relaxed);
}

/// Disarms the injector, overriding `LM4DB_FAULTS`.
pub fn disarm() {
    STATE.store(1, Ordering::Relaxed);
}

/// The armed seed (0 when disarmed) — experiments record it next to their
/// results so a chaos run can be replayed.
pub fn seed() -> u64 {
    if armed() {
        SEED.load(Ordering::Relaxed)
    } else {
        0
    }
}

fn rate_to_bits(rate: f64) -> u32 {
    (rate.clamp(0.0, 1.0) * 4_294_967_296.0).min(u32::MAX as f64) as u32
}

/// Parses `<seed>:<rate>` (e.g. `42:0.05`). A bare `<seed>` gets the
/// default 5% rate; garbage or an empty value means disarmed — never a
/// panic, faults must not be injectable by accident.
fn parse_spec(raw: &str) -> Option<(u64, f64)> {
    let v = raw.trim();
    if v.is_empty() {
        return None;
    }
    let (seed_s, rate_s) = match v.split_once(':') {
        Some((s, r)) => (s.trim(), Some(r.trim())),
        None => (v, None),
    };
    let seed = seed_s.parse::<u64>().ok()?;
    let rate = match rate_s {
        Some(r) => r.parse::<f64>().ok().filter(|r| (0.0..=1.0).contains(r))?,
        None => 0.05,
    };
    Some((seed, rate))
}

/// Resolves `LM4DB_FAULTS` exactly once; a racing [`configure`]/[`disarm`]
/// wins because only the unresolved state is replaced.
#[cold]
fn init_from_env() -> bool {
    let spec = std::env::var("LM4DB_FAULTS")
        .ok()
        .and_then(|v| parse_spec(&v));
    let new_state = match spec {
        Some((seed, rate)) => {
            SEED.store(seed, Ordering::Relaxed);
            RATE_BITS.store(rate_to_bits(rate), Ordering::Relaxed);
            2
        }
        None => 1,
    };
    let _ = STATE.compare_exchange(0, new_state, Ordering::Relaxed, Ordering::Relaxed);
    STATE.load(Ordering::Relaxed) == 2
}

/// FNV-1a over the site name: sites get independent fault streams.
fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// splitmix64 finalizer — one xorshift-multiply round trip that spreads
/// the mixed `(seed, site, salt)` bits uniformly.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The decision for `(site, salt)`: `None` (proceed), or a [`Fault`].
/// Pure — the same armed seed, site, and salt always roll the same way,
/// on any thread, in any order. Returns `None` when disarmed.
#[inline]
pub fn roll(site: &str, salt: u64) -> Option<Fault> {
    if !armed() {
        return None;
    }
    let seed = SEED.load(Ordering::Relaxed);
    let x = mix(mix(seed ^ fnv64(site)).wrapping_add(mix(salt)));
    if (x >> 32) as u32 >= RATE_BITS.load(Ordering::Relaxed) {
        None
    } else if x & 1 == 0 {
        Some(Fault::Panic)
    } else {
        Some(Fault::Delay)
    }
}

/// Spin iterations for an injected delay: long enough to register as a
/// slow kernel (~hundreds of µs), short enough that chaos suites stay
/// fast. A busy spin, not a sleep, so the stall is scheduler-independent.
const DELAY_SPINS: u32 = 200_000;

/// Executes an injected delay (also used directly by tests).
pub fn delay() {
    for _ in 0..DELAY_SPINS {
        std::hint::spin_loop();
    }
}

/// An instrumentation point. Disarmed this is one relaxed load plus a
/// branch; armed it rolls for `(site, salt)` and either proceeds, stalls,
/// or panics with `"injected fault at <site> (salt <salt>)"`. Every fired
/// fault is counted (`fault/injected`, and per-kind `fault/panics` /
/// `fault/delays`) and leaves a `fault_injected` instant in the flight
/// recorder, so a chaos run's trace shows exactly where chaos struck.
#[inline]
pub fn point(site: &'static str, salt: u64) {
    let Some(fault) = roll(site, salt) else {
        return;
    };
    lm4db_obs::counter_add("fault/injected", 1);
    lm4db_obs::instant("fault_injected");
    match fault {
        Fault::Panic => {
            lm4db_obs::counter_add("fault/panics", 1);
            panic!("injected fault at {site} (salt {salt})");
        }
        Fault::Delay => {
            lm4db_obs::counter_add("fault/delays", 1);
            delay();
        }
    }
}

/// A supervisory instrumentation point: rolls for `(site, salt)` like
/// [`point`], but returns the decision for the **caller** to enact
/// structurally instead of panicking or stalling this thread. This is how
/// control planes consume fault decisions — the router's replica-health
/// sweep maps `Panic` to "kill the replica" and `Delay` to "missed
/// heartbeat" — so one `LM4DB_FAULTS` spec drives thread-level chaos
/// (worker panics at `serve/feed`) and topology-level chaos (replica
/// loss) from the same seed. Fired decisions are counted
/// (`fault/injected`, `fault/probes`) and leave a `fault_probe` instant;
/// the disabled path is the same one-load-one-branch as [`point`].
#[inline]
pub fn probe(site: &'static str, salt: u64) -> Option<Fault> {
    let fault = roll(site, salt)?;
    lm4db_obs::counter_add("fault/injected", 1);
    lm4db_obs::counter_add("fault/probes", 1);
    lm4db_obs::instant("fault_probe");
    Some(fault)
}

/// A fresh dispatch ticket for salting repeated call sites.
pub fn ticket() -> u64 {
    TICKET.fetch_add(1, Ordering::Relaxed)
}

/// Whether a caught panic payload came from [`point`] — recovery code uses
/// this only for reporting; injected and organic panics take the same path.
pub fn is_injected(message: &str) -> bool {
    message.contains("injected fault at ")
}

/// Installs a panic hook that swallows injected-fault panics (they are
/// caught and handled by design; the default hook's per-panic backtrace
/// spam would drown chaos-test output) and forwards everything else to the
/// previously installed hook. Idempotent.
pub fn silence_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !is_injected(msg) {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Arming state is process-global; every test that touches it holds
    /// this lock so parallel test threads don't race.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disarmed_rolls_nothing() {
        let _l = LOCK.lock().unwrap();
        disarm();
        for salt in 0..1000 {
            assert_eq!(roll("test/site", salt), None);
        }
        assert_eq!(seed(), 0);
    }

    #[test]
    fn decisions_are_pure_functions_of_seed_site_salt() {
        let _l = LOCK.lock().unwrap();
        configure(7, 0.25);
        let first: Vec<Option<Fault>> = (0..512).map(|s| roll("a/site", s)).collect();
        let again: Vec<Option<Fault>> = (0..512).map(|s| roll("a/site", s)).collect();
        assert_eq!(first, again, "same (seed, site, salt) must roll the same");
        let fired = first.iter().flatten().count();
        // 512 rolls at 25%: expect ~128; a pure-but-degenerate hash would
        // give 0 or 512.
        assert!((64..=192).contains(&fired), "fired {fired}/512 at 25%");
        disarm();
    }

    #[test]
    fn sites_and_seeds_decorrelate() {
        let _l = LOCK.lock().unwrap();
        configure(7, 0.5);
        let a: Vec<_> = (0..256).map(|s| roll("site/a", s)).collect();
        let b: Vec<_> = (0..256).map(|s| roll("site/b", s)).collect();
        assert_ne!(a, b, "different sites must have independent streams");
        configure(8, 0.5);
        let a2: Vec<_> = (0..256).map(|s| roll("site/a", s)).collect();
        assert_ne!(a, a2, "different seeds must have independent streams");
        disarm();
    }

    #[test]
    fn rate_bounds_behave() {
        let _l = LOCK.lock().unwrap();
        configure(3, 0.0);
        assert!((0..512).all(|s| roll("x", s).is_none()), "rate 0 fires");
        configure(3, 1.0);
        assert!((0..512).all(|s| roll("x", s).is_some()), "rate 1 skips");
        disarm();
    }

    #[test]
    fn both_fault_kinds_occur() {
        let _l = LOCK.lock().unwrap();
        configure(11, 1.0);
        let kinds: Vec<Fault> = (0..64).filter_map(|s| roll("k", s)).collect();
        assert!(kinds.contains(&Fault::Panic));
        assert!(kinds.contains(&Fault::Delay));
        disarm();
    }

    #[test]
    fn point_panics_with_recognizable_message() {
        let _l = LOCK.lock().unwrap();
        configure(1, 1.0);
        // Find a salt that rolls Panic (rate 1.0 ⇒ every roll faults).
        let salt = (0..64)
            .find(|&s| roll("p/site", s) == Some(Fault::Panic))
            .expect("some salt panics at rate 1");
        silence_injected_panics();
        let err = std::panic::catch_unwind(|| point("p/site", salt))
            .expect_err("point must panic for a Panic roll");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("panic payload is the formatted message");
        assert!(is_injected(&msg), "unexpected message: {msg}");
        assert!(msg.contains("p/site"));
        disarm();
    }

    #[test]
    fn probe_returns_the_same_decision_point_would_enact() {
        let _l = LOCK.lock().unwrap();
        configure(5, 0.5);
        for salt in 0..256 {
            assert_eq!(
                probe("probe/site", salt),
                roll("probe/site", salt),
                "probe must be roll plus accounting, nothing more"
            );
        }
        disarm();
        assert_eq!(probe("probe/site", 1), None, "disarmed probes are inert");
    }

    #[test]
    fn spec_parsing_is_tolerant() {
        assert_eq!(parse_spec("42:0.05"), Some((42, 0.05)));
        assert_eq!(parse_spec(" 7 : 0.5 "), Some((7, 0.5)));
        assert_eq!(parse_spec("9"), Some((9, 0.05)));
        assert_eq!(parse_spec("9:1.0"), Some((9, 1.0)));
        assert_eq!(parse_spec("9:0"), Some((9, 0.0)));
        assert_eq!(parse_spec(""), None);
        assert_eq!(parse_spec("  "), None);
        assert_eq!(parse_spec("banana"), None);
        assert_eq!(parse_spec("9:banana"), None);
        assert_eq!(parse_spec("9:1.5"), None, "rate above 1 is a spec error");
        assert_eq!(parse_spec("-3:0.1"), None);
    }

    #[test]
    fn tickets_are_monotone() {
        let a = ticket();
        let b = ticket();
        assert!(b > a);
    }
}
