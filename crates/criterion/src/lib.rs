#![warn(missing_docs)]
//! Std-only micro-benchmark harness.
//!
//! The build environment has no crates.io access, so this workspace ships a
//! minimal `criterion` under the same crate name. It implements the API the
//! repository's benches use — `Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`/`iter_batched`,
//! `BenchmarkId`, `BatchSize`, and the `criterion_group!`/`criterion_main!`
//! macros — with simple wall-clock timing: a short warmup, then a fixed
//! measurement budget, reporting mean time per iteration.
//!
//! Budgets are intentionally small (`CRITERION_MEASURE_MS`, default 300 ms
//! per benchmark) so `cargo bench` over the whole workspace stays quick.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, matching criterion's helper.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

fn measure_budget() -> Duration {
    let ms = std::env::var("CRITERION_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);
    Duration::from_millis(ms)
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Batch sizing hint for `iter_batched`. The shim times per-iteration
/// regardless of the hint, so variants only exist for API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input: setup cost amortized per call.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Each iteration gets exactly one fresh input.
    PerIteration,
}

/// Times closures for one benchmark.
pub struct Bencher {
    /// Accumulated (elapsed, iterations) samples.
    samples: Vec<(Duration, u64)>,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            samples: Vec::new(),
        }
    }

    /// Times `routine`, running it repeatedly within the measurement budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup and per-call cost estimate.
        let warm_start = Instant::now();
        black_box(routine());
        let per_call = warm_start.elapsed().max(Duration::from_nanos(1));

        let budget = measure_budget();
        let calls_in_budget = (budget.as_nanos() / per_call.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..calls_in_budget {
            black_box(routine());
        }
        self.samples.push((start.elapsed(), calls_in_budget));
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let warm_start = Instant::now();
        black_box(routine(input));
        let per_call = warm_start.elapsed().max(Duration::from_nanos(1));

        let budget = measure_budget();
        let calls_in_budget = (budget.as_nanos() / per_call.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..calls_in_budget {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.samples.push((total, calls_in_budget));
    }

    fn report(&self, name: &str) {
        let (elapsed, iters): (Duration, u64) = self
            .samples
            .iter()
            .fold((Duration::ZERO, 0), |(d, n), (sd, sn)| (d + *sd, n + sn));
        if iters == 0 {
            println!("{name:<40} (no samples)");
            return;
        }
        let per_iter = elapsed.as_secs_f64() / iters as f64;
        println!(
            "{name:<40} {:>12}/iter  ({iters} iters)",
            format_time(per_iter)
        );
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let mut bencher = Bencher::new();
        f(&mut bencher, input);
        bencher.report(&full);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let mut bencher = Bencher::new();
        f(&mut bencher);
        bencher.report(&full);
        self
    }

    /// Accepted for API compatibility; the shim's budget is time-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement budget for subsequent benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        let _ = &self.criterion;
        std::env::set_var("CRITERION_MEASURE_MS", d.as_millis().to_string());
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new();
        f(&mut bencher);
        bencher.report(name);
        self
    }
}

/// Declares a benchmark group runner, like the real criterion macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        std::env::set_var("CRITERION_MEASURE_MS", "5");
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grp");
        group.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, &n| b.iter(|| n * 2));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
