//! Runtime values and their comparison/arithmetic semantics.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{Result, SqlError};

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Text,
    /// Boolean.
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Text => write!(f, "TEXT"),
            DataType::Bool => write!(f, "BOOL"),
        }
    }
}

/// A runtime value. `Null` inhabits every type (SQL three-valued logic is
/// approximated: comparisons with `Null` are false, aggregates skip nulls).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer literal/value.
    Int(i64),
    /// Float literal/value.
    Float(f64),
    /// String literal/value.
    Str(String),
    /// Boolean literal/value.
    Bool(bool),
}

impl Value {
    /// True when the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value's type, if non-null.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// Numeric view (ints widen to float); `None` for non-numeric values.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Truthiness for WHERE evaluation: only `Bool(true)` passes.
    pub fn is_true(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// SQL equality: NULL equals nothing (including NULL).
    pub fn sql_eq(&self, other: &Value) -> bool {
        self.compare(other) == Some(Ordering::Equal)
    }

    /// Three-valued comparison. `None` when either side is NULL or the
    /// types are incomparable.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total order used by ORDER BY and GROUP BY: NULLs sort first, then by
    /// type tag, then by value. Unlike [`Value::compare`], this never fails.
    pub fn sort_key_cmp(&self, other: &Value) -> Ordering {
        fn tag(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            _ => tag(self)
                .cmp(&tag(other))
                .then_with(|| self.compare(other).unwrap_or(Ordering::Equal)),
        }
    }

    fn arith(
        &self,
        other: &Value,
        int_op: impl Fn(i64, i64) -> Option<i64>,
        float_op: impl Fn(f64, f64) -> f64,
        op_name: &str,
    ) -> Result<Value> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (Value::Int(a), Value::Int(b)) => int_op(*a, *b)
                .map(Value::Int)
                .ok_or_else(|| SqlError::Exec(format!("integer overflow in {op_name}"))),
            _ => {
                let a = self.as_f64().ok_or_else(|| {
                    SqlError::Exec(format!("{op_name} on non-numeric value {self}"))
                })?;
                let b = other.as_f64().ok_or_else(|| {
                    SqlError::Exec(format!("{op_name} on non-numeric value {other}"))
                })?;
                Ok(Value::Float(float_op(a, b)))
            }
        }
    }

    /// Addition. String + string concatenates.
    pub fn add(&self, other: &Value) -> Result<Value> {
        if let (Value::Str(a), Value::Str(b)) = (self, other) {
            return Ok(Value::Str(format!("{a}{b}")));
        }
        self.arith(other, i64::checked_add, |a, b| a + b, "+")
    }

    /// Subtraction.
    pub fn sub(&self, other: &Value) -> Result<Value> {
        self.arith(other, i64::checked_sub, |a, b| a - b, "-")
    }

    /// Multiplication.
    pub fn mul(&self, other: &Value) -> Result<Value> {
        self.arith(other, i64::checked_mul, |a, b| a * b, "*")
    }

    /// Division. Integer division by zero is an error; float yields inf.
    pub fn div(&self, other: &Value) -> Result<Value> {
        if let (Value::Int(_), Value::Int(0)) = (self, other) {
            return Err(SqlError::Exec("division by zero".into()));
        }
        self.arith(other, i64::checked_div, |a, b| a / b, "/")
    }

    /// SQL LIKE with `%` (any run) and `_` (any char), case-sensitive.
    pub fn like(&self, pattern: &Value) -> Result<Value> {
        match (self, pattern) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (Value::Str(s), Value::Str(p)) => Ok(Value::Bool(like_match(s, p))),
            _ => Err(SqlError::Exec(format!(
                "LIKE requires strings, got {self} LIKE {pattern}"
            ))),
        }
    }
}

/// Glob-style matcher for LIKE patterns.
fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.split_first() {
            None => s.is_empty(),
            Some(('%', rest)) => (0..=s.len()).any(|k| rec(&s[k..], rest)),
            Some(('_', rest)) => !s.is_empty() && rec(&s[1..], rest),
            Some((c, rest)) => s.first() == Some(c) && rec(&s[1..], rest),
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&s, &p)
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true, // structural, not SQL, equality
            _ => self.compare(other) == Some(Ordering::Equal),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparisons_across_numeric_types() {
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).compare(&Value::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert!(!Value::Null.sql_eq(&Value::Null));
        // But structural equality treats NULL == NULL (for grouping).
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn arithmetic_basics() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(
            Value::Int(2).add(&Value::Float(0.5)).unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(
            Value::Str("a".into()).add(&Value::Str("b".into())).unwrap(),
            Value::Str("ab".into())
        );
        assert_eq!(Value::Int(7).div(&Value::Int(2)).unwrap(), Value::Int(3));
    }

    #[test]
    fn arithmetic_with_null_is_null() {
        assert!(Value::Null.add(&Value::Int(1)).unwrap().is_null());
        assert!(Value::Int(1).mul(&Value::Null).unwrap().is_null());
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert!(Value::Int(1).div(&Value::Int(0)).is_err());
    }

    #[test]
    fn integer_overflow_is_an_error() {
        assert!(Value::Int(i64::MAX).add(&Value::Int(1)).is_err());
    }

    #[test]
    fn type_mismatch_arithmetic_is_an_error() {
        assert!(Value::Str("a".into()).sub(&Value::Int(1)).is_err());
        assert!(Value::Bool(true).mul(&Value::Int(2)).is_err());
    }

    #[test]
    fn like_patterns() {
        let s = |x: &str| Value::Str(x.into());
        assert_eq!(s("hello").like(&s("h%")).unwrap(), Value::Bool(true));
        assert_eq!(s("hello").like(&s("%llo")).unwrap(), Value::Bool(true));
        assert_eq!(s("hello").like(&s("h_llo")).unwrap(), Value::Bool(true));
        assert_eq!(s("hello").like(&s("h_l")).unwrap(), Value::Bool(false));
        assert_eq!(s("hello").like(&s("%")).unwrap(), Value::Bool(true));
        assert_eq!(s("").like(&s("%")).unwrap(), Value::Bool(true));
        assert_eq!(s("abc").like(&s("abc")).unwrap(), Value::Bool(true));
        assert_eq!(s("abc").like(&s("ab")).unwrap(), Value::Bool(false));
    }

    #[test]
    fn display_quotes_strings() {
        assert_eq!(Value::Str("o'brien".into()).to_string(), "'o''brien'");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Bool(true).to_string(), "TRUE");
    }

    #[test]
    fn sort_key_orders_nulls_first() {
        let mut vs = [Value::Int(2), Value::Null, Value::Int(1)];
        vs.sort_by(|a, b| a.sort_key_cmp(b));
        assert!(vs[0].is_null());
        assert_eq!(vs[1], Value::Int(1));
    }
}
