//! Error type shared by the lexer, parser, planner, and executor.

use std::fmt;

/// Any failure while processing a SQL statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Tokenization failure (unexpected character, unterminated string).
    Lex(String),
    /// Grammar violation.
    Parse(String),
    /// Unknown table/column, ambiguous reference, bad aggregate usage.
    Plan(String),
    /// Runtime failure (type mismatch, division by zero).
    Exec(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex(m) => write!(f, "lex error: {m}"),
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::Plan(m) => write!(f, "plan error: {m}"),
            SqlError::Exec(m) => write!(f, "execution error: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category() {
        assert!(SqlError::Parse("x".into()).to_string().contains("parse"));
        assert!(SqlError::Exec("y".into()).to_string().contains("execution"));
    }
}
