//! # lm4db-sql
//!
//! An in-memory relational engine — lexer, parser, and executor for a
//! practical SQL subset (filters, expressions, inner joins, grouping and
//! aggregation, HAVING, ORDER BY, LIMIT, LIKE/IN/BETWEEN/IS NULL, scalar
//! functions). It is the substrate on which the LM4DB applications run:
//! text-to-SQL needs gold-query execution, CodexDB-style synthesis needs an
//! execution target, and fact checking needs query evaluation.
//!
//! ```
//! use lm4db_sql::{run_sql, Catalog, DataType, Schema, Table, Value};
//!
//! let mut t = Table::new("nums", Schema::new(vec![("x", DataType::Int)]));
//! for i in 1..=4 {
//!     t.insert(vec![Value::Int(i)]).unwrap();
//! }
//! let mut cat = Catalog::new();
//! cat.register(t);
//! let rs = run_sql("SELECT SUM(x) FROM nums WHERE x > 1", &cat).unwrap();
//! assert_eq!(rs.rows[0][0], Value::Int(9));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod table;
pub mod value;

pub use ast::{AggFunc, BinOp, Expr, Join, JoinKind, Query, SelectItem, TableRef};
pub use error::{Result, SqlError};
pub use exec::execute;
pub use parser::{parse, parse_expr};
pub use plan::explain;
pub use table::{Catalog, ColumnDef, ResultSet, Row, Schema, Table};
pub use value::{DataType, Value};

/// Parses and executes `sql` against `catalog` in one call.
pub fn run_sql(sql: &str, catalog: &Catalog) -> Result<ResultSet> {
    execute(&parse(sql)?, catalog)
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Strategy producing small random WHERE predicates over `x`/`y`.
    fn predicate() -> impl Strategy<Value = String> {
        let cmp = prop::sample::select(vec!["=", "<>", "<", "<=", ">", ">="]);
        let col = prop::sample::select(vec!["x", "y"]);
        (col, cmp, -5i64..5).prop_map(|(c, o, n)| format!("{c} {o} {n}"))
    }

    /// Strategy producing one SQL-ish lexeme: a keyword, operator,
    /// punctuation mark, literal, identifier, or a short burst of garbage.
    fn sql_lexeme() -> impl Strategy<Value = String> {
        prop_oneof![
            prop::sample::select(vec![
                "select", "distinct", "from", "where", "and", "or", "not", "group", "by", "order",
                "asc", "desc", "limit", "count", "sum", "avg", "min", "max", "as", "(", ")", ",",
                "*", "=", "<>", "<", "<=", ">", ">=", "+", "-", "/", ";", "''", "'a'", "'it''s'",
                "0", "42", "-7", "3.5", ".", "..", "'",
            ])
            .prop_map(str::to_string),
            "[a-z_]{1,8}".prop_map(|s| s),
            "[ -~]{1,6}".prop_map(|s| s),
        ]
    }

    fn small_catalog(vals: &[(i64, i64)]) -> Catalog {
        let mut t = Table::new(
            "t",
            Schema::new(vec![("x", DataType::Int), ("y", DataType::Int)]),
        );
        for &(x, y) in vals {
            t.insert(vec![Value::Int(x), Value::Int(y)]).unwrap();
        }
        let mut c = Catalog::new();
        c.register(t);
        c
    }

    proptest! {
        #[test]
        fn parse_print_parse_is_fixed_point(p in predicate(), q in predicate()) {
            let sql = format!("SELECT x FROM t WHERE {p} AND {q} ORDER BY y DESC LIMIT 3");
            let once = parse(&sql).unwrap().to_string();
            let twice = parse(&once).unwrap().to_string();
            prop_assert_eq!(once, twice);
        }

        #[test]
        fn where_filter_agrees_with_manual_eval(
            rows in prop::collection::vec((-5i64..5, -5i64..5), 0..20),
            thresh in -5i64..5,
        ) {
            let cat = small_catalog(&rows);
            let rs = run_sql(&format!("SELECT x, y FROM t WHERE x > {thresh}"), &cat).unwrap();
            let expected = rows.iter().filter(|(x, _)| *x > thresh).count();
            prop_assert_eq!(rs.rows.len(), expected);
        }

        #[test]
        fn count_star_equals_row_count(rows in prop::collection::vec((-5i64..5, -5i64..5), 0..20)) {
            let cat = small_catalog(&rows);
            let rs = run_sql("SELECT COUNT(*) FROM t", &cat).unwrap();
            prop_assert_eq!(rs.rows[0][0].clone(), Value::Int(rows.len() as i64));
        }

        #[test]
        fn sum_matches_iterator_sum(rows in prop::collection::vec((-5i64..5, -5i64..5), 1..20)) {
            let cat = small_catalog(&rows);
            let rs = run_sql("SELECT SUM(x) FROM t", &cat).unwrap();
            let expected: i64 = rows.iter().map(|(x, _)| x).sum();
            prop_assert_eq!(rs.rows[0][0].clone(), Value::Int(expected));
        }

        #[test]
        fn group_by_partitions_rows(rows in prop::collection::vec((0i64..3, -5i64..5), 1..30)) {
            let cat = small_catalog(&rows);
            let rs = run_sql("SELECT x, COUNT(*) FROM t GROUP BY x", &cat).unwrap();
            let total: i64 = rs.rows.iter().map(|r| match r[1] { Value::Int(n) => n, _ => 0 }).sum();
            prop_assert_eq!(total, rows.len() as i64);
        }

        #[test]
        fn order_by_produces_sorted_output(rows in prop::collection::vec((-50i64..50, 0i64..2), 1..25)) {
            let cat = small_catalog(&rows);
            let rs = run_sql("SELECT x FROM t ORDER BY x ASC", &cat).unwrap();
            let xs: Vec<i64> = rs.rows.iter().map(|r| match r[0] { Value::Int(n) => n, _ => 0 }).collect();
            let mut sorted = xs.clone();
            sorted.sort_unstable();
            prop_assert_eq!(xs, sorted);
        }

        #[test]
        fn limit_caps_rows(rows in prop::collection::vec((-5i64..5, -5i64..5), 0..20), k in 0usize..10) {
            let cat = small_catalog(&rows);
            let rs = run_sql(&format!("SELECT * FROM t LIMIT {k}"), &cat).unwrap();
            prop_assert_eq!(rs.rows.len(), rows.len().min(k));
        }

        /// Fuzz the lexer + parser with random token sequences: SQL-ish
        /// lexemes, identifiers, literals, and raw garbage, in any order.
        /// Malformed input must come back as `Err`, never as a panic.
        #[test]
        fn parser_never_panics_on_random_token_sequences(
            lexemes in prop::collection::vec(sql_lexeme(), 0..14),
        ) {
            let sql = lexemes.join(" ");
            let _ = parse(&sql);
            // And the full pipeline stays panic-free too: executing whatever
            // parsed against a small catalog may fail, but must not crash.
            let cat = small_catalog(&[(1, 2), (3, 4)]);
            let _ = run_sql(&sql, &cat);
        }

        /// Same fuzz without separating whitespace, so lexemes fuse into
        /// new token shapes at the boundaries.
        #[test]
        fn parser_never_panics_on_fused_token_sequences(
            lexemes in prop::collection::vec(sql_lexeme(), 0..10),
        ) {
            let sql = lexemes.concat();
            let _ = parse(&sql);
        }

        #[test]
        fn distinct_never_returns_more_rows(rows in prop::collection::vec((0i64..4, 0i64..3), 0..25)) {
            let cat = small_catalog(&rows);
            let plain = run_sql("SELECT x FROM t", &cat).unwrap();
            let distinct = run_sql("SELECT DISTINCT x FROM t", &cat).unwrap();
            prop_assert!(distinct.rows.len() <= plain.rows.len());
            // DISTINCT output has no duplicates.
            let mut seen = std::collections::HashSet::new();
            for r in &distinct.rows {
                prop_assert!(seen.insert(r[0].to_string()));
            }
            // And matches the true distinct count.
            let truth: std::collections::HashSet<i64> = rows.iter().map(|(x, _)| *x).collect();
            prop_assert_eq!(distinct.rows.len(), truth.len());
        }

        #[test]
        fn left_join_row_count_is_at_least_inner(
            left in prop::collection::vec(0i64..4, 1..12),
            right in prop::collection::vec(0i64..4, 0..12),
        ) {
            let mut lt = Table::new("l", Schema::new(vec![("k", DataType::Int)]));
            for &k in &left {
                lt.insert(vec![Value::Int(k)]).unwrap();
            }
            let mut rt = Table::new("r", Schema::new(vec![("k", DataType::Int)]));
            for &k in &right {
                rt.insert(vec![Value::Int(k)]).unwrap();
            }
            let mut cat = Catalog::new();
            cat.register(lt);
            cat.register(rt);
            let inner = run_sql("SELECT a.k FROM l a JOIN r b ON a.k = b.k", &cat).unwrap();
            let leftj = run_sql("SELECT a.k FROM l a LEFT JOIN r b ON a.k = b.k", &cat).unwrap();
            prop_assert!(leftj.rows.len() >= inner.rows.len());
            // Every left row appears at least once in the LEFT JOIN output.
            prop_assert!(leftj.rows.len() >= left.len());
            // Matched multiplicities agree with a manual count.
            let expected: usize = left
                .iter()
                .map(|k| right.iter().filter(|r| *r == k).count().max(1))
                .sum();
            prop_assert_eq!(leftj.rows.len(), expected);
        }

        #[test]
        fn explain_never_panics_and_mentions_scan(p in predicate()) {
            let q = parse(&format!("SELECT DISTINCT x FROM t WHERE {p} ORDER BY y LIMIT 2")).unwrap();
            let plan = explain(&q);
            prop_assert!(plan.contains("Scan t"));
            prop_assert!(plan.contains("Project DISTINCT"));
        }
    }
}
