//! Hand-written SQL tokenizer.

use crate::error::{Result, SqlError};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword (stored uppercase) or bare identifier (stored lowercase).
    Keyword(String),
    /// Identifier (lowercased).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// Operator or punctuation: `= <> < <= > >= + - * / ( ) , . ;`
    Symbol(&'static str),
}

const KEYWORDS: [&str; 30] = [
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "ASC", "DESC", "LIMIT", "AS",
    "AND", "OR", "NOT", "NULL", "TRUE", "FALSE", "JOIN", "INNER", "LEFT", "ON", "LIKE", "IN",
    "BETWEEN", "IS", "DISTINCT", "COUNT", "SUM", "AVG", "MIN",
];
// MAX handled specially below to keep the array size fixed.

fn is_keyword(word: &str) -> bool {
    let upper = word.to_uppercase();
    upper == "MAX" || KEYWORDS.contains(&upper.as_str())
}

/// Tokenizes a SQL string.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let chars: Vec<char> = input.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && chars[i].is_ascii_digit() {
                i += 1;
            }
            let is_float = i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit();
            if is_float {
                i += 1;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let f: f64 = text
                    .parse()
                    .map_err(|_| SqlError::Lex(format!("bad float literal '{text}'")))?;
                tokens.push(Token::Float(f));
            } else {
                let text: String = chars[start..i].iter().collect();
                let n: i64 = text
                    .parse()
                    .map_err(|_| SqlError::Lex(format!("integer literal '{text}' out of range")))?;
                tokens.push(Token::Int(n));
            }
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            if is_keyword(&word) {
                tokens.push(Token::Keyword(word.to_uppercase()));
            } else {
                tokens.push(Token::Ident(word.to_lowercase()));
            }
            continue;
        }
        if c == '\'' {
            i += 1;
            let mut s = String::new();
            loop {
                if i >= chars.len() {
                    return Err(SqlError::Lex("unterminated string literal".into()));
                }
                if chars[i] == '\'' {
                    // '' is an escaped quote.
                    if i + 1 < chars.len() && chars[i + 1] == '\'' {
                        s.push('\'');
                        i += 2;
                        continue;
                    }
                    i += 1;
                    break;
                }
                s.push(chars[i]);
                i += 1;
            }
            tokens.push(Token::Str(s));
            continue;
        }
        // Multi-char operators first.
        let two: String = chars[i..chars.len().min(i + 2)].iter().collect();
        let sym: Option<&'static str> = match two.as_str() {
            "<=" => Some("<="),
            ">=" => Some(">="),
            "<>" => Some("<>"),
            "!=" => Some("<>"),
            _ => None,
        };
        if let Some(s) = sym {
            tokens.push(Token::Symbol(s));
            i += 2;
            continue;
        }
        let sym: Option<&'static str> = match c {
            '=' => Some("="),
            '<' => Some("<"),
            '>' => Some(">"),
            '+' => Some("+"),
            '-' => Some("-"),
            '*' => Some("*"),
            '/' => Some("/"),
            '(' => Some("("),
            ')' => Some(")"),
            ',' => Some(","),
            '.' => Some("."),
            ';' => Some(";"),
            _ => None,
        };
        match sym {
            Some(s) => {
                tokens.push(Token::Symbol(s));
                i += 1;
            }
            None => {
                return Err(SqlError::Lex(format!("unexpected character '{c}'")));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_are_case_insensitive() {
        let toks = lex("select From WHERE").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword("SELECT".into()),
                Token::Keyword("FROM".into()),
                Token::Keyword("WHERE".into()),
            ]
        );
    }

    #[test]
    fn identifiers_are_lowercased() {
        let toks = lex("MyTable my_col2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("mytable".into()),
                Token::Ident("my_col2".into())
            ]
        );
    }

    #[test]
    fn numbers_int_and_float() {
        let toks = lex("42 3.75").unwrap();
        assert_eq!(toks, vec![Token::Int(42), Token::Float(3.75)]);
    }

    #[test]
    fn qualified_name_lexes_as_ident_dot_ident() {
        let toks = lex("t.age").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("t".into()),
                Token::Symbol("."),
                Token::Ident("age".into())
            ]
        );
    }

    #[test]
    fn strings_with_escaped_quotes() {
        let toks = lex("'o''brien'").unwrap();
        assert_eq!(toks, vec![Token::Str("o'brien".into())]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn operators_including_two_char() {
        let toks = lex("<= >= <> != = < >").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Symbol("<="),
                Token::Symbol(">="),
                Token::Symbol("<>"),
                Token::Symbol("<>"),
                Token::Symbol("="),
                Token::Symbol("<"),
                Token::Symbol(">"),
            ]
        );
    }

    #[test]
    fn unexpected_character_errors() {
        assert!(lex("select @").is_err());
    }

    #[test]
    fn full_statement() {
        let toks = lex("SELECT name, COUNT(*) FROM t WHERE age >= 30 GROUP BY name;").unwrap();
        assert!(toks.contains(&Token::Keyword("COUNT".into())));
        assert!(toks.contains(&Token::Symbol(";")));
    }
}
