//! Query execution: name resolution, expression evaluation, nested-loop
//! joins, grouping/aggregation, ordering, and projection.

use std::collections::HashMap;

use crate::ast::{AggFunc, BinOp, Expr, JoinKind, Query, SelectItem};
use crate::error::{Result, SqlError};
use crate::table::{Catalog, ResultSet, Row};
use crate::value::Value;

/// Column-name environment of the joined input relation.
#[derive(Debug, Clone)]
pub(crate) struct Env {
    /// `(table effective name, column name)` per position.
    cols: Vec<(String, String)>,
}

impl Env {
    fn lookup(&self, table: Option<&str>, name: &str) -> Result<usize> {
        let matches: Vec<usize> = self
            .cols
            .iter()
            .enumerate()
            .filter(|(_, (t, c))| c == name && table.map(|q| q == t).unwrap_or(true))
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            0 => Err(SqlError::Plan(format!(
                "unknown column '{}{name}'",
                table.map(|t| format!("{t}.")).unwrap_or_default()
            ))),
            1 => Ok(matches[0]),
            _ => Err(SqlError::Plan(format!(
                "ambiguous column '{name}' (qualify it with a table name)"
            ))),
        }
    }
}

/// Executes a query against the catalog.
pub fn execute(q: &Query, catalog: &Catalog) -> Result<ResultSet> {
    // 1. FROM and JOINs: build the joined relation via nested loops.
    let base = catalog.get(&q.from.name)?;
    let mut env = Env {
        cols: base
            .schema
            .names()
            .iter()
            .map(|c| (q.from.effective_name().to_string(), c.to_string()))
            .collect(),
    };
    let mut rows: Vec<Row> = base.rows.clone();
    for join in &q.joins {
        let right = catalog.get(&join.table.name)?;
        let right_name = join.table.effective_name().to_string();
        for c in right.schema.names() {
            env.cols.push((right_name.clone(), c.to_string()));
        }
        let right_width = right.schema.len();
        let mut joined = Vec::new();
        for l in &rows {
            let mut matched = false;
            for r in &right.rows {
                let mut combined = l.clone();
                combined.extend(r.iter().cloned());
                if eval_scalar(&join.on, &env, &combined)?.is_true() {
                    joined.push(combined);
                    matched = true;
                }
            }
            if !matched && join.kind == JoinKind::Left {
                // LEFT JOIN: keep the left row, NULL-padding the right side.
                let mut combined = l.clone();
                combined.extend(std::iter::repeat_n(Value::Null, right_width));
                joined.push(combined);
            }
        }
        rows = joined;
    }

    // 2. WHERE.
    if let Some(pred) = &q.where_clause {
        if pred.contains_aggregate() {
            return Err(SqlError::Plan("aggregates are not allowed in WHERE".into()));
        }
        let mut filtered = Vec::with_capacity(rows.len());
        for r in rows {
            if eval_scalar(pred, &env, &r)?.is_true() {
                filtered.push(r);
            }
        }
        rows = filtered;
    }

    if q.is_aggregate() {
        execute_aggregate(q, &env, rows)
    } else {
        execute_plain(q, &env, rows)
    }
}

/// Non-aggregate pipeline: order, project, limit.
fn execute_plain(q: &Query, env: &Env, mut rows: Vec<Row>) -> Result<ResultSet> {
    // Output column names.
    let mut columns = Vec::new();
    for item in &q.items {
        match item {
            SelectItem::Star => {
                for (_, c) in &env.cols {
                    columns.push(c.clone());
                }
            }
            SelectItem::Expr { expr, alias } => {
                columns.push(alias.clone().unwrap_or_else(|| expr.to_string()));
            }
        }
    }
    let alias_index = alias_map(q);

    // ORDER BY before projection so non-projected columns can be sort keys.
    if !q.order_by.is_empty() {
        let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rows.len());
        for r in rows {
            let mut key = Vec::with_capacity(q.order_by.len());
            for (e, _) in &q.order_by {
                // An ORDER BY item naming a select alias sorts by that item.
                let v = match resolve_alias(e, &alias_index, q) {
                    Some(aliased) => eval_scalar(aliased, env, &r)?,
                    None => eval_scalar(e, env, &r)?,
                };
                key.push(v);
            }
            keyed.push((key, r));
        }
        sort_keyed(&mut keyed, q);
        rows = keyed.into_iter().map(|(_, r)| r).collect();
    }

    // Projection (before LIMIT so DISTINCT can deduplicate projected rows).
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        let mut out_row = Vec::new();
        for item in &q.items {
            match item {
                SelectItem::Star => out_row.extend(r.iter().cloned()),
                SelectItem::Expr { expr, .. } => out_row.push(eval_scalar(expr, env, &r)?),
            }
        }
        out.push(out_row);
    }
    if q.distinct {
        dedup_rows(&mut out);
    }
    if let Some(l) = q.limit {
        out.truncate(l);
    }
    Ok(ResultSet { columns, rows: out })
}

/// Removes duplicate rows, keeping first occurrences (order-preserving).
fn dedup_rows(rows: &mut Vec<Row>) {
    let mut seen = std::collections::HashSet::new();
    rows.retain(|r| {
        let key = r
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\u{1}");
        seen.insert(key)
    });
}

/// Aggregate pipeline: group, aggregate, having, order, project, limit.
/// Sort key paired with a group's (key values, member rows).
type KeyedGroups = Vec<(Vec<Value>, (Vec<Value>, Vec<Row>))>;

fn execute_aggregate(q: &Query, env: &Env, rows: Vec<Row>) -> Result<ResultSet> {
    if q.items.iter().any(|i| matches!(i, SelectItem::Star)) {
        return Err(SqlError::Plan(
            "SELECT * cannot be combined with aggregation".into(),
        ));
    }
    // Group rows by the GROUP BY key. With no GROUP BY there is exactly one
    // group, even over an empty input (so COUNT(*) returns 0).
    let mut groups: Vec<(Vec<Value>, Vec<Row>)> = Vec::new();
    if q.group_by.is_empty() {
        groups.push((vec![], rows));
    } else {
        let mut index: HashMap<String, usize> = HashMap::new();
        for r in rows {
            let mut key = Vec::with_capacity(q.group_by.len());
            for e in &q.group_by {
                key.push(eval_scalar(e, env, &r)?);
            }
            let key_str = key
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\u{1}");
            match index.get(&key_str) {
                Some(&gi) => groups[gi].1.push(r),
                None => {
                    index.insert(key_str, groups.len());
                    groups.push((key, vec![r]));
                }
            }
        }
    }

    // Printed forms of the group-by expressions, for matching references.
    let group_printed: Vec<String> = q.group_by.iter().map(ToString::to_string).collect();

    fn ctx_for<'a>(
        env: &'a Env,
        key_printed: &'a [String],
        key: &'a [Value],
        members: &'a [Row],
    ) -> GroupCtx<'a> {
        GroupCtx {
            env,
            key_printed,
            key_values: key,
            rows: members,
        }
    }

    // HAVING.
    let mut kept: Vec<(Vec<Value>, Vec<Row>)> = Vec::new();
    for (key, members) in groups {
        let keep = match &q.having {
            Some(h) => eval_in_group(h, &ctx_for(env, &group_printed, &key, &members))?.is_true(),
            None => true,
        };
        if keep {
            kept.push((key, members));
        }
    }

    let alias_index = alias_map(q);
    // ORDER BY over groups.
    if !q.order_by.is_empty() {
        let mut keyed: KeyedGroups = Vec::new();
        for (key, members) in kept {
            let mut sort_key = Vec::new();
            for (e, _) in &q.order_by {
                let target = resolve_alias(e, &alias_index, q).unwrap_or(e);
                sort_key.push(eval_in_group(
                    target,
                    &ctx_for(env, &group_printed, &key, &members),
                )?);
            }
            keyed.push((sort_key, (key, members)));
        }
        sort_keyed(&mut keyed, q);
        kept = keyed.into_iter().map(|(_, g)| g).collect();
    }

    if let Some(l) = q.limit {
        kept.truncate(l);
    }

    // Projection.
    let mut columns = Vec::new();
    for item in &q.items {
        if let SelectItem::Expr { expr, alias } = item {
            columns.push(alias.clone().unwrap_or_else(|| expr.to_string()));
        }
    }
    let mut out = Vec::with_capacity(kept.len());
    for (key, members) in &kept {
        let ctx = ctx_for(env, &group_printed, key, members);
        let mut row = Vec::new();
        for item in &q.items {
            if let SelectItem::Expr { expr, .. } = item {
                row.push(eval_in_group(expr, &ctx)?);
            }
        }
        out.push(row);
    }
    if q.distinct {
        dedup_rows(&mut out);
    }
    Ok(ResultSet { columns, rows: out })
}

fn alias_map(q: &Query) -> HashMap<String, usize> {
    let mut m = HashMap::new();
    for (i, item) in q.items.iter().enumerate() {
        if let SelectItem::Expr { alias: Some(a), .. } = item {
            m.insert(a.clone(), i);
        }
    }
    m
}

/// If `e` is a bare column naming a select alias, returns the aliased
/// expression instead.
fn resolve_alias<'q>(e: &Expr, aliases: &HashMap<String, usize>, q: &'q Query) -> Option<&'q Expr> {
    if let Expr::Column { table: None, name } = e {
        if let Some(&i) = aliases.get(name) {
            if let SelectItem::Expr { expr, .. } = &q.items[i] {
                return Some(expr);
            }
        }
    }
    None
}

fn sort_keyed<T>(keyed: &mut [(Vec<Value>, T)], q: &Query) {
    keyed.sort_by(|(a, _), (b, _)| {
        for (i, (_, desc)) in q.order_by.iter().enumerate() {
            let ord = a[i].sort_key_cmp(&b[i]);
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}

/// Evaluates a scalar (aggregate-free) expression against one row.
pub(crate) fn eval_scalar(expr: &Expr, env: &Env, row: &Row) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column { table, name } => {
            let idx = env.lookup(table.as_deref(), name)?;
            Ok(row[idx].clone())
        }
        Expr::Binary { op, left, right } => {
            let l = eval_scalar(left, env, row)?;
            let r = eval_scalar(right, env, row)?;
            eval_binop(*op, &l, &r)
        }
        Expr::Not(e) => match eval_scalar(e, env, row)? {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            Value::Null => Ok(Value::Null),
            other => Err(SqlError::Exec(format!(
                "NOT applied to non-boolean {other}"
            ))),
        },
        Expr::Neg(e) => Value::Int(0).sub(&eval_scalar(e, env, row)?),
        Expr::Agg { .. } => Err(SqlError::Plan(
            "aggregate used outside an aggregate context".into(),
        )),
        Expr::Func { name, args } => {
            let vals: Result<Vec<Value>> = args.iter().map(|a| eval_scalar(a, env, row)).collect();
            eval_func(name, &vals?)
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_scalar(expr, env, row)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_scalar(expr, env, row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut found = false;
            for item in list {
                if v.sql_eq(&eval_scalar(item, env, row)?) {
                    found = true;
                    break;
                }
            }
            Ok(Value::Bool(found != *negated))
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval_scalar(expr, env, row)?;
            let lo = eval_scalar(low, env, row)?;
            let hi = eval_scalar(high, env, row)?;
            match (v.compare(&lo), v.compare(&hi)) {
                (Some(a), Some(b)) => {
                    let within = a != std::cmp::Ordering::Less && b != std::cmp::Ordering::Greater;
                    Ok(Value::Bool(within != *negated))
                }
                _ => Ok(Value::Null),
            }
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval_scalar(expr, env, row)?;
            let p = eval_scalar(pattern, env, row)?;
            match v.like(&p)? {
                Value::Bool(b) => Ok(Value::Bool(b != *negated)),
                other => Ok(other),
            }
        }
    }
}

fn eval_binop(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    use std::cmp::Ordering::*;
    match op {
        BinOp::And => match (l, r) {
            (Value::Bool(false), _) | (_, Value::Bool(false)) => Ok(Value::Bool(false)),
            (Value::Bool(a), Value::Bool(b)) => Ok(Value::Bool(*a && *b)),
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            _ => Err(SqlError::Exec("AND on non-boolean values".into())),
        },
        BinOp::Or => match (l, r) {
            (Value::Bool(true), _) | (_, Value::Bool(true)) => Ok(Value::Bool(true)),
            (Value::Bool(a), Value::Bool(b)) => Ok(Value::Bool(*a || *b)),
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            _ => Err(SqlError::Exec("OR on non-boolean values".into())),
        },
        BinOp::Add => l.add(r),
        BinOp::Sub => l.sub(r),
        BinOp::Mul => l.mul(r),
        BinOp::Div => l.div(r),
        BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
            let Some(ord) = l.compare(r) else {
                return Ok(Value::Null);
            };
            let b = match op {
                BinOp::Eq => ord == Equal,
                BinOp::NotEq => ord != Equal,
                BinOp::Lt => ord == Less,
                BinOp::LtEq => ord != Greater,
                BinOp::Gt => ord == Greater,
                BinOp::GtEq => ord != Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
    }
}

fn eval_func(name: &str, args: &[Value]) -> Result<Value> {
    let arity = |n: usize| {
        if args.len() != n {
            Err(SqlError::Exec(format!(
                "{name}() expects {n} argument(s), got {}",
                args.len()
            )))
        } else {
            Ok(())
        }
    };
    match name {
        "upper" => {
            arity(1)?;
            match &args[0] {
                Value::Str(s) => Ok(Value::Str(s.to_uppercase())),
                Value::Null => Ok(Value::Null),
                v => Err(SqlError::Exec(format!("UPPER on non-string {v}"))),
            }
        }
        "lower" => {
            arity(1)?;
            match &args[0] {
                Value::Str(s) => Ok(Value::Str(s.to_lowercase())),
                Value::Null => Ok(Value::Null),
                v => Err(SqlError::Exec(format!("LOWER on non-string {v}"))),
            }
        }
        "length" => {
            arity(1)?;
            match &args[0] {
                Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
                Value::Null => Ok(Value::Null),
                v => Err(SqlError::Exec(format!("LENGTH on non-string {v}"))),
            }
        }
        "abs" => {
            arity(1)?;
            match &args[0] {
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                Value::Null => Ok(Value::Null),
                v => Err(SqlError::Exec(format!("ABS on non-numeric {v}"))),
            }
        }
        "round" => {
            arity(1)?;
            match &args[0] {
                Value::Int(i) => Ok(Value::Int(*i)),
                Value::Float(f) => Ok(Value::Float(f.round())),
                Value::Null => Ok(Value::Null),
                v => Err(SqlError::Exec(format!("ROUND on non-numeric {v}"))),
            }
        }
        other => Err(SqlError::Plan(format!("unknown function '{other}'"))),
    }
}

/// Evaluation context inside one group.
struct GroupCtx<'a> {
    env: &'a Env,
    key_printed: &'a [String],
    key_values: &'a [Value],
    rows: &'a [Row],
}

/// Evaluates an expression in a group context: aggregates reduce over the
/// group's rows; other subexpressions must resolve to GROUP BY keys or
/// literals.
fn eval_in_group(expr: &Expr, ctx: &GroupCtx<'_>) -> Result<Value> {
    // A (sub)expression equal to a GROUP BY expression takes the key value.
    let printed = expr.to_string();
    if let Some(i) = ctx.key_printed.iter().position(|k| *k == printed) {
        return Ok(ctx.key_values[i].clone());
    }
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Agg {
            func,
            arg,
            distinct,
        } => eval_aggregate(*func, arg.as_deref(), *distinct, ctx),
        Expr::Binary { op, left, right } => {
            let l = eval_in_group(left, ctx)?;
            let r = eval_in_group(right, ctx)?;
            eval_binop(*op, &l, &r)
        }
        Expr::Not(e) => match eval_in_group(e, ctx)? {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            Value::Null => Ok(Value::Null),
            other => Err(SqlError::Exec(format!(
                "NOT applied to non-boolean {other}"
            ))),
        },
        Expr::Neg(e) => Value::Int(0).sub(&eval_in_group(e, ctx)?),
        Expr::Func { name, args } => {
            let vals: Result<Vec<Value>> = args.iter().map(|a| eval_in_group(a, ctx)).collect();
            eval_func(name, &vals?)
        }
        Expr::Column { .. } => Err(SqlError::Plan(format!(
            "column {printed} must appear in GROUP BY or inside an aggregate"
        ))),
        Expr::IsNull { expr, negated } => {
            let v = eval_in_group(expr, ctx)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        other => Err(SqlError::Plan(format!(
            "expression {other} is not supported in an aggregate context"
        ))),
    }
}

fn eval_aggregate(
    func: AggFunc,
    arg: Option<&Expr>,
    distinct: bool,
    ctx: &GroupCtx<'_>,
) -> Result<Value> {
    // COUNT(*): count rows.
    let Some(arg) = arg else {
        return Ok(Value::Int(ctx.rows.len() as i64));
    };
    if arg.contains_aggregate() {
        return Err(SqlError::Plan("nested aggregates are not allowed".into()));
    }
    let mut values = Vec::with_capacity(ctx.rows.len());
    for r in ctx.rows {
        let v = eval_scalar(arg, ctx.env, r)?;
        if !v.is_null() {
            values.push(v);
        }
    }
    if distinct {
        let mut seen = std::collections::HashSet::new();
        values.retain(|v| seen.insert(v.to_string()));
    }
    match func {
        AggFunc::Count => Ok(Value::Int(values.len() as i64)),
        AggFunc::Min => Ok(values
            .into_iter()
            .min_by(|a, b| a.sort_key_cmp(b))
            .unwrap_or(Value::Null)),
        AggFunc::Max => Ok(values
            .into_iter()
            .max_by(|a, b| a.sort_key_cmp(b))
            .unwrap_or(Value::Null)),
        AggFunc::Sum | AggFunc::Avg => {
            if values.is_empty() {
                return Ok(Value::Null);
            }
            let all_int = values.iter().all(|v| matches!(v, Value::Int(_)));
            let mut sum = 0.0f64;
            for v in &values {
                sum += v.as_f64().ok_or_else(|| {
                    SqlError::Exec(format!("{} on non-numeric value {v}", func.name()))
                })?;
            }
            if func == AggFunc::Avg {
                Ok(Value::Float(sum / values.len() as f64))
            } else if all_int {
                Ok(Value::Int(sum as i64))
            } else {
                Ok(Value::Float(sum))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::table::{Schema, Table};
    use crate::value::DataType;

    fn catalog() -> Catalog {
        let mut emp = Table::new(
            "emp",
            Schema::new(vec![
                ("name", DataType::Text),
                ("dept", DataType::Text),
                ("salary", DataType::Int),
                ("bonus", DataType::Int),
            ]),
        );
        let rows = [
            ("ada", "eng", 100, Some(10)),
            ("bob", "eng", 80, None),
            ("cas", "ops", 60, Some(5)),
            ("dan", "ops", 70, Some(7)),
            ("eve", "hr", 50, None),
        ];
        for (n, d, s, b) in rows {
            emp.insert(vec![
                Value::Str(n.into()),
                Value::Str(d.into()),
                Value::Int(s),
                b.map(Value::Int).unwrap_or(Value::Null),
            ])
            .unwrap();
        }
        let mut dept = Table::new(
            "dept",
            Schema::new(vec![("dname", DataType::Text), ("floor", DataType::Int)]),
        );
        for (d, f) in [("eng", 3), ("ops", 1), ("hr", 2)] {
            dept.insert(vec![Value::Str(d.into()), Value::Int(f)])
                .unwrap();
        }
        let mut c = Catalog::new();
        c.register(emp);
        c.register(dept);
        c
    }

    fn run(sql: &str) -> ResultSet {
        execute(&parse(sql).unwrap(), &catalog()).unwrap()
    }

    fn run_err(sql: &str) -> SqlError {
        execute(&parse(sql).unwrap(), &catalog()).unwrap_err()
    }

    #[test]
    fn select_star() {
        let rs = run("SELECT * FROM emp");
        assert_eq!(rs.rows.len(), 5);
        assert_eq!(rs.columns, vec!["name", "dept", "salary", "bonus"]);
    }

    #[test]
    fn where_filters() {
        let rs = run("SELECT name FROM emp WHERE salary > 60");
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn where_with_null_comparison_drops_rows() {
        // bonus IS NULL rows must not satisfy bonus > 0.
        let rs = run("SELECT name FROM emp WHERE bonus > 0");
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn is_null_predicate() {
        let rs = run("SELECT name FROM emp WHERE bonus IS NULL ORDER BY name");
        assert_eq!(
            rs.rows,
            vec![
                vec![Value::Str("bob".into())],
                vec![Value::Str("eve".into())]
            ]
        );
    }

    #[test]
    fn projection_expressions_and_alias() {
        let rs = run("SELECT name, salary + 10 AS bumped FROM emp WHERE name = 'ada'");
        assert_eq!(rs.columns, vec!["name", "bumped"]);
        assert_eq!(rs.rows[0][1], Value::Int(110));
    }

    #[test]
    fn order_by_asc_desc_and_limit() {
        let rs = run("SELECT name FROM emp ORDER BY salary DESC LIMIT 2");
        assert_eq!(
            rs.rows,
            vec![
                vec![Value::Str("ada".into())],
                vec![Value::Str("bob".into())]
            ]
        );
        let rs = run("SELECT name FROM emp ORDER BY dept ASC, salary DESC");
        assert_eq!(rs.rows[0][0], Value::Str("ada".into()));
    }

    #[test]
    fn order_by_alias() {
        let rs = run("SELECT name, salary * 2 AS d FROM emp ORDER BY d DESC LIMIT 1");
        assert_eq!(rs.rows[0][0], Value::Str("ada".into()));
    }

    #[test]
    fn group_by_with_aggregates() {
        let rs = run(
            "SELECT dept, COUNT(*), SUM(salary), AVG(salary) FROM emp GROUP BY dept ORDER BY dept",
        );
        assert_eq!(rs.rows.len(), 3);
        // eng: 2 rows, sum 180, avg 90.
        assert_eq!(rs.rows[0][0], Value::Str("eng".into()));
        assert_eq!(rs.rows[0][1], Value::Int(2));
        assert_eq!(rs.rows[0][2], Value::Int(180));
        assert_eq!(rs.rows[0][3], Value::Float(90.0));
    }

    #[test]
    fn count_skips_nulls_but_count_star_does_not() {
        let rs = run("SELECT COUNT(*), COUNT(bonus) FROM emp");
        assert_eq!(rs.rows[0], vec![Value::Int(5), Value::Int(3)]);
    }

    #[test]
    fn count_distinct() {
        let rs = run("SELECT COUNT(DISTINCT dept) FROM emp");
        assert_eq!(rs.rows[0][0], Value::Int(3));
    }

    #[test]
    fn aggregate_over_empty_input_returns_one_row() {
        let rs = run("SELECT COUNT(*), SUM(salary), MIN(salary) FROM emp WHERE salary > 999");
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Int(0));
        assert!(rs.rows[0][1].is_null());
        assert!(rs.rows[0][2].is_null());
    }

    #[test]
    fn having_filters_groups() {
        let rs = run("SELECT dept FROM emp GROUP BY dept HAVING COUNT(*) > 1 ORDER BY dept");
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn order_groups_by_aggregate() {
        let rs = run("SELECT dept FROM emp GROUP BY dept ORDER BY SUM(salary) DESC LIMIT 1");
        assert_eq!(rs.rows[0][0], Value::Str("eng".into()));
    }

    #[test]
    fn min_max_on_strings() {
        let rs = run("SELECT MIN(name), MAX(name) FROM emp");
        assert_eq!(
            rs.rows[0],
            vec![Value::Str("ada".into()), Value::Str("eve".into())]
        );
    }

    #[test]
    fn join_with_aliases() {
        let rs = run(
            "SELECT e.name, d.floor FROM emp e JOIN dept d ON e.dept = d.dname \
             WHERE d.floor >= 2 ORDER BY e.name",
        );
        assert_eq!(rs.rows.len(), 3); // ada, bob (eng, floor 3), eve (hr, 2)
        assert_eq!(rs.rows[0][0], Value::Str("ada".into()));
        assert_eq!(rs.rows[0][1], Value::Int(3));
    }

    #[test]
    fn join_then_group() {
        let rs = run(
            "SELECT d.floor, COUNT(*) FROM emp e JOIN dept d ON e.dept = d.dname \
             GROUP BY d.floor ORDER BY d.floor",
        );
        assert_eq!(rs.rows.len(), 3);
        assert_eq!(rs.rows[0], vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn like_in_between() {
        assert_eq!(
            run("SELECT name FROM emp WHERE name LIKE 'a%'").rows.len(),
            1
        );
        assert_eq!(
            run("SELECT name FROM emp WHERE dept IN ('eng', 'hr')")
                .rows
                .len(),
            3
        );
        assert_eq!(
            run("SELECT name FROM emp WHERE salary BETWEEN 60 AND 80")
                .rows
                .len(),
            3
        );
        assert_eq!(
            run("SELECT name FROM emp WHERE salary NOT BETWEEN 60 AND 80")
                .rows
                .len(),
            2
        );
    }

    #[test]
    fn scalar_functions_in_projection() {
        let rs = run("SELECT upper(name), length(dept) FROM emp WHERE name = 'ada'");
        assert_eq!(rs.rows[0], vec![Value::Str("ADA".into()), Value::Int(3)]);
    }

    #[test]
    fn errors_surface() {
        assert!(matches!(run_err("SELECT * FROM nope"), SqlError::Plan(_)));
        assert!(matches!(
            run_err("SELECT missing FROM emp"),
            SqlError::Plan(_)
        ));
        assert!(matches!(
            run_err("SELECT name FROM emp WHERE SUM(salary) > 1"),
            SqlError::Plan(_)
        ));
        assert!(matches!(
            run_err("SELECT salary FROM emp GROUP BY dept"),
            SqlError::Plan(_)
        ));
        assert!(matches!(
            run_err("SELECT * FROM emp GROUP BY dept"),
            SqlError::Plan(_)
        ));
        assert!(matches!(
            run_err("SELECT name FROM emp WHERE salary / 0 > 1"),
            SqlError::Exec(_)
        ));
    }

    #[test]
    fn ambiguous_column_in_join_errors() {
        // Both sides have a column named "dname"? No — craft one: emp.dept
        // vs dept alias on both sides of a self join.
        let err = execute(
            &parse("SELECT dname FROM dept a JOIN dept b ON a.floor = b.floor").unwrap(),
            &catalog(),
        )
        .unwrap_err();
        assert!(matches!(err, SqlError::Plan(_)), "{err}");
    }

    #[test]
    fn distinct_deduplicates_rows() {
        let rs = run("SELECT DISTINCT dept FROM emp ORDER BY dept");
        assert_eq!(rs.rows.len(), 3);
        let rs = run("SELECT dept FROM emp ORDER BY dept");
        assert_eq!(rs.rows.len(), 5);
    }

    #[test]
    fn distinct_applies_before_limit() {
        let rs = run("SELECT DISTINCT dept FROM emp ORDER BY dept LIMIT 2");
        assert_eq!(
            rs.rows,
            vec![
                vec![Value::Str("eng".into())],
                vec![Value::Str("hr".into())]
            ]
        );
    }

    #[test]
    fn left_join_keeps_unmatched_left_rows() {
        // Join dept -> emp on a value with no match ("legal" is absent).
        let mut cat = catalog();
        let mut lonely = Table::new("lonely", Schema::new(vec![("dname", DataType::Text)]));
        lonely.insert(vec![Value::Str("legal".into())]).unwrap();
        lonely.insert(vec![Value::Str("eng".into())]).unwrap();
        cat.register(lonely);
        let rs = execute(
            &parse(
                "SELECT l.dname, e.name FROM lonely l LEFT JOIN emp e ON l.dname = e.dept                  ORDER BY l.dname",
            )
            .unwrap(),
            &cat,
        )
        .unwrap();
        // eng matches 2 employees; legal survives with NULL.
        assert_eq!(rs.rows.len(), 3);
        let legal_row = rs
            .rows
            .iter()
            .find(|r| r[0] == Value::Str("legal".into()))
            .expect("legal row dropped by LEFT JOIN");
        assert!(legal_row[1].is_null());
    }

    #[test]
    fn inner_join_drops_unmatched_rows() {
        let mut cat = catalog();
        let mut lonely = Table::new("lonely", Schema::new(vec![("dname", DataType::Text)]));
        lonely.insert(vec![Value::Str("legal".into())]).unwrap();
        cat.register(lonely);
        let rs = execute(
            &parse("SELECT l.dname FROM lonely l JOIN emp e ON l.dname = e.dept").unwrap(),
            &cat,
        )
        .unwrap();
        assert!(rs.rows.is_empty());
    }

    #[test]
    fn group_by_expression_key() {
        let rs =
            run("SELECT salary / 50, COUNT(*) FROM emp GROUP BY salary / 50 ORDER BY salary / 50");
        // Buckets: 50/50=1 (eve, cas(60→1), dan(70→1)), 80/50=1... compute:
        // 100/50=2, 80/50=1, 60/50=1, 70/50=1, 50/50=1 → bucket 1 ×4, 2 ×1.
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0], vec![Value::Int(1), Value::Int(4)]);
        assert_eq!(rs.rows[1], vec![Value::Int(2), Value::Int(1)]);
    }
}
