//! Logical plan rendering (EXPLAIN): shows the operator tree the executor
//! will run, in execution order from the innermost scan outward.

use std::fmt::Write as _;

use crate::ast::{JoinKind, Query, SelectItem};

/// Renders the logical plan of `q` as an indented operator tree.
///
/// The tree mirrors the executor's actual pipeline: scans and joins at the
/// bottom, then filter, grouping/aggregation, having, projection
/// (+ DISTINCT), sort, and limit.
pub fn explain(q: &Query) -> String {
    // Build the operator stack top-down (outermost first).
    let mut ops: Vec<String> = Vec::new();
    if let Some(l) = q.limit {
        ops.push(format!("Limit {l}"));
    }
    if !q.order_by.is_empty() {
        let keys: Vec<String> = q
            .order_by
            .iter()
            .map(|(e, desc)| format!("{e} {}", if *desc { "DESC" } else { "ASC" }))
            .collect();
        ops.push(format!("Sort [{}]", keys.join(", ")));
    }
    let items: Vec<String> = q.items.iter().map(ToString::to_string).collect();
    ops.push(format!(
        "Project{} [{}]",
        if q.distinct { " DISTINCT" } else { "" },
        items.join(", ")
    ));
    if let Some(h) = &q.having {
        ops.push(format!("Having {h}"));
    }
    if q.is_aggregate() {
        let keys: Vec<String> = q.group_by.iter().map(ToString::to_string).collect();
        if keys.is_empty() {
            ops.push("Aggregate (single group)".to_string());
        } else {
            ops.push(format!("Aggregate group by [{}]", keys.join(", ")));
        }
    }
    if let Some(w) = &q.where_clause {
        ops.push(format!("Filter {w}"));
    }

    let mut out = String::new();
    let mut depth = 0;
    for op in &ops {
        let _ = writeln!(out, "{}{op}", "  ".repeat(depth));
        depth += 1;
    }
    // Join tree (left-deep), innermost last.
    for join in q.joins.iter().rev() {
        let kw = match join.kind {
            JoinKind::Inner => "Join",
            JoinKind::Left => "LeftJoin",
        };
        let _ = writeln!(
            out,
            "{}{kw} {} ON {}",
            "  ".repeat(depth),
            join.table,
            join.on
        );
        depth += 1;
    }
    let _ = writeln!(out, "{}Scan {}", "  ".repeat(depth), q.from);
    for join in &q.joins {
        let _ = writeln!(out, "{}Scan {}", "  ".repeat(depth), join.table);
    }
    out
}

/// True when the query projects only `*` (useful to warn about wide scans).
pub fn is_star_only(q: &Query) -> bool {
    q.items.iter().all(|i| matches!(i, SelectItem::Star))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn simple_scan_plan() {
        let plan = explain(&parse("SELECT * FROM t").unwrap());
        assert_eq!(plan.trim(), "Project [*]\n  Scan t");
    }

    #[test]
    fn full_pipeline_plan_order() {
        let q = parse(
            "SELECT dept, COUNT(*) FROM emp WHERE age > 30 GROUP BY dept \
             HAVING COUNT(*) > 1 ORDER BY dept LIMIT 5",
        )
        .unwrap();
        let plan = explain(&q);
        let idx = |needle: &str| {
            plan.find(needle)
                .unwrap_or_else(|| panic!("missing {needle} in:\n{plan}"))
        };
        assert!(idx("Limit") < idx("Sort"));
        assert!(idx("Sort") < idx("Project"));
        assert!(idx("Project") < idx("Having"));
        assert!(idx("Having") < idx("Aggregate"));
        assert!(idx("Aggregate") < idx("Filter"));
        assert!(idx("Filter") < idx("Scan emp"));
    }

    #[test]
    fn join_plan_lists_both_scans() {
        let q = parse("SELECT a.x FROM a JOIN b ON a.id = b.id").unwrap();
        let plan = explain(&q);
        assert!(plan.contains("Join b"));
        assert!(plan.contains("Scan a"));
        assert!(plan.contains("Scan b"));
    }

    #[test]
    fn left_join_and_distinct_are_labeled() {
        let q = parse("SELECT DISTINCT a.x FROM a LEFT JOIN b ON a.id = b.id").unwrap();
        let plan = explain(&q);
        assert!(plan.contains("LeftJoin"));
        assert!(plan.contains("Project DISTINCT"));
    }

    #[test]
    fn star_detection() {
        assert!(is_star_only(&parse("SELECT * FROM t").unwrap()));
        assert!(!is_star_only(&parse("SELECT x FROM t").unwrap()));
    }
}
