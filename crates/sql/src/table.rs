//! Schemas, in-memory tables, and the catalog.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::{Result, SqlError};
use crate::value::{DataType, Value};

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name (lowercase by convention).
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Builds a schema from `(name, type)` pairs.
    pub fn new(columns: Vec<(impl Into<String>, DataType)>) -> Self {
        Schema {
            columns: columns
                .into_iter()
                .map(|(name, dtype)| ColumnDef {
                    name: name.into().to_lowercase(),
                    dtype,
                })
                .collect(),
        }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The columns in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Index of a column by (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let lower = name.to_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }
}

/// One row of values (aligned with a schema).
pub type Row = Vec<Value>;

/// An in-memory table: schema plus rows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// Column definitions.
    pub schema: Schema,
    /// Row data.
    pub rows: Vec<Row>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into().to_lowercase(),
            schema,
            rows: Vec::new(),
        }
    }

    /// Appends a row after validating arity and types (NULL always fits).
    pub fn insert(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(SqlError::Exec(format!(
                "row arity {} does not match schema arity {} of table {}",
                row.len(),
                self.schema.len(),
                self.name
            )));
        }
        for (v, c) in row.iter().zip(self.schema.columns()) {
            if let Some(dt) = v.data_type() {
                let compatible =
                    dt == c.dtype || (dt == DataType::Int && c.dtype == DataType::Float);
                if !compatible {
                    return Err(SqlError::Exec(format!(
                        "value {v} has type {dt} but column {} is {}",
                        c.name, c.dtype
                    )));
                }
            }
        }
        self.rows.push(row);
        Ok(())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All values of one column (by name).
    pub fn column_values(&self, name: &str) -> Option<Vec<&Value>> {
        let idx = self.schema.index_of(name)?;
        Some(self.rows.iter().map(|r| &r[idx]).collect())
    }
}

/// A named collection of tables.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    tables: HashMap<String, Table>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers (or replaces) a table under its own name.
    pub fn register(&mut self, table: Table) {
        self.tables.insert(table.name.clone(), table);
    }

    /// Looks up a table by (case-insensitive) name.
    pub fn get(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(&name.to_lowercase())
            .ok_or_else(|| SqlError::Plan(format!("unknown table '{name}'")))
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(&name.to_lowercase())
            .ok_or_else(|| SqlError::Plan(format!("unknown table '{name}'")))
    }

    /// Names of all registered tables (sorted for determinism).
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

/// The output of a query: a schema-less result relation with named columns.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Row>,
}

impl ResultSet {
    /// Renders the result as an aligned ASCII table (for examples/demos).
    pub fn to_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let s = match v {
                            Value::Str(s) => s.clone(),
                            other => other.to_string(),
                        };
                        widths[i] = widths[i].max(s.len());
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<w$}", w = widths[i]))
            .collect();
        out.push_str(&header.join(" | "));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("-+-"),
        );
        out.push('\n');
        for row in rendered {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, s)| format!("{s:<w$}", w = widths[i]))
                .collect();
            out.push_str(&line.join(" | "));
            out.push('\n');
        }
        out
    }

    /// True when two result sets contain the same bag of rows (order
    /// insensitive) — the standard "execution accuracy" comparison.
    pub fn same_bag(&self, other: &ResultSet) -> bool {
        if self.rows.len() != other.rows.len() {
            return false;
        }
        let key = |r: &Row| {
            r.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\u{1}")
        };
        let mut a: Vec<String> = self.rows.iter().map(key).collect();
        let mut b: Vec<String> = other.rows.iter().map(key).collect();
        a.sort();
        b.sort();
        a == b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Table {
        let mut t = Table::new(
            "People",
            Schema::new(vec![("name", DataType::Text), ("age", DataType::Int)]),
        );
        t.insert(vec![Value::Str("ada".into()), Value::Int(36)])
            .unwrap();
        t.insert(vec![Value::Str("bob".into()), Value::Null])
            .unwrap();
        t
    }

    #[test]
    fn table_name_is_lowercased() {
        assert_eq!(people().name, "people");
    }

    #[test]
    fn schema_lookup_is_case_insensitive() {
        let t = people();
        assert_eq!(t.schema.index_of("NAME"), Some(0));
        assert_eq!(t.schema.index_of("Age"), Some(1));
        assert_eq!(t.schema.index_of("missing"), None);
    }

    #[test]
    fn insert_validates_arity() {
        let mut t = people();
        assert!(t.insert(vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn insert_validates_types() {
        let mut t = people();
        assert!(t.insert(vec![Value::Int(5), Value::Int(1)]).is_err());
        // NULL fits anywhere.
        assert!(t.insert(vec![Value::Null, Value::Null]).is_ok());
    }

    #[test]
    fn int_widens_into_float_column() {
        let mut t = Table::new("m", Schema::new(vec![("x", DataType::Float)]));
        assert!(t.insert(vec![Value::Int(3)]).is_ok());
    }

    #[test]
    fn column_values_projects() {
        let t = people();
        let ages = t.column_values("age").unwrap();
        assert_eq!(ages.len(), 2);
        assert_eq!(*ages[0], Value::Int(36));
        assert!(ages[1].is_null());
    }

    #[test]
    fn catalog_roundtrip() {
        let mut c = Catalog::new();
        c.register(people());
        assert!(c.get("PEOPLE").is_ok());
        assert!(c.get("nope").is_err());
        assert_eq!(c.table_names(), vec!["people"]);
    }

    #[test]
    fn result_set_bag_comparison_ignores_order() {
        let a = ResultSet {
            columns: vec!["x".into()],
            rows: vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        };
        let b = ResultSet {
            columns: vec!["y".into()],
            rows: vec![vec![Value::Int(2)], vec![Value::Int(1)]],
        };
        assert!(a.same_bag(&b));
        let c = ResultSet {
            columns: vec!["x".into()],
            rows: vec![vec![Value::Int(1)], vec![Value::Int(1)]],
        };
        assert!(!a.same_bag(&c));
    }

    #[test]
    fn ascii_rendering_contains_all_cells() {
        let t = people();
        let rs = ResultSet {
            columns: vec!["name".into(), "age".into()],
            rows: t.rows,
        };
        let s = rs.to_ascii();
        assert!(s.contains("ada"));
        assert!(s.contains("36"));
        assert!(s.contains("NULL"));
    }
}
