//! Abstract syntax tree for the supported SQL subset, plus the canonical
//! printer used for exact-match comparison in the text-to-SQL evaluation.

use std::fmt;

use crate::value::Value;

/// Binary operators, in increasing precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Logical OR.
    Or,
    /// Logical AND.
    And,
    /// Equality.
    Eq,
    /// Inequality.
    NotEq,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    LtEq,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    GtEq,
    /// Addition / string concatenation.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl BinOp {
    /// The SQL spelling.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinOp::Or => "OR",
            BinOp::And => "AND",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// COUNT — with `None` argument this is `COUNT(*)`.
    Count,
    /// SUM over non-null values.
    Sum,
    /// AVG over non-null values.
    Avg,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl AggFunc {
    /// The SQL spelling.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }

    /// Parses an aggregate name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        match name.to_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A possibly-qualified column reference.
    Column {
        /// Table name or alias qualifier.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical negation `NOT e`.
    Not(Box<Expr>),
    /// Arithmetic negation `-e`.
    Neg(Box<Expr>),
    /// Aggregate call.
    Agg {
        /// Which aggregate.
        func: AggFunc,
        /// Argument; `None` means `COUNT(*)`.
        arg: Option<Box<Expr>>,
        /// DISTINCT modifier (COUNT only).
        distinct: bool,
    },
    /// Scalar function call (UPPER, LOWER, LENGTH, ABS).
    Func {
        /// Function name (lowercase).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `e IS [NOT] NULL`.
    IsNull {
        /// Operand.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `e [NOT] IN (v1, v2, ...)`.
    InList {
        /// Operand.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `e [NOT] BETWEEN lo AND hi`.
    Between {
        /// Operand.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// `e [NOT] LIKE pattern`.
    Like {
        /// Operand.
        expr: Box<Expr>,
        /// Pattern with `%`/`_` wildcards.
        pattern: Box<Expr>,
        /// True for `NOT LIKE`.
        negated: bool,
    },
}

impl Expr {
    /// Convenience constructor for a bare column.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            table: None,
            name: name.to_lowercase(),
        }
    }

    /// Convenience constructor for a qualified column.
    pub fn qcol(table: &str, name: &str) -> Expr {
        Expr::Column {
            table: Some(table.to_lowercase()),
            name: name.to_lowercase(),
        }
    }

    /// Convenience constructor for a binary operation.
    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// True when the expression contains an aggregate call anywhere.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Literal(_) | Expr::Column { .. } => false,
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Not(e) | Expr::Neg(e) => e.contains_aggregate(),
            Expr::Func { args, .. } => args.iter().any(Expr::contains_aggregate),
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Column { table, name } => match table {
                Some(t) => write!(f, "{t}.{name}"),
                None => write!(f, "{name}"),
            },
            Expr::Binary { op, left, right } => {
                // Fully parenthesized canonical form: deterministic and
                // unambiguous, which is what exact-match needs.
                write!(f, "({left} {} {right})", op.symbol())
            }
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::Agg {
                func,
                arg,
                distinct,
            } => match arg {
                None => write!(f, "{}(*)", func.name()),
                Some(a) if *distinct => write!(f, "{}(DISTINCT {a})", func.name()),
                Some(a) => write!(f, "{}({a})", func.name()),
            },
            Expr::Func { name, args } => {
                let parts: Vec<String> = args.iter().map(ToString::to_string).collect();
                write!(f, "{}({})", name.to_uppercase(), parts.join(", "))
            }
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let parts: Vec<String> = list.iter().map(ToString::to_string).collect();
                write!(
                    f,
                    "({expr} {}IN ({}))",
                    if *negated { "NOT " } else { "" },
                    parts.join(", ")
                )
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "({expr} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "({expr} {}LIKE {pattern})",
                if *negated { "NOT " } else { "" }
            ),
        }
    }
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Star,
    /// An expression with an optional alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional `AS alias`.
        alias: Option<String>,
    },
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Star => write!(f, "*"),
            SelectItem::Expr { expr, alias } => match alias {
                Some(a) => write!(f, "{expr} AS {a}"),
                None => write!(f, "{expr}"),
            },
        }
    }
}

/// A table reference with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Base table name.
    pub name: String,
    /// Optional alias.
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is addressed by in the query.
    pub fn effective_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.alias {
            Some(a) => write!(f, "{} AS {a}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// Join flavors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// INNER JOIN: only matching row pairs.
    Inner,
    /// LEFT JOIN: unmatched left rows survive with NULL right columns.
    Left,
}

/// A JOIN clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Join flavor.
    pub kind: JoinKind,
    /// Joined table.
    pub table: TableRef,
    /// Join condition.
    pub on: Expr,
}

/// A SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// SELECT DISTINCT flag.
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// Base table.
    pub from: TableRef,
    /// INNER JOINs, in order.
    pub joins: Vec<Join>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY expressions with descending flags.
    pub order_by: Vec<(Expr, bool)>,
    /// LIMIT row count.
    pub limit: Option<usize>,
}

impl Query {
    /// A minimal `SELECT * FROM name` query for building programmatically.
    pub fn select_star(table: &str) -> Query {
        Query {
            distinct: false,
            items: vec![SelectItem::Star],
            from: TableRef {
                name: table.to_lowercase(),
                alias: None,
            },
            joins: vec![],
            where_clause: None,
            group_by: vec![],
            having: None,
            order_by: vec![],
            limit: None,
        }
    }

    /// True when any select item, HAVING, or ORDER BY uses an aggregate, or
    /// GROUP BY is present — i.e. the query needs the aggregate pipeline.
    pub fn is_aggregate(&self) -> bool {
        !self.group_by.is_empty()
            || self.items.iter().any(|i| match i {
                SelectItem::Star => false,
                SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            })
            || self
                .having
                .as_ref()
                .map(Expr::contains_aggregate)
                .unwrap_or(false)
            || self.order_by.iter().any(|(e, _)| e.contains_aggregate())
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let items: Vec<String> = self.items.iter().map(ToString::to_string).collect();
        write!(
            f,
            "SELECT {}{} FROM {}",
            if self.distinct { "DISTINCT " } else { "" },
            items.join(", "),
            self.from
        )?;
        for j in &self.joins {
            let kw = match j.kind {
                JoinKind::Inner => "JOIN",
                JoinKind::Left => "LEFT JOIN",
            };
            write!(f, " {kw} {} ON {}", j.table, j.on)?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            let gs: Vec<String> = self.group_by.iter().map(ToString::to_string).collect();
            write!(f, " GROUP BY {}", gs.join(", "))?;
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            let os: Vec<String> = self
                .order_by
                .iter()
                .map(|(e, desc)| format!("{e}{}", if *desc { " DESC" } else { " ASC" }))
                .collect();
            write!(f, " ORDER BY {}", os.join(", "))?;
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_canonical_query() {
        let q = Query {
            distinct: false,
            items: vec![
                SelectItem::Expr {
                    expr: Expr::col("name"),
                    alias: None,
                },
                SelectItem::Expr {
                    expr: Expr::Agg {
                        func: AggFunc::Count,
                        arg: None,
                        distinct: false,
                    },
                    alias: Some("n".into()),
                },
            ],
            from: TableRef {
                name: "people".into(),
                alias: None,
            },
            joins: vec![],
            where_clause: Some(Expr::binary(
                BinOp::Gt,
                Expr::col("age"),
                Expr::Literal(Value::Int(30)),
            )),
            group_by: vec![Expr::col("name")],
            having: None,
            order_by: vec![(Expr::col("name"), false)],
            limit: Some(5),
        };
        assert_eq!(
            q.to_string(),
            "SELECT name, COUNT(*) AS n FROM people WHERE (age > 30) \
             GROUP BY name ORDER BY name ASC LIMIT 5"
        );
    }

    #[test]
    fn aggregate_detection() {
        let q = Query::select_star("t");
        assert!(!q.is_aggregate());
        let mut q2 = Query::select_star("t");
        q2.items = vec![SelectItem::Expr {
            expr: Expr::Agg {
                func: AggFunc::Sum,
                arg: Some(Box::new(Expr::col("x"))),
                distinct: false,
            },
            alias: None,
        }];
        assert!(q2.is_aggregate());
    }

    #[test]
    fn contains_aggregate_recurses() {
        let e = Expr::binary(
            BinOp::Add,
            Expr::Literal(Value::Int(1)),
            Expr::Agg {
                func: AggFunc::Max,
                arg: Some(Box::new(Expr::col("x"))),
                distinct: false,
            },
        );
        assert!(e.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
    }

    #[test]
    fn table_ref_effective_name() {
        let t = TableRef {
            name: "people".into(),
            alias: Some("p".into()),
        };
        assert_eq!(t.effective_name(), "p");
    }
}
