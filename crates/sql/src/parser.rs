//! Recursive-descent parser for the supported SQL subset.

use crate::ast::{AggFunc, BinOp, Expr, Join, JoinKind, Query, SelectItem, TableRef};
use crate::error::{Result, SqlError};
use crate::lexer::{lex, Token};
use crate::value::Value;

/// Parses one SELECT statement (an optional trailing `;` is allowed).
pub fn parse(sql: &str) -> Result<Query> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.eat_symbol(";"); // optional
    if p.pos != p.tokens.len() {
        return Err(SqlError::Parse(format!(
            "unexpected trailing input at token {:?}",
            p.tokens[p.pos]
        )));
    }
    Ok(q)
}

/// Parses a standalone expression (used by the fact-checking claim mapper).
pub fn parse_expr(text: &str) -> Result<Expr> {
    let tokens = lex(text)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    if p.pos != p.tokens.len() {
        return Err(SqlError::Parse("unexpected trailing input".into()));
    }
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

const SCALAR_FUNCS: [&str; 5] = ["upper", "lower", "length", "abs", "round"];

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Keyword(k)) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_symbol(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(sym)) if *sym == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: &str) -> Result<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected '{s}', found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(name)) => Ok(name),
            other => Err(SqlError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn query(&mut self) -> Result<Query> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let mut items = vec![self.select_item()?];
        while self.eat_symbol(",") {
            items.push(self.select_item()?);
        }
        self.expect_keyword("FROM")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            let inner = self.eat_keyword("INNER");
            let left = !inner && self.eat_keyword("LEFT");
            if self.eat_keyword("JOIN") {
                let kind = if left {
                    JoinKind::Left
                } else {
                    JoinKind::Inner
                };
                let table = self.table_ref()?;
                self.expect_keyword("ON")?;
                let on = self.expr()?;
                joins.push(Join { kind, table, on });
            } else if inner || left {
                return Err(SqlError::Parse(
                    "INNER/LEFT must be followed by JOIN".into(),
                ));
            } else {
                break;
            }
        }
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.expr()?);
            while self.eat_symbol(",") {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_keyword("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let e = self.expr()?;
                let desc = if self.eat_keyword("DESC") {
                    true
                } else {
                    self.eat_keyword("ASC");
                    false
                };
                order_by.push((e, desc));
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("LIMIT") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                other => {
                    return Err(SqlError::Parse(format!(
                        "expected non-negative LIMIT count, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(Query {
            distinct,
            items,
            from,
            joins,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat_symbol("*") {
            return Ok(SelectItem::Star);
        }
        let expr = self.expr()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.ident()?)
        } else if let Some(Token::Ident(_)) = self.peek() {
            // Bare alias: `SELECT age a FROM ...`
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let name = self.ident()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.ident()?)
        } else if let Some(Token::Ident(_)) = self.peek() {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    /// expr := or_expr
    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::binary(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = Expr::binary(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_keyword("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // Postfix predicates: IS [NOT] NULL, [NOT] IN, [NOT] BETWEEN, [NOT] LIKE.
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated = self.eat_keyword("NOT");
        if self.eat_keyword("IN") {
            self.expect_symbol("(")?;
            let mut list = vec![self.expr()?];
            while self.eat_symbol(",") {
                list.push(self.expr()?);
            }
            self.expect_symbol(")")?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_keyword("BETWEEN") {
            let low = self.additive()?;
            self.expect_keyword("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_keyword("LIKE") {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(SqlError::Parse(
                "NOT must be followed by IN, BETWEEN, or LIKE here".into(),
            ));
        }
        let op = match self.peek() {
            Some(Token::Symbol("=")) => Some(BinOp::Eq),
            Some(Token::Symbol("<>")) => Some(BinOp::NotEq),
            Some(Token::Symbol("<")) => Some(BinOp::Lt),
            Some(Token::Symbol("<=")) => Some(BinOp::LtEq),
            Some(Token::Symbol(">")) => Some(BinOp::Gt),
            Some(Token::Symbol(">=")) => Some(BinOp::GtEq),
            _ => None,
        };
        match op {
            Some(op) => {
                self.pos += 1;
                let right = self.additive()?;
                Ok(Expr::binary(op, left, right))
            }
            None => Ok(left),
        }
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            if self.eat_symbol("+") {
                let right = self.multiplicative()?;
                left = Expr::binary(BinOp::Add, left, right);
            } else if self.eat_symbol("-") {
                let right = self.multiplicative()?;
                left = Expr::binary(BinOp::Sub, left, right);
            } else {
                return Ok(left);
            }
        }
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            if self.eat_symbol("*") {
                let right = self.unary()?;
                left = Expr::binary(BinOp::Mul, left, right);
            } else if self.eat_symbol("/") {
                let right = self.unary()?;
                left = Expr::binary(BinOp::Div, left, right);
            } else {
                return Ok(left);
            }
        }
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_symbol("-") {
            let inner = self.unary()?;
            // Fold negation of numeric literals for canonical output.
            return Ok(match inner {
                Expr::Literal(Value::Int(n)) => Expr::Literal(Value::Int(-n)),
                Expr::Literal(Value::Float(x)) => Expr::Literal(Value::Float(-x)),
                other => Expr::Neg(Box::new(other)),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.next() {
            Some(Token::Int(n)) => Ok(Expr::Literal(Value::Int(n))),
            Some(Token::Float(x)) => Ok(Expr::Literal(Value::Float(x))),
            Some(Token::Str(s)) => Ok(Expr::Literal(Value::Str(s))),
            Some(Token::Keyword(k)) if k == "NULL" => Ok(Expr::Literal(Value::Null)),
            Some(Token::Keyword(k)) if k == "TRUE" => Ok(Expr::Literal(Value::Bool(true))),
            Some(Token::Keyword(k)) if k == "FALSE" => Ok(Expr::Literal(Value::Bool(false))),
            Some(Token::Symbol("(")) => {
                let e = self.expr()?;
                self.expect_symbol(")")?;
                Ok(e)
            }
            Some(Token::Keyword(k)) if AggFunc::from_name(&k).is_some() => {
                let func = AggFunc::from_name(&k).unwrap();
                self.expect_symbol("(")?;
                if self.eat_symbol("*") {
                    self.expect_symbol(")")?;
                    if func != AggFunc::Count {
                        return Err(SqlError::Parse(format!("{}(*) is not valid", func.name())));
                    }
                    return Ok(Expr::Agg {
                        func,
                        arg: None,
                        distinct: false,
                    });
                }
                let distinct = self.eat_keyword("DISTINCT");
                let arg = self.expr()?;
                self.expect_symbol(")")?;
                Ok(Expr::Agg {
                    func,
                    arg: Some(Box::new(arg)),
                    distinct,
                })
            }
            Some(Token::Ident(name)) => {
                // Scalar function call?
                if SCALAR_FUNCS.contains(&name.as_str()) && self.eat_symbol("(") {
                    let mut args = Vec::new();
                    if !self.eat_symbol(")") {
                        args.push(self.expr()?);
                        while self.eat_symbol(",") {
                            args.push(self.expr()?);
                        }
                        self.expect_symbol(")")?;
                    }
                    return Ok(Expr::Func { name, args });
                }
                // Qualified column?
                if self.eat_symbol(".") {
                    let col = self.ident()?;
                    return Ok(Expr::Column {
                        table: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column { table: None, name })
            }
            other => Err(SqlError::Parse(format!(
                "unexpected token {other:?} in expression"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(sql: &str) -> String {
        parse(sql).unwrap().to_string()
    }

    #[test]
    fn simple_select() {
        assert_eq!(roundtrip("select * from people"), "SELECT * FROM people");
    }

    #[test]
    fn where_with_precedence() {
        // AND binds tighter than OR.
        let q = roundtrip("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
        assert_eq!(
            q,
            "SELECT * FROM t WHERE ((a = 1) OR ((b = 2) AND (c = 3)))"
        );
    }

    #[test]
    fn arithmetic_precedence() {
        let q = roundtrip("SELECT a + b * c FROM t");
        assert_eq!(q, "SELECT (a + (b * c)) FROM t");
    }

    #[test]
    fn aggregates_and_group_by() {
        let q = roundtrip(
            "SELECT dept, COUNT(*), AVG(salary) FROM emp GROUP BY dept HAVING COUNT(*) > 2",
        );
        assert_eq!(
            q,
            "SELECT dept, COUNT(*), AVG(salary) FROM emp GROUP BY dept HAVING (COUNT(*) > 2)"
        );
    }

    #[test]
    fn count_distinct() {
        let q = roundtrip("SELECT COUNT(DISTINCT name) FROM t");
        assert_eq!(q, "SELECT COUNT(DISTINCT name) FROM t");
    }

    #[test]
    fn join_with_aliases() {
        let q = roundtrip(
            "SELECT p.name, o.total FROM people AS p JOIN orders o ON p.id = o.person_id",
        );
        assert_eq!(
            q,
            "SELECT p.name, o.total FROM people AS p JOIN orders AS o ON (p.id = o.person_id)"
        );
    }

    #[test]
    fn order_limit() {
        let q = roundtrip("SELECT name FROM t ORDER BY age DESC, name LIMIT 10");
        assert_eq!(q, "SELECT name FROM t ORDER BY age DESC, name ASC LIMIT 10");
    }

    #[test]
    fn predicates_in_between_like_isnull() {
        let q = roundtrip(
            "SELECT * FROM t WHERE a IN (1, 2) AND b BETWEEN 0 AND 5 \
             AND c LIKE 'x%' AND d IS NOT NULL AND e NOT IN (3)",
        );
        assert!(q.contains("(a IN (1, 2))"));
        assert!(q.contains("(b BETWEEN 0 AND 5)"));
        assert!(q.contains("(c LIKE 'x%')"));
        assert!(q.contains("(d IS NOT NULL)"));
        assert!(q.contains("(e NOT IN (3))"));
    }

    #[test]
    fn negative_literals_fold() {
        let q = roundtrip("SELECT * FROM t WHERE a > -5");
        assert_eq!(q, "SELECT * FROM t WHERE (a > -5)");
    }

    #[test]
    fn scalar_functions() {
        let q = roundtrip("SELECT upper(name), length(name) FROM t");
        assert_eq!(q, "SELECT UPPER(name), LENGTH(name) FROM t");
    }

    #[test]
    fn bare_alias() {
        let q = roundtrip("SELECT age a FROM people p");
        assert_eq!(q, "SELECT age AS a FROM people AS p");
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse("SELECT * FROM t;").is_ok());
    }

    #[test]
    fn error_cases() {
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("SELECT * FROM t LIMIT x").is_err());
        assert!(parse("SELECT * FROM t extra garbage ,").is_err());
        assert!(parse("SELECT SUM(*) FROM t").is_err());
        assert!(parse("SELECT * FROM t INNER WHERE a = 1").is_err());
    }

    #[test]
    fn parse_is_stable_under_reprint() {
        // parse -> print -> parse -> print is a fixed point.
        for sql in [
            "SELECT * FROM t WHERE a = 1 AND b < 2 OR NOT c = 3",
            "SELECT dept, SUM(x) AS s FROM emp GROUP BY dept ORDER BY s DESC LIMIT 3",
            "SELECT p.a FROM people p JOIN orders o ON p.id = o.pid WHERE o.total >= 10.5",
        ] {
            let once = parse(sql).unwrap().to_string();
            let twice = parse(&once).unwrap().to_string();
            assert_eq!(once, twice);
        }
    }

    #[test]
    fn parse_expr_standalone() {
        let e = parse_expr("age >= 21 AND name LIKE 'a%'").unwrap();
        assert!(e.to_string().contains("LIKE"));
    }
}
