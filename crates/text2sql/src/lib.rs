//! # lm4db-text2sql
//!
//! Natural-language-to-SQL semantic parsing — the most classical LM-for-data
//! application the tutorial surveys (§2.5). The crate provides:
//!
//! * a **Spider-style workload generator** over the cross-domain tables of
//!   `lm4db-corpus`, stratified into four complexity tiers ([`workload`]);
//! * a **neural semantic parser**: a GPT-style LM fine-tuned on
//!   `question → SQL` pairs, decoded by beam search ([`SemanticParser`]);
//! * **PICARD-style constrained decoding**: a word-trie of the full
//!   candidate query space vetoes every token that cannot extend to valid
//!   SQL ([`SqlTrie`], [`TrieConstraint`]);
//! * a **template baseline** representing pre-LM keyword systems
//!   ([`TemplateBaseline`]);
//! * **evaluation** by exact-match and execution accuracy ([`eval`]), plus
//!   question paraphrasing to probe robustness ([`paraphrase`]).

#![warn(missing_docs)]

pub mod baseline;
pub mod eval;
pub mod paraphrase;
pub mod parser;
pub mod trie;
pub mod workload;

/// End-of-word marker of the BPE tokenizer (re-exported for decoders).
pub use lm4db_tokenize::bpe::EOW;

pub use baseline::TemplateBaseline;
pub use eval::{evaluate, score_one, Metrics};
pub use paraphrase::{paraphrase_examples, paraphrase_question};
pub use parser::{decode_units, DecodeMode, Prediction, SemanticParser, TrieConstraint};
pub use trie::{enumerate_queries, SqlTrie};
pub use workload::{generate, Example, Tier, THRESHOLDS};
