//! The candidate-query space: every SQL query the schema-specialized
//! template grammar can produce, stored as a word-level trie. This is what
//! makes PICARD-style constrained decoding *complete* here: a decoded
//! token sequence is valid iff it walks a path of this trie.

use std::collections::HashMap;

use lm4db_corpus::Domain;

use crate::workload::THRESHOLDS;

/// A trie over lowercase word units (the output of
/// `lm4db_tokenize::pretokenize` applied to a SQL string).
#[derive(Debug, Default)]
pub struct SqlTrie {
    root: Node,
    size: usize,
}

#[derive(Debug, Default)]
struct Node {
    children: HashMap<String, Node>,
    /// The canonical SQL string, present iff a query ends here.
    terminal: Option<String>,
}

impl SqlTrie {
    /// Builds the trie for every query in the template space of `domain`.
    pub fn for_domain(domain: &Domain) -> Self {
        let mut trie = SqlTrie::default();
        for sql in enumerate_queries(domain) {
            trie.insert(&sql);
        }
        trie
    }

    /// Inserts one SQL string (unit sequence = pretokenized form).
    pub fn insert(&mut self, sql: &str) {
        let units = lm4db_tokenize::pretokenize::pretokenize(sql);
        let mut node = &mut self.root;
        for u in &units {
            node = node.children.entry(u.clone()).or_default();
        }
        if node.terminal.is_none() {
            self.size += 1;
        }
        node.terminal = Some(sql.to_string());
    }

    /// Number of distinct queries stored.
    pub fn len(&self) -> usize {
        self.size
    }

    /// True when no queries are stored.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    fn walk(&self, units: &[String]) -> Option<&Node> {
        let mut node = &self.root;
        for u in units {
            node = node.children.get(u)?;
        }
        Some(node)
    }

    /// Is `units` (+ an optional partial last word) a prefix of some stored
    /// query?
    pub fn is_valid_prefix(&self, units: &[String], partial: Option<&str>) -> bool {
        let Some(node) = self.walk(units) else {
            return false;
        };
        match partial {
            None => true,
            Some(p) => node.children.keys().any(|w| w.starts_with(p)),
        }
    }

    /// May a query legally end after `units`?
    pub fn is_complete(&self, units: &[String]) -> bool {
        self.walk(units)
            .map(|n| n.terminal.is_some())
            .unwrap_or(false)
    }

    /// The canonical SQL for an exactly-matching unit sequence.
    pub fn lookup(&self, units: &[String]) -> Option<&str> {
        self.walk(units).and_then(|n| n.terminal.as_deref())
    }

    /// The allowed next words after `units` (for diagnostics).
    pub fn next_words(&self, units: &[String]) -> Vec<&str> {
        match self.walk(units) {
            Some(n) => {
                let mut words: Vec<&str> = n.children.keys().map(String::as_str).collect();
                words.sort_unstable();
                words
            }
            None => vec![],
        }
    }

    /// Iterates over every stored SQL string (for exhaustive checks).
    pub fn all_queries(&self) -> Vec<&str> {
        let mut out = Vec::with_capacity(self.size);
        fn rec<'a>(node: &'a Node, out: &mut Vec<&'a str>) {
            if let Some(sql) = &node.terminal {
                out.push(sql);
            }
            let mut keys: Vec<&String> = node.children.keys().collect();
            keys.sort();
            for k in keys {
                rec(&node.children[k], out);
            }
        }
        rec(&self.root, &mut out);
        out
    }
}

/// Enumerates the full template query space for a domain — the same
/// templates `workload::generate` samples from.
pub fn enumerate_queries(domain: &Domain) -> Vec<String> {
    let table = &domain.table.name;
    let key = &domain.key_col;
    let (jcol, lcol) = &domain.join_on;
    let lookup = &domain.lookup.name;
    let mut out = Vec::new();

    out.push(format!("SELECT {key} FROM {table}"));
    for tcol in &domain.text_cols {
        for v in domain.distinct_text_values(tcol) {
            out.push(format!("SELECT {key} FROM {table} WHERE ({tcol} = '{v}')"));
            out.push(format!(
                "SELECT COUNT(*) FROM {table} WHERE ({tcol} = '{v}')"
            ));
        }
    }
    for ncol in &domain.num_cols {
        for t in THRESHOLDS {
            for op in ["<", ">"] {
                out.push(format!("SELECT {key} FROM {table} WHERE ({ncol} {op} {t})"));
            }
        }
        for gcol in &domain.text_cols {
            out.push(format!(
                "SELECT {gcol}, AVG({ncol}) FROM {table} GROUP BY {gcol}"
            ));
        }
        for dir in ["DESC", "ASC"] {
            out.push(format!(
                "SELECT {key} FROM {table} ORDER BY {ncol} {dir} LIMIT 1"
            ));
        }
        out.push(format!("SELECT MAX({ncol}) FROM {table}"));
    }
    for c in domain.lookup.schema.columns() {
        if &c.name == lcol {
            continue;
        }
        for t in THRESHOLDS {
            out.push(format!(
                "SELECT t.{key} FROM {table} AS t JOIN {lookup} AS j ON (t.{jcol} = j.{lcol}) \
                 WHERE (j.{} > {t})",
                c.name
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm4db_corpus::{make_domain, DomainKind};
    use lm4db_sql::parse;
    use lm4db_tokenize::pretokenize::pretokenize;

    fn trie() -> (lm4db_corpus::Domain, SqlTrie) {
        let d = make_domain(DomainKind::Employees, 30, 7);
        let t = SqlTrie::for_domain(&d);
        (d, t)
    }

    #[test]
    fn trie_contains_hundreds_of_candidates() {
        let (_, t) = trie();
        assert!(t.len() > 50, "only {} candidates", t.len());
    }

    #[test]
    fn every_candidate_parses_and_is_canonical() {
        let (_, t) = trie();
        for sql in t.all_queries() {
            let printed = parse(sql).expect("candidate must parse").to_string();
            assert_eq!(printed, sql, "candidate not canonical");
        }
    }

    #[test]
    fn workload_gold_queries_are_in_the_trie() {
        let (d, t) = trie();
        for ex in crate::workload::generate(&d, 60, 3) {
            let units = pretokenize(&ex.sql);
            assert_eq!(
                t.lookup(&units),
                Some(ex.sql.as_str()),
                "gold missing from trie: {}",
                ex.sql
            );
        }
    }

    #[test]
    fn prefixes_validate_and_garbage_does_not() {
        let (_, t) = trie();
        let units = |s: &str| pretokenize(s);
        assert!(t.is_valid_prefix(&units("select name from"), None));
        assert!(t.is_valid_prefix(&units("select"), Some("na")));
        assert!(!t.is_valid_prefix(&units("select banana"), None));
        assert!(!t.is_valid_prefix(&units("from select"), None));
        assert!(!t.is_valid_prefix(&units("select name from"), Some("zzz")));
    }

    #[test]
    fn completeness_only_at_query_ends() {
        let (_, t) = trie();
        let full = pretokenize("select name from employees");
        assert!(t.is_complete(&full));
        let partial = pretokenize("select name from");
        assert!(!t.is_complete(&partial));
    }

    #[test]
    fn next_words_from_root_is_select() {
        let (_, t) = trie();
        assert_eq!(t.next_words(&[]), vec!["select"]);
    }

    #[test]
    fn lookup_recovers_original_casing() {
        let (_, t) = trie();
        let units = pretokenize("SELECT name FROM employees");
        assert_eq!(t.lookup(&units), Some("SELECT name FROM employees"));
    }
}
