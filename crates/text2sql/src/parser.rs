//! The neural semantic parser: a GPT-style causal LM fine-tuned on
//! `question → SQL` pairs, decoded with or without the grammar constraint.
//!
//! The constrained mode is the PICARD recipe (Scholak et al., EMNLP 2021):
//! beam search in which every candidate token is checked against an
//! incremental validity oracle — here, prefix membership in the
//! schema-specialized [`SqlTrie`] — so the parser can only emit executable
//! SQL.

use lm4db_serve::{Engine, EngineOptions, Request};
use lm4db_tokenize::{vocab::SPECIAL_TOKENS, Bpe, Tokenizer, BOS, EOS};
use lm4db_transformer::{Constraint, GptModel, Hypothesis, ModelConfig};

use crate::trie::SqlTrie;
use crate::workload::Example;

/// Splits generated BPE ids into complete word units plus an optional
/// trailing partial word.
pub fn decode_units(bpe: &Bpe, ids: &[usize]) -> (Vec<String>, Option<String>) {
    let mut units = Vec::new();
    let mut current = String::new();
    for &id in ids {
        if id < SPECIAL_TOKENS.len() {
            continue;
        }
        let tok = bpe.vocab().token(id);
        match tok.strip_suffix(crate::EOW) {
            Some(stem) => {
                current.push_str(stem);
                units.push(std::mem::take(&mut current));
            }
            None => current.push_str(tok),
        }
    }
    let partial = if current.is_empty() {
        None
    } else {
        Some(current)
    };
    (units, partial)
}

/// The PICARD-style token-level validity oracle.
pub struct TrieConstraint<'a> {
    bpe: &'a Bpe,
    trie: &'a SqlTrie,
    /// Length of the prompt prefix; only tokens after it are generated SQL.
    prompt_len: usize,
}

impl<'a> TrieConstraint<'a> {
    /// Builds a constraint over any word trie (reused by the CodexDB-style
    /// synthesizer for its pipeline DSL).
    pub fn new(bpe: &'a Bpe, trie: &'a SqlTrie, prompt_len: usize) -> Self {
        TrieConstraint {
            bpe,
            trie,
            prompt_len,
        }
    }
}

/// True when `suffix` can be spelled by vocabulary tokens such that the
/// word ends with an end-of-word token — i.e. a partially decoded unit can
/// actually be finished. Dynamic program over byte positions of `suffix`.
fn suffix_completable(bpe: &Bpe, suffix: &str) -> bool {
    let n = suffix.len();
    if n == 0 {
        return false;
    }
    // ok[i]: suffix[i..] splits into vocab tokens with the last one EOW.
    let mut ok = vec![false; n + 1];
    for i in (0..n).rev() {
        if !suffix.is_char_boundary(i) {
            continue;
        }
        for j in (i + 1)..=n {
            if !suffix.is_char_boundary(j) {
                continue;
            }
            let piece = &suffix[i..j];
            let fits = if j == n {
                bpe.vocab().id(&format!("{piece}{}", crate::EOW)).is_some()
            } else {
                ok[j] && bpe.vocab().id(piece).is_some()
            };
            if fits {
                ok[i] = true;
                break;
            }
        }
    }
    ok[0]
}

impl Constraint for TrieConstraint<'_> {
    fn allowed(&self, prefix: &[usize], token: usize) -> bool {
        let generated = &prefix[self.prompt_len.min(prefix.len())..];
        if token == EOS {
            let (units, partial) = decode_units(self.bpe, generated);
            return partial.is_none() && self.trie.is_complete(&units);
        }
        if token < SPECIAL_TOKENS.len() {
            return false;
        }
        let mut ids = generated.to_vec();
        ids.push(token);
        let (units, partial) = decode_units(self.bpe, &ids);
        match partial.as_deref() {
            None => self.trie.is_valid_prefix(&units, None),
            // A partial word must not only prefix some next unit — the
            // remainder must be spellable with vocab tokens, or the beam
            // would be admitted into a dead end it can never complete
            // (e.g. a bare ">" token when only "></w>" finishes the word).
            Some(p) => self.trie.next_words(&units).iter().any(|w| {
                w.len() > p.len() && w.starts_with(p) && suffix_completable(self.bpe, &w[p.len()..])
            }),
        }
    }
}

/// The engine-native form of the oracle: one vocabulary-wide allow table
/// per decode step. Byte-for-byte the same veto set as
/// [`Constraint::allowed`] — the tests pin the two token by token — but
/// the per-step trie state (`decode_units` of the generated prefix, the
/// sorted `next_words` frontier, completability of the current node) is
/// computed **once** per step instead of once per candidate token, which
/// is what makes grammar-constrained decoding cheap enough to run inside
/// the engine's speculative draft/verify loop.
impl lm4db_transformer::TokenMask for TrieConstraint<'_> {
    fn fill(&self, prefix: &[usize], mask: &mut [bool]) {
        let generated = &prefix[self.prompt_len.min(prefix.len())..];
        let (units, partial) = decode_units(self.bpe, generated);
        let nexts = self.trie.next_words(&units);
        let p = partial.as_deref().unwrap_or("");
        if partial.is_none() && self.trie.is_complete(&units) {
            mask[EOS] = true;
        }
        let vocab = self.bpe.vocab();
        for (id, slot) in mask.iter_mut().enumerate().skip(SPECIAL_TOKENS.len()) {
            let tok = vocab.token(id);
            match tok.strip_suffix(crate::EOW) {
                // Token finishes the current word: the completed word must
                // be on the trie frontier (`nexts` is sorted).
                Some(stem) => {
                    let word = format!("{p}{stem}");
                    *slot = nexts.binary_search(&word.as_str()).is_ok();
                }
                // Token extends the partial word: some frontier word must
                // continue through it and stay spellable to an EOW token.
                None => {
                    let cand = format!("{p}{tok}");
                    *slot = nexts.iter().any(|w| {
                        w.len() > cand.len()
                            && w.starts_with(&cand)
                            && suffix_completable(self.bpe, &w[cand.len()..])
                    });
                }
            }
        }
    }
}

/// Decoding mode for [`SemanticParser::predict`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeMode {
    /// Grammar-constrained beam search (PICARD).
    Constrained,
    /// Plain beam search; output may be invalid SQL.
    Unconstrained,
}

/// A prediction: the recovered canonical SQL (when the output walks the
/// trie) and the raw decoded text either way.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Canonical SQL if the decoded units form a known query.
    pub sql: Option<String>,
    /// Raw decoded word units joined with spaces.
    pub raw: String,
}

/// GPT fine-tuned for text-to-SQL over one domain.
pub struct SemanticParser {
    gpt: GptModel,
    bpe: Bpe,
    trie: SqlTrie,
    beam_width: usize,
    max_new: usize,
    /// Decode through the int8 quantized engine path.
    quantized: bool,
}

impl SemanticParser {
    /// Builds tokenizer + model from training examples and the candidate
    /// trie. The BPE vocabulary is trained on both the pair texts and the
    /// full candidate space so constrained decoding can reach every query.
    pub fn new(
        cfg: ModelConfig,
        train_examples: &[Example],
        trie: SqlTrie,
        seed: u64,
        bpe_vocab: usize,
    ) -> Self {
        let mut texts: Vec<String> = train_examples.iter().map(Self::serialize).collect();
        for sql in trie.all_queries() {
            texts.push(sql.to_lowercase());
        }
        let bpe = Bpe::train(texts.iter().map(String::as_str), bpe_vocab);
        let cfg = ModelConfig {
            vocab_size: bpe.vocab().len(),
            ..cfg
        };
        let gpt = GptModel::new(cfg, seed);
        SemanticParser {
            gpt,
            bpe,
            trie,
            beam_width: 3,
            max_new: 48,
            quantized: false,
        }
    }

    /// Serializes a training pair into the fine-tuning text format.
    pub fn serialize(ex: &Example) -> String {
        format!("q : {} a : {}", ex.question, ex.sql.to_lowercase())
    }

    /// The tokenizer (for inspection).
    pub fn tokenizer(&self) -> &Bpe {
        &self.bpe
    }

    /// The candidate trie.
    pub fn trie(&self) -> &SqlTrie {
        &self.trie
    }

    /// Sets the beam width used at decode time.
    pub fn set_beam_width(&mut self, width: usize) {
        self.beam_width = width.max(1);
    }

    /// Switches [`SemanticParser::predict_batch`] between f32 (default) and
    /// int8 quantized decoding. Quantization perturbs logits within the
    /// per-row scale bound; Exp C's quantized leg pins the accuracy delta.
    pub fn set_quantized(&mut self, quantized: bool) {
        self.quantized = quantized;
    }

    /// Fine-tunes on the training pairs for `epochs` passes; returns the
    /// mean loss of the final epoch.
    pub fn fit(&mut self, examples: &[Example], epochs: usize, batch_size: usize, lr: f32) -> f32 {
        let encoded: Vec<Vec<usize>> = examples
            .iter()
            .map(|ex| {
                let mut ids = self.bpe.encode_causal(&Self::serialize(ex));
                ids.truncate(self.gpt.config().max_seq_len);
                ids
            })
            .collect();
        let mut opt = self.gpt.optimizer(lr);
        let mut last = 0.0;
        for _ in 0..epochs {
            let mut losses = Vec::new();
            for chunk in encoded.chunks(batch_size.max(1)) {
                losses.push(self.gpt.train_step(chunk, &mut opt));
            }
            last = losses.iter().sum::<f32>() / losses.len().max(1) as f32;
        }
        last
    }

    fn prompt_ids(&self, question: &str) -> Vec<usize> {
        let mut ids = vec![BOS];
        ids.extend(self.bpe.encode(&format!("q : {question} a :")));
        ids
    }

    /// Translates a question into SQL.
    pub fn predict(&self, question: &str, mode: DecodeMode) -> Prediction {
        self.predict_batch(&[question], mode)
            .pop()
            .expect("one question in, one prediction out")
    }

    /// Translates a batch of questions in one pass through the batched
    /// inference engine: prompts decode concurrently, and their shared
    /// `q :` / `a :` scaffold prefills once via the engine's prefix cache.
    pub fn predict_batch(&self, questions: &[&str], mode: DecodeMode) -> Vec<Prediction> {
        let _span = lm4db_obs::span("text2sql_predict");
        lm4db_obs::counter_add("text2sql/questions", questions.len() as u64);
        // At LM4DB_TRACE=2 this marks the batch boundary on the timeline;
        // the engine's submit/admit/retire instants attribute the beam
        // work inside it to individual requests.
        lm4db_obs::instant_arg("text2sql/batch", questions.len() as u64);
        let prompts: Vec<Vec<usize>> = questions.iter().map(|q| self.prompt_ids(q)).collect();
        let constraints: Vec<TrieConstraint> = prompts
            .iter()
            .map(|p| TrieConstraint::new(&self.bpe, &self.trie, p.len()))
            .collect();
        let mut engine = Engine::with_options(
            &self.gpt,
            EngineOptions {
                quantized: self.quantized,
                ..EngineOptions::default()
            },
        );
        let reqs = prompts
            .iter()
            .zip(&constraints)
            .map(|(p, c)| {
                let req = Request::beam(p.clone(), self.beam_width, self.max_new, EOS);
                match mode {
                    // The incremental mask is the engine-native form of the
                    // PICARD oracle — identical veto set (pinned by tests),
                    // materialized once per beam step instead of probed per
                    // vocabulary token.
                    DecodeMode::Constrained => req.with_mask(c),
                    DecodeMode::Unconstrained => req,
                }
            })
            .collect();
        let responses = engine.generate_batch(reqs);
        // The engine's scheduler steps are this pipeline's beam steps.
        lm4db_obs::counter_add("text2sql/beam_steps", engine.stats().steps);
        let predictions: Vec<Prediction> = responses
            .into_iter()
            .zip(&prompts)
            .map(|(resp, prompt)| self.prediction_from_hyps(&resp.hyps, prompt.len()))
            .collect();
        lm4db_obs::counter_add(
            "text2sql/sql_resolved",
            predictions.iter().filter(|p| p.sql.is_some()).count() as u64,
        );
        predictions
    }

    fn prediction_from_hyps(&self, hyps: &[Hypothesis], prompt_len: usize) -> Prediction {
        // Prefer finished hypotheses; the engine already sorts by score.
        let best = hyps.iter().find(|h| h.finished).or_else(|| hyps.first());
        let Some(best) = best else {
            return Prediction {
                sql: None,
                raw: String::new(),
            };
        };
        let generated = &best.ids[prompt_len.min(best.ids.len())..];
        let (units, partial) = decode_units(&self.bpe, generated);
        let raw = {
            let mut parts = units.clone();
            if let Some(p) = &partial {
                parts.push(p.clone());
            }
            parts.join(" ")
        };
        let sql = if partial.is_none() {
            self.trie.lookup(&units).map(str::to_string)
        } else {
            None
        };
        Prediction { sql, raw }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::generate;
    use lm4db_corpus::{make_domain, DomainKind};
    use lm4db_sql::run_sql;

    fn setup(n_train: usize) -> (lm4db_corpus::Domain, SemanticParser, Vec<Example>) {
        let d = make_domain(DomainKind::Employees, 20, 7);
        let trie = SqlTrie::for_domain(&d);
        let train = generate(&d, n_train, 1);
        let cfg = ModelConfig {
            max_seq_len: 96,
            ..ModelConfig::tiny(0)
        };
        let parser = SemanticParser::new(cfg, &train, trie, 5, 600);
        (d, parser, train)
    }

    #[test]
    fn decode_units_splits_words_and_partials() {
        let bpe = Bpe::train(["select name from employees"], 300);
        let ids = bpe.encode("select name");
        let (units, partial) = decode_units(&bpe, &ids);
        assert_eq!(units, vec!["select", "name"]);
        assert_eq!(partial, None);
        // Drop the last id to force a partial word (if multi-token).
        let ids_name = bpe.encode("employees");
        if ids_name.len() > 1 {
            let (_, partial) = decode_units(&bpe, &ids_name[..ids_name.len() - 1]);
            assert!(partial.is_some());
        }
    }

    #[test]
    fn constraint_only_allows_trie_paths() {
        let (_, parser, _) = setup(8);
        let prompt = parser.prompt_ids("show the name of all employees");
        let constraint = TrieConstraint {
            bpe: &parser.bpe,
            trie: &parser.trie,
            prompt_len: prompt.len(),
        };
        // From the empty generation, the only valid first word is "select";
        // any token starting a different word must be rejected.
        let vocab = parser.bpe.vocab();
        let mut allowed_any = false;
        for id in SPECIAL_TOKENS.len()..vocab.len() {
            if constraint.allowed(&prompt, id) {
                allowed_any = true;
                let tok = vocab.token(id).trim_end_matches(crate::EOW).to_string();
                assert!(
                    "select".starts_with(&tok),
                    "allowed non-select start: {tok}"
                );
            }
        }
        assert!(allowed_any, "constraint rejected everything");
        // EOS is not allowed at the very start.
        assert!(!constraint.allowed(&prompt, EOS));
    }

    #[test]
    fn token_mask_agrees_with_constraint_oracle_token_by_token() {
        use lm4db_transformer::TokenMask;
        let (_, parser, _) = setup(8);
        let prompt = parser.prompt_ids("show the name of all employees");
        let constraint = TrieConstraint::new(&parser.bpe, &parser.trie, prompt.len());
        let vocab_len = parser.bpe.vocab().len();
        // Walk a constrained decode: at every prefix along the way, the
        // one-shot mask and the per-token oracle must agree on the entire
        // vocabulary (this is what makes mask-decoded SQL byte-identical
        // to oracle-decoded SQL).
        let mut prefix = prompt.clone();
        for _step in 0..10 {
            let mut mask = vec![false; vocab_len];
            constraint.fill(&prefix, &mut mask);
            let mut next = None;
            for (id, &m) in mask.iter().enumerate() {
                assert_eq!(
                    m,
                    constraint.allowed(&prefix, id),
                    "mask and oracle disagree on token {id} ({:?}) after {:?}",
                    parser.bpe.vocab().token(id),
                    &prefix[prompt.len()..]
                );
                if m && id != EOS && next.is_none() {
                    next = Some(id);
                }
            }
            match next {
                Some(id) => prefix.push(id),
                None => break,
            }
        }
        assert!(prefix.len() > prompt.len(), "walk never advanced");
    }

    #[test]
    fn constrained_predictions_always_execute() {
        // Even an UNTRAINED model must emit valid SQL under the constraint.
        let (d, parser, _) = setup(8);
        let cat = d.catalog();
        for q in [
            "show the name of all employees",
            "how many employees have dept sales",
            "which employee has the highest salary",
        ] {
            let pred = parser.predict(q, DecodeMode::Constrained);
            let sql = pred.sql.expect("constrained decode must finish");
            assert!(
                run_sql(&sql, &cat).is_ok(),
                "constrained output failed to execute: {sql}"
            );
        }
    }

    #[test]
    fn training_teaches_the_easy_template() {
        let (d, mut parser, _) = setup(40);
        // Heavy repetition of one easy example.
        let ex = Example {
            question: "show the name of all employees".into(),
            sql: "SELECT name FROM employees".into(),
            tier: crate::workload::Tier::Easy,
            domain: d.name.clone(),
        };
        let train: Vec<Example> = std::iter::repeat_n(ex.clone(), 8).collect();
        parser.fit(&train, 30, 4, 3e-3);
        let pred = parser.predict(&ex.question, DecodeMode::Constrained);
        assert_eq!(pred.sql.as_deref(), Some("SELECT name FROM employees"));
    }

    #[test]
    fn fit_reduces_loss() {
        let (_, mut parser, train) = setup(16);
        let first = parser.fit(&train, 1, 4, 3e-3);
        let later = parser.fit(&train, 10, 4, 3e-3);
        assert!(later < first, "loss did not drop: {first} -> {later}");
    }
}
