//! Evaluation: exact-match and execution accuracy, the two standard
//! text-to-SQL metrics (Spider / WikiSQL conventions).

use std::collections::BTreeMap;

use lm4db_sql::{parse, run_sql, Catalog};

use crate::workload::{Example, Tier};

/// Accuracy metrics over one evaluation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Number of evaluated examples.
    pub total: usize,
    /// Predictions that parsed as SQL at all.
    pub valid: usize,
    /// Predictions whose canonical form equals the gold canonical form.
    pub exact: usize,
    /// Predictions whose result set matches the gold result set (as bags).
    pub exec: usize,
}

impl Metrics {
    /// Exact-match accuracy.
    pub fn exact_acc(&self) -> f32 {
        self.exact as f32 / self.total.max(1) as f32
    }

    /// Execution accuracy.
    pub fn exec_acc(&self) -> f32 {
        self.exec as f32 / self.total.max(1) as f32
    }

    /// Fraction of predictions that were valid SQL.
    pub fn valid_frac(&self) -> f32 {
        self.valid as f32 / self.total.max(1) as f32
    }

    fn add(&mut self, other: &Metrics) {
        self.total += other.total;
        self.valid += other.valid;
        self.exact += other.exact;
        self.exec += other.exec;
    }
}

/// Scores one prediction against a gold example.
pub fn score_one(prediction: Option<&str>, gold: &Example, catalog: &Catalog) -> Metrics {
    let mut m = Metrics {
        total: 1,
        ..Default::default()
    };
    let Some(pred) = prediction else {
        return m;
    };
    let Ok(pred_ast) = parse(pred) else {
        return m;
    };
    m.valid = 1;
    let canonical = pred_ast.to_string();
    let gold_canonical = parse(&gold.sql).expect("gold SQL must parse").to_string();
    if canonical == gold_canonical {
        m.exact = 1;
    }
    let (Ok(pred_rs), Ok(gold_rs)) = (run_sql(pred, catalog), run_sql(&gold.sql, catalog)) else {
        return m;
    };
    if pred_rs.same_bag(&gold_rs) {
        m.exec = 1;
    }
    m
}

/// Evaluates a translation function over a set of examples, reporting
/// aggregate metrics and a per-tier breakdown.
pub fn evaluate(
    mut translate: impl FnMut(&Example) -> Option<String>,
    examples: &[Example],
    catalog: &Catalog,
) -> (Metrics, BTreeMap<Tier, Metrics>) {
    let mut total = Metrics::default();
    let mut by_tier: BTreeMap<Tier, Metrics> = BTreeMap::new();
    for ex in examples {
        let pred = translate(ex);
        let m = score_one(pred.as_deref(), ex, catalog);
        total.add(&m);
        by_tier.entry(ex.tier).or_default().add(&m);
    }
    (total, by_tier)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::generate;
    use lm4db_corpus::{make_domain, DomainKind};

    #[test]
    fn gold_scores_perfectly_against_itself() {
        let d = make_domain(DomainKind::Employees, 25, 7);
        let cat = d.catalog();
        let exs = generate(&d, 20, 1);
        let (m, by_tier) = evaluate(|ex| Some(ex.sql.clone()), &exs, &cat);
        assert_eq!(m.total, 20);
        assert_eq!(m.exact, 20);
        assert_eq!(m.exec, 20);
        assert_eq!(m.valid, 20);
        assert!(!by_tier.is_empty());
    }

    #[test]
    fn garbage_scores_zero_but_counts() {
        let d = make_domain(DomainKind::Employees, 25, 7);
        let cat = d.catalog();
        let exs = generate(&d, 8, 2);
        let (m, _) = evaluate(|_| Some("not sql at all".into()), &exs, &cat);
        assert_eq!(m.total, 8);
        assert_eq!(m.valid, 0);
        assert_eq!(m.exact, 0);
        assert_eq!(m.exec, 0);
    }

    #[test]
    fn none_predictions_count_as_failures() {
        let d = make_domain(DomainKind::Employees, 25, 7);
        let cat = d.catalog();
        let exs = generate(&d, 5, 3);
        let (m, _) = evaluate(|_| None, &exs, &cat);
        assert_eq!(m.total, 5);
        assert_eq!(m.exact_acc(), 0.0);
    }

    #[test]
    fn execution_match_can_exceed_exact_match() {
        // A differently-written but semantically equal query: exec yes,
        // exact no.
        let d = make_domain(DomainKind::Employees, 25, 7);
        let cat = d.catalog();
        let gold = Example {
            question: "q".into(),
            sql: "SELECT name FROM employees WHERE (salary > 50)".into(),
            tier: Tier::Medium,
            domain: d.name.clone(),
        };
        let m = score_one(
            Some("SELECT name FROM employees WHERE (50 < salary)"),
            &gold,
            &cat,
        );
        assert_eq!(m.exact, 0);
        assert_eq!(m.exec, 1);
    }

    #[test]
    fn whitespace_and_case_do_not_break_exact_match() {
        let d = make_domain(DomainKind::Employees, 10, 7);
        let cat = d.catalog();
        let gold = Example {
            question: "q".into(),
            sql: "SELECT name FROM employees".into(),
            tier: Tier::Easy,
            domain: d.name.clone(),
        };
        let m = score_one(Some("select  name   from EMPLOYEES"), &gold, &cat);
        assert_eq!(m.exact, 1);
    }
}
