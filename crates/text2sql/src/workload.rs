//! Spider-style text-to-SQL workload generation: natural-language questions
//! paired with gold SQL over the cross-domain tables from `lm4db-corpus`,
//! stratified by query complexity.

use lm4db_corpus::Domain;
use lm4db_tensor::Rand;

/// Query complexity tiers (mirroring Spider's easy/medium/hard/extra split).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Projection, optionally with one equality filter.
    Easy,
    /// Numeric comparison filters and counting.
    Medium,
    /// Aggregation with GROUP BY, or superlatives via ORDER BY ... LIMIT 1.
    Hard,
    /// Joins against the lookup table.
    Extra,
}

impl Tier {
    /// All tiers, easiest first.
    pub fn all() -> [Tier; 4] {
        [Tier::Easy, Tier::Medium, Tier::Hard, Tier::Extra]
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Tier::Easy => "easy",
            Tier::Medium => "medium",
            Tier::Hard => "hard",
            Tier::Extra => "extra",
        }
    }
}

/// One benchmark example.
#[derive(Debug, Clone)]
pub struct Example {
    /// The natural-language question.
    pub question: String,
    /// The gold SQL (in our canonical dialect).
    pub sql: String,
    /// The complexity tier.
    pub tier: Tier,
    /// The domain name the example came from.
    pub domain: String,
}

/// The numeric thresholds questions may mention. Keeping this pool small
/// and round keeps the candidate-query space enumerable for the
/// grammar-constrained decoder, mirroring how PICARD constrains literals to
/// values recoverable from the question.
pub const THRESHOLDS: [i64; 5] = [25, 50, 75, 100, 150];

/// Generates `n` examples for `domain`, cycling through tiers and template
/// variants deterministically (plus seeded value choices).
pub fn generate(domain: &Domain, n: usize, seed: u64) -> Vec<Example> {
    let mut rng = Rand::seeded(seed);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let tier = Tier::all()[i % 4];
        out.push(example_for(domain, tier, &mut rng));
    }
    out
}

fn pick<'a, T>(items: &'a [T], rng: &mut Rand) -> &'a T {
    &items[rng.below(items.len())]
}

fn example_for(domain: &Domain, tier: Tier, rng: &mut Rand) -> Example {
    let table = &domain.table.name;
    let key = &domain.key_col;
    let entity = &domain.entity;
    let make = |question: String, sql: String| Example {
        question,
        sql,
        tier,
        domain: domain.name.clone(),
    };
    match tier {
        Tier::Easy => {
            if rng.uniform() < 0.5 {
                make(
                    format!("show the {key} of all {entity}s"),
                    format!("SELECT {key} FROM {table}"),
                )
            } else {
                let col = pick(&domain.text_cols, rng).clone();
                let vals = domain.distinct_text_values(&col);
                let v = pick(&vals, rng).clone();
                make(
                    format!("show the {key} of {entity}s whose {col} is {v}"),
                    format!("SELECT {key} FROM {table} WHERE ({col} = '{v}')"),
                )
            }
        }
        Tier::Medium => {
            let col = pick(&domain.num_cols, rng).clone();
            let t = *pick(&THRESHOLDS, rng);
            if rng.uniform() < 0.5 {
                let (word, op) = if rng.uniform() < 0.5 {
                    ("more", ">")
                } else {
                    ("less", "<")
                };
                make(
                    format!("show the {key} of {entity}s with {col} {word} than {t}"),
                    format!("SELECT {key} FROM {table} WHERE ({col} {op} {t})"),
                )
            } else {
                let tcol = pick(&domain.text_cols, rng).clone();
                let vals = domain.distinct_text_values(&tcol);
                let v = pick(&vals, rng).clone();
                make(
                    format!("how many {entity}s have {tcol} {v}"),
                    format!("SELECT COUNT(*) FROM {table} WHERE ({tcol} = '{v}')"),
                )
            }
        }
        Tier::Hard => {
            let col = pick(&domain.num_cols, rng).clone();
            match rng.below(3) {
                0 => {
                    let gcol = pick(&domain.text_cols, rng).clone();
                    make(
                        format!("what is the average {col} of {entity}s for each {gcol}"),
                        format!("SELECT {gcol}, AVG({col}) FROM {table} GROUP BY {gcol}"),
                    )
                }
                1 => {
                    let dir = if rng.uniform() < 0.5 {
                        ("highest", "DESC")
                    } else {
                        ("lowest", "ASC")
                    };
                    make(
                        format!("which {entity} has the {} {col}", dir.0),
                        format!("SELECT {key} FROM {table} ORDER BY {col} {} LIMIT 1", dir.1),
                    )
                }
                _ => make(
                    format!("what is the maximum {col} of all {entity}s"),
                    format!("SELECT MAX({col}) FROM {table}"),
                ),
            }
        }
        Tier::Extra => {
            let (jcol, lcol) = &domain.join_on;
            let lookup = &domain.lookup.name;
            // A numeric column of the lookup table (skip the join key).
            let lnum: Vec<String> = domain
                .lookup
                .schema
                .columns()
                .iter()
                .filter(|c| c.name != *lcol)
                .map(|c| c.name.clone())
                .collect();
            let lk = pick(&lnum, rng).clone();
            let t = *pick(&THRESHOLDS, rng);
            make(
                format!("show the {key} of {entity}s whose {jcol} has {lk} greater than {t}"),
                format!(
                    "SELECT t.{key} FROM {table} AS t JOIN {lookup} AS j ON (t.{jcol} = j.{lcol}) \
                     WHERE (j.{lk} > {t})"
                ),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm4db_corpus::{make_domain, DomainKind};
    use lm4db_sql::{parse, run_sql};

    fn domain() -> Domain {
        make_domain(DomainKind::Employees, 30, 7)
    }

    #[test]
    fn gold_sql_always_parses_and_executes() {
        let d = domain();
        let cat = d.catalog();
        for ex in generate(&d, 40, 1) {
            let parsed = parse(&ex.sql);
            assert!(parsed.is_ok(), "gold SQL failed to parse: {}", ex.sql);
            let rs = run_sql(&ex.sql, &cat);
            assert!(rs.is_ok(), "gold SQL failed to execute: {}", ex.sql);
        }
    }

    #[test]
    fn gold_sql_is_canonical() {
        // The printed parse of the gold SQL must equal the gold SQL itself,
        // so exact-match comparison is meaningful.
        let d = domain();
        for ex in generate(&d, 40, 2) {
            let reprinted = parse(&ex.sql).unwrap().to_string();
            assert_eq!(reprinted, ex.sql, "gold not canonical");
        }
    }

    #[test]
    fn all_tiers_are_generated() {
        let d = domain();
        let exs = generate(&d, 16, 3);
        for t in Tier::all() {
            assert!(exs.iter().any(|e| e.tier == t), "missing tier {t:?}");
        }
    }

    #[test]
    fn questions_are_nonempty_and_lowercase() {
        let d = domain();
        for ex in generate(&d, 20, 4) {
            assert!(!ex.question.is_empty());
            assert_eq!(ex.question, ex.question.to_lowercase());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let d = domain();
        let a: Vec<String> = generate(&d, 10, 5).into_iter().map(|e| e.sql).collect();
        let b: Vec<String> = generate(&d, 10, 5).into_iter().map(|e| e.sql).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn works_across_all_domains() {
        for kind in DomainKind::all() {
            let d = make_domain(kind, 20, 9);
            let cat = d.catalog();
            for ex in generate(&d, 12, 6) {
                assert!(
                    run_sql(&ex.sql, &cat).is_ok(),
                    "domain {} gold failed: {}",
                    d.name,
                    ex.sql
                );
            }
        }
    }
}
