//! Keyword/template baseline parser — the pre-LM approach (pattern matching
//! over canonical phrasings plus schema linking by word overlap). Strong on
//! canonical questions, brittle under paraphrase, which is exactly the gap
//! the tutorial attributes to language models.

use lm4db_corpus::Domain;

use crate::workload::THRESHOLDS;

/// A rule-based NL→SQL translator specialized to one domain's schema.
pub struct TemplateBaseline<'a> {
    domain: &'a Domain,
}

impl<'a> TemplateBaseline<'a> {
    /// Creates a baseline over `domain`.
    pub fn new(domain: &'a Domain) -> Self {
        TemplateBaseline { domain }
    }

    fn find_col(&self, question: &str, cols: &[String]) -> Option<String> {
        cols.iter()
            .find(|c| question.split_whitespace().any(|w| w == c.as_str()))
            .cloned()
    }

    fn find_value(&self, question: &str, col: &str) -> Option<String> {
        let vals = self.domain.distinct_text_values(col);
        question
            .split_whitespace()
            .find(|w| vals.iter().any(|v| v == w))
            .map(str::to_string)
    }

    fn find_number(&self, question: &str) -> Option<i64> {
        question
            .split_whitespace()
            .filter_map(|w| w.parse::<i64>().ok())
            .find(|n| THRESHOLDS.contains(n))
    }

    /// Translates `question` to SQL, or `None` when no rule fires cleanly.
    pub fn translate(&self, question: &str) -> Option<String> {
        let d = self.domain;
        let table = &d.table.name;
        let key = &d.key_col;
        let q = question;

        // Join template: "whose <jcol> has <lk> greater than <t>".
        if q.contains("whose") && q.contains("has") && q.contains("greater than") {
            let (jcol, lcol) = &d.join_on;
            if q.contains(jcol.as_str()) {
                let lk = self.find_col(
                    q,
                    &d.lookup
                        .schema
                        .columns()
                        .iter()
                        .map(|c| c.name.clone())
                        .filter(|n| n != lcol)
                        .collect::<Vec<_>>(),
                )?;
                let t = self.find_number(q)?;
                return Some(format!(
                    "SELECT t.{key} FROM {table} AS t JOIN {} AS j ON (t.{jcol} = j.{lcol}) \
                     WHERE (j.{lk} > {t})",
                    d.lookup.name
                ));
            }
        }

        // Count template: "how many ... have <tcol> <v>".
        if q.starts_with("how many") {
            let tcol = self.find_col(q, &d.text_cols)?;
            let v = self.find_value(q, &tcol)?;
            return Some(format!(
                "SELECT COUNT(*) FROM {table} WHERE ({tcol} = '{v}')"
            ));
        }

        // Group-by template: "average <ncol> ... for each <gcol>".
        if q.contains("for each") && q.contains("average") {
            let ncol = self.find_col(q, &d.num_cols)?;
            let gcol = self.find_col(q, &d.text_cols)?;
            return Some(format!(
                "SELECT {gcol}, AVG({ncol}) FROM {table} GROUP BY {gcol}"
            ));
        }

        // Superlative template: "highest/lowest <ncol>".
        if q.contains("highest") || q.contains("lowest") {
            let ncol = self.find_col(q, &d.num_cols)?;
            let dir = if q.contains("highest") { "DESC" } else { "ASC" };
            return Some(format!(
                "SELECT {key} FROM {table} ORDER BY {ncol} {dir} LIMIT 1"
            ));
        }

        // Max template: "maximum <ncol>".
        if q.contains("maximum") {
            let ncol = self.find_col(q, &d.num_cols)?;
            return Some(format!("SELECT MAX({ncol}) FROM {table}"));
        }

        // Numeric filter: "with <ncol> more/less than <t>".
        if q.contains("more than") || q.contains("less than") {
            let ncol = self.find_col(q, &d.num_cols)?;
            let t = self.find_number(q)?;
            let op = if q.contains("more than") { ">" } else { "<" };
            return Some(format!("SELECT {key} FROM {table} WHERE ({ncol} {op} {t})"));
        }

        // Equality filter: "whose <tcol> is <v>".
        if q.contains("whose") && q.contains(" is ") {
            let tcol = self.find_col(q, &d.text_cols)?;
            let v = self.find_value(q, &tcol)?;
            return Some(format!("SELECT {key} FROM {table} WHERE ({tcol} = '{v}')"));
        }

        // Catch-all projection: "show the <key> of all ...".
        if q.starts_with("show") && q.contains("all") {
            return Some(format!("SELECT {key} FROM {table}"));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::generate;
    use lm4db_corpus::{make_domain, DomainKind};
    use lm4db_sql::parse;

    #[test]
    fn baseline_solves_canonical_workload() {
        let d = make_domain(DomainKind::Employees, 30, 7);
        let b = TemplateBaseline::new(&d);
        let exs = generate(&d, 40, 2);
        let mut correct = 0;
        for ex in &exs {
            if let Some(sql) = b.translate(&ex.question) {
                let canon = parse(&sql).unwrap().to_string();
                if canon == ex.sql {
                    correct += 1;
                }
            }
        }
        let acc = correct as f32 / exs.len() as f32;
        assert!(acc > 0.9, "baseline accuracy on canonical set: {acc}");
    }

    #[test]
    fn baseline_fails_on_paraphrases() {
        let d = make_domain(DomainKind::Employees, 30, 7);
        let b = TemplateBaseline::new(&d);
        // Same intents, non-canonical phrasing.
        assert_eq!(b.translate("count the employees in dept sales"), None);
        assert_eq!(b.translate("list every employee"), None);
        assert_eq!(b.translate("top earner by salary"), None);
    }

    #[test]
    fn baseline_output_always_parses() {
        let d = make_domain(DomainKind::Products, 30, 3);
        let b = TemplateBaseline::new(&d);
        for ex in generate(&d, 30, 4) {
            if let Some(sql) = b.translate(&ex.question) {
                assert!(parse(&sql).is_ok(), "baseline emitted garbage: {sql}");
            }
        }
    }
}
