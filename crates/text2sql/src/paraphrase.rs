//! Question paraphrasing: rewrites canonical workload questions with
//! synonym substitutions. The template baseline keys on exact phrasings, so
//! paraphrased sets expose the robustness gap that motivates LM-based
//! parsers (§2.5 of the tutorial).

use lm4db_tensor::Rand;

use crate::workload::Example;

/// `(canonical phrase, paraphrases)` substitution table.
const SUBSTITUTIONS: [(&str, &[&str]); 6] = [
    ("show the", &["list the", "give me the", "display the"]),
    (
        "how many",
        &["count the number of", "what is the number of"],
    ),
    ("more than", &["exceeding", "above"]),
    ("less than", &["below", "under"]),
    ("for each", &["per", "grouped by"]),
    ("whose", &["where the", "with"]),
];

/// Rewrites `question`, replacing each known phrase with a random synonym
/// with probability `rate`.
pub fn paraphrase_question(question: &str, rate: f32, rng: &mut Rand) -> String {
    let mut q = question.to_string();
    for (canonical, alts) in SUBSTITUTIONS {
        if q.contains(canonical) && rng.uniform() < rate {
            let alt = alts[rng.below(alts.len())];
            q = q.replace(canonical, alt);
        }
    }
    q
}

/// Paraphrases a whole example set (gold SQL unchanged).
pub fn paraphrase_examples(examples: &[Example], rate: f32, seed: u64) -> Vec<Example> {
    let mut rng = Rand::seeded(seed);
    examples
        .iter()
        .map(|ex| Example {
            question: paraphrase_question(&ex.question, rate, &mut rng),
            ..ex.clone()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::generate;
    use lm4db_corpus::{make_domain, DomainKind};

    #[test]
    fn rate_zero_is_identity() {
        let mut rng = Rand::seeded(1);
        let q = "show the name of all employees";
        assert_eq!(paraphrase_question(q, 0.0, &mut rng), q);
    }

    #[test]
    fn rate_one_changes_known_phrases() {
        let mut rng = Rand::seeded(2);
        let q = paraphrase_question("how many employees have dept sales", 1.0, &mut rng);
        assert!(!q.contains("how many"), "unchanged: {q}");
    }

    #[test]
    fn paraphrased_set_keeps_gold_sql() {
        let d = make_domain(DomainKind::Employees, 20, 7);
        let exs = generate(&d, 12, 1);
        let para = paraphrase_examples(&exs, 1.0, 9);
        for (a, b) in exs.iter().zip(para.iter()) {
            assert_eq!(a.sql, b.sql);
            assert_eq!(a.tier, b.tier);
        }
        assert!(exs
            .iter()
            .zip(para.iter())
            .any(|(a, b)| a.question != b.question));
    }

    #[test]
    fn paraphrasing_is_deterministic() {
        let d = make_domain(DomainKind::Employees, 20, 7);
        let exs = generate(&d, 12, 1);
        let a: Vec<String> = paraphrase_examples(&exs, 0.7, 5)
            .into_iter()
            .map(|e| e.question)
            .collect();
        let b: Vec<String> = paraphrase_examples(&exs, 0.7, 5)
            .into_iter()
            .map(|e| e.question)
            .collect();
        assert_eq!(a, b);
    }
}
