//! Property tests for the consistent-hash ring.
//!
//! Two claims carry the router's scaling story:
//!
//! * **Fair share.** With enough virtual nodes (≥ 64 per replica) no
//!   replica owns more than 2× its fair share of a large random key
//!   population — the load split is smooth enough that adding a replica
//!   actually adds capacity.
//! * **Minimal disruption.** Removing one replica remaps *only* the keys
//!   that replica owned; every other key keeps its assignment. This is
//!   the property that makes failover cheap: one working set moves, the
//!   surviving replicas' prefix caches stay warm.

use lm4db_router::HashRing;
use proptest::prelude::*;

/// splitmix64, so test keys are spread like real fingerprints.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

proptest! {
    /// Key distribution stays within 2× of fair share at ≥ 64 vnodes.
    #[test]
    fn load_split_is_within_twice_fair_share(
        replicas in 2u32..9,
        vnodes in 64u32..257,
        key_seed in any::<u64>(),
    ) {
        let ring = HashRing::new(replicas, vnodes);
        const KEYS: u64 = 4096;
        let mut owned = vec![0u64; replicas as usize];
        for k in 0..KEYS {
            let key = mix(key_seed ^ mix(k));
            let r = ring.route(key).expect("non-empty ring routes");
            owned[r as usize] += 1;
        }
        let fair = KEYS / u64::from(replicas);
        for (r, &n) in owned.iter().enumerate() {
            prop_assert!(
                n <= 2 * fair,
                "replica {r} owns {n} of {KEYS} keys — more than 2× the fair \
                 share {fair} ({replicas} replicas, {vnodes} vnodes)"
            );
        }
    }

    /// Removing one replica remaps only that replica's keys; everything
    /// else keeps its owner (and the orphaned keys land on live replicas).
    #[test]
    fn removal_disrupts_only_the_removed_replicas_keys(
        replicas in 2u32..8,
        vnodes in 16u32..129,
        victim_pick in any::<u64>(),
        key_seed in any::<u64>(),
    ) {
        let mut ring = HashRing::new(replicas, vnodes);
        let victim = (victim_pick % u64::from(replicas)) as u32;
        const KEYS: u64 = 1024;
        let before: Vec<u32> = (0..KEYS)
            .map(|k| ring.route(mix(key_seed ^ mix(k))).unwrap())
            .collect();
        ring.remove(victim);
        let after: Vec<u32> = (0..KEYS)
            .map(|k| ring.route(mix(key_seed ^ mix(k))).unwrap())
            .collect();
        for (k, (&b, &a)) in before.iter().zip(after.iter()).enumerate() {
            if b == victim {
                prop_assert!(a != victim, "key {k} still routed to the removed replica");
            } else {
                prop_assert!(
                    a == b,
                    "key {k} moved from surviving replica {b} to {a} — removal \
                     must only remap the victim's keys"
                );
            }
        }
    }

    /// The failover walk agrees with single-routing after a removal: for
    /// a key owned by the victim, the ring's successor order predicts
    /// exactly where the key lands once the victim is gone.
    #[test]
    fn successors_predict_failover_targets(
        replicas in 3u32..8,
        vnodes in 16u32..65,
        key_seed in any::<u64>(),
    ) {
        let ring = HashRing::new(replicas, vnodes);
        for k in 0..256u64 {
            let key = mix(key_seed ^ mix(k));
            let order: Vec<u32> = ring.successors(key).collect();
            let mut shrunk = ring.clone();
            shrunk.remove(order[0]);
            prop_assert!(
                shrunk.route(key) == Some(order[1]),
                "successor order must predict the post-failover owner"
            );
        }
    }
}
