//! The router tier: N in-process engine replicas behind one submit
//! surface, with prefix-affinity routing, health tracking, and
//! deterministic failover.
//!
//! # Life of a routed request
//!
//! [`Router::submit`] fingerprints the prompt's prefix
//! ([`crate::ring::prefix_fingerprint`]), walks the consistent-hash ring
//! for the first *routable* replica (alive, breaker closed), and submits a
//! copy of the request to that replica's [`Engine`]. The router keeps the
//! original request plus the engine-id→router-id mapping, so it can (a)
//! rewrite delivered responses to the router's own id space and (b)
//! re-submit the request elsewhere if its replica dies.
//!
//! # Health, kills, and failover
//!
//! [`Router::step`] advances every live replica one scheduler step and, on
//! the heartbeat cadence, consults the fault injector at the
//! `router/replica` site ([`lm4db_fault::probe`]): a `Panic` decision
//! kills the replica outright; a `Delay` is a heartbeat miss feeding its
//! circuit breaker ([`crate::breaker`]). A kill (or a breaker opening)
//! drains the replica: already-finished responses are delivered, and
//! every in-flight or queued request fails over to the next live ring
//! node as a **fresh** engine submission — new engine serial, hence
//! attempt-salted fault re-rolls at the engine's own `serve/feed` site.
//! When no live replica remains, requests retire with
//! [`Outcome::Failed`] rather than vanishing: the router's conservation
//! ledger (`completed + cancelled + expired + failed + rejected ==
//! submitted`) holds across any kill schedule, which is what the chaos
//! matrix asserts.
//!
//! # Determinism
//!
//! Everything runs on the virtual step clock: heartbeat decisions are
//! pure functions of `(fault seed, replica, tick)`, ring walks are pure
//! functions of the member list, and the engines themselves are
//! byte-deterministic at any thread count. A fixed (loadgen seed, fault
//! seed) pair therefore replays the complete outcome stream — kills,
//! failovers, breaker trips and all — byte-identically across
//! `LM4DB_THREADS` and `LM4DB_TRACE` (pinned by
//! `tests/integration_router.rs`).

use std::collections::BTreeMap;

use lm4db_fault::Fault;
use lm4db_obs::Histogram;
use lm4db_serve::{Engine, EngineOptions, Outcome, Request, RequestId, Response, Stats};
use lm4db_transformer::GptModel;

use crate::breaker::{Breaker, BreakerState, Transition};
use crate::ring::{mix, prefix_fingerprint, HashRing};

/// Fault-injection site for replica health: on the heartbeat cadence the
/// router rolls here once per live replica — `Panic` kills the replica,
/// `Delay` is a missed heartbeat (see [`Router::step`]).
pub const REPLICA_FAULT_SITE: &str = "router/replica";

/// How submissions choose a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Consistent-hash on the prompt-prefix fingerprint: prompts sharing
    /// an instruction header land on the same replica, so its token-trie
    /// prefix cache stays warm for that header (the expT_router claim).
    PrefixAffinity,
    /// Seeded uniform-random spread — the locality-free baseline the
    /// affinity experiment compares against. Deterministic: the choice is
    /// a pure function of `(seed, submission serial)`.
    Random {
        /// Stream seed.
        seed: u64,
    },
}

/// Router construction knobs.
#[derive(Debug, Clone)]
pub struct RouterOptions {
    /// Number of engine replicas (≥ 1).
    pub replicas: usize,
    /// Virtual nodes per replica on the routing ring.
    pub vnodes: u32,
    /// Prompt tokens hashed into the routing fingerprint (0 = whole
    /// prompt).
    pub prefix_window: usize,
    /// Heartbeat cadence in router steps (0 disables health rolls — no
    /// fault-driven kills, breakers stay closed).
    pub heartbeat_every: u64,
    /// Consecutive heartbeat misses that trip a replica's breaker.
    pub breaker_threshold: u32,
    /// Steps a tripped breaker stays open before its half-open probe.
    pub breaker_cooldown: u64,
    /// Replica-selection policy.
    pub policy: RoutePolicy,
    /// Options every replica engine is built with.
    pub engine: EngineOptions,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            replicas: 4,
            vnodes: 64,
            prefix_window: 8,
            heartbeat_every: 32,
            breaker_threshold: 2,
            breaker_cooldown: 96,
            policy: RoutePolicy::PrefixAffinity,
            engine: EngineOptions::default(),
        }
    }
}

/// One replica's slice of [`RouterStats`].
#[derive(Debug, Clone)]
pub struct ReplicaStats {
    /// Requests routed here (first placements plus failover arrivals).
    pub routed: u64,
    /// Whether the replica is still alive.
    pub alive: bool,
    /// Its breaker position.
    pub breaker: BreakerState,
    /// The replica engine's own counters.
    pub engine: Stats,
}

/// A point-in-time snapshot of the router's counters
/// ([`Router::stats`]).
#[derive(Debug, Clone, Default)]
pub struct RouterStats {
    /// Requests ever submitted to the router.
    pub submitted: u64,
    /// Delivered with [`Outcome::Finished`].
    pub completed: u64,
    /// Delivered with [`Outcome::Cancelled`].
    pub cancelled: u64,
    /// Delivered with [`Outcome::DeadlineExpired`].
    pub expired: u64,
    /// Delivered with [`Outcome::Failed`] — engine-side failures plus
    /// router-side `no_live_replica` retirements.
    pub failed: u64,
    /// Delivered with [`Outcome::Rejected`] (replica admission shed).
    pub rejected: u64,
    /// The subset of `failed` retired by the router because no live
    /// replica remained to place them on.
    pub no_live_replica: u64,
    /// Re-submissions to another replica after a kill or breaker open.
    pub failovers: u64,
    /// Replicas killed (fault-driven or via [`Router::kill_replica`]).
    pub kills: u64,
    /// Breaker transitions into Open from a miss streak.
    pub breaker_opened: u64,
    /// Breaker transitions into HalfOpen (cooldown expiry).
    pub breaker_half_opened: u64,
    /// Breaker transitions into Closed (successful probe).
    pub breaker_closed: u64,
    /// Breaker transitions back to Open (failed probe).
    pub breaker_reopened: u64,
    /// Router steps executed.
    pub steps: u64,
    /// Submit→deliver router steps per delivered request. Step-based, so
    /// deterministic and fingerprint-safe.
    pub latency_steps: Histogram,
    /// Per-replica breakdown, indexed by replica id.
    pub replicas: Vec<ReplicaStats>,
}

impl RouterStats {
    /// Requests that reached a terminal outcome; equals
    /// [`RouterStats::submitted`] once the router is idle — the
    /// conservation law, which must hold across any kill schedule.
    pub fn terminal_total(&self) -> u64 {
        self.completed + self.cancelled + self.expired + self.failed + self.rejected
    }

    /// Live replica count.
    pub fn live_replicas(&self) -> usize {
        self.replicas.iter().filter(|r| r.alive).count()
    }
}

/// The router's copy of one in-flight request.
struct Entry<'a> {
    req: Request<'a>,
    fingerprint: u64,
    replica: u32,
    engine_id: RequestId,
    attempts: u32,
    submit_tick: u64,
    cancel_requested: bool,
}

struct Replica<'a> {
    engine: Engine<'a>,
    breaker: Breaker,
    alive: bool,
    routed: u64,
    /// engine request id → router request id, for rewriting responses.
    ids: BTreeMap<RequestId, u64>,
    /// Engine ids cancelled by a drain: their eventual responses belong
    /// to a request that failed over elsewhere and are swallowed.
    orphans: Vec<RequestId>,
}

/// A router over N in-process engine replicas. See the
/// [module docs](self).
pub struct Router<'a> {
    replicas: Vec<Replica<'a>>,
    ring: HashRing,
    opts: RouterOptions,
    entries: BTreeMap<u64, Entry<'a>>,
    finished: Vec<Response>,
    next_id: u64,
    ticks: u64,
    stats: RouterStats,
}

impl<'a> Router<'a> {
    /// A router whose replicas all serve `model` with the options'
    /// per-engine configuration.
    pub fn new(model: &'a GptModel, opts: RouterOptions) -> Self {
        assert!(opts.replicas >= 1, "need at least one replica");
        let replicas: Vec<Replica<'a>> = (0..opts.replicas)
            .map(|_| Replica {
                engine: Engine::with_options(model, opts.engine.clone()),
                breaker: Breaker::new(opts.breaker_threshold, opts.breaker_cooldown),
                alive: true,
                routed: 0,
                ids: BTreeMap::new(),
                orphans: Vec::new(),
            })
            .collect();
        let ring = HashRing::new(opts.replicas as u32, opts.vnodes);
        Router {
            replicas,
            ring,
            opts,
            entries: BTreeMap::new(),
            finished: Vec::new(),
            next_id: 0,
            ticks: 0,
            stats: RouterStats::default(),
        }
    }

    /// Whether replica `r` may receive new traffic.
    fn routable(&self, r: u32) -> bool {
        let rep = &self.replicas[r as usize];
        rep.alive && rep.breaker.routable()
    }

    /// The replica a request keyed `(fingerprint, serial)` goes to, or
    /// `None` when nothing is routable.
    fn pick_replica(&self, fingerprint: u64, serial: u64) -> Option<u32> {
        match self.opts.policy {
            RoutePolicy::PrefixAffinity => self
                .ring
                .successors(fingerprint)
                .find(|&r| self.routable(r)),
            RoutePolicy::Random { seed } => {
                let n = self.replicas.len() as u64;
                let start = (mix(seed ^ mix(serial)) % n) as u32;
                (0..n as u32)
                    .map(|k| (start + k) % n as u32)
                    .find(|&r| self.routable(r))
            }
        }
    }

    /// Enqueues a request on its ring-chosen replica and returns the
    /// router-scoped id its response will carry. When no replica is
    /// routable the request retires immediately with
    /// [`Outcome::Failed`] — submission never blocks and never loses a
    /// request.
    pub fn submit(&mut self, req: Request<'a>) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.stats.submitted += 1;
        lm4db_obs::counter_add("router/submitted", 1);
        let fingerprint = prefix_fingerprint(&req.prompt, self.opts.prefix_window);
        match self.pick_replica(fingerprint, id) {
            Some(r) => self.place(id, req, fingerprint, r, self.ticks, 0),
            None => self.retire_unroutable(id, self.ticks),
        }
        id
    }

    /// Submits to a specific replica's engine and records the entry.
    fn place(
        &mut self,
        id: u64,
        req: Request<'a>,
        fingerprint: u64,
        r: u32,
        submit_tick: u64,
        attempts: u32,
    ) {
        let rep = &mut self.replicas[r as usize];
        let engine_id = rep.engine.submit(req.clone());
        rep.ids.insert(engine_id, id);
        rep.routed += 1;
        lm4db_obs::counter_add("router/routed", 1);
        self.entries.insert(
            id,
            Entry {
                req,
                fingerprint,
                replica: r,
                engine_id,
                attempts,
                submit_tick,
                cancel_requested: false,
            },
        );
    }

    /// Retires `id` with the router-side `no live replica` failure.
    fn retire_unroutable(&mut self, id: u64, submit_tick: u64) {
        self.stats.failed += 1;
        self.stats.no_live_replica += 1;
        lm4db_obs::counter_add("router/no_live_replica", 1);
        lm4db_obs::instant_for("router/unroutable", id);
        self.stats
            .latency_steps
            .record(self.ticks.saturating_sub(submit_tick));
        self.finished.push(Response {
            id,
            outcome: Outcome::Failed {
                reason: "no live replica".to_string(),
            },
            tokens: Vec::new(),
            hyps: Vec::new(),
            score: 0.0,
        });
    }

    /// Requests cancellation of a routed request; it retires with
    /// [`Outcome::Cancelled`] on a later step (immediately at its next
    /// failover, otherwise when its replica engine processes the cancel).
    pub fn cancel(&mut self, id: u64) {
        if let Some(e) = self.entries.get_mut(&id) {
            e.cancel_requested = true;
            let engine_id = e.engine_id;
            self.replicas[e.replica as usize].engine.cancel(engine_id);
        }
    }

    /// Kills replica `r` outright: its finished responses are delivered,
    /// everything else on it fails over, and it never steps again. The
    /// chaos hook — fault-driven kills call this too.
    pub fn kill_replica(&mut self, r: u32) {
        if !self.replicas[r as usize].alive {
            return;
        }
        self.replicas[r as usize].alive = false;
        self.stats.kills += 1;
        lm4db_obs::counter_add("router/replica_killed", 1);
        lm4db_obs::instant_arg("router_replica_killed", u64::from(r));
        if let Some(t) = self.replicas[r as usize].breaker.force_open(self.ticks) {
            self.book_transition(r, t);
        }
        // Responses the replica finished before dying were already retired
        // engine-side; deliver them rather than re-running their requests.
        let done = self.replicas[r as usize].engine.take_responses();
        self.deliver(r, done);
        self.replicas[r as usize].orphans.clear();
        self.replicas[r as usize].ids.clear();
        self.drain(r);
    }

    /// Fails over every entry still assigned to replica `r`, in router-id
    /// order.
    fn drain(&mut self, r: u32) {
        let ids: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, e)| e.replica == r)
            .map(|(&id, _)| id)
            .collect();
        for id in ids {
            self.failover(id);
        }
    }

    /// Re-places entry `id` on the next live ring node (or retires it).
    fn failover(&mut self, id: u64) {
        let mut e = self.entries.remove(&id).expect("failover of a live entry");
        let old = &mut self.replicas[e.replica as usize];
        old.ids.remove(&e.engine_id);
        if old.alive {
            // The old engine still holds its copy: cancel it and swallow
            // the eventual Cancelled response so the request is not
            // answered twice.
            old.engine.cancel(e.engine_id);
            old.orphans.push(e.engine_id);
        }
        if e.cancel_requested {
            self.stats.cancelled += 1;
            self.stats
                .latency_steps
                .record(self.ticks.saturating_sub(e.submit_tick));
            self.finished.push(Response {
                id,
                outcome: Outcome::Cancelled,
                tokens: Vec::new(),
                hyps: Vec::new(),
                score: 0.0,
            });
            return;
        }
        e.attempts += 1;
        self.stats.failovers += 1;
        lm4db_obs::counter_add("router/failovers", 1);
        lm4db_obs::instant_for("router/failover", id);
        // Salting the pick with the attempt keeps repeated failovers of
        // one request from cycling the same dead-end choice under the
        // Random policy; affinity re-walks the ring from the fingerprint.
        match self.pick_replica(e.fingerprint, mix(id ^ (u64::from(e.attempts) << 48))) {
            Some(r) => {
                let Entry {
                    req,
                    fingerprint,
                    attempts,
                    submit_tick,
                    ..
                } = e;
                self.place(id, req, fingerprint, r, submit_tick, attempts);
            }
            None => self.retire_unroutable(id, e.submit_tick),
        }
    }

    /// Books a breaker transition for replica `r`: counters, a flight
    /// instant, and — on any transition *into* Open — a drain.
    fn book_transition(&mut self, r: u32, t: Transition) {
        let (counter, instant) = match t {
            Transition::Opened => {
                self.stats.breaker_opened += 1;
                ("router/breaker_opened", "router_breaker_open")
            }
            Transition::HalfOpened => {
                self.stats.breaker_half_opened += 1;
                ("router/breaker_half_opened", "router_breaker_half_open")
            }
            Transition::Closed => {
                self.stats.breaker_closed += 1;
                ("router/breaker_closed", "router_breaker_close")
            }
            Transition::Reopened => {
                self.stats.breaker_reopened += 1;
                ("router/breaker_reopened", "router_breaker_reopen")
            }
        };
        lm4db_obs::counter_add(counter, 1);
        lm4db_obs::instant_arg(instant, u64::from(r));
    }

    /// One heartbeat observation for replica `r`.
    fn heartbeat(&mut self, r: u32, ok: bool) {
        let transitions = self.replicas[r as usize].breaker.heartbeat(self.ticks, ok);
        for t in transitions {
            self.book_transition(r, t);
            if t == Transition::Opened || t == Transition::Reopened {
                // An open replica takes no new work and keeps none of its
                // pending work: everything fails over now rather than
                // waiting out the cooldown.
                self.drain(r);
            }
        }
    }

    /// Runs one router step — health rolls, one engine step per live
    /// replica, response collection — and returns whether work remains.
    pub fn step(&mut self) -> bool {
        self.ticks += 1;
        self.stats.steps += 1;
        if self.opts.heartbeat_every > 0 && self.ticks.is_multiple_of(self.opts.heartbeat_every) {
            for r in 0..self.replicas.len() as u32 {
                if !self.replicas[r as usize].alive {
                    continue;
                }
                let salt = (u64::from(r) << 48) ^ self.ticks;
                match lm4db_fault::probe(REPLICA_FAULT_SITE, salt) {
                    Some(Fault::Panic) => self.kill_replica(r),
                    Some(Fault::Delay) => self.heartbeat(r, false),
                    None => self.heartbeat(r, true),
                }
            }
        }
        let mut more = false;
        for rep in self.replicas.iter_mut().filter(|rep| rep.alive) {
            // Open replicas keep stepping: they are draining cancels, and
            // a closed-again breaker resumes routing to a warm engine.
            more |= rep.engine.step();
        }
        self.collect();
        more
    }

    /// Drains every live replica's finished responses into the router's
    /// delivery buffer.
    fn collect(&mut self) {
        for r in 0..self.replicas.len() as u32 {
            if !self.replicas[r as usize].alive {
                continue;
            }
            let responses = self.replicas[r as usize].engine.take_responses();
            self.deliver(r, responses);
        }
    }

    /// Rewrites replica responses to router ids, books their outcomes,
    /// and queues them for [`Router::take_responses`]. Orphaned engine
    /// ids (cancelled by a drain) are swallowed.
    fn deliver(&mut self, r: u32, responses: Vec<Response>) {
        for mut resp in responses {
            let rep = &mut self.replicas[r as usize];
            if let Some(i) = rep.orphans.iter().position(|&id| id == resp.id) {
                rep.orphans.swap_remove(i);
                continue;
            }
            let Some(id) = rep.ids.remove(&resp.id) else {
                // A kill cleared the map before draining; nothing routed
                // through this replica is unknown otherwise.
                continue;
            };
            let e = self.entries.remove(&id).expect("delivered entry exists");
            match resp.outcome {
                Outcome::Finished => self.stats.completed += 1,
                Outcome::Cancelled => self.stats.cancelled += 1,
                Outcome::DeadlineExpired => self.stats.expired += 1,
                Outcome::Failed { .. } => self.stats.failed += 1,
                Outcome::Rejected => self.stats.rejected += 1,
            }
            self.stats
                .latency_steps
                .record(self.ticks.saturating_sub(e.submit_tick));
            lm4db_obs::counter_add("router/delivered", 1);
            resp.id = id;
            self.finished.push(resp);
        }
    }

    /// Responses delivered so far, drained in router-id (submission)
    /// order — the same contract as [`Engine::take_responses`].
    pub fn take_responses(&mut self) -> Vec<Response> {
        let mut out = std::mem::take(&mut self.finished);
        out.sort_by_key(|resp| resp.id);
        out
    }

    /// Router steps executed (the virtual clock).
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// A snapshot of the router's counters, including each replica's
    /// engine stats.
    pub fn stats(&self) -> RouterStats {
        let mut s = self.stats.clone();
        s.replicas = self
            .replicas
            .iter()
            .map(|rep| ReplicaStats {
                routed: rep.routed,
                alive: rep.alive,
                breaker: rep.breaker.state(),
                engine: rep.engine.stats(),
            })
            .collect();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm4db_transformer::ModelConfig;

    fn model() -> GptModel {
        GptModel::new(ModelConfig::test(), 7)
    }

    fn opts(replicas: usize) -> RouterOptions {
        RouterOptions {
            replicas,
            heartbeat_every: 0, // no fault rolls unless a test arms them
            ..RouterOptions::default()
        }
    }

    fn drive(router: &mut Router<'_>) -> Vec<Response> {
        let mut out = Vec::new();
        let mut guard = 0;
        loop {
            let more = router.step();
            out.extend(router.take_responses());
            guard += 1;
            assert!(guard < 10_000, "router failed to drain");
            if !more {
                break;
            }
        }
        out
    }

    #[test]
    fn routes_complete_and_conserve() {
        lm4db_fault::disarm();
        let m = model();
        let mut router = Router::new(&m, opts(3));
        let ids: Vec<u64> = (0..20)
            .map(|i| router.submit(Request::greedy(vec![1, 2 + (i % 7)], 3, usize::MAX)))
            .collect();
        assert_eq!(ids, (0..20).collect::<Vec<u64>>(), "router ids are dense");
        let responses = drive(&mut router);
        assert_eq!(responses.len(), 20);
        assert!(responses
            .iter()
            .all(|resp| resp.outcome == Outcome::Finished));
        let s = router.stats();
        assert_eq!(s.submitted, 20);
        assert_eq!(s.terminal_total(), 20);
        assert_eq!(s.completed, 20);
        // Every replica exists in the breakdown and the routed counts sum.
        assert_eq!(s.replicas.len(), 3);
        assert_eq!(s.replicas.iter().map(|r| r.routed).sum::<u64>(), 20);
    }

    #[test]
    fn same_prefix_routes_to_same_replica() {
        lm4db_fault::disarm();
        let m = model();
        let mut router = Router::new(&m, opts(4));
        // Two prompt families sharing 8-token headers.
        for i in 0..10 {
            router.submit(Request::greedy(
                vec![1, 2, 3, 4, 5, 6, 7, 8, 20 + i],
                1,
                usize::MAX,
            ));
            router.submit(Request::greedy(
                vec![9, 9, 9, 9, 9, 9, 9, 9, 30 + i],
                1,
                usize::MAX,
            ));
        }
        drive(&mut router);
        let s = router.stats();
        // Each family lands on exactly one replica, so at most two
        // replicas saw traffic.
        let used = s.replicas.iter().filter(|r| r.routed > 0).count();
        assert!(
            used <= 2,
            "affinity routing spread two prefixes {used} ways"
        );
    }

    #[test]
    fn kill_fails_over_without_losing_requests() {
        lm4db_fault::disarm();
        let m = model();
        let mut router = Router::new(&m, opts(2));
        for i in 0..30 {
            router.submit(Request::greedy(vec![1, 2 + (i % 7)], 4, usize::MAX));
        }
        // Let some work start, then kill one replica mid-flight.
        router.step();
        router.kill_replica(0);
        let responses = drive(&mut router);
        let s = router.stats();
        assert_eq!(s.kills, 1);
        assert_eq!(responses.len(), 30, "every request answered exactly once");
        assert_eq!(s.terminal_total(), s.submitted, "ledger: {s:?}");
        assert!(s.live_replicas() == 1);
        // In-flight work on replica 0 moved to replica 1.
        assert!(s.failovers > 0, "kill mid-flight must fail something over");
    }

    #[test]
    fn all_dead_retires_instead_of_losing() {
        lm4db_fault::disarm();
        let m = model();
        let mut router = Router::new(&m, opts(2));
        for _ in 0..5 {
            router.submit(Request::greedy(vec![1, 2], 4, usize::MAX));
        }
        router.kill_replica(0);
        router.kill_replica(1);
        // Later submissions fail fast.
        router.submit(Request::greedy(vec![1, 3], 4, usize::MAX));
        let responses = drive(&mut router);
        assert_eq!(responses.len(), 6);
        assert!(responses
            .iter()
            .all(|resp| matches!(resp.outcome, Outcome::Failed { .. })));
        let s = router.stats();
        assert_eq!(s.no_live_replica, 6);
        assert_eq!(s.terminal_total(), s.submitted);
    }

    #[test]
    fn cancel_retires_cancelled_once() {
        lm4db_fault::disarm();
        let m = model();
        let mut router = Router::new(&m, opts(2));
        let keep = router.submit(Request::greedy(vec![1, 2], 3, usize::MAX));
        let drop_id = router.submit(Request::greedy(vec![1, 3], 50, usize::MAX));
        router.cancel(drop_id);
        let responses = drive(&mut router);
        assert_eq!(responses.len(), 2);
        let by_id: BTreeMap<u64, &Outcome> = responses.iter().map(|r| (r.id, &r.outcome)).collect();
        assert_eq!(by_id[&keep], &Outcome::Finished);
        assert_eq!(by_id[&drop_id], &Outcome::Cancelled);
    }

    #[test]
    fn random_policy_spreads_load() {
        lm4db_fault::disarm();
        let m = model();
        let mut o = opts(4);
        o.policy = RoutePolicy::Random { seed: 7 };
        let mut router = Router::new(&m, o);
        // One shared prefix: affinity would put all of it on one replica.
        for i in 0..40 {
            router.submit(Request::greedy(
                vec![1, 2, 3, 4, 5, 6, 7, 8, 10 + (i % 50)],
                1,
                usize::MAX,
            ));
        }
        drive(&mut router);
        let s = router.stats();
        let used = s.replicas.iter().filter(|r| r.routed > 0).count();
        assert!(used >= 3, "random routing used only {used} of 4 replicas");
    }
}
