//! Per-replica circuit breaker on the virtual step clock.
//!
//! The classic three-state machine — Closed → Open → HalfOpen — driven
//! not by wall time but by scheduler ticks, so a chaos run's breaker
//! trajectory is a pure function of the heartbeat outcomes and replays
//! byte-identically at any thread count:
//!
//! * **Closed**: traffic flows. Consecutive heartbeat misses accumulate a
//!   failure streak; reaching `threshold` trips the breaker Open. Any
//!   success resets the streak.
//! * **Open**: no new traffic is routed to the replica. After `cooldown`
//!   ticks the breaker moves to HalfOpen and the next heartbeat acts as
//!   the probe.
//! * **HalfOpen**: a successful probe closes the breaker; a miss reopens
//!   it for another full cooldown.
//!
//! The router drains a replica's in-flight requests when its breaker
//! opens (they fail over to the next ring node) and resumes routing when
//! it closes; every transition is booked as a counter and a
//! flight-recorder instant (see [`crate::router`]).

/// Breaker position: whether new traffic may be routed to the replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: traffic flows.
    Closed,
    /// Tripped: no traffic until the cooldown elapses.
    Open,
    /// Cooldown elapsed: the next heartbeat is the probe.
    HalfOpen,
}

/// A state change returned by [`Breaker::heartbeat`], in the order it
/// happened within the tick (a cooldown expiry and its probe outcome can
/// land on the same heartbeat).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// Closed → Open: the failure streak reached the threshold.
    Opened,
    /// Open → HalfOpen: the cooldown elapsed, probing resumes.
    HalfOpened,
    /// HalfOpen → Closed: the probe succeeded.
    Closed,
    /// HalfOpen → Open: the probe missed; a fresh cooldown starts.
    Reopened,
}

/// One replica's breaker. See the [module docs](self) for the state
/// machine.
#[derive(Debug, Clone)]
pub struct Breaker {
    threshold: u32,
    cooldown: u64,
    streak: u32,
    state: BreakerState,
    opened_at: u64,
}

impl Breaker {
    /// A closed breaker tripping after `threshold` consecutive misses
    /// (clamped to ≥ 1) and probing after `cooldown` ticks open.
    pub fn new(threshold: u32, cooldown: u64) -> Self {
        Breaker {
            threshold: threshold.max(1),
            cooldown,
            streak: 0,
            state: BreakerState::Closed,
            opened_at: 0,
        }
    }

    /// Current position.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether new requests may be routed to the replica. Only a Closed
    /// breaker routes; HalfOpen waits for its heartbeat probe rather than
    /// gambling live traffic on a recovering replica.
    pub fn routable(&self) -> bool {
        self.state == BreakerState::Closed
    }

    /// Current consecutive-miss streak (diagnostics).
    pub fn streak(&self) -> u32 {
        self.streak
    }

    /// Feeds one heartbeat observation at `tick` and returns the
    /// transitions it caused, in order (at most two: `HalfOpened` then the
    /// probe outcome).
    pub fn heartbeat(&mut self, tick: u64, ok: bool) -> Vec<Transition> {
        let mut out = Vec::new();
        if self.state == BreakerState::Open && tick.saturating_sub(self.opened_at) >= self.cooldown
        {
            self.state = BreakerState::HalfOpen;
            out.push(Transition::HalfOpened);
        }
        match self.state {
            BreakerState::Closed => {
                if ok {
                    self.streak = 0;
                } else {
                    self.streak += 1;
                    if self.streak >= self.threshold {
                        self.state = BreakerState::Open;
                        self.opened_at = tick;
                        out.push(Transition::Opened);
                    }
                }
            }
            BreakerState::HalfOpen => {
                if ok {
                    self.state = BreakerState::Closed;
                    self.streak = 0;
                    out.push(Transition::Closed);
                } else {
                    self.state = BreakerState::Open;
                    self.opened_at = tick;
                    out.push(Transition::Reopened);
                }
            }
            // Still cooling down: observations are ignored by design — an
            // open breaker's only exit is the cooldown timer.
            BreakerState::Open => {}
        }
        out
    }

    /// Forces the breaker Open at `tick` (the router calls this when it
    /// kills a replica outright, so stats render dead replicas as open).
    pub fn force_open(&mut self, tick: u64) -> Option<Transition> {
        if self.state == BreakerState::Open {
            return None;
        }
        self.state = BreakerState::Open;
        self.opened_at = tick;
        Some(Transition::Opened)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_consecutive_misses() {
        let mut b = Breaker::new(3, 10);
        assert_eq!(b.heartbeat(1, false), vec![]);
        assert_eq!(b.heartbeat(2, true), vec![], "success resets the streak");
        assert_eq!(b.heartbeat(3, false), vec![]);
        assert_eq!(b.heartbeat(4, false), vec![]);
        assert_eq!(b.heartbeat(5, false), vec![Transition::Opened]);
        assert!(!b.routable());
    }

    #[test]
    fn cooldown_probe_closes_on_success() {
        let mut b = Breaker::new(1, 10);
        assert_eq!(b.heartbeat(0, false), vec![Transition::Opened]);
        assert_eq!(b.heartbeat(5, true), vec![], "mid-cooldown is ignored");
        assert_eq!(
            b.heartbeat(10, true),
            vec![Transition::HalfOpened, Transition::Closed]
        );
        assert!(b.routable());
    }

    #[test]
    fn cooldown_probe_reopens_on_miss() {
        let mut b = Breaker::new(1, 4);
        b.heartbeat(0, false);
        assert_eq!(
            b.heartbeat(4, false),
            vec![Transition::HalfOpened, Transition::Reopened]
        );
        assert_eq!(b.state(), BreakerState::Open);
        // The reopen restarts the cooldown from tick 4.
        assert_eq!(b.heartbeat(7, true), vec![]);
        assert_eq!(
            b.heartbeat(8, true),
            vec![Transition::HalfOpened, Transition::Closed]
        );
    }

    #[test]
    fn force_open_is_idempotent() {
        let mut b = Breaker::new(2, 8);
        assert_eq!(b.force_open(3), Some(Transition::Opened));
        assert_eq!(b.force_open(4), None);
        assert_eq!(b.state(), BreakerState::Open);
    }
}
