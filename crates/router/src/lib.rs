//! # lm4db-router
//!
//! Sharded multi-replica serving (DESIGN.md §5l): a deterministic router
//! tier in front of N in-process [`lm4db_serve::Engine`] replicas.
//!
//! * [`ring`] — consistent-hash ring with virtual nodes, keyed by
//!   prompt-prefix fingerprints so the token-trie prefix cache gets
//!   per-replica locality (fair-share and minimal-disruption invariants
//!   property-tested).
//! * [`breaker`] — per-replica circuit breakers on the virtual step
//!   clock: closed → open → half-open with cooldown probes.
//! * [`router`] — the [`Router`] itself: routing, heartbeat-driven
//!   health rolls at the `router/replica` fault site, and failover that
//!   re-submits a dead replica's in-flight requests to the next live
//!   ring node while the conservation ledger
//!   (`completed + cancelled + expired + failed + rejected == submitted`)
//!   holds across any kill schedule.
//! * [`replication`] — log-shipping replication for read-mostly state
//!   (leader appends, followers replay; reads fan out, writes to the
//!   leader), with the NeuralDB fact store as the concrete machine.
//!
//! Everything runs on the virtual step clock, so a chaos run with
//! `LM4DB_FAULTS` killing replicas mid-stream replays byte-identically
//! at any `LM4DB_THREADS`/`LM4DB_TRACE` setting — see
//! `tests/integration_router.rs` and the `expT_router` bench.
//!
//! ```
//! use lm4db_router::{Router, RouterOptions};
//! use lm4db_serve::Request;
//! use lm4db_transformer::{GptModel, ModelConfig};
//!
//! lm4db_fault::disarm();
//! let model = GptModel::new(ModelConfig::test(), 7);
//! let mut router = Router::new(&model, RouterOptions {
//!     replicas: 2,
//!     ..RouterOptions::default()
//! });
//! let id = router.submit(Request::greedy(vec![1, 2, 3], 2, usize::MAX));
//! while router.step() {}
//! let responses = router.take_responses();
//! assert_eq!(responses[0].id, id);
//! ```

#![warn(missing_docs)]

pub mod breaker;
pub mod replication;
pub mod ring;
pub mod router;

pub use breaker::{Breaker, BreakerState, Transition};
pub use replication::{FactOp, FactState, Replicated, StateMachine};
pub use ring::{prefix_fingerprint, HashRing};
pub use router::{
    ReplicaStats, RoutePolicy, Router, RouterOptions, RouterStats, REPLICA_FAULT_SITE,
};
