//! Log-shipping replication for read-mostly state: one leader, N
//! followers, reads fanned out over a consistent-hash ring.
//!
//! The oxibase WAL-replication shape, reproduced deterministically
//! in-process: every write is applied to the leader **and** appended to an
//! ordered op log; [`Replicated::ship`] replays the log suffix each
//! follower has not seen yet, so any follower that has caught up is
//! byte-identical to the leader (pinned by [`StateMachine::fingerprint`]).
//! Reads route through a [`HashRing`] over the *live* followers — the
//! same minimal-disruption hashing the request router uses — and fall
//! back to the leader when every follower is dead, so a read always has a
//! home. Writes never fan out: the leader is the single serialization
//! point, which is what keeps the log a total order without any
//! coordination protocol.
//!
//! Consistency model: reads served between a write and the next
//! [`Replicated::ship`] may observe a lagging follower (eventual
//! consistency); `ship` + [`Replicated::converged`] gives read-your-writes
//! when the caller wants it. Both modes are deterministic — lag is a
//! function of the call sequence, not of timing.
//!
//! [`FactState`] is the concrete machine the serving stack replicates:
//! the NeuralDB fact store's read surface (`lookup`/`count`) over
//! `(subject, attribute) → value` triples, fed by
//! [`lm4db_neuraldb::ExtractedFact`] rows.

use std::collections::BTreeMap;

use lm4db_neuraldb::ExtractedFact;

use crate::ring::HashRing;

/// A deterministic state machine driven by an ordered op log.
pub trait StateMachine: Clone {
    /// One logged operation.
    type Op;

    /// Applies `op`. Must be deterministic: the same op sequence from the
    /// same initial state yields the same fingerprint, on any replica.
    fn apply(&mut self, op: &Self::Op);

    /// A 64-bit digest of the full state, used to check convergence.
    fn fingerprint(&self) -> u64;
}

/// One follower's slice of a [`Replicated`] group.
#[derive(Debug, Clone)]
struct Follower<S> {
    state: S,
    /// Ops replayed so far (an index into the leader's log).
    applied: usize,
    alive: bool,
}

/// A leader, its op log, and N log-shipping followers.
#[derive(Debug, Clone)]
pub struct Replicated<S: StateMachine> {
    leader: S,
    log: Vec<S::Op>,
    followers: Vec<Follower<S>>,
    ring: HashRing,
    reads_leader: u64,
    reads_follower: u64,
}

impl<S: StateMachine> Replicated<S> {
    /// A group whose leader and followers all start from `initial`.
    /// `vnodes` is the per-follower virtual-node count for read routing.
    pub fn new(initial: S, followers: usize, vnodes: u32) -> Self {
        Replicated {
            followers: (0..followers)
                .map(|_| Follower {
                    state: initial.clone(),
                    applied: 0,
                    alive: true,
                })
                .collect(),
            leader: initial,
            log: Vec::new(),
            ring: HashRing::new(followers as u32, vnodes),
            reads_leader: 0,
            reads_follower: 0,
        }
    }

    /// Applies `op` on the leader and appends it to the log. Followers see
    /// it at the next [`Replicated::ship`].
    pub fn write(&mut self, op: S::Op) {
        self.leader.apply(&op);
        self.log.push(op);
        lm4db_obs::counter_add("router/repl_writes", 1);
    }

    /// Ships the log: every live follower replays the suffix it has not
    /// applied yet. Returns the number of (follower, op) replays.
    pub fn ship(&mut self) -> usize {
        let mut replayed = 0;
        for f in self.followers.iter_mut().filter(|f| f.alive) {
            for op in &self.log[f.applied..] {
                f.state.apply(op);
                replayed += 1;
            }
            f.applied = self.log.len();
        }
        lm4db_obs::counter_add("router/repl_shipped", replayed as u64);
        replayed
    }

    /// The state a read keyed by `key` is served from: the ring-chosen
    /// live follower, or the leader when none is live. The follower may
    /// lag the leader by [`Replicated::lag`] ops.
    pub fn read(&mut self, key: u64) -> &S {
        let pick = self
            .ring
            .successors(key)
            .find(|&f| self.followers[f as usize].alive);
        match pick {
            Some(f) => {
                self.reads_follower += 1;
                &self.followers[f as usize].state
            }
            None => {
                self.reads_leader += 1;
                &self.leader
            }
        }
    }

    /// Direct access to the leader state (always current).
    pub fn leader(&self) -> &S {
        &self.leader
    }

    /// Marks follower `i` dead: it stops replaying and its ring positions
    /// are removed, so its read keys remap to the surviving followers.
    pub fn kill(&mut self, i: usize) {
        if self.followers[i].alive {
            self.followers[i].alive = false;
            self.ring.remove(i as u32);
        }
    }

    /// Revives follower `i`; it rejoins the ring and catches up from its
    /// last applied index at the next [`Replicated::ship`].
    pub fn revive(&mut self, i: usize) {
        if !self.followers[i].alive {
            self.followers[i].alive = true;
            self.ring.insert(i as u32);
        }
    }

    /// Ops follower `i` has not replayed yet.
    pub fn lag(&self, i: usize) -> usize {
        self.log.len() - self.followers[i].applied
    }

    /// Whether every live follower's fingerprint equals the leader's.
    pub fn converged(&self) -> bool {
        let fp = self.leader.fingerprint();
        self.followers
            .iter()
            .filter(|f| f.alive)
            .all(|f| f.state.fingerprint() == fp)
    }

    /// Total ops logged.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Live follower count.
    pub fn live_followers(&self) -> usize {
        self.followers.iter().filter(|f| f.alive).count()
    }

    /// `(follower_reads, leader_fallback_reads)` served so far.
    pub fn read_split(&self) -> (u64, u64) {
        (self.reads_follower, self.reads_leader)
    }
}

/// One logged mutation of a [`FactState`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FactOp {
    /// Upsert `(subject, attribute) → value`.
    Put {
        /// Fact subject ("Paris").
        subject: String,
        /// Fact attribute ("population").
        attribute: String,
        /// Fact value ("2.1M").
        value: String,
    },
    /// Remove `(subject, attribute)` if present.
    Delete {
        /// Fact subject.
        subject: String,
        /// Fact attribute.
        attribute: String,
    },
}

impl From<&ExtractedFact> for FactOp {
    /// The replication op that installs an extracted NeuralDB fact.
    fn from(f: &ExtractedFact) -> Self {
        FactOp::Put {
            subject: f.subject.clone(),
            attribute: f.attribute.clone(),
            value: f.value.clone(),
        }
    }
}

/// The NeuralDB read surface as a replicated state machine:
/// `(subject, attribute) → value` with point lookups and value counts,
/// mirroring [`lm4db_neuraldb`]'s store queries.
#[derive(Debug, Clone, Default)]
pub struct FactState {
    facts: BTreeMap<(String, String), String>,
}

impl FactState {
    /// An empty store.
    pub fn new() -> Self {
        FactState::default()
    }

    /// The value for `(subject, attribute)`, if known.
    pub fn lookup(&self, subject: &str, attribute: &str) -> Option<&str> {
        self.facts
            .get(&(subject.to_string(), attribute.to_string()))
            .map(String::as_str)
    }

    /// How many subjects have `attribute = value`.
    pub fn count(&self, attribute: &str, value: &str) -> usize {
        self.facts
            .iter()
            .filter(|((_, a), v)| a == attribute && v.as_str() == value)
            .count()
    }

    /// Total facts stored.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }
}

impl StateMachine for FactState {
    type Op = FactOp;

    fn apply(&mut self, op: &FactOp) {
        match op {
            FactOp::Put {
                subject,
                attribute,
                value,
            } => {
                self.facts
                    .insert((subject.clone(), attribute.clone()), value.clone());
            }
            FactOp::Delete { subject, attribute } => {
                self.facts.remove(&(subject.clone(), attribute.clone()));
            }
        }
    }

    fn fingerprint(&self) -> u64 {
        // FNV-1a over the sorted entries: BTreeMap iteration order is the
        // key order, so equal states hash equal on every replica.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |s: &str| {
            for b in s.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            h ^= 0xff;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for ((s, a), v) in &self.facts {
            eat(s);
            eat(a);
            eat(v);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(s: &str, a: &str, v: &str) -> FactOp {
        FactOp::Put {
            subject: s.into(),
            attribute: a.into(),
            value: v.into(),
        }
    }

    #[test]
    fn followers_converge_after_ship() {
        let mut g = Replicated::new(FactState::new(), 3, 16);
        g.write(put("paris", "population", "2.1M"));
        g.write(put("berlin", "population", "3.6M"));
        assert!(!g.converged(), "followers lag before ship");
        assert_eq!(g.lag(0), 2);
        let replayed = g.ship();
        assert_eq!(replayed, 6, "2 ops × 3 followers");
        assert!(g.converged());
        assert_eq!(g.read(7).lookup("paris", "population"), Some("2.1M"));
    }

    #[test]
    fn reads_fan_out_and_fall_back_to_leader() {
        let mut g = Replicated::new(FactState::new(), 2, 16);
        g.write(put("a", "x", "1"));
        g.ship();
        for k in 0..50 {
            assert_eq!(g.read(crate::ring::mix(k)).lookup("a", "x"), Some("1"));
        }
        let (follower, leader) = g.read_split();
        assert_eq!((follower, leader), (50, 0), "all reads from followers");
        g.kill(0);
        g.kill(1);
        assert_eq!(g.live_followers(), 0);
        assert_eq!(g.read(9).lookup("a", "x"), Some("1"));
        let (_, leader) = g.read_split();
        assert_eq!(leader, 1, "leader serves when no follower is live");
    }

    #[test]
    fn killed_follower_catches_up_after_revive() {
        let mut g = Replicated::new(FactState::new(), 2, 16);
        g.write(put("a", "x", "1"));
        g.ship();
        g.kill(1);
        g.write(put("b", "x", "2"));
        g.write(FactOp::Delete {
            subject: "a".into(),
            attribute: "x".into(),
        });
        g.ship();
        assert_eq!(g.lag(1), 2, "dead follower accumulates lag");
        g.revive(1);
        g.ship();
        assert!(g.converged(), "revived follower replays the suffix");
        assert_eq!(g.read(3).lookup("a", "x"), None, "delete replicated");
    }

    #[test]
    fn extracted_facts_convert_to_ops() {
        let f = ExtractedFact {
            subject: "tokyo".into(),
            attribute: "country".into(),
            value: "japan".into(),
        };
        let mut st = FactState::new();
        st.apply(&FactOp::from(&f));
        assert_eq!(st.lookup("tokyo", "country"), Some("japan"));
        assert_eq!(st.count("country", "japan"), 1);
        assert_eq!(st.len(), 1);
    }

    #[test]
    fn fingerprints_track_state_not_history() {
        let mut a = FactState::new();
        let mut b = FactState::new();
        a.apply(&put("x", "k", "1"));
        a.apply(&put("y", "k", "2"));
        b.apply(&put("y", "k", "2"));
        b.apply(&put("x", "k", "0"));
        b.apply(&put("x", "k", "1"));
        assert_eq!(a.fingerprint(), b.fingerprint(), "same state, same digest");
        b.apply(&put("z", "k", "3"));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
