//! Consistent-hash ring with virtual nodes, plus the prompt-prefix
//! fingerprint that keys routing decisions.
//!
//! The ring is the classic construction: every replica owns `vnodes_per`
//! pseudo-random positions on a `u64` circle, and a key is routed to the
//! replica owning the first position at or clockwise-after the key's own
//! hash. Virtual nodes smooth the load split (the fair-share property is
//! pinned by `tests/ring_props.rs`), and removing a replica remaps *only*
//! the keys that landed on its positions — every other key keeps its
//! replica, which is what makes failover cheap: one replica's cache
//! working set moves, the others stay warm (the minimal-disruption
//! invariant, also property-tested).
//!
//! Positions are pure functions of `(replica, vnode_index)` — no RNG
//! state, no clock — so two rings built from the same member list are
//! identical, in this process or any other. That determinism is load-
//! bearing: the chaos matrix replays routing decisions byte-for-byte
//! across thread counts and trace levels.

/// splitmix64 finalizer — the same spreader `lm4db-fault` uses for fault
/// decisions; one round trip is enough to decorrelate adjacent inputs.
#[inline]
pub(crate) fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The routing key for a prompt: a hash of its first `window` tokens.
///
/// Prompts that share an instruction header (the loadgen workloads all
/// prepend one) share a fingerprint, so affinity routing sends them to
/// the same replica and the replica's token-trie prefix cache serves the
/// header from cache instead of rediscovering it. `window` trades
/// locality granularity against collision rate; 0 hashes the whole
/// prompt.
pub fn prefix_fingerprint(tokens: &[usize], window: usize) -> u64 {
    let take = if window == 0 { tokens.len() } else { window };
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for &t in tokens.iter().take(take) {
        h = mix(h ^ (t as u64).wrapping_add(1));
    }
    h
}

/// A consistent-hash ring over `u32` replica ids.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted `(position, replica)` pairs; ties break on the replica id
    /// so the ring order is total and member-list-deterministic.
    vnodes: Vec<(u64, u32)>,
    members: Vec<u32>,
    vnodes_per: u32,
}

impl HashRing {
    /// A ring over replicas `0..replicas`, each with `vnodes_per` virtual
    /// nodes (clamped to ≥ 1).
    pub fn new(replicas: u32, vnodes_per: u32) -> Self {
        Self::with_members(&(0..replicas).collect::<Vec<_>>(), vnodes_per)
    }

    /// A ring over an explicit member list (duplicates are ignored).
    pub fn with_members(members: &[u32], vnodes_per: u32) -> Self {
        let mut ms: Vec<u32> = members.to_vec();
        ms.sort_unstable();
        ms.dedup();
        let mut ring = HashRing {
            vnodes: Vec::new(),
            members: ms,
            vnodes_per: vnodes_per.max(1),
        };
        ring.rebuild();
        ring
    }

    fn rebuild(&mut self) {
        self.vnodes.clear();
        self.vnodes
            .reserve(self.members.len() * self.vnodes_per as usize);
        for &rep in &self.members {
            for v in 0..self.vnodes_per {
                let pos = mix((u64::from(rep) << 32) | u64::from(v));
                self.vnodes.push((pos, rep));
            }
        }
        self.vnodes.sort_unstable();
    }

    /// Current members, ascending.
    pub fn members(&self) -> &[u32] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Adds a replica (no-op if present). Only the keys clockwise-before
    /// its new positions move to it.
    pub fn insert(&mut self, replica: u32) {
        if let Err(i) = self.members.binary_search(&replica) {
            self.members.insert(i, replica);
            self.rebuild();
        }
    }

    /// Removes a replica (no-op if absent). Only keys that landed on its
    /// positions are remapped — to each position's clockwise successor.
    pub fn remove(&mut self, replica: u32) {
        if let Ok(i) = self.members.binary_search(&replica) {
            self.members.remove(i);
            self.rebuild();
        }
    }

    /// The replica owning `key`, or `None` on an empty ring.
    pub fn route(&self, key: u64) -> Option<u32> {
        self.successors(key).next()
    }

    /// Distinct replicas in ring order starting at `key`'s position: the
    /// owner first, then each following replica exactly once. Failover
    /// walks this order, skipping dead or open replicas, so every router
    /// in the fleet agrees on the fallback target without coordination.
    pub fn successors(&self, key: u64) -> impl Iterator<Item = u32> + '_ {
        let start = self.vnodes.partition_point(|&(pos, _)| pos < key);
        let n = self.vnodes.len();
        let mut seen: Vec<u32> = Vec::with_capacity(self.members.len());
        (0..n).filter_map(move |i| {
            let (_, rep) = self.vnodes[(start + i) % n];
            if seen.contains(&rep) {
                None
            } else {
                seen.push(rep);
                Some(rep)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_are_deterministic_and_total() {
        let a = HashRing::new(4, 64);
        let b = HashRing::new(4, 64);
        for k in 0..1000u64 {
            let key = mix(k);
            let r = a.route(key).unwrap();
            assert_eq!(Some(r), b.route(key), "two identical rings disagree");
            assert!(r < 4);
        }
    }

    #[test]
    fn successors_visit_every_member_once() {
        let ring = HashRing::new(5, 16);
        for k in 0..50u64 {
            let order: Vec<u32> = ring.successors(mix(k)).collect();
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4], "order was {order:?}");
            assert_eq!(order[0], ring.route(mix(k)).unwrap());
        }
    }

    #[test]
    fn empty_ring_routes_nothing() {
        let ring = HashRing::with_members(&[], 8);
        assert!(ring.is_empty());
        assert_eq!(ring.route(42), None);
    }

    #[test]
    fn insert_and_remove_are_inverses() {
        let mut ring = HashRing::new(4, 32);
        let before: Vec<Option<u32>> = (0..200).map(|k| ring.route(mix(k))).collect();
        ring.remove(2);
        assert_eq!(ring.members(), &[0, 1, 3]);
        for k in 0..200 {
            assert_ne!(ring.route(mix(k)), Some(2), "removed replica still routed");
        }
        ring.insert(2);
        let after: Vec<Option<u32>> = (0..200).map(|k| ring.route(mix(k))).collect();
        assert_eq!(before, after, "re-adding a member must restore the map");
    }

    #[test]
    fn prefix_fingerprint_depends_only_on_the_window() {
        let a = prefix_fingerprint(&[1, 2, 3, 4, 5, 6], 4);
        let b = prefix_fingerprint(&[1, 2, 3, 4, 9, 9], 4);
        let c = prefix_fingerprint(&[1, 2, 3, 7, 5, 6], 4);
        assert_eq!(a, b, "tail tokens beyond the window must not matter");
        assert_ne!(a, c, "window tokens must matter");
        // window 0 hashes everything.
        assert_ne!(
            prefix_fingerprint(&[1, 2, 3, 4, 5, 6], 0),
            prefix_fingerprint(&[1, 2, 3, 4, 5, 7], 0)
        );
    }
}
