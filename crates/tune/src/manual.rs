//! Synthetic tuning-manual generation: natural-language hints about knob
//! settings (with paraphrases and distractor sentences), plus the gold
//! hints — the input side of DB-BERT's "read the manual" pipeline.

use lm4db_tensor::Rand;

use crate::cost::Workload;
use crate::knobs::{knob_index, KNOBS};

/// A gold tuning hint: set `knob` to `value` (for `workload`-style loads).
#[derive(Debug, Clone, PartialEq)]
pub struct Hint {
    /// Knob index into [`KNOBS`].
    pub knob: usize,
    /// Recommended absolute value.
    pub value: f64,
    /// The workload the hint targets (hints for other workloads are
    /// distractors to a tuner targeting a specific load).
    pub workload: Workload,
}

/// One manual sentence and, when it encodes a hint, the gold hint.
#[derive(Debug, Clone)]
pub struct ManualSentence {
    /// The sentence text.
    pub text: String,
    /// The hint it encodes (None for filler prose).
    pub hint: Option<Hint>,
}

const HINT_TEMPLATES: [&str; 4] = [
    "for {w} workloads set {k} to {v}",
    "we recommend a {k} of {v} when running {w} load",
    "under {w} pressure raise {k} to {v} for best results",
    "tuning guide : {k} should be {v} on {w} systems",
];

const FILLER: [&str; 5] = [
    "the storage engine writes pages asynchronously",
    "backups should be scheduled during low traffic windows",
    "the query planner collects statistics automatically",
    "replication lag is reported in the monitoring view",
    "consult your vendor before changing undocumented settings",
];

/// Good target values per workload, per knob — derived from the cost
/// model's structure so the manual is *useful* (DB-BERT's premise). A
/// small fraction of hints are deliberately misleading, as real manuals
/// sometimes are.
fn good_value(knob: usize, workload: Workload) -> f64 {
    let k = KNOBS[knob];
    let frac = match (k.name, workload) {
        ("buffer_pool_mb", _) => 0.9,
        ("worker_threads", _) => 0.4,
        ("checkpoint_interval_s", _) => 0.7,
        ("wal_buffer_kb", _) => 0.9,
        ("cache_ratio", _) => 1.0,
        ("compression_level", Workload::Olap) => 1.0,
        ("compression_level", _) => 0.0,
        ("prefetch_pages", Workload::Olap) => 1.0,
        ("prefetch_pages", _) => 0.5,
        ("vacuum_cost_limit", _) => 0.5,
        _ => 0.5,
    };
    (k.min + frac * (k.max - k.min)).round()
}

/// Generates a manual of `n` sentences: ~60% hints (cycling knobs and
/// workloads), ~40% filler. `misleading_rate` flips that fraction of hints
/// to bad values.
pub fn generate_manual(n: usize, misleading_rate: f32, seed: u64) -> Vec<ManualSentence> {
    let mut rng = Rand::seeded(seed);
    let mut out = Vec::with_capacity(n);
    let mut knob_cursor = 0;
    for i in 0..n {
        if i % 5 < 2 {
            out.push(ManualSentence {
                text: FILLER[rng.below(FILLER.len())].to_string(),
                hint: None,
            });
            continue;
        }
        let knob = knob_cursor % KNOBS.len();
        knob_cursor += 1;
        let workload = Workload::all()[rng.below(3)];
        let mut value = good_value(knob, workload);
        if rng.uniform() < misleading_rate {
            // A misleading hint: the opposite end of the range.
            let k = KNOBS[knob];
            value = if k.normalize(value) > 0.5 {
                k.min
            } else {
                k.max
            };
        }
        let template = HINT_TEMPLATES[rng.below(HINT_TEMPLATES.len())];
        let text = template
            .replace("{w}", workload.label())
            .replace("{k}", KNOBS[knob].name)
            .replace("{v}", &format!("{value}"));
        out.push(ManualSentence {
            text,
            hint: Some(Hint {
                knob,
                value,
                workload,
            }),
        });
    }
    out
}

/// Keyword hint extractor: find a knob name and a number in the sentence,
/// plus the workload label. This is the non-LM baseline extractor.
pub fn extract_keyword(sentence: &str) -> Option<Hint> {
    let words: Vec<&str> = sentence.split_whitespace().collect();
    let knob = words.iter().find_map(|w| knob_index(w))?;
    let value = words.iter().find_map(|w| w.parse::<f64>().ok())?;
    let workload = if sentence.contains("oltp") {
        Workload::Oltp
    } else if sentence.contains("olap") {
        Workload::Olap
    } else {
        Workload::Mixed
    };
    Some(Hint {
        knob,
        value,
        workload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_mixes_hints_and_filler() {
        let m = generate_manual(30, 0.0, 1);
        let hints = m.iter().filter(|s| s.hint.is_some()).count();
        assert!(hints > 10 && hints < 30, "hints: {hints}");
    }

    #[test]
    fn keyword_extractor_recovers_gold_hints() {
        let m = generate_manual(40, 0.0, 2);
        for s in m.iter().filter(|s| s.hint.is_some()) {
            let extracted = extract_keyword(&s.text).expect("hint not extracted");
            let gold = s.hint.as_ref().unwrap();
            assert_eq!(extracted.knob, gold.knob, "in: {}", s.text);
            assert_eq!(extracted.value, gold.value, "in: {}", s.text);
            assert_eq!(extracted.workload, gold.workload, "in: {}", s.text);
        }
    }

    #[test]
    fn filler_yields_no_hints() {
        let m = generate_manual(40, 0.0, 3);
        for s in m.iter().filter(|s| s.hint.is_none()) {
            assert!(extract_keyword(&s.text).is_none(), "false hint: {}", s.text);
        }
    }

    #[test]
    fn misleading_rate_flips_values() {
        let clean = generate_manual(40, 0.0, 4);
        let noisy = generate_manual(40, 1.0, 4);
        let pairs = clean
            .iter()
            .zip(noisy.iter())
            .filter(|(a, b)| a.hint.is_some() && b.hint.is_some());
        let mut flipped = 0;
        for (a, b) in pairs {
            if a.hint.as_ref().unwrap().value != b.hint.as_ref().unwrap().value {
                flipped += 1;
            }
        }
        assert!(flipped > 5, "only {flipped} hints flipped");
    }

    #[test]
    fn good_values_are_legal() {
        for (knob, spec) in KNOBS.iter().enumerate() {
            for w in Workload::all() {
                let v = good_value(knob, w);
                assert!(v >= spec.min && v <= spec.max);
            }
        }
    }
}
