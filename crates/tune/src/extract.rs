//! The LM side of DB-BERT: real manuals rarely name knobs literally — they
//! say "memory used for caching pages" instead of `buffer_pool_mb`. A
//! fine-tuned classifier maps a sentence to the knob it discusses (or to
//! "no knob"), recovering hints the keyword extractor misses.

use lm4db_lm::{FineTunedClassifier, TextClassifier};
use lm4db_tensor::Rand;
use lm4db_tokenize::Bpe;
use lm4db_transformer::ModelConfig;

use crate::cost::Workload;
use crate::knobs::KNOBS;
use crate::manual::{Hint, ManualSentence};

/// Natural-language descriptions manuals use instead of knob names,
/// index-aligned with [`KNOBS`].
pub const KNOB_PHRASES: [&str; 8] = [
    "the memory used for caching data pages",
    "the number of parallel query workers",
    "the seconds between checkpoint flushes",
    "the size of the write ahead log buffer",
    "the fraction of memory reserved for the result cache",
    "the level of page compression",
    "the pages fetched ahead during scans",
    "the cost budget for background cleanup",
];

/// Rewrites hint sentences to use the NL phrase instead of the knob name
/// with probability `rate` (gold hints unchanged).
pub fn paraphrase_manual(manual: &[ManualSentence], rate: f32, seed: u64) -> Vec<ManualSentence> {
    let mut rng = Rand::seeded(seed);
    manual
        .iter()
        .map(|s| {
            let mut out = s.clone();
            if let Some(h) = &s.hint {
                if rng.uniform() < rate {
                    out.text = out.text.replace(KNOBS[h.knob].name, KNOB_PHRASES[h.knob]);
                }
            }
            out
        })
        .collect()
}

/// A fine-tuned sentence → knob classifier (`KNOBS.len()` classes plus a
/// "none" class for filler prose).
pub struct LmHintExtractor {
    clf: FineTunedClassifier<Bpe>,
    none_class: usize,
}

impl LmHintExtractor {
    /// Trains on a labeled manual (labels derived from the gold hints the
    /// generator attaches — in the real system these come from annotated
    /// manual snippets).
    pub fn train(cfg: ModelConfig, manual: &[ManualSentence], epochs: usize, seed: u64) -> Self {
        let bpe = Bpe::train(manual.iter().map(|s| s.text.as_str()), 700);
        let mut labels: Vec<String> = KNOBS.iter().map(|k| k.name.to_string()).collect();
        labels.push("none".into());
        let none_class = labels.len() - 1;
        let mut clf = FineTunedClassifier::new(cfg, bpe, labels, seed);
        let examples: Vec<(String, usize)> = manual
            .iter()
            .map(|s| {
                let label = s.hint.as_ref().map(|h| h.knob).unwrap_or(none_class);
                (s.text.clone(), label)
            })
            .collect();
        clf.fit(&examples, epochs, 8, 2e-3);
        LmHintExtractor { clf, none_class }
    }

    /// Extracts a hint from one sentence: classify the knob, parse the
    /// value and workload lexically.
    pub fn extract(&mut self, sentence: &str) -> Option<Hint> {
        let knob = self.clf.classify(sentence);
        if knob == self.none_class {
            return None;
        }
        let value = sentence
            .split_whitespace()
            .find_map(|w| w.parse::<f64>().ok())?;
        let workload = if sentence.contains("oltp") {
            Workload::Oltp
        } else if sentence.contains("olap") {
            Workload::Olap
        } else {
            Workload::Mixed
        };
        Some(Hint {
            knob,
            value,
            workload,
        })
    }

    /// Fraction of gold hints recovered with the correct knob.
    pub fn recall(&mut self, manual: &[ManualSentence]) -> f32 {
        let gold: Vec<&ManualSentence> = manual.iter().filter(|s| s.hint.is_some()).collect();
        if gold.is_empty() {
            return 0.0;
        }
        let hits = gold
            .iter()
            .filter(|s| {
                self.extract(&s.text)
                    .map(|h| h.knob == s.hint.as_ref().unwrap().knob)
                    .unwrap_or(false)
            })
            .count();
        hits as f32 / gold.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manual::{extract_keyword, generate_manual};

    #[test]
    fn paraphrasing_removes_knob_names() {
        let manual = generate_manual(30, 0.0, 1);
        let para = paraphrase_manual(&manual, 1.0, 2);
        let with_name = para
            .iter()
            .filter(|s| s.hint.is_some())
            .filter(|s| {
                let h = s.hint.as_ref().unwrap();
                s.text.contains(KNOBS[h.knob].name)
            })
            .count();
        assert_eq!(with_name, 0, "knob names survived paraphrasing");
    }

    #[test]
    fn keyword_extractor_misses_paraphrased_hints() {
        let manual = generate_manual(30, 0.0, 3);
        let para = paraphrase_manual(&manual, 1.0, 4);
        let recovered = para
            .iter()
            .filter(|s| s.hint.is_some())
            .filter(|s| {
                extract_keyword(&s.text)
                    .map(|h| h.knob == s.hint.as_ref().unwrap().knob)
                    .unwrap_or(false)
            })
            .count();
        assert_eq!(recovered, 0, "keyword extractor should miss paraphrases");
    }

    #[test]
    fn lm_extractor_recovers_paraphrased_hints() {
        // Train on a paraphrased manual, test on a *different* paraphrased
        // manual (same phrase inventory, different sentences/values).
        let train = paraphrase_manual(&generate_manual(60, 0.0, 5), 0.5, 6);
        let test = paraphrase_manual(&generate_manual(30, 0.0, 7), 1.0, 8);
        let cfg = ModelConfig {
            max_seq_len: 40,
            ..ModelConfig::test()
        };
        let mut lm = LmHintExtractor::train(cfg, &train, 20, 9);
        let lm_recall = lm.recall(&test);
        // Keyword recall on the same test set is zero (previous test).
        assert!(lm_recall > 0.3, "LM extractor recall too low: {lm_recall}");
    }
}
