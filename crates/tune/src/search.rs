//! Tuning strategies: the hint-guided search of DB-BERT against blind
//! baselines, all under an identical trial-run budget.

use lm4db_tensor::Rand;

use crate::cost::{latency_ms, Workload};
use crate::knobs::{Config, KNOBS};
use crate::manual::{extract_keyword, Hint, ManualSentence};

/// The outcome of a tuning run: the best latency observed after each trial.
#[derive(Debug, Clone)]
pub struct TuningRun {
    /// `curve[t]` = best latency after `t + 1` trials.
    pub curve: Vec<f64>,
    /// The best configuration found.
    pub best_config: Config,
}

impl TuningRun {
    /// Best latency after all trials.
    pub fn final_latency(&self) -> f64 {
        *self.curve.last().expect("at least one trial")
    }

    /// Number of trials needed to reach `target` latency (None if never).
    pub fn trials_to_reach(&self, target: f64) -> Option<usize> {
        self.curve.iter().position(|&l| l <= target).map(|i| i + 1)
    }
}

fn run_trials(
    configs: impl IntoIterator<Item = Config>,
    workload: Workload,
    budget: usize,
) -> TuningRun {
    let mut curve = Vec::with_capacity(budget);
    let mut best = f64::INFINITY;
    let mut best_config = Config::default_config();
    for c in configs.into_iter().take(budget) {
        let lat = latency_ms(&c, workload);
        if lat < best {
            best = lat;
            best_config = c;
        }
        curve.push(best);
    }
    TuningRun { curve, best_config }
}

/// Uniform random search over the knob space.
pub fn random_search(workload: Workload, budget: usize, seed: u64) -> TuningRun {
    let mut rng = Rand::seeded(seed);
    let configs = (0..budget).map(move |_| {
        let mut c = Config::default_config();
        for (i, k) in KNOBS.iter().enumerate() {
            c.set(i, k.min + rng.uniform() as f64 * (k.max - k.min));
        }
        c
    });
    let configs: Vec<Config> = configs.collect();
    run_trials(configs, workload, budget)
}

/// Coordinate-descent hill climbing from the default configuration: probe
/// each knob at low/mid/high, keep improvements.
pub fn hill_climb(workload: Workload, budget: usize) -> TuningRun {
    let mut configs = Vec::with_capacity(budget);
    let mut current = Config::default_config();
    configs.push(current.clone());
    'outer: loop {
        for (i, k) in KNOBS.iter().enumerate() {
            for frac in [0.1, 0.5, 0.9] {
                let candidate = current.with(i, k.min + frac * (k.max - k.min));
                if latency_ms(&candidate, workload) < latency_ms(&current, workload) {
                    current = candidate.clone();
                }
                configs.push(current.clone());
                if configs.len() >= budget {
                    break 'outer;
                }
            }
        }
        if configs.len() >= budget {
            break;
        }
    }
    run_trials(configs, workload, budget)
}

/// DB-BERT-style hint-guided tuning: extract hints from the manual, try
/// the hinted settings first (hints for the target workload before
/// others), then refine locally around the incumbent.
pub fn hint_guided(
    manual: &[ManualSentence],
    mut extractor: impl FnMut(&str) -> Option<Hint>,
    workload: Workload,
    budget: usize,
    seed: u64,
) -> TuningRun {
    let mut hints: Vec<Hint> = manual.iter().filter_map(|s| extractor(&s.text)).collect();
    // Target-workload hints first; preserve manual order otherwise.
    hints.sort_by_key(|h| u8::from(h.workload != workload));

    let mut configs: Vec<Config> = Vec::with_capacity(budget);
    // 1. Apply hints cumulatively (each trial = incumbent + next hint,
    //    kept when it helps — DB-BERT evaluates hint combinations).
    let mut incumbent = Config::default_config();
    configs.push(incumbent.clone());
    for h in &hints {
        if configs.len() >= budget {
            break;
        }
        let candidate = incumbent.with(h.knob, h.value);
        if latency_ms(&candidate, workload) < latency_ms(&incumbent, workload) {
            incumbent = candidate.clone();
        }
        configs.push(candidate);
    }
    // 2. Local refinement around the incumbent for the remaining budget.
    let mut rng = Rand::seeded(seed);
    while configs.len() < budget {
        let knob = rng.below(KNOBS.len());
        let k = KNOBS[knob];
        let span = (k.max - k.min) * 0.15;
        let jitter = (rng.uniform() as f64 * 2.0 - 1.0) * span;
        let candidate = incumbent.with(knob, incumbent.get(knob) + jitter);
        if latency_ms(&candidate, workload) < latency_ms(&incumbent, workload) {
            incumbent = candidate.clone();
        }
        configs.push(candidate);
    }
    run_trials(configs, workload, budget)
}

/// Convenience: hint-guided tuning with the keyword extractor.
pub fn db_bert_style(
    manual: &[ManualSentence],
    workload: Workload,
    budget: usize,
    seed: u64,
) -> TuningRun {
    hint_guided(manual, extract_keyword, workload, budget, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::default_latency;
    use crate::manual::generate_manual;

    #[test]
    fn all_strategies_improve_on_default() {
        let default = default_latency(Workload::Mixed);
        let manual = generate_manual(40, 0.0, 1);
        for run in [
            random_search(Workload::Mixed, 30, 1),
            hill_climb(Workload::Mixed, 30),
            db_bert_style(&manual, Workload::Mixed, 30, 1),
        ] {
            assert!(
                run.final_latency() < default,
                "strategy failed to beat the default: {} vs {default}",
                run.final_latency()
            );
        }
    }

    #[test]
    fn curves_are_monotone_nonincreasing() {
        let run = random_search(Workload::Olap, 25, 2);
        for w in run.curve.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn hints_outperform_random_search_on_average() {
        // With a useful manual, the hint-guided tuner ends a 20-trial
        // budget well ahead of random search (averaged over seeds — any
        // single random run can get lucky early).
        let manual = generate_manual(40, 0.0, 3);
        let budget = 20;
        let seeds = [1u64, 2, 3, 4, 5];
        let guided_mean: f64 = seeds
            .iter()
            .map(|&s| db_bert_style(&manual, Workload::Olap, budget, s).final_latency())
            .sum::<f64>()
            / seeds.len() as f64;
        let random_mean: f64 = seeds
            .iter()
            .map(|&s| random_search(Workload::Olap, budget, s).final_latency())
            .sum::<f64>()
            / seeds.len() as f64;
        assert!(
            guided_mean < random_mean,
            "guided mean {guided_mean} vs random mean {random_mean}"
        );
    }

    #[test]
    fn misleading_manual_does_not_poison_the_tuner() {
        // Trial runs reject bad hints, so even a fully misleading manual
        // leaves the tuner no worse than the default configuration.
        let bad_manual = generate_manual(40, 1.0, 7);
        let run = db_bert_style(&bad_manual, Workload::Oltp, 30, 9);
        assert!(run.final_latency() <= default_latency(Workload::Oltp));
    }

    #[test]
    fn trials_to_reach_reports_first_crossing() {
        let run = TuningRun {
            curve: vec![10.0, 8.0, 8.0, 5.0],
            best_config: Config::default_config(),
        };
        assert_eq!(run.trials_to_reach(8.0), Some(2));
        assert_eq!(run.trials_to_reach(4.0), None);
    }
}
