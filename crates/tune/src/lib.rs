//! # lm4db-tune
//!
//! **Database tuning that "reads the manual"** (DB-BERT, SIGMOD 2022; §2.5
//! of the tutorial): extract knob hints from natural-language manual text,
//! try them as trial runs on a (simulated) DBMS, and refine — compared
//! against blind random search and hill climbing under the same trial
//! budget.
//!
//! The simulated DBMS replaces PostgreSQL trial runs with a documented
//! analytic cost model (`cost`); the tuning *loop* — hint extraction,
//! trial evaluation, incumbent refinement — is the full DB-BERT pipeline.

#![warn(missing_docs)]

pub mod cost;
pub mod extract;
pub mod knobs;
pub mod manual;
pub mod search;

pub use cost::{default_latency, latency_ms, Workload};
pub use extract::{paraphrase_manual, LmHintExtractor, KNOB_PHRASES};
pub use knobs::{knob_index, Config, KnobSpec, KNOBS};
pub use manual::{extract_keyword, generate_manual, Hint, ManualSentence};
pub use search::{db_bert_style, hill_climb, hint_guided, random_search, TuningRun};
