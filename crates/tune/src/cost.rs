//! The simulated DBMS: an analytic latency model over the knob space.
//!
//! This replaces the PostgreSQL/MySQL trial runs of DB-BERT (documented
//! substitution, DESIGN.md §2). The model is built from standard knob
//! response shapes: diminishing returns for memory knobs, an interior
//! optimum for parallelism (contention beyond the core count), workload-
//! dependent signs (compression helps scans, hurts writes), plus a mild
//! interaction term — enough structure that blind search needs many trials
//! while a correct manual hint lands near the optimum immediately.

use crate::knobs::Config;

/// Workload archetypes with different optimal configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Short transactional statements: write-heavy, checkpoint-sensitive.
    Oltp,
    /// Long analytical scans: memory- and parallelism-hungry.
    Olap,
    /// A blend of both.
    Mixed,
}

impl Workload {
    /// All workloads.
    pub fn all() -> [Workload; 3] {
        [Workload::Oltp, Workload::Olap, Workload::Mixed]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Workload::Oltp => "oltp",
            Workload::Olap => "olap",
            Workload::Mixed => "mixed",
        }
    }
}

/// Mean statement latency (ms) of `config` under `workload`.
///
/// Deterministic; lower is better. The baseline (default config) sits far
/// from the optimum for every workload.
pub fn latency_ms(config: &Config, workload: Workload) -> f64 {
    let n = config.normalized();
    let (buffer, threads, checkpoint, wal, cache, compression, prefetch, vacuum) =
        (n[0], n[1], n[2], n[3], n[4], n[5], n[6], n[7]);

    // Weights per workload: how much each term matters.
    let (w_buf, w_thr, w_chk, w_wal, w_cmp, w_pre) = match workload {
        Workload::Oltp => (8.0, 4.0, 10.0, 6.0, 5.0, 1.0),
        Workload::Olap => (14.0, 10.0, 2.0, 1.0, -3.0, 6.0),
        Workload::Mixed => (11.0, 7.0, 6.0, 3.0, 1.0, 3.0),
    };

    let mut ms = 40.0;
    // Memory knobs: diminishing returns (exponential saturation).
    ms -= w_buf * (1.0 - (-4.0 * buffer).exp());
    ms -= w_wal * (1.0 - (-4.0 * wal).exp());
    // Parallelism: interior optimum around 0.4 of the range.
    ms += w_thr * (threads - 0.4) * (threads - 0.4) * 4.0 - w_thr * 0.2;
    // Checkpointing: longer intervals help OLTP up to a point, then recovery
    // pressure (simulated) pushes back.
    ms += w_chk * (checkpoint - 0.7) * (checkpoint - 0.7) * 2.0;
    // Compression: sign depends on the workload (helps scans, hurts writes).
    ms += w_cmp * compression;
    // Prefetching: linear benefit for scans.
    ms -= w_pre * prefetch;
    // Cache ratio: interaction with buffer pool (useless without memory).
    ms -= 6.0 * cache * buffer;
    // Vacuum: small quadratic with optimum mid-range.
    ms += 2.0 * (vacuum - 0.5) * (vacuum - 0.5);

    ms.max(1.0)
}

/// Latency of the default configuration (the tuning baseline).
pub fn default_latency(workload: Workload) -> f64 {
    latency_ms(&Config::default_config(), workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knobs::{knob_index, KNOBS};

    #[test]
    fn latency_is_deterministic_and_positive() {
        let c = Config::default_config();
        for w in Workload::all() {
            let a = latency_ms(&c, w);
            let b = latency_ms(&c, w);
            assert_eq!(a, b);
            assert!(a > 0.0);
        }
    }

    #[test]
    fn more_buffer_pool_helps_every_workload() {
        let base = Config::default_config();
        let big = base.with(knob_index("buffer_pool_mb").unwrap(), 8192.0);
        for w in Workload::all() {
            assert!(
                latency_ms(&big, w) < latency_ms(&base, w),
                "buffer increase hurt {w:?}"
            );
        }
    }

    #[test]
    fn compression_helps_olap_hurts_oltp() {
        let base = Config::default_config();
        let compressed = base.with(knob_index("compression_level").unwrap(), 9.0);
        assert!(latency_ms(&compressed, Workload::Olap) < latency_ms(&base, Workload::Olap));
        assert!(latency_ms(&compressed, Workload::Oltp) > latency_ms(&base, Workload::Oltp));
    }

    #[test]
    fn parallelism_has_an_interior_optimum() {
        let i = knob_index("worker_threads").unwrap();
        let base = Config::default_config();
        let mid = base.with(i, 24.0);
        let max = base.with(i, 64.0);
        let lat_mid = latency_ms(&mid, Workload::Olap);
        let lat_max = latency_ms(&max, Workload::Olap);
        assert!(
            lat_mid < lat_max,
            "max threads should overshoot: mid {lat_mid} vs max {lat_max}"
        );
    }

    #[test]
    fn default_config_is_far_from_optimal() {
        // Random probing finds something clearly better than the default,
        // i.e. tuning has headroom (the premise of the experiment).
        let mut best = f64::INFINITY;
        for t in 0..200 {
            let mut c = Config::default_config();
            for (i, k) in KNOBS.iter().enumerate() {
                let frac = ((t * 7 + i * 13) % 100) as f64 / 99.0;
                c.set(i, k.min + frac * (k.max - k.min));
            }
            best = best.min(latency_ms(&c, Workload::Mixed));
        }
        let default = default_latency(Workload::Mixed);
        assert!(
            best < default * 0.8,
            "no tuning headroom: best {best} vs default {default}"
        );
    }

    #[test]
    fn workloads_prefer_different_configs() {
        // The OLAP-optimal compression setting is not OLTP-optimal,
        // so a single static recommendation cannot win everywhere.
        let i = knob_index("compression_level").unwrap();
        let base = Config::default_config();
        let olap_pref = latency_ms(&base.with(i, 9.0), Workload::Olap)
            < latency_ms(&base.with(i, 0.0), Workload::Olap);
        let oltp_pref = latency_ms(&base.with(i, 0.0), Workload::Oltp)
            < latency_ms(&base.with(i, 9.0), Workload::Oltp);
        assert!(olap_pref && oltp_pref);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::knobs::{Config, KNOBS};
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn latency_is_always_positive_and_finite(fracs in prop::collection::vec(0.0f64..1.0, 8)) {
            let mut c = Config::default_config();
            for (i, k) in KNOBS.iter().enumerate() {
                c.set(i, k.min + fracs[i] * (k.max - k.min));
            }
            for w in Workload::all() {
                let l = latency_ms(&c, w);
                prop_assert!(l.is_finite() && l > 0.0, "{w:?}: {l}");
            }
        }

        #[test]
        fn out_of_range_settings_are_clamped(i in 0usize..8, v in -1e9f64..1e9) {
            let mut c = Config::default_config();
            c.set(i, v);
            prop_assert!(c.get(i) >= KNOBS[i].min);
            prop_assert!(c.get(i) <= KNOBS[i].max);
        }
    }
}
