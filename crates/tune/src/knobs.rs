//! The simulated DBMS's tunable knobs and configurations.

/// One tunable parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnobSpec {
    /// Knob name as it appears in the manual.
    pub name: &'static str,
    /// Smallest legal value.
    pub min: f64,
    /// Largest legal value.
    pub max: f64,
    /// Shipping default.
    pub default: f64,
}

impl KnobSpec {
    /// Clamps a value into the legal range.
    pub fn clamp(&self, v: f64) -> f64 {
        v.clamp(self.min, self.max)
    }

    /// Normalizes a value to `[0, 1]` within the knob's range.
    pub fn normalize(&self, v: f64) -> f64 {
        (self.clamp(v) - self.min) / (self.max - self.min)
    }
}

/// The eight knobs of the simulated system (names modeled on PostgreSQL's
/// most-tuned parameters, which DB-BERT's manuals discuss).
pub const KNOBS: [KnobSpec; 8] = [
    KnobSpec {
        name: "buffer_pool_mb",
        min: 64.0,
        max: 16384.0,
        default: 128.0,
    },
    KnobSpec {
        name: "worker_threads",
        min: 1.0,
        max: 64.0,
        default: 4.0,
    },
    KnobSpec {
        name: "checkpoint_interval_s",
        min: 30.0,
        max: 3600.0,
        default: 300.0,
    },
    KnobSpec {
        name: "wal_buffer_kb",
        min: 64.0,
        max: 16384.0,
        default: 512.0,
    },
    KnobSpec {
        name: "cache_ratio",
        min: 0.0,
        max: 1.0,
        default: 0.25,
    },
    KnobSpec {
        name: "compression_level",
        min: 0.0,
        max: 9.0,
        default: 0.0,
    },
    KnobSpec {
        name: "prefetch_pages",
        min: 0.0,
        max: 512.0,
        default: 16.0,
    },
    KnobSpec {
        name: "vacuum_cost_limit",
        min: 100.0,
        max: 10000.0,
        default: 200.0,
    },
];

/// Index of a knob by name.
pub fn knob_index(name: &str) -> Option<usize> {
    KNOBS.iter().position(|k| k.name == name)
}

/// A complete configuration: one value per knob, always within range.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    values: [f64; 8],
}

impl Config {
    /// The shipping default configuration.
    pub fn default_config() -> Self {
        let mut values = [0.0; 8];
        for (i, k) in KNOBS.iter().enumerate() {
            values[i] = k.default;
        }
        Config { values }
    }

    /// Value of knob `i`.
    pub fn get(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// Sets knob `i`, clamping into range.
    pub fn set(&mut self, i: usize, v: f64) {
        self.values[i] = KNOBS[i].clamp(v);
    }

    /// Returns a copy with knob `i` set.
    pub fn with(&self, i: usize, v: f64) -> Config {
        let mut c = self.clone();
        c.set(i, v);
        c
    }

    /// All normalized values (for the cost model).
    pub fn normalized(&self) -> [f64; 8] {
        let mut out = [0.0; 8];
        for (i, k) in KNOBS.iter().enumerate() {
            out[i] = k.normalize(self.values[i]);
        }
        out
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::default_config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_within_range() {
        for k in KNOBS {
            assert!(k.min <= k.default && k.default <= k.max, "{}", k.name);
        }
    }

    #[test]
    fn set_clamps() {
        let mut c = Config::default_config();
        c.set(0, 1e9);
        assert_eq!(c.get(0), KNOBS[0].max);
        c.set(0, -5.0);
        assert_eq!(c.get(0), KNOBS[0].min);
    }

    #[test]
    fn normalize_is_unit_interval() {
        let k = KNOBS[0];
        assert_eq!(k.normalize(k.min), 0.0);
        assert_eq!(k.normalize(k.max), 1.0);
        assert!(k.normalize(k.default) > 0.0);
    }

    #[test]
    fn knob_index_by_name() {
        assert_eq!(knob_index("buffer_pool_mb"), Some(0));
        assert_eq!(knob_index("worker_threads"), Some(1));
        assert_eq!(knob_index("nope"), None);
    }

    #[test]
    fn with_copies_without_mutating() {
        let c = Config::default_config();
        let c2 = c.with(1, 32.0);
        assert_eq!(c.get(1), KNOBS[1].default);
        assert_eq!(c2.get(1), 32.0);
    }
}
