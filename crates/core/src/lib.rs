//! # LM4DB — Language Models for Data Management
//!
//! A from-scratch Rust reproduction of the systems surveyed in *"From BERT
//! to GPT-3 Codex: Harnessing the Potential of Very Large Language Models
//! for Data Management"* (Trummer, VLDB 2022).
//!
//! This facade crate re-exports the whole stack:
//!
//! | Module | What it is |
//! |---|---|
//! | [`obs`] | Std-only observability: metrics registry, spans, exporters |
//! | [`fault`] | Deterministic seeded fault injection (`LM4DB_FAULTS`) for chaos testing |
//! | [`tensor`] | CPU autograd engine (matmul, softmax, layernorm, Adam) |
//! | [`tokenize`] | Trainable BPE (GPT-style) and WordPiece (BERT-style) |
//! | [`transformer`] | GPT & BERT models, RNN baseline, constrained decoding |
//! | [`lm`] | N-gram baseline, prompting, LM classification |
//! | [`serve`] | Batched inference engine with KV/prefix caching |
//! | [`router`] | Sharded serving: prefix-affinity routing over N replicas, breakers, failover |
//! | [`loadgen`] | Seeded open-loop traffic generator (tenants, Poisson/burst phases) |
//! | [`corpus`] | Seeded synthetic text / entity / table generators |
//! | [`sql`] | In-memory SQL engine (parser, planner, executor) |
//! | [`text2sql`] | NL→SQL with PICARD-style constrained decoding |
//! | [`wrangle`] | Entity matching, imputation, error detection |
//! | [`factcheck`] | AggChecker-style claim verification |
//! | [`tune`] | DB-BERT-style tuning that "reads the manual" |
//! | [`codegen`] | CodexDB-style NL→program synthesis |
//! | [`neuraldb`] | Facts-as-sentences storage with learned readers |
//! | [`summarize`] | NL data summarization (BABOONS-style goal-driven selection) |
//! | [`zoo`] | Published-model registry (Figure 1) + Table 1 data |
//!
//! ```
//! use lm4db::sql::{run_sql, Catalog};
//! use lm4db::corpus::{make_domain, DomainKind};
//!
//! let domain = make_domain(DomainKind::Employees, 10, 42);
//! let catalog: Catalog = domain.catalog();
//! let rs = run_sql("SELECT COUNT(*) FROM employees", &catalog).unwrap();
//! assert_eq!(rs.rows.len(), 1);
//! ```

#![warn(missing_docs)]

pub use lm4db_codegen as codegen;
pub use lm4db_corpus as corpus;
pub use lm4db_factcheck as factcheck;
pub use lm4db_fault as fault;
pub use lm4db_lm as lm;
pub use lm4db_loadgen as loadgen;
pub use lm4db_neuraldb as neuraldb;
pub use lm4db_obs as obs;
pub use lm4db_router as router;
pub use lm4db_serve as serve;
pub use lm4db_sql as sql;
pub use lm4db_summarize as summarize;
pub use lm4db_tensor as tensor;
pub use lm4db_text2sql as text2sql;
pub use lm4db_tokenize as tokenize;
pub use lm4db_transformer as transformer;
pub use lm4db_tune as tune;
pub use lm4db_wrangle as wrangle;
pub use lm4db_zoo as zoo;
