//! Scrape-endpoint smoke test: bind an ephemeral port, run a sampled
//! serving workload, and GET `/metrics` **while requests are in flight**
//! — the curl-equivalent check from ISSUE 9's acceptance criteria. The
//! scrape must always return valid Prometheus exposition text, because
//! the endpoint renders from snapshots rather than live engine state.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use lm4db_serve::{Engine, EngineOptions, Request};
use lm4db_tokenize::{BOS, EOS};
use lm4db_transformer::{GptModel, ModelConfig};

#[test]
fn metrics_scrape_is_valid_mid_soak() {
    lm4db_obs::set_enabled(true);
    lm4db_obs::reset();
    lm4db_obs::series_reset();

    let server = lm4db_obs::serve_metrics("127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.addr();

    let done = Arc::new(AtomicBool::new(false));
    let scraped = Arc::new(AtomicBool::new(false));
    let workload_done = Arc::clone(&done);
    let workload_scraped = Arc::clone(&scraped);
    let workload = std::thread::spawn(move || {
        let mut m = GptModel::new(ModelConfig::test(), 7);
        let mut opt = m.optimizer(3e-3);
        let batch = vec![
            vec![BOS, 10, 11, 12, 13, 14, EOS],
            vec![BOS, 20, 21, 22, 23, 24, EOS],
        ];
        for _ in 0..10 {
            m.train_step(&batch, &mut opt);
        }
        let mut engine = Engine::with_options(
            &m,
            EngineOptions {
                max_batch: 2,
                sample_steps: 2,
                ..Default::default()
            },
        );
        // A rolling stream: keep submitting so the engine stays busy
        // until the main thread has landed at least one scrape — that
        // guarantees a scrape genuinely overlaps in-flight work even on
        // a fast release build (bounded so a broken scraper can't hang
        // the test; the mid-flight assert below then fails normally).
        let mut round = 0usize;
        while round < 30 || (!workload_scraped.load(Ordering::Relaxed) && round < 50_000) {
            let p = if round.is_multiple_of(2) {
                vec![BOS, 10, 11]
            } else {
                vec![BOS, 20]
            };
            engine.submit(Request::greedy(p, 6, EOS));
            engine.step();
            round += 1;
        }
        engine.run();
        workload_done.store(true, Ordering::Relaxed);
        engine.stats().completed
    });

    // Scrape repeatedly while the soak is in flight; every response must
    // be complete, valid exposition text.
    let mut mid_flight_scrapes = 0u32;
    let mut last_body = String::new();
    for _ in 0..50 {
        let (status, body) = lm4db_obs::endpoint::http_get(addr, "/metrics").expect("GET /metrics");
        assert!(status.contains("200 OK"), "bad status: {status}");
        lm4db_obs::validate_exposition(&body)
            .unwrap_or_else(|e| panic!("invalid exposition mid-soak: {e}"));
        if !done.load(Ordering::Relaxed) {
            mid_flight_scrapes += 1;
        }
        scraped.store(true, Ordering::Relaxed);
        last_body = body;
        if done.load(Ordering::Relaxed) && mid_flight_scrapes > 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let completed = workload.join().expect("workload thread");
    assert!(completed > 0, "workload must complete requests");
    assert!(
        mid_flight_scrapes > 0,
        "at least one scrape must land while the soak is in flight"
    );

    // A final scrape sees the finished workload's counters and series.
    let (status, body) = lm4db_obs::endpoint::http_get(addr, "/metrics").expect("final GET");
    assert!(status.contains("200 OK"));
    lm4db_obs::validate_exposition(&body).expect("final scrape valid");
    assert!(
        body.contains("lm4db_serve_completed"),
        "scrape must carry serve counters:\n{body}"
    );
    assert!(
        body.contains("lm4db_ts_serve_active"),
        "scrape must carry sampled series:\n{body}"
    );
    let _ = last_body;

    // The dashboard route serves the same snapshots as HTML.
    let (status, html) = lm4db_obs::endpoint::http_get(addr, "/dashboard").expect("GET /dashboard");
    assert!(status.contains("200 OK"));
    assert!(html.starts_with("<!doctype html>"));
    assert!(html.contains("<polyline"), "sparkline for sampled series");

    drop(server);
    lm4db_obs::set_enabled(false);
}
