//! Property: request-id conservation under chaos. Whatever mix of
//! submissions, cancellations, deadlines, and injected faults an engine
//! sees, every submitted request retires with exactly one terminal
//! outcome — none lost, none double-retired — and the `Stats` ledger
//! balances (`completed + cancelled + expired + failed + rejected ==
//! submitted`).
//!
//! This lives in its own test binary on purpose: the fault injector is
//! process-global, and arming it here must not bleed panics into the
//! deterministic unit tests.

use std::collections::HashSet;

use lm4db_serve::{Deadline, Engine, EngineOptions, Request};
use lm4db_tokenize::{BOS, EOS};
use lm4db_transformer::{GptModel, ModelConfig};
use proptest::prelude::*;

proptest! {
    #[test]
    fn no_request_is_lost_or_double_retired(
        prompts in prop::collection::vec(
            prop::collection::vec(8usize..60, 1..5), 1..8),
        seed in 0u64..1_000,
        rate in prop::sample::select(vec![0.0, 0.1, 0.3, 0.6]),
        max_batch in 1usize..4,
        max_queue in 0usize..4,
        max_retries in 0u32..3,
        deadline_mask in any::<u8>(),
        cancel_early_mask in any::<u8>(),
        cancel_late_mask in any::<u8>(),
        presteps in 0usize..3,
    ) {
        lm4db_fault::silence_injected_panics();
        lm4db_fault::configure(seed, rate);
        let m = GptModel::new(ModelConfig::test(), 13);
        let mut engine = Engine::with_options(&m, EngineOptions {
            max_batch,
            max_queue,
            max_retries,
            retry_backoff_steps: 1,
            ..EngineOptions::default()
        });
        let mut ids = Vec::new();
        for (i, p) in prompts.iter().enumerate() {
            let mut prompt = vec![BOS];
            prompt.extend_from_slice(p);
            let mut req = Request::greedy(prompt, 4, EOS);
            if deadline_mask & (1 << (i % 8)) != 0 {
                req = req.with_deadline(Deadline::Steps((i % 3) as u64));
            }
            let id = engine.submit(req);
            if cancel_early_mask & (1 << (i % 8)) != 0 {
                engine.cancel(id);
            }
            ids.push(id);
        }
        for _ in 0..presteps {
            engine.step();
        }
        for (i, &id) in ids.iter().enumerate() {
            if cancel_late_mask & (1 << (i % 8)) != 0 {
                engine.cancel(id);
            }
        }
        let responses = engine.run();
        lm4db_fault::disarm();

        // Exactly one terminal response per submission: same multiset of
        // ids, no duplicates (run() returns them sorted by id).
        let got: Vec<u64> = responses.iter().map(|r| r.id).collect();
        let unique: HashSet<u64> = got.iter().copied().collect();
        // A duplicate means a request retired twice; a mismatch with the
        // submitted set means one was lost or invented.
        prop_assert_eq!(unique.len(), got.len());
        let mut want = ids.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);

        let stats = engine.stats();
        prop_assert_eq!(stats.submitted, ids.len() as u64);
        prop_assert!(
            stats.terminal_total() == stats.submitted,
            "ledger must balance: {:?}", stats
        );
        // The engine is drained: nothing queued, active, or quarantined.
        prop_assert_eq!(stats.queued, 0);
        prop_assert_eq!(stats.active, 0);
        prop_assert_eq!(stats.retrying, 0);
    }
}
