//! With tracing on, the engine's `Stats` must agree exactly with the
//! counters it mirrors into the global `lm4db-obs` registry — the registry
//! is a second view of the same accounting, not a drifting copy.
//!
//! This lives in its own test binary on purpose: tracing state and the
//! registry are process-global, and a dedicated process keeps other tests'
//! engines from bleeding counters into the snapshot.

use lm4db_serve::{Engine, EngineOptions, Outcome, Request, TenantClass};
use lm4db_tokenize::{BOS, EOS};
use lm4db_transformer::{GptModel, ModelConfig};

/// Tracing state, the registry, and the fault injector are all
/// process-global; each test holds this lock so the counter snapshots
/// stay exact.
static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn registry_counters_match_engine_stats() {
    let _l = lock();
    lm4db_obs::set_enabled(true);
    lm4db_obs::reset();

    let mut m = GptModel::new(ModelConfig::test(), 7);
    let mut opt = m.optimizer(3e-3);
    let batch = vec![
        vec![BOS, 10, 11, 12, 13, 14, EOS],
        vec![BOS, 20, 21, 22, 23, 24, EOS],
    ];
    for _ in 0..10 {
        m.train_step(&batch, &mut opt);
    }
    // Training contaminates serve/* not at all, but clear anyway so the
    // snapshot below is exactly one engine run.
    lm4db_obs::reset();

    let mut engine = Engine::with_options(
        &m,
        EngineOptions {
            max_batch: 2,
            ..Default::default()
        },
    );
    let prompts = [
        vec![BOS, 10],
        vec![BOS, 10, 11],
        vec![BOS, 20],
        vec![BOS, 20, 21, 22],
    ];
    let reqs = prompts
        .iter()
        .map(|p| Request::greedy(p.clone(), 6, EOS))
        .collect();
    let responses = engine.generate_batch(reqs);
    assert_eq!(responses.len(), 4);

    let stats = engine.stats();
    let snap = lm4db_obs::snapshot();
    lm4db_obs::set_enabled(false);

    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    assert_eq!(counter("serve/submitted"), stats.submitted);
    assert_eq!(counter("serve/completed"), stats.completed);
    assert_eq!(counter("serve/steps"), stats.steps);
    assert_eq!(counter("serve/prefill_tokens"), stats.prefill_tokens);
    assert_eq!(counter("serve/decoded_tokens"), stats.decoded_tokens);
    assert_eq!(
        counter("serve/cached_prefix_tokens"),
        stats.cached_prefix_tokens
    );
    assert_eq!(
        counter("serve/batch_occupancy_sum"),
        stats.batch_occupancy_sum
    );
    assert_eq!(
        snap.gauges.get("serve/peak_batch").copied(),
        Some(stats.peak_batch as f64)
    );
    assert_eq!(
        snap.gauges.get("serve/prefix_cache_nodes").copied(),
        Some(stats.prefix_cache_nodes as f64)
    );

    // The scheduler phases were timed, nested under serve_step.
    for phase in [
        "serve_step",
        "serve_step/admit",
        "serve_step/feed",
        "serve_step/select",
    ] {
        let t = snap
            .timers
            .get(phase)
            .unwrap_or_else(|| panic!("missing timer {phase}"));
        assert!(t.count > 0, "timer {phase} recorded nothing");
    }
    // Every prefilled or decoded token went through the KV-cached
    // incremental forward, which carries its own flat timer.
    let feed = snap.timers.get("infer/feed_token").expect("feed timer");
    assert_eq!(feed.count, stats.prefill_tokens + stats.decoded_tokens);

    // Per-request latency accounting: one queue-wait observation per
    // admitted request, one end-to-end latency per retired request —
    // mirrored into registry timers with the same counts.
    assert_eq!(stats.queue_wait.count(), 4);
    assert_eq!(stats.latency.count(), 4);
    let qw = snap
        .timers
        .get("serve/queue_wait")
        .expect("queue_wait timer");
    assert_eq!(qw.count, stats.queue_wait.count());
    let lat = snap.timers.get("serve/latency").expect("latency timer");
    assert_eq!(lat.count, stats.latency.count());
    // Quantiles are monotone and bounded by the observed extremes.
    let p50 = stats.latency.quantile(0.50);
    let p99 = stats.latency.quantile(0.99);
    assert!(p50 <= p99);
    assert!(p99 <= stats.latency.max());
}

/// Draft model for the speculative-counter test: proposes `last + 1`,
/// which tracks the arithmetic training sequences closely.
struct IncDraft {
    vocab: usize,
}

impl lm4db_transformer::DraftModel for IncDraft {
    fn vocab_size(&self) -> usize {
        self.vocab
    }

    fn draft_logits(&self, prefix: &[usize]) -> Vec<f32> {
        let mut l = vec![0.0f32; self.vocab];
        let next = prefix.last().map_or(0, |&t| (t + 1) % self.vocab);
        l[next] = 1.0;
        l
    }
}

#[test]
fn speculative_counters_match_engine_stats() {
    let _l = lock();
    lm4db_obs::set_enabled(true);
    lm4db_obs::reset();

    let mut m = GptModel::new(ModelConfig::test(), 7);
    let mut opt = m.optimizer(3e-3);
    let batch = vec![
        vec![BOS, 10, 11, 12, 13, 14, EOS],
        vec![BOS, 20, 21, 22, 23, 24, EOS],
    ];
    for _ in 0..30 {
        m.train_step(&batch, &mut opt);
    }
    lm4db_obs::reset();

    let draft = IncDraft {
        vocab: m.config().vocab_size,
    };
    let mut engine = Engine::with_options(
        &m,
        EngineOptions {
            draft_k: 3,
            ..Default::default()
        },
    );
    engine.set_draft(&draft);
    let reqs = [vec![BOS, 10], vec![BOS, 20, 21]]
        .iter()
        .map(|p| Request::greedy(p.clone(), 6, EOS))
        .collect();
    engine.generate_batch(reqs);

    let stats = engine.stats();
    let snap = lm4db_obs::snapshot();
    lm4db_obs::set_enabled(false);

    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    assert!(stats.drafted_tokens > 0, "speculation must have run");
    assert!(
        stats.draft_accepted_tokens > 0,
        "pattern draft must land accepts"
    );
    assert_eq!(counter("serve/drafted_tokens"), stats.drafted_tokens);
    assert_eq!(
        counter("serve/draft_accepted_tokens"),
        stats.draft_accepted_tokens
    );
    // Accepted drafts were fed through the batched verify forward, which
    // carries its own timer leaf (one observation per verify chunk).
    let fm = snap.timers.get("kv/feed_many").expect("feed_many timer");
    assert!(fm.count > 0, "verify chunks must run through feed_many");
    // Rejected drafts still cost model work: decoded_tokens counts fed
    // tokens, which can only exceed the emitted-token count.
    assert!(stats.decoded_tokens >= stats.draft_accepted_tokens);
}

#[test]
fn fault_counters_match_engine_stats() {
    let _l = lock();
    lm4db_fault::silence_injected_panics();
    lm4db_obs::set_enabled(true);
    lm4db_obs::reset();
    // Saturating fault rate: every instrumented point fires (panic or
    // delay per its deterministic roll), so the retry and failure paths
    // are guaranteed to execute.
    lm4db_fault::configure(42, 1.0);

    let m = GptModel::new(ModelConfig::test(), 7);
    let mut engine = Engine::with_options(
        &m,
        EngineOptions {
            max_batch: 1,
            max_queue: 2,
            max_retries: 1,
            ..Default::default()
        },
    );
    // 6 submissions into a 2-deep queue: 4 shed immediately.
    let ids: Vec<_> = (0..6)
        .map(|_| engine.submit(Request::greedy(vec![BOS, 10], 6, EOS)))
        .collect();
    let responses = engine.run();
    lm4db_fault::disarm();

    let stats = engine.stats();
    let snap = lm4db_obs::snapshot();
    lm4db_obs::set_enabled(false);

    // Exactly one terminal response per submission, whatever the faults
    // did (the conservation law).
    assert_eq!(
        responses.iter().map(|r| r.id).collect::<Vec<_>>(),
        ids,
        "every submission retires exactly once, in id order"
    );
    assert_eq!(stats.terminal_total(), stats.submitted);
    let failed = responses
        .iter()
        .filter(|r| matches!(r.outcome, Outcome::Failed { .. }))
        .count() as u64;

    // The new Stats fields mirror into serve/* exactly, and each fault
    // path actually ran under this seed/rate.
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    assert_eq!(counter("serve/failed"), stats.failed);
    assert_eq!(counter("serve/rejected"), stats.rejected);
    assert_eq!(counter("serve/retries"), stats.retries);
    assert_eq!(counter("serve/cancelled"), stats.cancelled);
    assert_eq!(counter("serve/expired"), stats.expired);
    assert_eq!(stats.rejected, 4, "rejected {}", stats.rejected);
    assert!(stats.failed > 0, "saturating faults must fail requests");
    assert_eq!(stats.failed, failed, "one Failed response per failed stat");
    assert!(stats.retries > 0, "first poisoning always retries");
    assert!(counter("fault/injected") > 0);
    assert_eq!(
        counter("fault/injected"),
        counter("fault/panics") + counter("fault/delays")
    );
    // Pool-level isolation accounting fired for every poisoned task.
    assert!(counter("pool/task_panics") > 0);
}

#[test]
fn tenant_counters_match_per_tenant_stats() {
    let _l = lock();
    lm4db_obs::set_enabled(true);
    lm4db_obs::reset();

    let m = GptModel::new(ModelConfig::test(), 7);
    let mut engine = Engine::with_options(
        &m,
        EngineOptions {
            max_batch: 1,
            max_queue: 3,
            tenants: vec![
                TenantClass::new("interactive").weight(2),
                TenantClass::new("batch").tier(1),
            ],
            ..Default::default()
        },
    );
    // 4 requests per tenant into a 3-deep shared queue: some shed, the
    // rest complete — every per-tenant counter class gets exercised.
    for i in 0..4u32 {
        engine.submit(Request::greedy(vec![BOS, 10 + i as usize], 2, EOS).with_tenant(0));
        engine.submit(Request::greedy(vec![BOS, 20 + i as usize], 2, EOS).with_tenant(1));
    }
    engine.run();

    let stats = engine.stats();
    let snap = lm4db_obs::snapshot();
    lm4db_obs::set_enabled(false);

    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    assert_eq!(stats.tenants.len(), 2, "both tenants booked");
    let mut rejected_total = 0;
    for (&tenant, t) in &stats.tenants {
        // The registry's serve/tenant/<id>/* counters are a second view of
        // the same per-tenant accounting — exact, not approximate.
        for (field, value) in [
            ("submitted", t.submitted),
            ("admitted", t.admitted),
            ("completed", t.completed),
            ("rejected", t.rejected),
            ("slo_shed", t.slo_shed),
            ("failed", t.failed),
            ("cancelled", t.cancelled),
            ("expired", t.expired),
            ("retries", t.retries),
        ] {
            assert_eq!(
                counter(&format!("serve/tenant/{tenant}/{field}")),
                value,
                "tenant {tenant} field {field}"
            );
        }
        assert_eq!(t.submitted, 4);
        assert_eq!(t.terminal_total(), t.submitted, "per-tenant conservation");
        assert_eq!(
            t.latency_steps.count(),
            t.admitted,
            "one step-latency per admit"
        );
        rejected_total += t.rejected;
    }
    assert_eq!(rejected_total, stats.rejected, "tenant sheds sum to global");
    assert!(
        stats.rejected > 0,
        "a 3-deep queue under 8 submits must shed"
    );
    // The global view is the sum of the tenant views.
    let sum: u64 = stats.tenants.values().map(|t| t.completed).sum();
    assert_eq!(sum, stats.completed);
}

#[test]
fn sampler_and_alert_counters_match_engine_stats() {
    let _l = lock();
    lm4db_obs::set_enabled(true);
    lm4db_obs::reset();
    lm4db_obs::series_reset();

    let mut m = GptModel::new(ModelConfig::test(), 7);
    let mut opt = m.optimizer(3e-3);
    let batch = vec![
        vec![BOS, 10, 11, 12, 13, 14, EOS],
        vec![BOS, 20, 21, 22, 23, 24, EOS],
    ];
    for _ in 0..10 {
        m.train_step(&batch, &mut opt);
    }
    lm4db_obs::reset();

    let mut engine = Engine::with_options(
        &m,
        EngineOptions {
            max_batch: 1,
            tenants: vec![TenantClass::new("strict").slo_steps(4)],
            slo_admission: true,
            slo_initial_service_steps: 4,
            sample_steps: 1,
            slo_alerts: Some(lm4db_obs::AlertConfig {
                fast_samples: 1,
                slow_samples: 2,
                burn_num: 1,
                burn_den: 4,
                resolve_samples: 2,
            }),
            ..Default::default()
        },
    );
    // Overload, then drain, then idle cool-down: exercises shed-driven
    // burn, firing, and resolution — every slo/* counter class.
    for _ in 0..12 {
        engine.submit(Request::greedy(vec![BOS, 10], 3, EOS));
        engine.step();
    }
    engine.run();
    for _ in 0..8 {
        engine.step();
    }

    let stats = engine.stats();
    let snap = lm4db_obs::snapshot();
    lm4db_obs::set_enabled(false);

    // Same equality style as the per-tenant nine: the registry's
    // sampler/alert counters are a second view of the Stats fields.
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    assert!(stats.sampler_ticks > 0, "sampler must have ticked");
    assert_eq!(counter("serve/sampler_ticks"), stats.sampler_ticks);
    assert_eq!(counter("slo/pending"), stats.slo_pending);
    assert_eq!(counter("slo/firing"), stats.slo_firing);
    assert_eq!(counter("slo/resolved"), stats.slo_resolved);
    assert!(stats.slo_firing > 0, "overload must fire");
    assert!(stats.slo_resolved > 0, "cool-down must resolve");

    // The transition log agrees with both views, state by state.
    let fired = engine
        .alert_transitions()
        .iter()
        .filter(|t| t.to == lm4db_obs::AlertState::Firing)
        .count() as u64;
    assert_eq!(fired, stats.slo_firing);

    // And the sampler's series cover the engine's step range with one
    // point per tick (cadence 1), values consistent with the stats.
    let series = lm4db_obs::series_snapshot();
    let get = |name: &str| {
        series
            .iter()
            .find(|(k, _)| k == name)
            .unwrap_or_else(|| panic!("missing series {name}"))
            .1
            .clone()
    };
    let submitted = get("serve/submitted");
    assert_eq!(submitted.total_pushed(), stats.sampler_ticks);
    assert_eq!(submitted.latest().unwrap().value, stats.submitted);
    let shed = get("serve/tenant/0/slo_shed");
    assert_eq!(
        shed.latest().unwrap().value,
        stats.tenants[&0].slo_shed,
        "series end at the cumulative stat"
    );
}

#[test]
fn tracing_does_not_change_engine_output() {
    let _l = lock();
    // Same engine run with tracing off and on: token streams must be
    // byte-identical (tracing is purely observational).
    let m = {
        let mut m = GptModel::new(ModelConfig::test(), 7);
        let mut opt = m.optimizer(3e-3);
        let batch = vec![
            vec![BOS, 10, 11, 12, 13, 14, EOS],
            vec![BOS, 20, 21, 22, 23, 24, EOS],
        ];
        for _ in 0..10 {
            m.train_step(&batch, &mut opt);
        }
        m
    };
    let run = || {
        let mut engine = Engine::new(&m);
        let reqs = [vec![BOS, 10], vec![BOS, 20, 21]]
            .iter()
            .map(|p| Request::greedy(p.clone(), 8, EOS))
            .collect();
        engine
            .generate_batch(reqs)
            .into_iter()
            .map(|r| r.tokens)
            .collect::<Vec<_>>()
    };
    lm4db_obs::set_enabled(false);
    let off = run();
    lm4db_obs::set_enabled(true);
    let on = run();
    lm4db_obs::set_enabled(false);
    assert_eq!(off, on, "tracing changed engine output");
}
