//! Property tests for the weighted-fair multi-tenant scheduler.
//!
//! The claim under test is the start-time-fair-queuing service bound: among
//! tenants that stay continuously backlogged, normalized service
//! (admissions ÷ weight) never diverges by more than one maximal virtual-
//! time increment — so no tenant starves, whatever the weights, batch
//! size, or arrival pattern. The engine is driven one step at a time and
//! the per-tenant [`lm4db_serve::TenantStats`] counters are checked after
//! every step, not just at the end.

use lm4db_serve::{Engine, EngineOptions, Request, TenantClass};
use lm4db_tokenize::BOS;
use lm4db_transformer::{GptModel, ModelConfig};
use proptest::prelude::*;

/// A request that decodes exactly one token and retires (the stop token
/// can never be emitted), so admission order is the only degree of freedom.
fn one_token_request(tenant: u32, salt: usize) -> Request<'static> {
    Request::greedy(vec![BOS, 4 + (salt % 50)], 1, usize::MAX).with_tenant(tenant)
}

proptest! {
    /// All tenants share tier 0 with arbitrary weights and every request
    /// is submitted up front, so every tenant is continuously backlogged
    /// until its queue drains. At every step and for every backlogged
    /// pair, |admitted_i/w_i − admitted_j/w_j| must stay within one
    /// admission of the ideal share; and the run must drain completely
    /// with per-tenant conservation.
    #[test]
    fn backlogged_tenants_get_weighted_shares_and_never_starve(
        weights in prop::collection::vec(1u32..9, 2..5),
        per_tenant in 6usize..14,
        max_batch in 1usize..4,
    ) {
        let model = GptModel::new(ModelConfig::test(), 7);
        let tenants: Vec<TenantClass> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| TenantClass::new(&format!("t{i}")).weight(w))
            .collect();
        let n = tenants.len();
        let mut engine = Engine::with_options(
            &model,
            EngineOptions {
                max_batch,
                tenants,
                ..EngineOptions::default()
            },
        );
        for r in 0..per_tenant {
            for t in 0..n {
                engine.submit(one_token_request(t as u32, r * n + t));
            }
        }
        let mut steps = 0u32;
        loop {
            let more = engine.step();
            steps += 1;
            prop_assert!(steps < 10_000, "engine failed to drain");
            let stats = engine.stats();
            // The SFQ bound, checked pairwise among still-backlogged
            // tenants. Slack of one admission absorbs the integer
            // virtual-time rounding and the batch fill granularity.
            for i in 0..n {
                for j in (i + 1)..n {
                    let (ti, tj) = (&stats.tenants[&(i as u32)], &stats.tenants[&(j as u32)]);
                    if ti.queued == 0 || tj.queued == 0 {
                        continue;
                    }
                    let share_i = ti.admitted as f64 / f64::from(weights[i]);
                    let share_j = tj.admitted as f64 / f64::from(weights[j]);
                    let bound = 1.0 + max_batch as f64;
                    prop_assert!(
                        (share_i - share_j).abs() <= bound,
                        "unfair split at step {steps}: tenant {i} (w={}) admitted {} vs \
                         tenant {j} (w={}) admitted {}",
                        weights[i], ti.admitted, weights[j], tj.admitted
                    );
                }
            }
            if !more {
                break;
            }
        }
        // Drained: every tenant's requests were admitted and completed —
        // starvation-freedom in the strongest form — and the conservation
        // ledger balances tenant by tenant.
        let stats = engine.stats();
        prop_assert_eq!(stats.tenants.len(), n);
        for t in 0..n {
            let ts = &stats.tenants[&(t as u32)];
            prop_assert_eq!(ts.submitted, per_tenant as u64);
            prop_assert_eq!(ts.admitted, per_tenant as u64);
            prop_assert_eq!(ts.completed, per_tenant as u64);
            prop_assert_eq!(ts.terminal_total(), ts.submitted);
            prop_assert_eq!(ts.queued, 0);
        }
    }

    /// Strict priority across tiers: with a tier-0 and a tier-1 tenant
    /// both fully backlogged up front, the tier-1 tenant is never admitted
    /// while the tier-0 queue is non-empty.
    #[test]
    fn lower_tier_never_admits_while_higher_tier_backlogged(
        per_tenant in 4usize..10,
        max_batch in 1usize..4,
        w_low in 1u32..9,
    ) {
        let model = GptModel::new(ModelConfig::test(), 7);
        let mut engine = Engine::with_options(
            &model,
            EngineOptions {
                max_batch,
                tenants: vec![
                    TenantClass::new("hi").tier(0),
                    // However large the low tier's weight, tiers win.
                    TenantClass::new("lo").tier(1).weight(w_low),
                ],
                ..EngineOptions::default()
            },
        );
        for r in 0..per_tenant {
            engine.submit(one_token_request(1, r));
            engine.submit(one_token_request(0, r));
        }
        let mut steps = 0u32;
        loop {
            let more = engine.step();
            steps += 1;
            prop_assert!(steps < 10_000, "engine failed to drain");
            let stats = engine.stats();
            let hi = &stats.tenants[&0];
            let lo = &stats.tenants[&1];
            if hi.queued > 0 {
                prop_assert!(
                    lo.admitted == 0,
                    "tier 1 admitted while {} tier-0 requests still queued",
                    hi.queued
                );
            }
            if !more {
                break;
            }
        }
        let stats = engine.stats();
        prop_assert_eq!(stats.tenants[&0].completed, per_tenant as u64);
        prop_assert_eq!(stats.tenants[&1].completed, per_tenant as u64);
    }
}
