//! Multi-tenant scheduling: tenant classes and weighted-fair queues.
//!
//! A production engine serves several *tenants* — traffic classes with
//! their own priorities and latency targets — from one batch. This module
//! provides the admission-side machinery (DESIGN.md §5h):
//!
//! * [`TenantClass`] describes one tenant: a strict-priority **tier**
//!   (lower number wins; tiers model "interactive beats batch"), a
//!   **weight** for fair sharing *within* a tier, and an optional **SLO
//!   deadline** in scheduler steps that the engine's admission controller
//!   targets.
//! * `FairQueues` (crate-internal) holds one FIFO queue per tenant and
//!   picks the next
//!   request to admit by strict priority across tiers and start-time-fair
//!   queuing within a tier: each tenant carries a virtual time that
//!   advances by `SCALE / weight` per admission, and the backlogged tenant
//!   with the smallest virtual time goes next (ties break on the lower
//!   tenant id). The scheme is exactly deterministic — integer virtual
//!   times, no clocks — and has the classic SFQ bound: among continuously
//!   backlogged tenants of one tier, normalized service (admissions ÷
//!   weight) never diverges by more than one maximal increment, so no
//!   tenant starves (pinned by `tests/fairness_props.rs`).
//!
//! Virtual times reset lazily: when a tier's backlog empties, the next
//! arrival starts a fresh busy period at virtual time zero, and a tenant
//! joining a busy tier starts at the tier's smallest backlogged virtual
//! time — so idling never banks credit and joining never inherits debt.

use std::collections::VecDeque;

/// Identifies a tenant: an index into [`crate::EngineOptions::tenants`]
/// (or anything the caller likes when no classes are configured).
pub type TenantId = u32;

/// One tenant's scheduling contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantClass {
    /// Display name (stats tables, traces).
    pub name: String,
    /// Strict-priority tier: requests from tier `t` are only admitted
    /// when every queue in tiers `< t` is empty. 0 is the highest.
    pub tier: u8,
    /// Weighted-fair share within the tier (≥ 1; 0 is clamped to 1).
    pub weight: u32,
    /// SLO deadline in scheduler steps for the engine's admission
    /// controller ([`crate::EngineOptions::slo_admission`]); 0 means
    /// best-effort (never SLO-shed).
    pub slo_steps: u64,
    /// Wall-clock SLO target in milliseconds; 0 means none. **Accepted
    /// and recorded, not yet enforced**: the engine carries it into
    /// [`crate::TenantStats::slo_wall_ms`] so step-based and wall-clock
    /// targets share one schema, but admission control and burn-rate
    /// alerting still run exclusively on the deterministic `slo_steps`
    /// (wall-clock enforcement is the ROADMAP item 1 follow-on).
    pub slo_wall_ms: u64,
}

impl TenantClass {
    /// A tier-0, weight-1, best-effort class.
    pub fn new(name: &str) -> Self {
        TenantClass {
            name: name.to_string(),
            tier: 0,
            weight: 1,
            slo_steps: 0,
            slo_wall_ms: 0,
        }
    }

    /// Sets the strict-priority tier.
    pub fn tier(mut self, tier: u8) -> Self {
        self.tier = tier;
        self
    }

    /// Sets the weighted-fair share.
    pub fn weight(mut self, weight: u32) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// Sets the SLO deadline in scheduler steps.
    pub fn slo_steps(mut self, slo: u64) -> Self {
        self.slo_steps = slo;
        self
    }

    /// Sets the wall-clock SLO target in milliseconds (recorded in stats,
    /// not yet enforced — see [`TenantClass::slo_wall_ms`]).
    pub fn slo_wall_ms(mut self, ms: u64) -> Self {
        self.slo_wall_ms = ms;
        self
    }
}

impl Default for TenantClass {
    fn default() -> Self {
        TenantClass::new("default")
    }
}

/// Virtual-time quantum: one admission advances a tenant's virtual time
/// by `SCALE / weight`, so integer division error is ≤ 1 part in 2¹⁶ per
/// admission for any weight ≤ 2¹⁶.
const SCALE: u64 = 1 << 16;

/// Per-tenant FIFO queues with strict-priority + start-time-fair pick.
/// Generic over the queued item so the engine can store its private
/// pending-request type.
#[derive(Debug)]
pub(crate) struct FairQueues<T> {
    classes: Vec<TenantClass>,
    queues: Vec<VecDeque<T>>,
    vtime: Vec<u64>,
    len: usize,
}

impl<T> FairQueues<T> {
    /// Queues for `classes`; an empty list becomes one default class so
    /// an unconfigured engine degenerates to plain FIFO.
    pub fn new(mut classes: Vec<TenantClass>) -> Self {
        if classes.is_empty() {
            classes.push(TenantClass::default());
        }
        for c in &mut classes {
            c.weight = c.weight.max(1);
        }
        let n = classes.len();
        FairQueues {
            classes,
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            vtime: vec![0; n],
            len: 0,
        }
    }

    /// The configured classes, in tenant-id order.
    pub fn classes(&self) -> &[TenantClass] {
        &self.classes
    }

    /// Maps a request's tenant id to its queue: the id itself when
    /// classes are configured (the engine validates the range at submit),
    /// queue 0 otherwise.
    pub fn class_index(&self, tenant: TenantId) -> usize {
        (tenant as usize).min(self.classes.len() - 1)
    }

    /// Total queued items across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether every tenant queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queued items across every class in tiers `<= tier` — what a new
    /// arrival at `tier` must (at least partially) wait behind.
    pub fn queued_at_or_above(&self, tier: u8) -> usize {
        self.classes
            .iter()
            .zip(self.queues.iter())
            .filter(|(c, _)| c.tier <= tier)
            .map(|(_, q)| q.len())
            .sum()
    }

    /// Iterates `(class index, item)` over everything queued, FIFO within
    /// each class (used for stats snapshots and cancellation sweeps).
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.queues
            .iter()
            .enumerate()
            .flat_map(|(c, q)| q.iter().map(move |item| (c, item)))
    }

    /// Enqueues `item` for `class`, maintaining the busy-period virtual
    /// time invariants described in the [module docs](self).
    pub fn push(&mut self, class: usize, item: T) {
        if self.queues[class].is_empty() {
            let tier = self.classes[class].tier;
            let tier_min = self
                .classes
                .iter()
                .zip(self.queues.iter())
                .zip(self.vtime.iter())
                .filter(|((c, q), _)| c.tier == tier && !q.is_empty())
                .map(|(_, &v)| v)
                .min();
            match tier_min {
                // Joining a busy tier: start at its smallest backlogged
                // virtual time (no banked credit, no inherited debt).
                Some(v) => self.vtime[class] = self.vtime[class].max(v),
                // Fresh busy period: the whole tier restarts at zero.
                None => {
                    for (i, c) in self.classes.iter().enumerate() {
                        if c.tier == tier {
                            self.vtime[i] = 0;
                        }
                    }
                }
            }
        }
        self.queues[class].push_back(item);
        self.len += 1;
    }

    /// Dequeues the next item: lowest tier first, then smallest virtual
    /// time, then lowest tenant id; charges the tenant's virtual time.
    pub fn pop_next(&mut self) -> Option<(usize, T)> {
        let class = self
            .queues
            .iter()
            .enumerate()
            .filter(|(_, q)| !q.is_empty())
            .map(|(i, _)| i)
            .min_by_key(|&i| (self.classes[i].tier, self.vtime[i], i))?;
        let item = self.queues[class].pop_front().expect("queue checked");
        self.len -= 1;
        self.vtime[class] += SCALE / u64::from(self.classes[class].weight);
        Some((class, item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_order(q: &mut FairQueues<u32>) -> Vec<usize> {
        std::iter::from_fn(|| q.pop_next().map(|(c, _)| c)).collect()
    }

    #[test]
    fn single_class_is_fifo() {
        let mut q = FairQueues::new(Vec::new());
        for i in 0..5u32 {
            q.push(0, i);
        }
        let items: Vec<u32> = std::iter::from_fn(|| q.pop_next().map(|(_, x)| x)).collect();
        assert_eq!(items, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn weights_split_service_proportionally() {
        // Tenant 0 at weight 3, tenant 1 at weight 1: of every 4
        // admissions, 3 go to tenant 0.
        let mut q = FairQueues::new(vec![
            TenantClass::new("a").weight(3),
            TenantClass::new("b").weight(1),
        ]);
        for i in 0..12u32 {
            q.push(0, i);
            q.push(1, i);
        }
        let order = drain_order(&mut q);
        let first8: Vec<usize> = order[..8].to_vec();
        let a_count = first8.iter().filter(|&&c| c == 0).count();
        assert_eq!(
            a_count, 6,
            "weight 3:1 must serve ~3/4 to tenant a: {order:?}"
        );
    }

    #[test]
    fn strict_priority_preempts_lower_tiers() {
        let mut q = FairQueues::new(vec![
            TenantClass::new("interactive").tier(0),
            TenantClass::new("batch").tier(1),
        ]);
        q.push(1, 0);
        q.push(1, 1);
        q.push(0, 2);
        // Tier 0 jumps the whole tier-1 backlog.
        assert_eq!(q.pop_next().unwrap(), (0, 2));
        assert_eq!(q.pop_next().unwrap().0, 1);
    }

    #[test]
    fn idle_tenant_banks_no_credit() {
        let mut q = FairQueues::new(vec![
            TenantClass::new("a").weight(1),
            TenantClass::new("b").weight(1),
        ]);
        // Tenant 0 is served alone for a while (vtime grows)...
        for i in 0..8u32 {
            q.push(0, i);
        }
        for _ in 0..8 {
            q.pop_next();
        }
        // ...then both arrive. Tenant 1 must NOT monopolize: the empty
        // tier reset means they now alternate.
        for i in 0..4u32 {
            q.push(0, i);
            q.push(1, i);
        }
        let order = drain_order(&mut q);
        let a_first4 = order[..4].iter().filter(|&&c| c == 0).count();
        assert_eq!(a_first4, 2, "equal weights must alternate: {order:?}");
    }

    #[test]
    fn joining_a_busy_tier_inherits_no_debt() {
        let mut q = FairQueues::new(vec![
            TenantClass::new("a").weight(1),
            TenantClass::new("b").weight(1),
        ]);
        for i in 0..6u32 {
            q.push(0, i);
        }
        q.pop_next(); // a's vtime advances while b idles
        q.pop_next();
        for i in 0..6u32 {
            q.push(1, i); // b joins mid-busy-period at a's vtime
        }
        let order = drain_order(&mut q);
        // b must not get all its requests first (that would be banked
        // credit); service alternates from here.
        let b_first4 = order[..4].iter().filter(|&&c| c == 1).count();
        assert!(b_first4 <= 2, "b banked credit while idle: {order:?}");
    }

    #[test]
    fn queued_at_or_above_counts_tiers() {
        let mut q = FairQueues::new(vec![
            TenantClass::new("hi").tier(0),
            TenantClass::new("mid").tier(1),
            TenantClass::new("lo").tier(2),
        ]);
        q.push(0, 0);
        q.push(1, 1);
        q.push(1, 2);
        q.push(2, 3);
        assert_eq!(q.queued_at_or_above(0), 1);
        assert_eq!(q.queued_at_or_above(1), 3);
        assert_eq!(q.queued_at_or_above(2), 4);
        assert_eq!(q.len(), 4);
        assert_eq!(q.iter().filter(|&(c, _)| c == 1).count(), 2);
    }

    #[test]
    fn zero_weight_clamps_to_one() {
        let q: FairQueues<u32> = FairQueues::new(vec![TenantClass::new("z").weight(0)]);
        assert_eq!(q.classes()[0].weight, 1);
    }
}
