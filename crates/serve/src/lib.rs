//! # lm4db-serve
//!
//! A batched inference engine over the GPT decoder in `lm4db-transformer`,
//! in the mold of the serving stacks that make "very large language models
//! for data management" economical: the tutorial's applications (text-to-
//! SQL, wrangling, CodexDB-style synthesis) funnel many small prompts with
//! near-identical instruction/schema headers through one decoder, and that
//! workload is exactly what continuous batching plus prefix caching exploit.
//!
//! The engine is synchronous-API, internally concurrent:
//!
//! * **Continuous batching** ([`Engine`]): requests are admitted into a
//!   dynamic batch, all active sequences step together through the
//!   pool-parallel kernels, and finished requests retire without blocking
//!   the rest.
//! * **KV caching** ([`lm4db_transformer::KvCache`]): each sequence decodes
//!   in O(t) per token instead of the O(t²) full re-forward.
//! * **Prefix caching** ([`PrefixCache`]): a trie keyed on token ids stores
//!   the per-layer key/value rows of previously prefilled prompts, so a
//!   request sharing an instruction/schema header skips re-prefilling the
//!   common prefix. KV rows are pure functions of the token prefix, so the
//!   restore is bitwise identical to recomputation.
//! * **Deadlines & cancellation**: per-request step- or wall-clock
//!   deadlines with graceful partial results, plus [`Engine::cancel`].
//! * **Observability**: a [`Stats`] snapshot with queued/prefilled/decoded
//!   token counters, prefix-cache hits, and batch occupancy.
//!
//! Output is bit-identical to the single-request KV-cached decode path at
//! any batch size and thread count (see DESIGN.md §5c for the invariants),
//! and token-identical to the full-forward `generate` path whenever the
//! model's distributions are sharper than the ~1e-3 float divergence
//! between the two forward implementations.

#![warn(missing_docs)]

pub mod engine;
pub mod prefix;
pub mod stats;

pub use engine::{Deadline, Decode, Engine, EngineOptions, Outcome, Request, RequestId, Response};
pub use prefix::PrefixCache;
pub use stats::Stats;
