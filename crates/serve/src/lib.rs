//! # lm4db-serve
//!
//! A batched inference engine over the GPT decoder in `lm4db-transformer`,
//! in the mold of the serving stacks that make "very large language models
//! for data management" economical: the tutorial's applications (text-to-
//! SQL, wrangling, CodexDB-style synthesis) funnel many small prompts with
//! near-identical instruction/schema headers through one decoder, and that
//! workload is exactly what continuous batching plus prefix caching exploit.
//!
//! The engine is synchronous-API, internally concurrent:
//!
//! * **Continuous batching** ([`Engine`]): requests are admitted into a
//!   dynamic batch, all active sequences step together through the
//!   pool-parallel kernels, and finished requests retire without blocking
//!   the rest.
//! * **KV caching** ([`lm4db_transformer::KvCache`]): each sequence decodes
//!   in O(t) per token instead of the O(t²) full re-forward.
//! * **Prefix caching** ([`PrefixCache`]): a trie keyed on token ids stores
//!   the per-layer key/value rows of previously prefilled prompts, so a
//!   request sharing an instruction/schema header skips re-prefilling the
//!   common prefix. KV rows are pure functions of the token prefix, so the
//!   restore is bitwise identical to recomputation.
//! * **Deadlines & cancellation**: per-request step- or wall-clock
//!   deadlines with graceful partial results, plus [`Engine::cancel`].
//! * **Multi-tenant scheduling** ([`sched`] module, DESIGN.md §5h):
//!   per-tenant queues with strict-priority tiers and weighted-fair
//!   sharing within a tier ([`EngineOptions::tenants`]), SLO-aware
//!   admission control that sheds predicted deadline misses
//!   ([`EngineOptions::slo_admission`]), and per-tenant outcome/latency
//!   accounting in [`Stats::tenants`] — deterministic step-based
//!   histograms, mirrored into `lm4db-obs` as `serve/tenant/*` counters.
//! * **Observability**: a [`Stats`] snapshot with queued/prefilled/decoded
//!   token counters, prefix-cache hits, and batch occupancy. With
//!   `LM4DB_TRACE=1` the same counters are mirrored into the global
//!   `lm4db-obs` registry (under `serve/*`) and every scheduler phase is
//!   timed as a span, exportable as text or JSON (see DESIGN.md §5d).
//! * **Fault isolation** ([`engine`] module docs, DESIGN.md §5f): a panic
//!   inside one sequence's forward pass never takes down the process or
//!   the batch — the poisoned request quarantines and retries with
//!   step-based backoff, then retires with [`Outcome::Failed`] if every
//!   attempt is poisoned; admission control sheds excess queue depth with
//!   [`Outcome::Rejected`]. Every submitted request retires with exactly
//!   one terminal outcome. Chaos-test this path with `LM4DB_FAULTS` (the
//!   `lm4db-fault` injector).
//!
//! Output is bit-identical to the single-request KV-cached decode path at
//! any batch size and thread count (see DESIGN.md §5c for the invariants),
//! and token-identical to the full-forward `generate` path whenever the
//! model's distributions are sharper than the ~1e-3 float divergence
//! between the two forward implementations. Tracing never changes output:
//! the golden suite passes byte-exact with tracing on.
//!
//! # Examples
//!
//! Serve a batch of greedy requests through the engine and read the
//! counters back:
//!
//! ```
//! use lm4db_serve::{Engine, Request};
//! use lm4db_tokenize::{BOS, EOS};
//! use lm4db_transformer::{GptModel, ModelConfig};
//!
//! let model = GptModel::new(ModelConfig::test(), 7);
//! let mut engine = Engine::new(&model);
//! let responses = engine.generate_batch(vec![
//!     Request::greedy(vec![BOS, 10], 4, EOS),
//!     Request::greedy(vec![BOS, 10, 11], 4, EOS),
//! ]);
//! assert_eq!(responses.len(), 2);
//! let stats = engine.stats();
//! assert_eq!(stats.submitted, 2);
//! assert_eq!(stats.completed, 2);
//! assert!(stats.prefill_tokens > 0);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod prefix;
pub mod sched;
pub mod stats;

pub use engine::{Deadline, Decode, Engine, EngineOptions, Outcome, Request, RequestId, Response};
pub use prefix::PrefixCache;
pub use sched::{TenantClass, TenantId};
pub use stats::{Stats, TenantStats};
