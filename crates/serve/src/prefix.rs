//! The prompt prefix cache: a trie keyed on token ids whose nodes store the
//! per-layer attention key/value rows of one position.
//!
//! Because a KV row is a pure function of the token prefix that produced it
//! (causal attention only ever looks backward), any request whose prompt
//! shares a prefix with a previously prefilled prompt can have those
//! positions *restored* instead of recomputed — bitwise identically, as the
//! rows are copied verbatim. This is what makes prefix caching invisible to
//! the determinism guarantees: cached and uncached prefills produce the
//! same logits bit for bit (property-tested below).
//!
//! Capacity is bounded by a token (= node) budget; when an insert exceeds
//! it, least-recently-used leaves are evicted until the budget holds.
//! Eviction only ever removes leaves, so every surviving node still
//! represents a valid prefix. A [`std::collections::BTreeMap`] keyed on
//! token ids keeps traversal order — and therefore eviction — fully
//! deterministic.

use std::collections::BTreeMap;

use lm4db_transformer::{GptModel, KvCache};

struct Node {
    /// Flattened per-layer `[k, v]` rows for this position, in the layout
    /// of [`KvCache::position_kv`].
    kv: Vec<f32>,
    children: BTreeMap<usize, Node>,
    last_used: u64,
}

/// Trie of cached prompt prefixes. See the module docs.
pub struct PrefixCache {
    children: BTreeMap<usize, Node>,
    max_tokens: usize,
    stored: usize,
    clock: u64,
}

impl PrefixCache {
    /// An empty cache holding at most `max_tokens` positions; `0` disables
    /// caching entirely.
    pub fn new(max_tokens: usize) -> Self {
        PrefixCache {
            children: BTreeMap::new(),
            max_tokens,
            stored: 0,
            clock: 0,
        }
    }

    /// Whether the cache can hold anything at all.
    pub fn enabled(&self) -> bool {
        self.max_tokens > 0
    }

    /// Number of cached positions (trie nodes).
    pub fn nodes(&self) -> usize {
        self.stored
    }

    /// Restores the longest cached prefix of `tokens` into `cache` (which
    /// must be empty) and returns the number of restored positions. Marks
    /// every node on the path as recently used.
    pub fn restore_into(
        &mut self,
        model: &GptModel,
        tokens: &[usize],
        cache: &mut KvCache,
    ) -> usize {
        assert!(cache.is_empty(), "restore_into requires an empty KvCache");
        if !self.enabled() {
            return 0;
        }
        let mut clock = self.clock;
        let mut children = &mut self.children;
        let mut restored = 0;
        for &tok in tokens {
            match children.get_mut(&tok) {
                None => break,
                Some(node) => {
                    clock += 1;
                    node.last_used = clock;
                    cache.push_position(model, tok, &node.kv);
                    restored += 1;
                    children = &mut node.children;
                }
            }
        }
        self.clock = clock;
        restored
    }

    /// Inserts the first `upto` positions of `cache` (which must have fed
    /// at least that many tokens), extracting each position's key/value
    /// rows into the trie. Existing nodes are refreshed, not overwritten —
    /// their rows are identical by construction.
    pub fn insert(&mut self, model: &GptModel, cache: &KvCache, upto: usize) {
        if !self.enabled() {
            return;
        }
        assert!(upto <= cache.len(), "insert beyond cache length");
        let tokens = &cache.tokens()[..upto];
        let mut clock = self.clock;
        let mut stored = self.stored;
        let mut children = &mut self.children;
        for (t, &tok) in tokens.iter().enumerate() {
            clock += 1;
            let node = children.entry(tok).or_insert_with(|| {
                stored += 1;
                Node {
                    kv: cache.position_kv(model, t),
                    children: BTreeMap::new(),
                    last_used: 0,
                }
            });
            node.last_used = clock;
            children = &mut node.children;
        }
        self.clock = clock;
        self.stored = stored;
        self.evict();
    }

    /// Evicts least-recently-used leaves until the token budget holds.
    fn evict(&mut self) {
        while self.stored > self.max_tokens {
            let Some(age) = Self::oldest_leaf(&self.children) else {
                break;
            };
            if Self::remove_leaf(&mut self.children, age) {
                self.stored -= 1;
            } else {
                break;
            }
        }
    }

    /// Age of the least-recently-used leaf in the forest, if any. Ages are
    /// unique (the clock advances on every touch), so the minimum
    /// identifies exactly one leaf.
    fn oldest_leaf(children: &BTreeMap<usize, Node>) -> Option<u64> {
        children
            .values()
            .map(|n| {
                if n.children.is_empty() {
                    n.last_used
                } else {
                    Self::oldest_leaf(&n.children).expect("non-empty subtree has a leaf")
                }
            })
            .min()
    }

    /// Removes the unique leaf whose age is `age`; returns whether it was
    /// found.
    fn remove_leaf(children: &mut BTreeMap<usize, Node>, age: u64) -> bool {
        let key = children
            .iter()
            .find(|(_, n)| {
                let leaf_age = if n.children.is_empty() {
                    n.last_used
                } else {
                    Self::oldest_leaf(&n.children).expect("non-empty subtree has a leaf")
                };
                leaf_age == age
            })
            .map(|(&k, _)| k);
        let Some(k) = key else {
            return false;
        };
        let node = children.get_mut(&k).expect("key just found");
        if node.children.is_empty() {
            children.remove(&k);
            true
        } else {
            Self::remove_leaf(&mut node.children, age)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm4db_tokenize::BOS;
    use lm4db_transformer::ModelConfig;

    fn model() -> GptModel {
        GptModel::new(ModelConfig::test(), 7)
    }

    #[test]
    fn restore_returns_longest_cached_prefix() {
        let m = model();
        let tokens = [BOS, 10, 11, 12, 13];
        let mut full = KvCache::new(&m);
        full.feed_all(&m, &tokens);
        let mut pc = PrefixCache::new(64);
        pc.insert(&m, &full, tokens.len());
        assert_eq!(pc.nodes(), tokens.len());

        // Exact prefix: all positions restored.
        let mut c = KvCache::new(&m);
        assert_eq!(pc.restore_into(&m, &tokens, &mut c), tokens.len());
        assert_eq!(c.tokens(), &tokens);

        // Diverging prompt: only the shared part is restored.
        let mut c = KvCache::new(&m);
        let n = pc.restore_into(&m, &[BOS, 10, 11, 40, 41], &mut c);
        assert_eq!(n, 3);
        assert_eq!(c.tokens(), &[BOS, 10, 11]);
    }

    #[test]
    fn restored_prefill_is_bitwise_identical() {
        let m = model();
        let tokens = [BOS, 9, 10, 11, 12, 13];
        let mut full = KvCache::new(&m);
        full.feed_all(&m, &tokens);
        let mut pc = PrefixCache::new(64);
        pc.insert(&m, &full, 4);
        let mut c = KvCache::new(&m);
        let n = pc.restore_into(&m, &tokens[..4], &mut c);
        assert_eq!(n, 4);
        let logits = c.feed_all(&m, &tokens[4..]).to_vec();
        assert_eq!(logits, full.last_logits(), "restored prefill diverged");
    }

    #[test]
    fn disabled_cache_stores_and_restores_nothing() {
        let m = model();
        let mut full = KvCache::new(&m);
        full.feed_all(&m, &[BOS, 10, 11]);
        let mut pc = PrefixCache::new(0);
        pc.insert(&m, &full, 3);
        assert_eq!(pc.nodes(), 0);
        let mut c = KvCache::new(&m);
        assert_eq!(pc.restore_into(&m, &[BOS, 10, 11], &mut c), 0);
    }

    #[test]
    fn eviction_keeps_recently_used_paths() {
        let m = model();
        let a = [BOS, 10, 11, 12];
        let b = [BOS, 20, 21, 22];
        let mut ca = KvCache::new(&m);
        ca.feed_all(&m, &a);
        let mut cb = KvCache::new(&m);
        cb.feed_all(&m, &b);

        // Budget of 5: inserting both 4-token paths (7 distinct nodes —
        // BOS is shared) must evict from the older path `a`.
        let mut pc = PrefixCache::new(5);
        pc.insert(&m, &ca, a.len());
        pc.insert(&m, &cb, b.len());
        assert!(pc.nodes() <= 5);
        let mut c = KvCache::new(&m);
        assert_eq!(
            pc.restore_into(&m, &b, &mut c),
            b.len(),
            "LRU evicted the fresh path"
        );
    }

    #[test]
    fn eviction_only_removes_leaves() {
        let m = model();
        let mut ca = KvCache::new(&m);
        ca.feed_all(&m, &[BOS, 10, 11, 12, 13, 14]);
        let mut pc = PrefixCache::new(3);
        pc.insert(&m, &ca, 6);
        assert_eq!(pc.nodes(), 3);
        // The survivors must be the path root — a valid prefix.
        let mut c = KvCache::new(&m);
        assert_eq!(pc.restore_into(&m, &[BOS, 10, 11, 12, 13, 14], &mut c), 3);
        assert_eq!(c.tokens(), &[BOS, 10, 11]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use lm4db_transformer::ModelConfig;
    use proptest::prelude::*;

    proptest! {
        /// The satellite property: ANY split of a prompt into cached-prefix
        /// + live suffix yields logits identical (bit for bit) to an
        /// uncached prefill of the whole prompt.
        #[test]
        fn any_prefix_split_matches_uncached_prefill(
            tokens in prop::collection::vec(8usize..60, 2..14),
            split_seed in 0usize..1000,
        ) {
            let m = GptModel::new(ModelConfig::test(), 11);
            let split = 1 + split_seed % (tokens.len() - 1);

            let mut full = KvCache::new(&m);
            full.feed_all(&m, &tokens);

            let mut pc = PrefixCache::new(1024);
            pc.insert(&m, &full, split);

            let mut c = KvCache::new(&m);
            let restored = pc.restore_into(&m, &tokens[..split], &mut c);
            prop_assert_eq!(restored, split);
            let logits = c.feed_all(&m, &tokens[split..]).to_vec();
            prop_assert_eq!(logits, full.last_logits().to_vec());
        }
    }
}
