//! Engine observability: a cheap, copyable counters snapshot.
//!
//! `Stats` is the per-engine view. When tracing is on (`LM4DB_TRACE=1` or
//! `lm4db_obs::set_enabled(true)`), the engine mirrors every counter
//! increment into the global `lm4db-obs` registry under `serve/*`
//! (`serve/submitted`, `serve/decoded_tokens`, …) and publishes queue
//! depth, batch occupancy, and prefix-cache size as gauges — so one
//! `lm4db_obs::snapshot()` shows serving counters next to kernel and
//! training timings, merged across every engine in the process.
//!
//! Per-request latency distributions ([`Stats::queue_wait`] and
//! [`Stats::latency`]) are always recorded — they are one histogram
//! `record` per request, far off the per-token hot path — so
//! `stats().latency.quantile(0.99)` answers the tail-latency question
//! without any tracing armed.

use std::collections::BTreeMap;

use lm4db_obs::Histogram;

/// A point-in-time snapshot of the engine's counters, taken with
/// [`crate::Engine::stats`]. All token counts are cumulative since engine
/// construction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stats {
    /// Requests ever submitted.
    pub submitted: u64,
    /// Requests that ran to completion.
    pub completed: u64,
    /// Requests cancelled before completion (including while queued).
    pub cancelled: u64,
    /// Requests retired by a deadline with partial results.
    pub expired: u64,
    /// Requests retired with [`crate::Outcome::Failed`] after exhausting
    /// their retry budget (a worker panic poisoned every attempt).
    pub failed: u64,
    /// Requests shed at admission with [`crate::Outcome::Rejected`]
    /// because the queue was at its configured bound.
    pub rejected: u64,
    /// Retry attempts scheduled after a poisoned feed pass (each failed
    /// request contributes up to `EngineOptions::max_retries`).
    pub retries: u64,
    /// Requests currently waiting for a batch slot.
    pub queued: usize,
    /// Requests currently decoding.
    pub active: usize,
    /// Requests quarantined after a fault, waiting out their backoff
    /// before re-admission.
    pub retrying: usize,
    /// Prompt tokens fed through the model (cache misses during prefill).
    pub prefill_tokens: u64,
    /// Prompt tokens restored from the prefix cache instead of recomputed.
    pub cached_prefix_tokens: u64,
    /// Generated tokens fed back through the model. With speculative
    /// decoding this counts every token fed through a verify pass,
    /// including drafts that were later rejected — it measures model
    /// work, not emitted output.
    pub decoded_tokens: u64,
    /// Draft tokens proposed by the speculative draft model and scheduled
    /// for verification (see [`crate::EngineOptions::draft_k`]).
    pub drafted_tokens: u64,
    /// Draft tokens that matched the transformer's own argmax during the
    /// verify walk and were emitted without an extra decode step;
    /// `draft_accepted_tokens / drafted_tokens` is the acceptance rate
    /// ([`Stats::draft_accept_rate`]).
    pub draft_accepted_tokens: u64,
    /// Scheduler steps executed.
    pub steps: u64,
    /// Telemetry sampler ticks taken ([`crate::EngineOptions::sample_steps`]);
    /// mirrored as the `serve/sampler_ticks` counter. Step-based, hence
    /// deterministic for a given request schedule.
    pub sampler_ticks: u64,
    /// Burn-rate alert transitions into `Pending`
    /// ([`crate::EngineOptions::slo_alerts`]); mirrored as `slo/pending`.
    pub slo_pending: u64,
    /// Burn-rate alert transitions into `Firing`; mirrored as `slo/firing`.
    pub slo_firing: u64,
    /// Burn-rate alert transitions into `Resolved`; mirrored as
    /// `slo/resolved`.
    pub slo_resolved: u64,
    /// Largest number of concurrently active requests observed.
    pub peak_batch: usize,
    /// Sum over steps of the number of live sequences (beam hypotheses
    /// count individually); divide by `steps` for the mean occupancy.
    pub batch_occupancy_sum: u64,
    /// Nodes (= cached token positions) currently held by the prefix trie.
    pub prefix_cache_nodes: usize,
    /// Wall-clock nanoseconds each request spent queued before admission
    /// (one observation per admitted request). Query tails with
    /// [`Histogram::quantile`] — p50/p95/p99.
    pub queue_wait: Histogram,
    /// End-to-end wall-clock nanoseconds from submit to retire (one
    /// observation per retired request, including cancelled and expired).
    pub latency: Histogram,
    /// Per-tenant accounting, keyed by [`crate::Request::tenant`]. Always
    /// populated (an unconfigured engine books everything under tenant 0);
    /// the per-tenant latency distributions count scheduler *steps*, not
    /// wall time, so they are deterministic and fingerprint-safe.
    pub tenants: BTreeMap<u32, TenantStats>,
}

/// One tenant's slice of the engine counters (see [`Stats::tenants`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantStats {
    /// Requests this tenant ever submitted.
    pub submitted: u64,
    /// Requests admitted into the batch at least once.
    pub admitted: u64,
    /// Requests that ran to completion.
    pub completed: u64,
    /// Requests cancelled before completion.
    pub cancelled: u64,
    /// Requests retired by a deadline with partial results.
    pub expired: u64,
    /// Requests retired with [`crate::Outcome::Failed`].
    pub failed: u64,
    /// Requests shed at admission ([`crate::Outcome::Rejected`]): queue
    /// bound plus SLO sheds.
    pub rejected: u64,
    /// The subset of `rejected` shed by SLO-aware admission control
    /// ([`crate::EngineOptions::slo_admission`]) rather than the hard
    /// queue bound.
    pub slo_shed: u64,
    /// Retry attempts scheduled after a poisoned feed pass.
    pub retries: u64,
    /// Completed requests whose submit→retire step count met the tenant's
    /// `slo_steps` target (only booked when a target is configured).
    pub slo_met: u64,
    /// Completed requests that overran the tenant's `slo_steps` target.
    pub slo_missed: u64,
    /// The tenant's wall-clock SLO target in milliseconds, copied from
    /// [`crate::TenantClass::slo_wall_ms`] at engine construction; 0 when
    /// none is configured. **Recorded, not enforced**: admission and
    /// alerting run on the step-based target, and nothing yet compares
    /// wall-clock latencies against this value — it rides along so the
    /// step and wall SLO schemas stay unified until wall-clock
    /// enforcement lands.
    pub slo_wall_ms: u64,
    /// Requests currently waiting in this tenant's queue.
    pub queued: usize,
    /// Scheduler steps each admitted request waited before first
    /// admission (one observation per admitted request). Step-based and
    /// therefore deterministic, unlike the wall-clock [`Stats::queue_wait`].
    pub queue_wait_steps: Histogram,
    /// Submit→retire scheduler steps for every admitted-then-retired
    /// request (sheds are excluded: they never consumed a step).
    pub latency_steps: Histogram,
}

impl TenantStats {
    /// Terminal outcomes booked for this tenant; equals `submitted` once
    /// the engine is idle (the conservation law, per tenant).
    pub fn terminal_total(&self) -> u64 {
        self.completed + self.cancelled + self.expired + self.failed + self.rejected
    }
}

impl Stats {
    /// Mean number of live sequences per scheduler step.
    pub fn mean_batch_occupancy(&self) -> f32 {
        if self.steps == 0 {
            0.0
        } else {
            self.batch_occupancy_sum as f32 / self.steps as f32
        }
    }

    /// Requests that have reached a terminal outcome. When the engine is
    /// idle this equals [`Stats::submitted`] — every submitted request
    /// retires exactly once, whatever faults were injected along the way
    /// (the chaos suite's conservation law):
    /// `completed + cancelled + expired + failed + rejected == submitted`.
    pub fn terminal_total(&self) -> u64 {
        self.completed + self.cancelled + self.expired + self.failed + self.rejected
    }

    /// Fraction of prompt tokens served from the prefix cache.
    pub fn prefix_hit_rate(&self) -> f32 {
        let total = self.prefill_tokens + self.cached_prefix_tokens;
        if total == 0 {
            0.0
        } else {
            self.cached_prefix_tokens as f32 / total as f32
        }
    }

    /// Fraction of speculative drafts accepted by the verify walk (0 when
    /// speculation never ran).
    pub fn draft_accept_rate(&self) -> f32 {
        if self.drafted_tokens == 0 {
            0.0
        } else {
            self.draft_accepted_tokens as f32 / self.drafted_tokens as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates_handle_zero_denominators() {
        let s = Stats::default();
        assert_eq!(s.mean_batch_occupancy(), 0.0);
        assert_eq!(s.prefix_hit_rate(), 0.0);
    }

    #[test]
    fn derived_rates_compute() {
        let s = Stats {
            steps: 4,
            batch_occupancy_sum: 10,
            prefill_tokens: 30,
            cached_prefix_tokens: 10,
            ..Stats::default()
        };
        assert_eq!(s.mean_batch_occupancy(), 2.5);
        assert_eq!(s.prefix_hit_rate(), 0.25);
    }

    #[test]
    fn tenant_terminal_total_sums_every_terminal_outcome() {
        let t = TenantStats {
            submitted: 10,
            admitted: 6,
            completed: 4,
            cancelled: 1,
            expired: 1,
            failed: 1,
            rejected: 3,
            slo_shed: 2, // a subset of rejected: not summed separately
            ..TenantStats::default()
        };
        assert_eq!(t.terminal_total(), 10);
        assert_eq!(t.terminal_total(), t.submitted);
    }

    #[test]
    fn terminal_total_sums_every_terminal_outcome() {
        let s = Stats {
            submitted: 15,
            completed: 8,
            cancelled: 2,
            expired: 1,
            failed: 3,
            rejected: 1,
            retries: 5, // not terminal: retries never count
            ..Stats::default()
        };
        assert_eq!(s.terminal_total(), 15);
        assert_eq!(s.terminal_total(), s.submitted);
    }
}
