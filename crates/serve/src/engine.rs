//! The continuous-batching scheduler.
//!
//! One [`Engine`] borrows a frozen [`GptModel`] and serves any number of
//! requests through a synchronous API: submit, then `step()` (or `run()`)
//! until responses appear. Internally every scheduler step
//!
//! 1. **admits** queued requests into the dynamic batch while slots are
//!    free, restoring any shared prompt prefix from the trie cache,
//! 2. **feeds** every live sequence's pending tokens through the model —
//!    sequences fan out across the worker pool ([`parallel_rows_mut`]), and
//!    each sequence touches only its own [`KvCache`], so the computation
//!    for one request is independent of what else is in the batch,
//! 3. **selects** the next token(s) for each request serially, in
//!    submission order, with the exact float operations of the
//!    single-request decoders in `lm4db_transformer::generate`, and
//! 4. **retires** finished, cancelled, and deadline-expired requests
//!    without blocking the rest.
//!
//! Steps 2–3 are why output is bit-identical to single-request decoding at
//! any batch size and thread count: no arithmetic ever crosses sequences,
//! and selection is deterministic and sequential.
//!
//! **Fault isolation** (DESIGN.md §5f). The feed fan-out runs through
//! [`try_parallel_tasks_mut`], so a panicking kernel poisons only its own
//! sequence: the owning request is *quarantined* — pulled from the batch
//! with its half-written KV state discarded — and retried from scratch
//! after a step-based exponential backoff, up to
//! [`EngineOptions::max_retries`] times. A request that fails every
//! attempt retires with [`Outcome::Failed`] carrying the panic message;
//! the process never aborts and the rest of the batch never notices.
//! Because KV rows are pure functions of the token prefix, a retried
//! request's output is bit-identical to an undisturbed run — fault
//! recovery is invisible in the result stream. Admission control caps the
//! queue at [`EngineOptions::max_queue`]: excess submissions shed
//! immediately with [`Outcome::Rejected`] instead of growing the queue
//! unboundedly. Every submitted request therefore retires with exactly
//! one terminal outcome
//! (`completed + cancelled + expired + failed + rejected == submitted`).
//!
//! **Multi-tenant scheduling** (DESIGN.md §5h). With
//! [`EngineOptions::tenants`] configured, each request carries a
//! [`Request::tenant`] id and waits in that tenant's own queue; admission
//! picks across queues by strict priority tier and weighted-fair virtual
//! time (see [`crate::sched`]), instead of global FIFO. Optionally,
//! [`EngineOptions::slo_admission`] turns the queue bound into an
//! SLO-aware controller: a tenant with an `slo_steps` target sheds its own
//! arrivals (lowest tiers feel the backlog first — higher-tier work jumps
//! their queue) whenever the backlog it must wait behind, times a running
//! estimate of per-request service steps, predicts a deadline miss. Every
//! outcome, retry, and a step-based latency distribution is additionally
//! booked per tenant in [`Stats::tenants`]; the conservation law above
//! holds tenant by tenant.
//!
//! [`parallel_rows_mut`]: lm4db_tensor::parallel_rows_mut
//! [`try_parallel_tasks_mut`]: lm4db_tensor::try_parallel_tasks_mut

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use lm4db_transformer::generate::{apply_constraint, apply_token_mask, argmax, log_softmax};
use lm4db_transformer::{Constraint, DraftModel, GptModel, Hypothesis, KvCache, TokenMask};

use crate::prefix::PrefixCache;
use crate::sched::{FairQueues, TenantClass, TenantId};
use crate::stats::{Stats, TenantStats};

/// Engine-assigned request handle, increasing in submission order.
pub type RequestId = u64;

/// Request ids are process-unique, not per-engine: flight-recorder events
/// are attributed by id alone, and applications like the codegen retry
/// loop run several engines in one process whose ids must not collide.
static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// When the engine must give up on a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Deadline {
    /// Run to completion.
    #[default]
    None,
    /// Survive at most this many scheduler steps, then retire with partial
    /// results. Deterministic (counts steps, not time).
    Steps(u64),
    /// Retire at this wall-clock instant — inherently non-deterministic;
    /// use [`Deadline::Steps`] when reproducibility matters.
    Wall(Instant),
}

/// What to do with a request's prompt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decode {
    /// Greedy decoding, mirroring [`lm4db_transformer::greedy`].
    Greedy {
        /// Maximum number of generated tokens.
        max_new: usize,
        /// Stop token (never emitted).
        stop: usize,
    },
    /// Beam search, mirroring [`lm4db_transformer::beam`].
    Beam {
        /// Number of beams.
        width: usize,
        /// Maximum number of expansion rounds.
        max_new: usize,
        /// Stop token.
        stop: usize,
    },
    /// Teacher-forced scoring: the prompt is `prefix ++ continuation` and
    /// the response carries the total log-probability of the continuation,
    /// mirroring `lm4db_lm::score_continuation` over a KV-cached session.
    Score {
        /// Length of the conditioning prefix inside the prompt.
        prefix_len: usize,
    },
}

/// One unit of work for the engine. `Clone` is part of the contract: the
/// router tier keeps a copy of every in-flight request so it can re-submit
/// it to another replica after a kill (constraint and mask attachments are
/// borrowed, so a clone is cheap and shares them).
#[derive(Clone)]
pub struct Request<'a> {
    /// Prompt token ids (non-empty, at most `max_seq_len`).
    pub prompt: Vec<usize>,
    /// Decoding strategy.
    pub decode: Decode,
    /// Optional PICARD-style decoding constraint.
    pub constraint: Option<&'a dyn Constraint>,
    /// Optional incremental grammar mask, the engine-native form of a
    /// constraint: materialized once per decode step as a vocabulary-wide
    /// allow table instead of probed token by token. When both `mask` and
    /// `constraint` are attached the mask wins; outputs are byte-identical
    /// whenever the two encode the same veto set (see
    /// [`lm4db_transformer::TokenMask`]).
    pub mask: Option<&'a dyn TokenMask>,
    /// Optional deadline.
    pub deadline: Deadline,
    /// Owning tenant. With [`EngineOptions::tenants`] configured this must
    /// index into that list (validated at submit); otherwise it is a free
    /// label that only keys the per-tenant [`Stats::tenants`] accounting.
    pub tenant: TenantId,
}

impl<'a> Request<'a> {
    /// A greedy-decoding request.
    pub fn greedy(prompt: Vec<usize>, max_new: usize, stop: usize) -> Self {
        Request {
            prompt,
            decode: Decode::Greedy { max_new, stop },
            constraint: None,
            mask: None,
            deadline: Deadline::None,
            tenant: 0,
        }
    }

    /// A beam-search request.
    pub fn beam(prompt: Vec<usize>, width: usize, max_new: usize, stop: usize) -> Self {
        Request {
            prompt,
            decode: Decode::Beam {
                width,
                max_new,
                stop,
            },
            constraint: None,
            mask: None,
            deadline: Deadline::None,
            tenant: 0,
        }
    }

    /// A continuation-scoring request.
    pub fn score(prefix: &[usize], continuation: &[usize]) -> Self {
        let mut prompt = prefix.to_vec();
        prompt.extend_from_slice(continuation);
        Request {
            prompt,
            decode: Decode::Score {
                prefix_len: prefix.len(),
            },
            constraint: None,
            mask: None,
            deadline: Deadline::None,
            tenant: 0,
        }
    }

    /// Attaches a decoding constraint.
    pub fn with_constraint(mut self, c: &'a dyn Constraint) -> Self {
        self.constraint = Some(c);
        self
    }

    /// Attaches an incremental grammar mask (see [`Request::mask`]).
    pub fn with_mask(mut self, m: &'a dyn TokenMask) -> Self {
        self.mask = Some(m);
        self
    }

    /// Attaches a deadline.
    pub fn with_deadline(mut self, d: Deadline) -> Self {
        self.deadline = d;
        self
    }

    /// Assigns the request to a tenant (see [`Request::tenant`]).
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }
}

/// How a request left the engine. Every variant is terminal: a submitted
/// request produces exactly one response with exactly one outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Ran to its natural end (stop token, budget, or dead end).
    Finished,
    /// Cancelled via [`Engine::cancel`]; results are partial.
    Cancelled,
    /// Retired by its deadline; results are partial.
    DeadlineExpired,
    /// Every attempt was poisoned (a worker panic, or a malformed prompt
    /// that admission validation refused); results are partial and
    /// `reason` carries the last failure's diagnosis. The engine itself
    /// survives — see the module docs on fault isolation.
    Failed {
        /// The last panic message, or the validation error.
        reason: String,
    },
    /// Shed at admission: the queue was at [`EngineOptions::max_queue`].
    /// The request was never decoded; resubmit when load drops.
    Rejected,
}

/// The engine's answer to one request.
#[derive(Debug, Clone)]
pub struct Response {
    /// The id returned by [`Engine::submit`].
    pub id: RequestId,
    /// How the request ended.
    pub outcome: Outcome,
    /// Generated tokens: the greedy output, or the top hypothesis's
    /// generated part for beam requests (empty for scoring).
    pub tokens: Vec<usize>,
    /// All beam hypotheses, sorted exactly like [`lm4db_transformer::beam`]
    /// (empty for other request kinds).
    pub hyps: Vec<Hypothesis>,
    /// Continuation log-probability (scoring requests only).
    pub score: f32,
}

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Maximum number of concurrently decoding requests.
    pub max_batch: usize,
    /// Prefix-cache budget in token positions; `0` disables the cache.
    pub prefix_cache_tokens: usize,
    /// Admission-control bound: submissions arriving while this many
    /// requests are already queued shed immediately with
    /// [`Outcome::Rejected`]. `0` (the default) means unbounded.
    pub max_queue: usize,
    /// How many times a fault-poisoned request is retried from scratch
    /// before retiring with [`Outcome::Failed`]. `0` fails on the first
    /// poisoning.
    pub max_retries: u32,
    /// Base quarantine backoff, in scheduler steps: retry `r` waits
    /// `retry_backoff_steps << r` steps (capped at 1024) before
    /// re-admission. Step-based, so fault recovery is reproducible.
    pub retry_backoff_steps: u64,
    /// Serve with int8 quantized weights: the engine snapshots the model's
    /// heavy matrices to int8 at construction (`QuantizedGpt::from_model`)
    /// and decodes through the quantized path, trading a bounded logit
    /// perturbation for ~4x smaller weight reads. The f32 model is left
    /// untouched. Quantized decode is still deterministic at any thread
    /// count, but its outputs differ from f32 decode — both paths have
    /// their own golden sets.
    pub quantized: bool,
    /// Tenant classes, indexed by [`Request::tenant`]. Empty (the default)
    /// keeps the single global FIFO queue; non-empty switches admission to
    /// per-tenant queues with strict-priority tiers and weighted-fair
    /// sharing within a tier (see [`crate::sched`]), and submits must carry
    /// a tenant id below `tenants.len()`.
    pub tenants: Vec<TenantClass>,
    /// SLO-aware admission control: a submit for a tenant with a non-zero
    /// [`TenantClass::slo_steps`] is shed with [`Outcome::Rejected`] when
    /// `(backlog_ahead / max_batch + 1) * estimated_service_steps` exceeds
    /// the tenant's target — the backlog a tenant waits behind is its own
    /// tier's and higher tiers' queues plus the running batch, so
    /// lower-tier tenants shed first under overload. The service estimate
    /// is a deterministic integer EWMA over completed requests, seeded by
    /// [`EngineOptions::slo_initial_service_steps`].
    pub slo_admission: bool,
    /// Initial per-request service-step estimate for SLO admission, before
    /// any request has completed (clamped to ≥ 1).
    pub slo_initial_service_steps: u64,
    /// Speculative decoding lookahead: after each greedy selection the
    /// draft model (see [`Engine::set_draft`]) proposes up to this many
    /// tokens, which the next scheduler step verifies in **one** batched
    /// forward pass ([`KvCache::feed_many`]) instead of one pass per
    /// token. The longest prefix of drafts agreeing with the
    /// transformer's own argmax is accepted; the first disagreement is
    /// resampled from the transformer's logits and the KV cache rolls
    /// back to the verified prefix — so output is byte-identical to
    /// non-speculative greedy decoding at any draft quality. `0` (the
    /// default) disables speculation; without a draft model the setting
    /// is inert. Beam and scoring requests never speculate.
    pub draft_k: usize,
    /// Telemetry sampling cadence in scheduler ticks: every
    /// `sample_steps`-th tick, the engine snapshots its step-based
    /// counters, queue depths, and per-tenant step-latency quantiles into
    /// the global [`lm4db_obs::timeseries`] store and feeds the SLO
    /// monitor. Samples are pure functions of the request schedule
    /// (virtual step clock, no wall time), so sampling never perturbs
    /// outputs and replays byte-identically at any thread count or trace
    /// level. `0` disables sampling; the default comes from
    /// `LM4DB_SAMPLE_STEPS` ([`lm4db_obs::env_sample_steps`]).
    pub sample_steps: u64,
    /// Multi-window burn-rate alerting over per-tenant SLO outcomes (see
    /// [`lm4db_obs::slo`]): each sampler tick observes, per tenant class
    /// with a non-zero `slo_steps`, the cumulative bad outcomes
    /// (`slo_missed + slo_shed`) against all SLO-tracked outcomes.
    /// Transitions are booked in [`Stats`] (`slo_pending` / `slo_firing`
    /// / `slo_resolved`), mirrored as `slo/*` registry counters and
    /// flight-recorder instants, and kept in an in-order log
    /// ([`Engine::alert_transitions`]). While a tenant's alert is firing,
    /// SLO admission tightens: the shed predicate halves that tenant's
    /// step target, shedding earlier to drain the burn. Requires
    /// [`EngineOptions::sample_steps`] > 0 to observe anything. `None`
    /// (the default) disables alerting — and because alerting changes
    /// admission decisions, golden/soak determinism legs leave it off
    /// while freely enabling `sample_steps`.
    pub slo_alerts: Option<lm4db_obs::AlertConfig>,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            max_batch: 8,
            prefix_cache_tokens: 4096,
            max_queue: 0,
            max_retries: 2,
            retry_backoff_steps: 2,
            quantized: false,
            tenants: Vec::new(),
            slo_admission: false,
            slo_initial_service_steps: 8,
            draft_k: 0,
            sample_steps: lm4db_obs::env_sample_steps(),
            slo_alerts: None,
        }
    }
}

/// Bounded exponential backoff in scheduler steps for retry `attempt`.
fn backoff_steps(base: u64, attempt: u32) -> u64 {
    (base.max(1) << attempt.min(10)).min(1024)
}

/// Mirrors one per-tenant counter into the global registry as
/// `serve/tenant/<id>/<name>`. The name is formatted lazily: with tracing
/// off this is a single branch, no allocation.
fn tenant_counter(tenant: TenantId, name: &str, delta: u64) {
    if lm4db_obs::enabled() {
        lm4db_obs::counter_add(&format!("serve/tenant/{tenant}/{name}"), delta);
    }
}

/// One live sequence (a greedy/score request has one; a beam request has
/// up to `width`).
struct Seq {
    cache: KvCache,
    /// Full token sequence: prompt plus chosen continuations. With
    /// speculation, the last [`Seq::spec`] entries are unverified drafts.
    ids: Vec<usize>,
    /// How many of `ids` are scheduled for feeding; the unfed span is
    /// `ids[cache.len()..sched]`.
    sched: usize,
    log_prob: f32,
    /// How many trailing `ids` are speculative drafts awaiting
    /// verification (0 outside speculative greedy decoding).
    spec: usize,
    /// Per-position logits from the last chunked feed: `step_logits[j]`
    /// is the model's output after `ids[fed + j]` where `fed` was the
    /// cache length before the feed. Empty outside speculation.
    step_logits: Vec<Vec<f32>>,
}

/// A request waiting for admission: freshly submitted, or quarantined
/// after a fault and waiting out its backoff.
struct Pending<'a> {
    id: RequestId,
    /// Engine-local submission index — the deterministic half of the
    /// chaos-injection salt (request ids are process-global and therefore
    /// depend on what else ran in the process; serials don't).
    serial: u64,
    /// 0 for a fresh request; retry number after quarantine.
    attempt: u32,
    /// Earliest scheduler tick at which admission may happen (0 = now).
    wake: u64,
    req: Request<'a>,
    submitted: Instant,
    /// Engine tick at which [`Engine::submit`] accepted the request;
    /// step-based queue-wait and latency run from here.
    submit_tick: u64,
    /// Remaining step-deadline budget, carried across retries (quarantine
    /// backoff does not consume it).
    steps_left: Option<u64>,
    wall: Option<Instant>,
}

/// Scheduler-side state of one admitted request.
struct Active<'a> {
    id: RequestId,
    /// See [`Pending::serial`].
    serial: u64,
    /// Which attempt this is (0 = first); salts fault rolls so a retry
    /// re-rolls instead of deterministically re-faulting.
    attempt: u32,
    /// When [`Engine::submit`] accepted the request (end-to-end latency
    /// runs from here).
    submitted: Instant,
    /// Owning tenant (accounting key).
    tenant: TenantId,
    /// See [`Pending::submit_tick`].
    submit_tick: u64,
    /// Engine tick of this attempt's admission; service-step observations
    /// for the SLO estimator run from here.
    admit_tick: u64,
    prompt_len: usize,
    decode: Decode,
    constraint: Option<&'a dyn Constraint>,
    mask: Option<&'a dyn TokenMask>,
    steps_left: Option<u64>,
    wall: Option<Instant>,
    live: Vec<Seq>,
    /// Finished beam hypotheses.
    done: Vec<Hypothesis>,
    /// Beam expansion rounds completed.
    rounds: usize,
    /// Greedy output so far.
    out: Vec<usize>,
    /// Accumulated continuation log-probability (scoring).
    score: f32,
    /// Next continuation index to score.
    score_pos: usize,
    /// Whether this request's prefill was inserted into the prefix cache.
    inserted: bool,
}

impl Active<'_> {
    /// Number of leading prompt positions that must be fed before any
    /// selection: the whole prompt, except for scoring requests where the
    /// continuation is fed one token at a time.
    fn prefill_target(&self) -> usize {
        match self.decode {
            Decode::Score { prefix_len } => prefix_len,
            _ => self.prompt_len,
        }
    }
}

/// The batched inference engine. See the [module docs](self).
pub struct Engine<'a> {
    model: &'a GptModel,
    /// Int8 weight snapshot, present iff [`EngineOptions::quantized`].
    quant: Option<lm4db_transformer::QuantizedGpt>,
    /// Cheap proposal model for speculative decoding, shared read-only
    /// across every in-flight request (see [`Engine::set_draft`]).
    draft: Option<&'a dyn DraftModel>,
    opts: EngineOptions,
    /// Per-tenant admission queues (one plain FIFO when no tenant classes
    /// are configured).
    queue: FairQueues<Pending<'a>>,
    /// Quarantined requests waiting out their backoff before re-admission.
    retrying: Vec<Pending<'a>>,
    cancelled: HashSet<RequestId>,
    active: Vec<Active<'a>>,
    finished: Vec<Response>,
    prefix: PrefixCache,
    stats: Stats,
    /// Scheduler ticks: increments on every [`Engine::step`] call, even
    /// idle ones (unlike `stats.steps`, which only counts steps with an
    /// active batch). Quarantine wake times are expressed in ticks so the
    /// engine makes progress while every request is backing off.
    ticks: u64,
    /// Engine-local submission counter backing [`Pending::serial`].
    next_serial: u64,
    /// Deterministic integer EWMA of admit→retire service steps over
    /// completed requests, used by SLO admission (`est ← (3·est + obs)/4`).
    est_service_steps: u64,
    /// Burn-rate monitor, present iff [`EngineOptions::slo_alerts`] is
    /// configured; fed by the sampler, consulted by SLO admission.
    monitor: Option<lm4db_obs::SloMonitor>,
    /// In-order log of every alert state-machine transition, for replay
    /// determinism assertions ([`Engine::alert_transitions`]).
    transitions: Vec<lm4db_obs::AlertTransition>,
}

impl<'a> Engine<'a> {
    /// An engine with default options.
    pub fn new(model: &'a GptModel) -> Self {
        Engine::with_options(model, EngineOptions::default())
    }

    /// An engine with explicit options.
    pub fn with_options(model: &'a GptModel, opts: EngineOptions) -> Self {
        assert!(opts.max_batch >= 1, "max_batch must be at least 1");
        let quant = opts
            .quantized
            .then(|| lm4db_transformer::QuantizedGpt::from_model(model));
        let queue = FairQueues::new(opts.tenants.clone());
        let est_service_steps = opts.slo_initial_service_steps.max(1);
        let monitor = opts.slo_alerts.map(lm4db_obs::SloMonitor::new);
        // Record each tenant's wall-clock SLO target up front so stats
        // snapshots carry the full SLO schema. The target is accounting
        // only for now: admission and alerting still run on `slo_steps`
        // (see TenantStats::slo_wall_ms).
        let mut stats = Stats::default();
        for (i, class) in opts.tenants.iter().enumerate() {
            stats.tenants.entry(i as TenantId).or_default().slo_wall_ms = class.slo_wall_ms;
        }
        Engine {
            model,
            quant,
            draft: None,
            prefix: PrefixCache::new(opts.prefix_cache_tokens),
            opts,
            queue,
            retrying: Vec::new(),
            cancelled: HashSet::new(),
            active: Vec::new(),
            finished: Vec::new(),
            stats,
            ticks: 0,
            next_serial: 0,
            est_service_steps,
            monitor,
            transitions: Vec::new(),
        }
    }

    /// The model this engine serves.
    pub fn model(&self) -> &'a GptModel {
        self.model
    }

    /// Whether this engine decodes through the int8 quantized path.
    pub fn is_quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// Heap bytes of the int8 weight snapshot (0 for an f32 engine).
    pub fn quantized_weight_bytes(&self) -> usize {
        self.quant.as_ref().map_or(0, |q| q.weight_bytes())
    }

    /// Installs the draft model used by speculative greedy decoding when
    /// [`EngineOptions::draft_k`] is non-zero. The draft only *proposes*
    /// tokens — every proposal is verified against the transformer's own
    /// argmax before it can appear in an output, so a bad draft costs
    /// throughput, never correctness.
    pub fn set_draft(&mut self, draft: &'a dyn DraftModel) {
        assert_eq!(
            draft.vocab_size(),
            self.model.config().vocab_size,
            "draft model vocabulary must match the served model"
        );
        self.draft = Some(draft);
    }

    /// Enqueues a request; it is admitted into the batch on a later
    /// [`Engine::step`]. Without tenant classes, requests are admitted and
    /// answered in FIFO order of their ids; with [`EngineOptions::tenants`]
    /// configured, admission order follows the tier/weighted-fair policy of
    /// [`crate::sched`] (FIFO within one tenant).
    ///
    /// Three conditions retire the request immediately instead of queueing
    /// it: a prompt longer than the model's `max_seq_len` fails validation
    /// ([`Outcome::Failed`] — the feed pass could only panic on it); a
    /// queue already holding [`EngineOptions::max_queue`] requests sheds
    /// the submission with [`Outcome::Rejected`]; and with
    /// [`EngineOptions::slo_admission`] on, a submission predicted to miss
    /// its tenant's `slo_steps` target sheds the same way (booked under
    /// [`TenantStats::slo_shed`]). Structurally invalid requests (empty
    /// prompt, zero-width beam, degenerate scoring split, out-of-range
    /// tenant id) are API misuse and still panic.
    pub fn submit(&mut self, req: Request<'a>) -> RequestId {
        assert!(!req.prompt.is_empty(), "prompt must be non-empty");
        match req.decode {
            Decode::Beam { width, .. } => assert!(width > 0, "beam width must be positive"),
            Decode::Score { prefix_len } => assert!(
                prefix_len >= 1 && prefix_len < req.prompt.len(),
                "scoring needs a non-empty prefix and continuation"
            ),
            Decode::Greedy { .. } => {}
        }
        if !self.opts.tenants.is_empty() {
            assert!(
                (req.tenant as usize) < self.opts.tenants.len(),
                "tenant id {} out of range: {} classes configured",
                req.tenant,
                self.opts.tenants.len()
            );
        }
        let tenant = req.tenant;
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        self.stats.submitted += 1;
        self.tenant_stats(tenant).submitted += 1;
        lm4db_obs::counter_add("serve/submitted", 1);
        tenant_counter(tenant, "submitted", 1);
        lm4db_obs::instant_for("serve/submit", id);
        lm4db_obs::instant_for_arg("serve/tenant", id, u64::from(tenant));
        let submitted = Instant::now();
        let max_seq_len = self.model.config().max_seq_len;
        if req.prompt.len() > max_seq_len {
            self.stats.failed += 1;
            self.tenant_stats(tenant).failed += 1;
            lm4db_obs::counter_add("serve/failed", 1);
            tenant_counter(tenant, "failed", 1);
            lm4db_obs::instant_for("serve/request_failed", id);
            self.record_latency(id, submitted);
            self.finished.push(Response {
                id,
                outcome: Outcome::Failed {
                    reason: format!(
                        "prompt length {} exceeds max_seq_len {}",
                        req.prompt.len(),
                        max_seq_len
                    ),
                },
                tokens: Vec::new(),
                hyps: Vec::new(),
                score: 0.0,
            });
            return id;
        }
        let over_queue = self.opts.max_queue > 0 && self.queue.len() >= self.opts.max_queue;
        let slo_shed = !over_queue && self.opts.slo_admission && self.predicts_slo_miss(tenant);
        if over_queue || slo_shed {
            self.stats.rejected += 1;
            let t = self.tenant_stats(tenant);
            t.rejected += 1;
            if slo_shed {
                t.slo_shed += 1;
                tenant_counter(tenant, "slo_shed", 1);
            }
            lm4db_obs::counter_add("serve/rejected", 1);
            tenant_counter(tenant, "rejected", 1);
            lm4db_obs::instant_for("serve/shed", id);
            self.record_latency(id, submitted);
            self.finished.push(Response {
                id,
                outcome: Outcome::Rejected,
                tokens: Vec::new(),
                hyps: Vec::new(),
                score: 0.0,
            });
            return id;
        }
        let (steps_left, wall) = match req.deadline {
            Deadline::None => (None, None),
            Deadline::Steps(s) => (Some(s), None),
            Deadline::Wall(t) => (None, Some(t)),
        };
        let serial = self.next_serial;
        self.next_serial += 1;
        let class = self.queue.class_index(tenant);
        self.queue.push(
            class,
            Pending {
                id,
                serial,
                attempt: 0,
                wake: 0,
                req,
                submitted,
                submit_tick: self.ticks,
                steps_left,
                wall,
            },
        );
        id
    }

    /// SLO admission predicate: would a request submitted now for `tenant`
    /// likely retire after the tenant's step target? The backlog the
    /// request waits behind is everything running or quarantined plus
    /// every queued request in its own or a higher tier; each `max_batch`
    /// of backlog costs roughly one service generation of the current
    /// estimate. Deterministic — pure integer arithmetic over queue depths.
    fn predicts_slo_miss(&self, tenant: TenantId) -> bool {
        let class = self.queue.class_index(tenant);
        let slo = self.queue.classes()[class].slo_steps;
        if slo == 0 {
            return false;
        }
        // Alert-coupled tightening: while this tenant's burn-rate alert
        // is firing, act as if the step budget were half its size, so
        // admission sheds earlier and the burn drains. Deterministic —
        // the alert state is itself a pure function of the schedule.
        let slo = match &self.monitor {
            Some(m) if m.is_firing(&self.queue.classes()[class].name) => (slo / 2).max(1),
            _ => slo,
        };
        let tier = self.queue.classes()[class].tier;
        let ahead = self.active.len() + self.retrying.len() + self.queue.queued_at_or_above(tier);
        let generations = (ahead / self.opts.max_batch.max(1)) as u64 + 1;
        generations.saturating_mul(self.est_service_steps) > slo
    }

    /// The mutable per-tenant accounting slot for `tenant`.
    fn tenant_stats(&mut self, tenant: TenantId) -> &mut TenantStats {
        self.stats.tenants.entry(tenant).or_default()
    }

    /// Cancels a queued or active request; it retires with partial results
    /// and [`Outcome::Cancelled`] on the next step.
    pub fn cancel(&mut self, id: RequestId) {
        self.cancelled.insert(id);
    }

    /// A snapshot of the engine counters.
    pub fn stats(&self) -> Stats {
        let mut s = self.stats.clone();
        s.queued = self.queue.len();
        s.active = self.active.len();
        s.retrying = self.retrying.len();
        s.prefix_cache_nodes = self.prefix.nodes();
        for (_, p) in self.queue.iter() {
            s.tenants.entry(p.req.tenant).or_default().queued += 1;
        }
        s
    }

    /// The tenant classes this engine schedules across (one synthetic
    /// default class when [`EngineOptions::tenants`] was empty).
    pub fn tenant_classes(&self) -> &[TenantClass] {
        self.queue.classes()
    }

    /// Responses completed so far, drained in submission order.
    pub fn take_responses(&mut self) -> Vec<Response> {
        let mut out = std::mem::take(&mut self.finished);
        out.sort_by_key(|r| r.id);
        out
    }

    /// Runs one scheduler step; returns whether any work remains.
    ///
    /// With tracing on (`LM4DB_TRACE=1`), each phase is timed as a span
    /// nested under `serve_step` — `admit` (admission + deadline sweep),
    /// `feed` (prefill/decode forward passes across the pool), and
    /// `select` (serial token selection) — and the [`Stats`] counters are
    /// mirrored into the global registry under `serve/*`. At
    /// `LM4DB_TRACE=2` the same spans additionally emit flight-recorder
    /// events, every event between a request's submit and retire carries
    /// its id (feed work and selection run under a request scope), and
    /// `serve/submit`–`serve/admit`–`serve/retire` instants bracket each
    /// request's lifecycle — enough to reconstruct per-request queue-wait
    /// vs. feed vs. select timelines from one trace.
    pub fn step(&mut self) -> bool {
        let _step_timer = lm4db_obs::span("serve_step");
        self.ticks += 1;
        {
            let _t = lm4db_obs::span("admit");
            self.admit();
            self.sweep_cancelled_and_expired();
        }
        if self.active.is_empty() {
            // Idle ticks still sample: the monitor must keep observing
            // after load drains, or a firing alert could never resolve.
            if self.opts.sample_steps > 0 && self.ticks.is_multiple_of(self.opts.sample_steps) {
                self.sample_telemetry();
            }
            return !(self.queue.is_empty() && self.retrying.is_empty());
        }
        {
            let _t = lm4db_obs::span("feed");
            let failures = self.run_work();
            self.handle_failures(failures);
            self.insert_prefixes();
        }
        self.stats.steps += 1;
        let occupancy = self.active.iter().map(|a| a.live.len()).sum::<usize>() as u64;
        self.stats.batch_occupancy_sum += occupancy;
        self.stats.peak_batch = self.stats.peak_batch.max(self.active.len());
        lm4db_obs::counter_add("serve/steps", 1);
        lm4db_obs::counter_add("serve/batch_occupancy_sum", occupancy);
        {
            let _t = lm4db_obs::span("select");
            let mut i = 0;
            while i < self.active.len() {
                let _req = lm4db_obs::request_scope(self.active[i].id);
                let resp = select_request(
                    &mut self.active[i],
                    self.model,
                    self.draft,
                    self.opts.draft_k,
                    &mut self.stats,
                );
                if let Some(resp) = resp {
                    self.retire(i, resp);
                } else {
                    i += 1;
                }
            }
        }
        if lm4db_obs::enabled() {
            lm4db_obs::gauge_set("serve/queued", self.queue.len() as f64);
            lm4db_obs::gauge_set("serve/active", self.active.len() as f64);
            lm4db_obs::gauge_set("serve/peak_batch", self.stats.peak_batch as f64);
            lm4db_obs::gauge_set("serve/prefix_cache_nodes", self.prefix.nodes() as f64);
        }
        if self.opts.sample_steps > 0 && self.ticks.is_multiple_of(self.opts.sample_steps) {
            self.sample_telemetry();
        }
        !(self.active.is_empty() && self.queue.is_empty() && self.retrying.is_empty())
    }

    /// One sampler tick: snapshots step-based engine state into the
    /// global time-series store and feeds the burn-rate monitor. Every
    /// recorded value is derived from the virtual step clock (tick
    /// counts, queue depths, step-latency quantiles) — never wall time —
    /// so the sample stream, and any alert trajectory computed over it,
    /// is a pure function of the request schedule.
    fn sample_telemetry(&mut self) {
        let step = self.ticks;
        self.stats.sampler_ticks += 1;
        lm4db_obs::counter_add("serve/sampler_ticks", 1);
        lm4db_obs::series_record("serve/queued", step, self.queue.len() as u64);
        lm4db_obs::series_record("serve/active", step, self.active.len() as u64);
        lm4db_obs::series_record("serve/retrying", step, self.retrying.len() as u64);
        lm4db_obs::series_record("serve/submitted", step, self.stats.submitted);
        lm4db_obs::series_record("serve/completed", step, self.stats.completed);
        lm4db_obs::series_record("serve/rejected", step, self.stats.rejected);
        lm4db_obs::series_record("serve/expired", step, self.stats.expired);
        lm4db_obs::series_record("serve/failed", step, self.stats.failed);
        lm4db_obs::series_record("serve/decoded_tokens", step, self.stats.decoded_tokens);

        let n_classes = self.queue.classes().len();
        for class in 0..n_classes {
            let tenant = class as TenantId;
            let (slo_steps, name) = {
                let c = &self.queue.classes()[class];
                (c.slo_steps, c.name.clone())
            };
            let (completed, met, missed, shed, p50, p99) = match self.stats.tenants.get(&tenant) {
                Some(t) => (
                    t.completed,
                    t.slo_met,
                    t.slo_missed,
                    t.slo_shed,
                    t.latency_steps.quantile(0.50),
                    t.latency_steps.quantile(0.99),
                ),
                None => (0, 0, 0, 0, 0, 0),
            };
            lm4db_obs::series_record(&format!("serve/tenant/{tenant}/completed"), step, completed);
            lm4db_obs::series_record(&format!("serve/tenant/{tenant}/slo_missed"), step, missed);
            lm4db_obs::series_record(&format!("serve/tenant/{tenant}/slo_shed"), step, shed);
            lm4db_obs::series_record(
                &format!("serve/tenant/{tenant}/latency_steps_p50"),
                step,
                p50,
            );
            lm4db_obs::series_record(
                &format!("serve/tenant/{tenant}/latency_steps_p99"),
                step,
                p99,
            );
            if slo_steps == 0 {
                continue; // best-effort tenants have no burn to monitor
            }
            let Some(monitor) = self.monitor.as_mut() else {
                continue;
            };
            // Burn inputs: bad = SLO-relevant failures (deadline overruns
            // plus admission sheds), total = every SLO-tracked outcome.
            let bad = missed + shed;
            let total = met + missed + shed;
            for tr in monitor.observe(&name, step, bad, total) {
                match tr.to {
                    lm4db_obs::AlertState::Pending => {
                        self.stats.slo_pending += 1;
                        lm4db_obs::counter_add("slo/pending", 1);
                        lm4db_obs::instant_arg("slo/pending", u64::from(tenant));
                    }
                    lm4db_obs::AlertState::Firing => {
                        self.stats.slo_firing += 1;
                        lm4db_obs::counter_add("slo/firing", 1);
                        lm4db_obs::instant_arg("slo/firing", u64::from(tenant));
                    }
                    lm4db_obs::AlertState::Resolved => {
                        self.stats.slo_resolved += 1;
                        lm4db_obs::counter_add("slo/resolved", 1);
                        lm4db_obs::instant_arg("slo/resolved", u64::from(tenant));
                    }
                    lm4db_obs::AlertState::Inactive => {
                        lm4db_obs::instant_arg("slo/inactive", u64::from(tenant));
                    }
                }
                self.transitions.push(tr);
            }
        }
    }

    /// Every burn-rate alert transition so far, in observation order.
    /// Empty unless both [`EngineOptions::sample_steps`] and
    /// [`EngineOptions::slo_alerts`] are configured. Transitions carry
    /// the scheduler step they happened at, so two replays of the same
    /// schedule can be asserted to alert identically.
    pub fn alert_transitions(&self) -> &[lm4db_obs::AlertTransition] {
        &self.transitions
    }

    /// Current burn-rate alert state for `tenant`
    /// ([`lm4db_obs::AlertState::Inactive`] when alerting is off).
    pub fn alert_state(&self, tenant: TenantId) -> lm4db_obs::AlertState {
        match &self.monitor {
            Some(m) => {
                let class = self.queue.class_index(tenant);
                m.state(&self.queue.classes()[class].name)
            }
            None => lm4db_obs::AlertState::Inactive,
        }
    }

    /// Steps until idle and returns all completed responses in submission
    /// order.
    pub fn run(&mut self) -> Vec<Response> {
        while self.step() {}
        self.take_responses()
    }

    /// Submits every request, runs to completion, and returns their
    /// responses in the given order. Responses to other outstanding
    /// requests stay buffered for [`Engine::take_responses`].
    pub fn generate_batch(&mut self, reqs: Vec<Request<'a>>) -> Vec<Response> {
        let ids: Vec<RequestId> = reqs.into_iter().map(|r| self.submit(r)).collect();
        let idset: HashSet<RequestId> = ids.iter().copied().collect();
        let mut mine = Vec::new();
        for r in self.run() {
            if idset.contains(&r.id) {
                mine.push(r);
            } else {
                self.finished.push(r);
            }
        }
        mine
    }

    /// Convenience: greedy-decode one prompt to completion. Equivalent to
    /// [`lm4db_transformer::greedy_cached`].
    pub fn greedy(&mut self, prompt: &[usize], max_new: usize, stop: usize) -> Vec<usize> {
        let id = self.submit(Request::greedy(prompt.to_vec(), max_new, stop));
        self.run_for(id).tokens
    }

    /// Convenience: beam-search one prompt to completion, with an optional
    /// constraint. Hypotheses are ordered exactly like
    /// [`lm4db_transformer::beam`] over a KV-cached session.
    pub fn beam(
        &mut self,
        prompt: &[usize],
        width: usize,
        max_new: usize,
        stop: usize,
        constraint: Option<&'a dyn Constraint>,
    ) -> Vec<Hypothesis> {
        let mut req = Request::beam(prompt.to_vec(), width, max_new, stop);
        if let Some(c) = constraint {
            req = req.with_constraint(c);
        }
        let id = self.submit(req);
        self.run_for(id).hyps
    }

    /// Convenience: beam search under an incremental grammar mask instead
    /// of a per-token [`Constraint`] oracle — same results whenever the
    /// two encode the same veto set, but the mask is materialized once per
    /// expansion step rather than probed once per vocabulary entry.
    pub fn beam_masked(
        &mut self,
        prompt: &[usize],
        width: usize,
        max_new: usize,
        stop: usize,
        mask: Option<&'a dyn TokenMask>,
    ) -> Vec<Hypothesis> {
        let mut req = Request::beam(prompt.to_vec(), width, max_new, stop);
        if let Some(m) = mask {
            req = req.with_mask(m);
        }
        let id = self.submit(req);
        self.run_for(id).hyps
    }

    /// Convenience: total log-probability of `continuation` after `prefix`.
    pub fn score(&mut self, prefix: &[usize], continuation: &[usize]) -> f32 {
        assert!(!continuation.is_empty(), "continuation must be non-empty");
        let id = self.submit(Request::score(prefix, continuation));
        self.run_for(id).score
    }

    /// Drives the engine until `id` completes; other responses completed
    /// along the way stay buffered.
    fn run_for(&mut self, id: RequestId) -> Response {
        let mut target = None;
        for r in self.run() {
            if r.id == id {
                target = Some(r);
            } else {
                self.finished.push(r);
            }
        }
        target.expect("submitted request always completes")
    }

    /// Moves queued requests into free batch slots. Quarantined requests
    /// whose backoff has elapsed re-admit first (oldest wake, then id), so
    /// a retry never starves behind an unbounded stream of fresh arrivals;
    /// fresh requests then fill remaining slots in queue order — FIFO with
    /// a single class, tier-then-weighted-fair across tenant classes.
    fn admit(&mut self) {
        while self.active.len() < self.opts.max_batch {
            let retry_idx = self
                .retrying
                .iter()
                .enumerate()
                .filter(|(_, p)| p.wake <= self.ticks)
                .min_by_key(|(_, p)| (p.wake, p.id))
                .map(|(i, _)| i);
            let pending = match retry_idx {
                Some(i) => self.retrying.remove(i),
                None => match self.queue.pop_next() {
                    Some((_, p)) => p,
                    None => break,
                },
            };
            if self.cancelled.remove(&pending.id) {
                self.stats.cancelled += 1;
                self.tenant_stats(pending.req.tenant).cancelled += 1;
                self.record_latency(pending.id, pending.submitted);
                lm4db_obs::counter_add("serve/cancelled", 1);
                tenant_counter(pending.req.tenant, "cancelled", 1);
                self.finished.push(Response {
                    id: pending.id,
                    outcome: Outcome::Cancelled,
                    tokens: Vec::new(),
                    hyps: Vec::new(),
                    score: 0.0,
                });
                continue;
            }
            if pending.attempt == 0 {
                let wait_ns = pending.submitted.elapsed().as_nanos() as u64;
                self.stats.queue_wait.record(wait_ns);
                lm4db_obs::record_duration_ns("serve/queue_wait", wait_ns);
                let wait_steps = self.ticks.saturating_sub(pending.submit_tick);
                let t = self.tenant_stats(pending.req.tenant);
                t.admitted += 1;
                t.queue_wait_steps.record(wait_steps);
                tenant_counter(pending.req.tenant, "admitted", 1);
            }
            lm4db_obs::instant_for("serve/admit", pending.id);
            let Pending {
                id,
                serial,
                attempt,
                wake: _,
                req,
                submitted,
                submit_tick,
                steps_left,
                wall,
            } = pending;
            let target = match req.decode {
                Decode::Score { prefix_len } => prefix_len,
                _ => req.prompt.len(),
            };
            let mut cache = KvCache::new(self.model);
            // Always leave at least the last prefill token to feed live, so
            // the sequence has logits to select from.
            let limit = target.saturating_sub(1);
            let restored = self
                .prefix
                .restore_into(self.model, &req.prompt[..limit], &mut cache);
            self.stats.cached_prefix_tokens += restored as u64;
            lm4db_obs::counter_add("serve/cached_prefix_tokens", restored as u64);
            let prompt_len = req.prompt.len();
            self.active.push(Active {
                id,
                serial,
                attempt,
                submitted,
                tenant: req.tenant,
                submit_tick,
                admit_tick: self.ticks,
                prompt_len,
                decode: req.decode,
                constraint: req.constraint,
                mask: req.mask,
                steps_left,
                wall,
                live: vec![Seq {
                    cache,
                    ids: req.prompt,
                    sched: target,
                    log_prob: 0.0,
                    spec: 0,
                    step_logits: Vec::new(),
                }],
                done: Vec::new(),
                rounds: 0,
                out: Vec::new(),
                score: 0.0,
                score_pos: target,
                inserted: false,
            });
        }
    }

    /// Retires cancelled and deadline-expired active requests with partial
    /// results, and ticks step deadlines. Quarantined requests are swept
    /// too: cancellation and wall deadlines apply while backing off, but
    /// step deadlines do not tick during quarantine (the request is not
    /// consuming scheduler capacity).
    fn sweep_cancelled_and_expired(&mut self) {
        let mut i = 0;
        while i < self.retrying.len() {
            let p = &self.retrying[i];
            let cancel = self.cancelled.remove(&p.id);
            let expired = !cancel && p.wall.is_some_and(|t| Instant::now() >= t);
            if cancel || expired {
                let p = self.retrying.remove(i);
                let outcome = if cancel {
                    self.stats.cancelled += 1;
                    self.tenant_stats(p.req.tenant).cancelled += 1;
                    lm4db_obs::counter_add("serve/cancelled", 1);
                    tenant_counter(p.req.tenant, "cancelled", 1);
                    Outcome::Cancelled
                } else {
                    self.stats.expired += 1;
                    self.tenant_stats(p.req.tenant).expired += 1;
                    lm4db_obs::counter_add("serve/expired", 1);
                    tenant_counter(p.req.tenant, "expired", 1);
                    Outcome::DeadlineExpired
                };
                // Quarantined requests were admitted at least once, so they
                // count in the tenant's step-latency distribution.
                let lat = self.ticks.saturating_sub(p.submit_tick);
                self.tenant_stats(p.req.tenant).latency_steps.record(lat);
                self.record_latency(p.id, p.submitted);
                self.finished.push(Response {
                    id: p.id,
                    outcome,
                    tokens: Vec::new(),
                    hyps: Vec::new(),
                    score: 0.0,
                });
                continue;
            }
            i += 1;
        }
        let mut i = 0;
        while i < self.active.len() {
            let id = self.active[i].id;
            let cancel = self.cancelled.remove(&id);
            let act = &mut self.active[i];
            let expired = !cancel
                && (matches!(act.steps_left, Some(0))
                    || act.wall.is_some_and(|t| Instant::now() >= t));
            if cancel || expired {
                let outcome = if cancel {
                    Outcome::Cancelled
                } else {
                    Outcome::DeadlineExpired
                };
                let resp = response_for(&mut self.active[i], outcome);
                self.retire(i, resp);
                continue;
            }
            if let Some(s) = &mut act.steps_left {
                *s -= 1;
            }
            i += 1;
        }
    }

    /// Feeds every live sequence's pending tokens through the model, with
    /// sequences fanned out across the worker pool. Each sequence mutates
    /// only its own cache, and the per-sequence arithmetic is itself
    /// bit-identical at any thread count, so the result does not depend on
    /// batch composition or parallelism.
    ///
    /// Runs through [`lm4db_tensor::try_parallel_tasks_mut`], so a panic
    /// inside one sequence's forward pass poisons only that sequence;
    /// `(request id, panic message)` pairs for the poisoned requests are
    /// returned for [`Engine::handle_failures`]. Token accounting happens
    /// *after* the pass from each cache's actual growth, so a partially
    /// fed, poisoned sequence is counted exactly.
    fn run_work(&mut self) -> Vec<(RequestId, String)> {
        /// One sequence's pending feed, with the chaos-injection salt
        /// precomputed so a retry (different `attempt`) and a later feed
        /// step (different `fed`) re-roll the fault decision.
        struct Work<'s> {
            id: RequestId,
            salt: u64,
            fed: usize,
            prompt_len: usize,
            /// Speculative chunk: keep per-position logits for the
            /// verify walk in [`select_request`].
            spec: bool,
            seq: &'s mut Seq,
            toks: Vec<usize>,
        }
        let model = self.model;
        let quant = self.quant.as_ref();
        let mut works: Vec<Work<'_>> = Vec::new();
        for act in self.active.iter_mut() {
            let id = act.id;
            let prompt_len = act.prompt_len;
            let base = act.serial ^ ((act.attempt as u64) << 40);
            for seq in act.live.iter_mut() {
                let fed = seq.cache.len();
                if seq.sched > fed {
                    let toks = seq.ids[fed..seq.sched].to_vec();
                    let spec = seq.spec > 0;
                    works.push(Work {
                        id,
                        salt: base ^ ((fed as u64) << 20),
                        fed,
                        prompt_len,
                        spec,
                        seq,
                        toks,
                    });
                }
            }
        }
        let mut poisoned = Vec::new();
        if !works.is_empty() {
            let failures = lm4db_tensor::try_parallel_tasks_mut(&mut works, |_, w| {
                // Attribute everything feed_all records — down to the
                // kernel leaves on this pool thread — to the request.
                let _req = lm4db_obs::request_scope(w.id);
                lm4db_fault::point("serve/feed", w.salt);
                if w.spec {
                    // Speculative chunk: one batched forward over the
                    // fresh token plus its drafts, keeping every
                    // position's logits for the verify walk.
                    w.seq.step_logits = match quant {
                        Some(q) => w.seq.cache.feed_many_quant(model, q, &w.toks),
                        None => w.seq.cache.feed_many(model, &w.toks),
                    };
                } else {
                    match quant {
                        Some(q) => w.seq.cache.feed_all_quant(model, q, &w.toks),
                        None => w.seq.cache.feed_all(model, &w.toks),
                    };
                }
            });
            for f in failures {
                poisoned.push((works[f.index].id, f.message));
            }
        }
        let mut prefill = 0u64;
        let mut decoded = 0u64;
        for w in &works {
            let grown = w.seq.cache.len().saturating_sub(w.fed);
            let pf = w.prompt_len.saturating_sub(w.fed).min(grown);
            prefill += pf as u64;
            decoded += (grown - pf) as u64;
        }
        self.stats.prefill_tokens += prefill;
        self.stats.decoded_tokens += decoded;
        lm4db_obs::counter_add("serve/prefill_tokens", prefill);
        lm4db_obs::counter_add("serve/decoded_tokens", decoded);
        poisoned
    }

    /// Pulls every poisoned request out of the batch. A request with retry
    /// budget left is quarantined: its half-written KV state is discarded
    /// and the original prompt is re-queued for a from-scratch attempt
    /// after a [`backoff_steps`] wait. A request out of budget retires
    /// with [`Outcome::Failed`] carrying the panic message.
    fn handle_failures(&mut self, failures: Vec<(RequestId, String)>) {
        for (id, message) in failures {
            // A beam request can poison several sequences in one pass;
            // the first failure already removed it.
            let Some(i) = self.active.iter().position(|a| a.id == id) else {
                continue;
            };
            let act = self.active.remove(i);
            if act.attempt < self.opts.max_retries {
                self.stats.retries += 1;
                self.tenant_stats(act.tenant).retries += 1;
                lm4db_obs::counter_add("serve/retries", 1);
                tenant_counter(act.tenant, "retries", 1);
                lm4db_obs::instant_for("serve/retry", id);
                let prompt = act.live[0].ids[..act.prompt_len].to_vec();
                self.retrying.push(Pending {
                    id,
                    serial: act.serial,
                    attempt: act.attempt + 1,
                    wake: self.ticks + backoff_steps(self.opts.retry_backoff_steps, act.attempt),
                    req: Request {
                        prompt,
                        decode: act.decode,
                        constraint: act.constraint,
                        mask: act.mask,
                        deadline: Deadline::None, // resolved at submit; unused here
                        tenant: act.tenant,
                    },
                    submitted: act.submitted,
                    submit_tick: act.submit_tick,
                    steps_left: act.steps_left,
                    wall: act.wall,
                });
            } else {
                self.stats.failed += 1;
                let lat = self.ticks.saturating_sub(act.submit_tick);
                let t = self.tenant_stats(act.tenant);
                t.failed += 1;
                t.latency_steps.record(lat);
                lm4db_obs::counter_add("serve/failed", 1);
                tenant_counter(act.tenant, "failed", 1);
                lm4db_obs::instant_for("serve/request_failed", id);
                self.record_latency(id, act.submitted);
                let mut act = act;
                let resp = response_for(&mut act, Outcome::Failed { reason: message });
                self.finished.push(resp);
            }
        }
    }

    /// After a request's prefill completes, shares its prompt positions
    /// through the prefix trie so later requests with the same header skip
    /// recomputing them.
    fn insert_prefixes(&mut self) {
        if !self.prefix.enabled() {
            return;
        }
        for act in self.active.iter_mut() {
            if act.inserted {
                continue;
            }
            let target = act.prefill_target();
            let Some(seq) = act.live.first() else {
                continue;
            };
            if seq.cache.len() >= target {
                self.prefix.insert(self.model, &seq.cache, target);
                act.inserted = true;
            }
        }
    }

    /// Records a retired request's end-to-end latency into the stats
    /// histogram, the registry timer, and the flight recorder.
    fn record_latency(&mut self, id: RequestId, submitted: Instant) {
        let ns = submitted.elapsed().as_nanos() as u64;
        self.stats.latency.record(ns);
        lm4db_obs::record_duration_ns("serve/latency", ns);
        lm4db_obs::instant_for("serve/retire", id);
    }

    /// Books a finished response and frees its batch slot.
    fn retire(&mut self, i: usize, resp: Response) {
        self.record_latency(self.active[i].id, self.active[i].submitted);
        let tenant = self.active[i].tenant;
        let lat_steps = self.ticks.saturating_sub(self.active[i].submit_tick);
        let service = self.ticks.saturating_sub(self.active[i].admit_tick).max(1);
        match &resp.outcome {
            Outcome::Finished => {
                self.stats.completed += 1;
                lm4db_obs::counter_add("serve/completed", 1);
                tenant_counter(tenant, "completed", 1);
                self.tenant_stats(tenant).completed += 1;
                // Feed the SLO estimator: a deterministic integer EWMA of
                // admit→retire service steps (weight 1/4 on the newest
                // observation, floor 1 so the estimate never collapses).
                self.est_service_steps = ((3 * self.est_service_steps + service) / 4).max(1);
                let slo = self.queue.classes()[self.queue.class_index(tenant)].slo_steps;
                if slo > 0 {
                    let t = self.tenant_stats(tenant);
                    if lat_steps <= slo {
                        t.slo_met += 1;
                        tenant_counter(tenant, "slo_met", 1);
                    } else {
                        t.slo_missed += 1;
                        tenant_counter(tenant, "slo_missed", 1);
                    }
                }
            }
            Outcome::Cancelled => {
                self.stats.cancelled += 1;
                self.tenant_stats(tenant).cancelled += 1;
                lm4db_obs::counter_add("serve/cancelled", 1);
                tenant_counter(tenant, "cancelled", 1);
            }
            Outcome::DeadlineExpired => {
                self.stats.expired += 1;
                self.tenant_stats(tenant).expired += 1;
                lm4db_obs::counter_add("serve/expired", 1);
                tenant_counter(tenant, "expired", 1);
            }
            // Failed retires through `handle_failures` (the request is
            // already out of the batch there) and Rejected through
            // `submit` (never admitted) — neither reaches a batch slot.
            Outcome::Failed { .. } | Outcome::Rejected => {
                unreachable!("{:?} never retires from the batch", resp.outcome)
            }
        }
        self.tenant_stats(tenant).latency_steps.record(lat_steps);
        self.finished.push(resp);
        self.active.remove(i);
    }
}

/// `log p(idx)` under a softmax over `logits` — the same float operations
/// as `lm4db_lm::classify::log_softmax_at`.
fn log_softmax_at(logits: &[f32], idx: usize) -> f32 {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let logsum = logits.iter().map(|&x| (x - max).exp()).sum::<f32>().ln() + max;
    logits[idx] - logsum
}

/// Builds the final response for `act` with whatever it has produced.
fn response_for(act: &mut Active<'_>, outcome: Outcome) -> Response {
    match act.decode {
        Decode::Greedy { .. } => Response {
            id: act.id,
            outcome,
            tokens: std::mem::take(&mut act.out),
            hyps: Vec::new(),
            score: 0.0,
        },
        Decode::Beam { .. } => {
            let hyps = finish_hyps(act);
            let tokens = hyps
                .first()
                .map(|h| h.ids[act.prompt_len.min(h.ids.len())..].to_vec())
                .unwrap_or_default();
            Response {
                id: act.id,
                outcome,
                tokens,
                hyps,
                score: 0.0,
            }
        }
        Decode::Score { .. } => Response {
            id: act.id,
            outcome,
            tokens: Vec::new(),
            hyps: Vec::new(),
            score: act.score,
        },
    }
}

/// Merges live and finished hypotheses with the exact ranking of
/// [`lm4db_transformer::beam`]: finished first, then by length-normalized
/// log-probability, truncated to the beam width.
fn finish_hyps(act: &mut Active<'_>) -> Vec<Hypothesis> {
    let mut done = std::mem::take(&mut act.done);
    done.extend(act.live.drain(..).map(|s| Hypothesis {
        ids: s.ids,
        log_prob: s.log_prob,
        finished: false,
    }));
    let prompt_len = act.prompt_len;
    let norm = |h: &Hypothesis| {
        let gen_len = (h.ids.len() - prompt_len + usize::from(h.finished)).max(1);
        h.log_prob / gen_len as f32
    };
    done.sort_by(|a, b| {
        b.finished
            .cmp(&a.finished)
            .then_with(|| norm(b).total_cmp(&norm(a)))
    });
    if let Decode::Beam { width, .. } = act.decode {
        done.truncate(width);
    }
    done
}

/// Applies a request's decoding restriction to `logits` in place and
/// returns how many tokens remain allowed. The engine-native [`TokenMask`]
/// wins over a per-token [`Constraint`] oracle when both are attached;
/// [`apply_token_mask`] and [`apply_constraint`] perform the same float
/// write (`NEG_INFINITY` into vetoed entries, ascending token order), so
/// the two forms decode byte-identically whenever they encode the same
/// veto set.
fn apply_decode_mask(
    logits: &mut [f32],
    prefix: &[usize],
    constraint: Option<&dyn Constraint>,
    mask: Option<&dyn TokenMask>,
) -> usize {
    if let Some(m) = mask {
        let mut allow = vec![false; logits.len()];
        m.fill(prefix, &mut allow);
        apply_token_mask(logits, &allow)
    } else if let Some(c) = constraint {
        apply_constraint(logits, prefix, c)
    } else {
        logits.len()
    }
}

/// One selection round for one request: consume the freshly computed
/// logits, choose continuations, and either schedule more work (`None`) or
/// finish (`Some(response)`). Runs serially — constraints need not be
/// thread-safe, and the choice never depends on other requests.
///
/// For greedy requests this is the speculative **verify walk** (DESIGN.md
/// §5i). A non-speculative request (`draft_k == 0`, the default) walks a
/// single position and selects exactly like `generate::greedy`. A
/// speculative request arrives here with `seq.spec` unverified draft
/// tokens at the tail of `seq.ids`, whose per-position logits the feed
/// phase computed in one batched forward; the walk accepts the longest
/// prefix of drafts matching the transformer's own (masked) argmax at
/// each position, then discards the rest, rolls the KV cache back to the
/// verified prefix, emits the transformer's selection for the first
/// disagreeing position, and drafts a fresh lookahead. Every emitted
/// token is the transformer's argmax over its own logits at a verified
/// prefix, so output is byte-identical to non-speculative decoding.
fn select_request(
    act: &mut Active<'_>,
    model: &GptModel,
    draft: Option<&dyn DraftModel>,
    draft_k: usize,
    stats: &mut Stats,
) -> Option<Response> {
    let max_seq_len = model.config().max_seq_len;
    match act.decode {
        Decode::Greedy { max_new, stop } => {
            if act.out.len() >= max_new {
                return Some(response_for(act, Outcome::Finished));
            }
            let (spec, chunk_logits) = {
                let seq = &mut act.live[0];
                let spec = seq.spec;
                seq.spec = 0;
                (spec, std::mem::take(&mut seq.step_logits))
            };
            // `ids[..vlen]` is the verified prefix; `ids[vstart..]` are
            // the unverified drafts. `chunk_logits[vlen - vstart]` is the
            // model's output after `ids[vlen - 1]` — simultaneously the
            // selection logits at the cursor and the `last_logits` to
            // restore if the cache rolls back to `vlen`.
            let vstart = act.live[0].ids.len() - spec;
            let mut vlen = vstart;
            loop {
                let li = vlen - vstart;
                let seq = &mut act.live[0];
                let raw: Vec<f32> = match chunk_logits.get(li) {
                    Some(row) => row.clone(),
                    None => seq.cache.last_logits().to_vec(),
                };
                let mut logits = raw.clone();
                let allowed =
                    apply_decode_mask(&mut logits, &seq.ids[..vlen], act.constraint, act.mask);
                if allowed == 0 {
                    // Dead end: `generate::greedy` stops and returns the
                    // output so far.
                    return Some(response_for(act, Outcome::Finished));
                }
                let tok = argmax(&logits);
                if tok == stop || vlen >= max_seq_len {
                    return Some(response_for(act, Outcome::Finished));
                }
                if li < spec && seq.ids[vlen] == tok {
                    // The draft agrees with the transformer's own choice:
                    // accept it and keep walking the chunk.
                    vlen += 1;
                    act.out.push(tok);
                    stats.draft_accepted_tokens += 1;
                    lm4db_obs::counter_add("serve/draft_accepted_tokens", 1);
                    if act.out.len() >= max_new {
                        return Some(response_for(act, Outcome::Finished));
                    }
                    continue;
                }
                // First disagreement (or the chunk is exhausted): discard
                // the unverified tail, restore the KV cache to the
                // verified prefix, and emit the transformer's selection —
                // exactly what non-speculative greedy chooses here.
                seq.ids.truncate(vlen);
                if seq.cache.len() > vlen {
                    seq.cache.rollback(model, vlen, raw);
                }
                seq.ids.push(tok);
                act.out.push(tok);
                if act.out.len() >= max_new {
                    return Some(response_for(act, Outcome::Finished));
                }
                // Draft the next lookahead with the cheap model; the next
                // scheduler step verifies the fresh token plus all drafts
                // in one batched forward. Drafts honor the grammar mask
                // too — a masked-out or stop proposal ends the lookahead
                // (stop is never scheduled for feeding).
                let mut drafted = 0;
                if let (Some(dm), true) = (draft, draft_k > 0) {
                    let budget = draft_k
                        .min(max_new - act.out.len())
                        .min(max_seq_len.saturating_sub(seq.ids.len()));
                    while drafted < budget {
                        let mut dl = dm.draft_logits(&seq.ids);
                        let allowed =
                            apply_decode_mask(&mut dl, &seq.ids, act.constraint, act.mask);
                        if allowed == 0 {
                            break;
                        }
                        let dt = argmax(&dl);
                        if dt == stop {
                            break;
                        }
                        seq.ids.push(dt);
                        drafted += 1;
                    }
                }
                seq.spec = drafted;
                seq.sched = seq.ids.len();
                if drafted > 0 {
                    stats.drafted_tokens += drafted as u64;
                    lm4db_obs::counter_add("serve/drafted_tokens", drafted as u64);
                }
                return None;
            }
        }
        Decode::Beam {
            width,
            max_new,
            stop,
        } => {
            if act.rounds >= max_new {
                return Some(response_for(act, Outcome::Finished));
            }
            // Expansion candidates (parent, token, log-prob), built in the
            // same order `generate::beam` builds its candidate list so the
            // stable sort below ties identically.
            let mut specs: Vec<(usize, usize, f32)> = Vec::new();
            for (si, seq) in act.live.iter().enumerate() {
                let mut logits = seq.cache.last_logits().to_vec();
                let allowed = apply_decode_mask(&mut logits, &seq.ids, act.constraint, act.mask);
                if allowed == 0 {
                    continue; // dead end — drop this beam
                }
                let log_probs = log_softmax(&logits);
                let mut order: Vec<usize> = (0..log_probs.len())
                    .filter(|&t| log_probs[t].is_finite())
                    .collect();
                order.sort_by(|&a, &b| log_probs[b].total_cmp(&log_probs[a]));
                for &tok in order.iter().take(width) {
                    let lp = seq.log_prob + log_probs[tok];
                    if tok == stop {
                        act.done.push(Hypothesis {
                            ids: seq.ids.clone(),
                            log_prob: lp,
                            finished: true,
                        });
                    } else {
                        specs.push((si, tok, lp));
                    }
                }
            }
            if specs.is_empty() {
                return Some(response_for(act, Outcome::Finished));
            }
            specs.sort_by(|a, b| b.2.total_cmp(&a.2));
            specs.truncate(width);
            let mut new_live = Vec::with_capacity(specs.len());
            for (si, tok, lp) in specs {
                let parent = &act.live[si];
                let mut ids = parent.ids.clone();
                ids.push(tok);
                if parent.ids.len() >= max_seq_len {
                    // The engine never slides the context window; a beam at
                    // the length limit parks as an unfinished hypothesis.
                    act.done.push(Hypothesis {
                        ids,
                        log_prob: lp,
                        finished: false,
                    });
                    continue;
                }
                let sched = ids.len();
                new_live.push(Seq {
                    cache: parent.cache.clone(),
                    ids,
                    sched,
                    log_prob: lp,
                    spec: 0,
                    step_logits: Vec::new(),
                });
            }
            act.live = new_live;
            act.rounds += 1;
            if act.done.len() >= width || act.rounds >= max_new || act.live.is_empty() {
                return Some(response_for(act, Outcome::Finished));
            }
            None
        }
        Decode::Score { .. } => {
            let seq = &mut act.live[0];
            let tok = seq.ids[act.score_pos];
            act.score += log_softmax_at(seq.cache.last_logits(), tok);
            act.score_pos += 1;
            if act.score_pos >= seq.ids.len() {
                return Some(response_for(act, Outcome::Finished));
            }
            seq.sched = act.score_pos;
            None
        }
    }
}

/// Deterministic draft models for the speculative-decoding tests: a
/// pattern-following draft that agrees with the trained test model often
/// (exercising the accept path) and a constant draft that almost never
/// does (exercising rollback).
#[cfg(test)]
mod testdraft {
    use lm4db_transformer::DraftModel;

    /// Proposes `last token + 1` — near-perfect on the arithmetic
    /// sequences the test model is trained on.
    pub struct IncDraft {
        pub vocab: usize,
    }

    impl DraftModel for IncDraft {
        fn vocab_size(&self) -> usize {
            self.vocab
        }

        fn draft_logits(&self, prefix: &[usize]) -> Vec<f32> {
            let mut l = vec![0.0f32; self.vocab];
            let next = prefix.last().map_or(0, |&t| (t + 1) % self.vocab);
            l[next] = 1.0;
            l
        }
    }

    /// Always proposes the same token — an adversarial draft whose
    /// proposals the verify walk must reject without corrupting output.
    pub struct ConstDraft {
        pub vocab: usize,
        pub tok: usize,
    }

    impl DraftModel for ConstDraft {
        fn vocab_size(&self) -> usize {
            self.vocab
        }

        fn draft_logits(&self, _prefix: &[usize]) -> Vec<f32> {
            let mut l = vec![0.0f32; self.vocab];
            l[self.tok] = 1.0;
            l
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testdraft::{ConstDraft, IncDraft};
    use super::*;
    use lm4db_tokenize::{BOS, EOS};
    use lm4db_transformer::{
        beam as beam_single, greedy_cached, ConstraintMask, IncrementalSession, ModelConfig,
        Unconstrained,
    };

    fn model() -> GptModel {
        GptModel::new(ModelConfig::test(), 7)
    }

    /// A model trained enough that its next-token distributions are sharp.
    fn trained_model() -> GptModel {
        let mut m = model();
        let mut opt = m.optimizer(3e-3);
        let batch = vec![
            vec![BOS, 10, 11, 12, 13, 14, EOS],
            vec![BOS, 20, 21, 22, 23, 24, EOS],
        ];
        for _ in 0..30 {
            m.train_step(&batch, &mut opt);
        }
        m
    }

    fn prompts() -> Vec<Vec<usize>> {
        vec![
            vec![BOS, 10],
            vec![BOS, 10, 11],
            vec![BOS, 20],
            vec![BOS, 20, 21, 22],
            vec![BOS, 10, 11, 12],
            vec![BOS, 20, 21],
            vec![BOS, 10, 11, 12, 13],
            vec![BOS, 20, 21, 22, 23],
        ]
    }

    #[test]
    fn engine_greedy_matches_greedy_cached() {
        let m = trained_model();
        for p in prompts() {
            let want = greedy_cached(&m, &p, 8, EOS);
            let mut engine = Engine::new(&m);
            assert_eq!(engine.greedy(&p, 8, EOS), want, "prompt {p:?}");
        }
    }

    #[test]
    fn quantized_engine_is_independent_of_batch_size_and_prefix_cache() {
        let m = trained_model();
        let ps = prompts();
        let mut reference: Option<Vec<Vec<usize>>> = None;
        for max_batch in [1, 8] {
            for cache_tokens in [0, 4096] {
                let mut engine = Engine::with_options(
                    &m,
                    EngineOptions {
                        max_batch,
                        prefix_cache_tokens: cache_tokens,
                        quantized: true,
                        ..EngineOptions::default()
                    },
                );
                assert!(engine.is_quantized());
                assert!(engine.quantized_weight_bytes() > 0);
                let reqs = ps
                    .iter()
                    .map(|p| Request::greedy(p.clone(), 8, EOS))
                    .collect();
                let out: Vec<Vec<usize>> = engine
                    .generate_batch(reqs)
                    .into_iter()
                    .map(|r| r.tokens)
                    .collect();
                match &reference {
                    None => reference = Some(out),
                    Some(want) => assert_eq!(
                        &out, want,
                        "quantized batch {max_batch} / cache {cache_tokens} diverged"
                    ),
                }
            }
        }
    }

    #[test]
    fn quantized_engine_matches_direct_quantized_decode() {
        // The engine's quantized serving path must be the same function as
        // feeding the quantized KV cache directly.
        let m = trained_model();
        let q = lm4db_transformer::QuantizedGpt::from_model(&m);
        for p in prompts() {
            let mut cache = lm4db_transformer::KvCache::new(&m);
            let mut logits = cache.feed_all_quant(&m, &q, &p).to_vec();
            let mut want = Vec::new();
            for _ in 0..8 {
                let tok = logits
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap();
                if tok == EOS {
                    break;
                }
                want.push(tok);
                logits = cache.feed_quant(&m, &q, tok).to_vec();
            }
            let mut engine = Engine::with_options(
                &m,
                EngineOptions {
                    quantized: true,
                    ..EngineOptions::default()
                },
            );
            assert_eq!(engine.greedy(&p, 8, EOS), want, "prompt {p:?}");
        }
    }

    #[test]
    fn engine_output_is_independent_of_batch_size_and_prefix_cache() {
        let m = trained_model();
        let ps = prompts();
        let mut reference: Option<Vec<Vec<usize>>> = None;
        for max_batch in [1, 3, 8] {
            for cache_tokens in [0, 4096] {
                let mut engine = Engine::with_options(
                    &m,
                    EngineOptions {
                        max_batch,
                        prefix_cache_tokens: cache_tokens,
                        ..EngineOptions::default()
                    },
                );
                let reqs = ps
                    .iter()
                    .map(|p| Request::greedy(p.clone(), 8, EOS))
                    .collect();
                let out: Vec<Vec<usize>> = engine
                    .generate_batch(reqs)
                    .into_iter()
                    .map(|r| r.tokens)
                    .collect();
                match &reference {
                    None => reference = Some(out),
                    Some(want) => assert_eq!(
                        &out, want,
                        "batch {max_batch} / cache {cache_tokens} diverged"
                    ),
                }
            }
        }
    }

    #[test]
    fn engine_beam_matches_single_request_beam() {
        let m = trained_model();
        for p in prompts().into_iter().take(4) {
            // The reference is the seed beam over a KV-cached session —
            // float-identical to the engine's compute path.
            let mut session = IncrementalSession::new(&m);
            let want = beam_single(&mut session, &p, 3, 6, EOS, &Unconstrained);
            let mut engine = Engine::new(&m);
            let got = engine.beam(&p, 3, 6, EOS, None);
            assert_eq!(got.len(), want.len(), "prompt {p:?}");
            for (g, w) in got.iter().zip(want.iter()) {
                assert_eq!(g.ids, w.ids, "prompt {p:?}");
                assert_eq!(g.finished, w.finished, "prompt {p:?}");
                assert_eq!(g.log_prob.to_bits(), w.log_prob.to_bits(), "prompt {p:?}");
            }
        }
    }

    #[test]
    fn engine_beam_respects_constraints() {
        let m = trained_model();
        let even = |_p: &[usize], t: usize| t.is_multiple_of(2) || t == EOS;
        let p = vec![BOS, 10];
        let mut session = IncrementalSession::new(&m);
        let want = beam_single(&mut session, &p, 2, 5, EOS, &even);
        let mut engine = Engine::new(&m);
        let got = engine.beam(&p, 2, 5, EOS, Some(&even));
        assert_eq!(
            got.iter().map(|h| h.ids.clone()).collect::<Vec<_>>(),
            want.iter().map(|h| h.ids.clone()).collect::<Vec<_>>()
        );
        for h in &got {
            assert!(h.ids[2..].iter().all(|&t| t % 2 == 0), "{:?}", h.ids);
        }
    }

    #[test]
    fn engine_score_matches_sequential_scoring() {
        let m = trained_model();
        let prefix = vec![BOS, 10, 11];
        let cont = vec![12, 13, 14];
        // Reference: teacher-forced scoring over a KV-cached session.
        let mut session = IncrementalSession::new(&m);
        let mut seq = prefix.clone();
        let mut want = 0.0;
        for &tok in &cont {
            use lm4db_transformer::NextToken;
            let logits = session.next_logits(&seq);
            want += log_softmax_at(&logits, tok);
            seq.push(tok);
        }
        let mut engine = Engine::new(&m);
        let got = engine.score(&prefix, &cont);
        assert_eq!(got.to_bits(), want.to_bits());
    }

    #[test]
    fn mixed_request_kinds_coexist_in_one_batch() {
        let m = trained_model();
        let mut engine = Engine::new(&m);
        let g = engine.submit(Request::greedy(vec![BOS, 10], 6, EOS));
        let b = engine.submit(Request::beam(vec![BOS, 20], 3, 6, EOS));
        let s = engine.submit(Request::score(&[BOS, 10], &[11, 12]));
        let responses = engine.run();
        assert_eq!(responses.len(), 3);
        assert_eq!(responses[0].id, g);
        assert_eq!(responses[1].id, b);
        assert_eq!(responses[2].id, s);
        assert_eq!(responses[0].tokens, greedy_cached(&m, &[BOS, 10], 6, EOS));
        assert!(!responses[1].hyps.is_empty());
        assert!(responses[2].score < 0.0);
    }

    #[test]
    fn step_deadline_retires_with_partial_output() {
        let m = trained_model();
        let mut engine = Engine::new(&m);
        let full = engine.greedy(&[BOS, 10], 8, EOS);
        assert!(full.len() > 2, "test needs a few generated tokens");
        let id =
            engine.submit(Request::greedy(vec![BOS, 10], 8, EOS).with_deadline(Deadline::Steps(2)));
        let resp = engine
            .run()
            .into_iter()
            .find(|r| r.id == id)
            .expect("deadline request completes");
        assert_eq!(resp.outcome, Outcome::DeadlineExpired);
        assert!(resp.tokens.len() < full.len());
        assert_eq!(resp.tokens[..], full[..resp.tokens.len()]);
        assert_eq!(engine.stats().expired, 1);
    }

    #[test]
    fn cancellation_works_queued_and_active() {
        let m = trained_model();
        let mut engine = Engine::with_options(
            &m,
            EngineOptions {
                max_batch: 1,
                ..Default::default()
            },
        );
        let a = engine.submit(Request::greedy(vec![BOS, 10], 8, EOS));
        let b = engine.submit(Request::greedy(vec![BOS, 20], 8, EOS));
        // One step: `a` is active, `b` still queued.
        engine.step();
        engine.cancel(a);
        engine.cancel(b);
        let responses = engine.run();
        assert!(responses.iter().all(|r| r.outcome == Outcome::Cancelled));
        assert_eq!(engine.stats().cancelled, 2);
    }

    #[test]
    fn continuous_batching_admits_from_queue_as_slots_free() {
        let m = trained_model();
        let mut engine = Engine::with_options(
            &m,
            EngineOptions {
                max_batch: 2,
                ..Default::default()
            },
        );
        let reqs = prompts()
            .into_iter()
            .map(|p| Request::greedy(p, 8, EOS))
            .collect();
        let responses = engine.generate_batch(reqs);
        assert_eq!(responses.len(), 8);
        let stats = engine.stats();
        assert_eq!(stats.completed, 8);
        assert!(stats.peak_batch <= 2);
        assert!(stats.decoded_tokens > 0);
    }

    #[test]
    fn prefix_cache_reduces_prefill_work() {
        let m = trained_model();
        let header = vec![BOS, 10, 11, 12, 13];
        let mut engine = Engine::new(&m);
        // Warm the cache with the shared header.
        engine.greedy(&header, 1, EOS);
        let warm_before = engine.stats();
        let mut p = header.clone();
        p.push(14);
        engine.greedy(&p, 1, EOS);
        let after = engine.stats();
        assert!(
            after.cached_prefix_tokens > warm_before.cached_prefix_tokens,
            "second request should hit the prefix cache"
        );
        // The second prompt has 6 tokens; at least 4 (header minus the
        // always-live last prefill token boundary) come from the cache.
        assert!(after.cached_prefix_tokens >= 4);
    }

    #[test]
    fn stats_token_accounting_is_exact() {
        let m = trained_model();
        let mut engine = Engine::with_options(
            &m,
            EngineOptions {
                prefix_cache_tokens: 0,
                ..Default::default()
            },
        );
        let p = vec![BOS, 10];
        let out = engine.greedy(&p, 8, EOS);
        let stats = engine.stats();
        assert_eq!(stats.prefill_tokens, p.len() as u64);
        // Every emitted token except the last one scheduled is fed back.
        assert_eq!(stats.decoded_tokens, out.len() as u64);
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert!(stats.mean_batch_occupancy() >= 1.0);
    }

    #[test]
    fn responses_arrive_in_submission_order_regardless_of_length() {
        let m = trained_model();
        let mut engine = Engine::new(&m);
        let long = engine.submit(Request::greedy(vec![BOS, 10], 9, EOS));
        let short = engine.submit(Request::greedy(vec![BOS, 20], 1, EOS));
        let responses = engine.run();
        assert_eq!(responses[0].id, long);
        assert_eq!(responses[1].id, short);
    }

    #[test]
    fn admission_control_sheds_beyond_max_queue() {
        let m = trained_model();
        let mut engine = Engine::with_options(
            &m,
            EngineOptions {
                max_batch: 1,
                max_queue: 2,
                ..Default::default()
            },
        );
        // Nothing stepped yet, so every submission after the first two
        // queued ones sheds.
        let ids: Vec<_> = (0..5)
            .map(|_| engine.submit(Request::greedy(vec![BOS, 10], 4, EOS)))
            .collect();
        let stats = engine.stats();
        assert_eq!(stats.submitted, 5);
        assert_eq!(stats.rejected, 3);
        let mut responses = engine.run();
        responses.extend(engine.take_responses());
        let shed: Vec<_> = responses
            .iter()
            .filter(|r| r.outcome == Outcome::Rejected)
            .map(|r| r.id)
            .collect();
        assert_eq!(shed, ids[2..].to_vec());
        let stats = engine.stats();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.terminal_total(), stats.submitted);
    }

    #[test]
    fn oversize_prompt_fails_gracefully_instead_of_panicking() {
        let m = model();
        let max = m.config().max_seq_len;
        let mut engine = Engine::new(&m);
        let id = engine.submit(Request::greedy(vec![BOS; max + 1], 4, EOS));
        let responses = engine.take_responses();
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].id, id);
        match &responses[0].outcome {
            Outcome::Failed { reason } => assert!(reason.contains("max_seq_len")),
            other => panic!("expected Failed, got {other:?}"),
        }
        let stats = engine.stats();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.terminal_total(), stats.submitted);
        // The engine stays fully usable afterwards.
        engine.greedy(&[BOS, 10], 4, EOS);
        assert_eq!(engine.stats().completed, 1);
    }

    #[test]
    fn backoff_grows_and_saturates() {
        assert_eq!(backoff_steps(2, 0), 2);
        assert_eq!(backoff_steps(2, 1), 4);
        assert_eq!(backoff_steps(2, 3), 16);
        assert_eq!(backoff_steps(0, 0), 1); // base clamps to 1
        assert_eq!(backoff_steps(2, 63), 1024); // shift and result both capped
    }

    #[test]
    fn zero_budget_requests_return_empty() {
        let m = trained_model();
        let mut engine = Engine::new(&m);
        assert!(engine.greedy(&[BOS, 10], 0, EOS).is_empty());
        let hyps = engine.beam(&[BOS, 10], 2, 0, EOS, None);
        assert_eq!(hyps.len(), 1);
        assert_eq!(hyps[0].ids, vec![BOS, 10]);
        assert!(!hyps[0].finished);
    }

    #[test]
    fn speculative_greedy_is_byte_identical_to_non_speculative() {
        let m = trained_model();
        let ps = prompts();
        let want: Vec<Vec<usize>> = ps.iter().map(|p| greedy_cached(&m, p, 8, EOS)).collect();
        let vocab = m.config().vocab_size;
        let good = IncDraft { vocab };
        let bad = ConstDraft { vocab, tok: 5 };
        let drafts: [(&str, &dyn DraftModel); 2] = [("inc", &good), ("const", &bad)];
        for (name, draft) in drafts {
            for draft_k in [1, 2, 4] {
                for max_batch in [1, 8] {
                    let mut engine = Engine::with_options(
                        &m,
                        EngineOptions {
                            max_batch,
                            draft_k,
                            ..EngineOptions::default()
                        },
                    );
                    engine.set_draft(draft);
                    let reqs = ps
                        .iter()
                        .map(|p| Request::greedy(p.clone(), 8, EOS))
                        .collect();
                    let out: Vec<Vec<usize>> = engine
                        .generate_batch(reqs)
                        .into_iter()
                        .map(|r| r.tokens)
                        .collect();
                    assert_eq!(out, want, "draft {name} / k {draft_k} / batch {max_batch}");
                    let stats = engine.stats();
                    assert!(stats.drafted_tokens > 0, "speculation must have run");
                    assert!(stats.draft_accepted_tokens <= stats.drafted_tokens);
                    if name == "inc" {
                        assert!(
                            stats.draft_accepted_tokens > 0,
                            "pattern draft must land accepts on the trained model"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn draft_k_without_draft_model_is_inert() {
        let m = trained_model();
        let p = vec![BOS, 10];
        let want = greedy_cached(&m, &p, 8, EOS);
        let mut engine = Engine::with_options(
            &m,
            EngineOptions {
                draft_k: 3,
                ..EngineOptions::default()
            },
        );
        assert_eq!(engine.greedy(&p, 8, EOS), want);
        assert_eq!(engine.stats().drafted_tokens, 0);
    }

    #[test]
    fn quantized_speculative_matches_quantized_non_speculative() {
        let m = trained_model();
        let ps = prompts();
        let mut base = Engine::with_options(
            &m,
            EngineOptions {
                quantized: true,
                ..EngineOptions::default()
            },
        );
        let reqs = ps
            .iter()
            .map(|p| Request::greedy(p.clone(), 8, EOS))
            .collect();
        let want: Vec<Vec<usize>> = base
            .generate_batch(reqs)
            .into_iter()
            .map(|r| r.tokens)
            .collect();
        let good = IncDraft {
            vocab: m.config().vocab_size,
        };
        let mut engine = Engine::with_options(
            &m,
            EngineOptions {
                quantized: true,
                draft_k: 3,
                ..EngineOptions::default()
            },
        );
        engine.set_draft(&good);
        let reqs = ps
            .iter()
            .map(|p| Request::greedy(p.clone(), 8, EOS))
            .collect();
        let out: Vec<Vec<usize>> = engine
            .generate_batch(reqs)
            .into_iter()
            .map(|r| r.tokens)
            .collect();
        assert_eq!(out, want, "quantized speculative decode diverged");
        assert!(engine.stats().draft_accepted_tokens > 0);
    }

    #[test]
    fn masked_speculative_matches_constrained_non_speculative() {
        let m = trained_model();
        let even = |_p: &[usize], t: usize| t.is_multiple_of(2) || t == EOS;
        let mask = ConstraintMask(&even);
        let good = IncDraft {
            vocab: m.config().vocab_size,
        };
        for p in prompts().into_iter().take(4) {
            let mut a = Engine::new(&m);
            let ia = a.submit(Request::greedy(p.clone(), 8, EOS).with_constraint(&even));
            let want = a
                .run()
                .into_iter()
                .find(|r| r.id == ia)
                .expect("constrained request completes")
                .tokens;
            let mut b = Engine::with_options(
                &m,
                EngineOptions {
                    draft_k: 3,
                    ..EngineOptions::default()
                },
            );
            b.set_draft(&good);
            let ib = b.submit(Request::greedy(p.clone(), 8, EOS).with_mask(&mask));
            let got = b
                .run()
                .into_iter()
                .find(|r| r.id == ib)
                .expect("masked request completes")
                .tokens;
            assert_eq!(got, want, "prompt {p:?}");
            assert!(got.iter().all(|&t| t % 2 == 0), "mask violated: {got:?}");
        }
    }

    #[test]
    fn beam_masked_matches_beam_constrained() {
        let m = trained_model();
        let even = |_p: &[usize], t: usize| t.is_multiple_of(2) || t == EOS;
        let mask = ConstraintMask(&even);
        let p = vec![BOS, 10];
        let mut a = Engine::new(&m);
        let want = a.beam(&p, 2, 5, EOS, Some(&even));
        let mut b = Engine::new(&m);
        let got = b.beam_masked(&p, 2, 5, EOS, Some(&mask));
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want.iter()) {
            assert_eq!(g.ids, w.ids);
            assert_eq!(g.log_prob.to_bits(), w.log_prob.to_bits());
        }
    }

    /// Two tenant classes: tier-0 interactive (weight 2) and tier-1 batch.
    fn two_tenants() -> Vec<TenantClass> {
        vec![
            TenantClass::new("interactive").weight(2),
            TenantClass::new("batch").tier(1),
        ]
    }

    #[test]
    fn tenant_outcomes_are_booked_per_tenant_and_conserve() {
        let m = trained_model();
        let mut engine = Engine::with_options(
            &m,
            EngineOptions {
                max_batch: 2,
                tenants: two_tenants(),
                ..EngineOptions::default()
            },
        );
        for p in prompts() {
            let tenant = (p.len() % 2) as TenantId;
            engine.submit(Request::greedy(p, 4, EOS).with_tenant(tenant));
        }
        engine.run();
        let stats = engine.stats();
        assert_eq!(stats.tenants.len(), 2);
        let mut submitted = 0;
        for t in stats.tenants.values() {
            assert_eq!(t.terminal_total(), t.submitted);
            assert_eq!(t.admitted, t.submitted);
            assert_eq!(t.latency_steps.count(), t.submitted);
            assert_eq!(t.queue_wait_steps.count(), t.submitted);
            submitted += t.submitted;
        }
        assert_eq!(submitted, stats.submitted);
    }

    #[test]
    fn higher_tier_tenant_admits_first_under_contention() {
        let m = trained_model();
        let mut engine = Engine::with_options(
            &m,
            EngineOptions {
                max_batch: 1,
                tenants: two_tenants(),
                ..EngineOptions::default()
            },
        );
        // Batch-tenant backlog first, then one interactive arrival: with a
        // single slot, the tier-0 request must finish before the tier-1
        // backlog clears.
        let b0 = engine.submit(Request::greedy(vec![BOS, 20], 3, EOS).with_tenant(1));
        let b1 = engine.submit(Request::greedy(vec![BOS, 20, 21], 3, EOS).with_tenant(1));
        let i0 = engine.submit(Request::greedy(vec![BOS, 10], 3, EOS).with_tenant(0));
        let mut order = Vec::new();
        while engine.step() {
            for r in engine.take_responses() {
                order.push(r.id);
            }
        }
        for r in engine.take_responses() {
            order.push(r.id);
        }
        assert_eq!(order.len(), 3);
        // b0 occupies the slot when i0 arrives, but i0 jumps b1.
        let pos = |id| order.iter().position(|&x| x == id).unwrap();
        assert!(
            pos(i0) < pos(b1),
            "tier 0 must pass queued tier 1: {order:?}"
        );
        let _ = b0;
    }

    #[test]
    fn tenant_ids_validated_when_classes_configured() {
        let m = model();
        let mut engine = Engine::with_options(
            &m,
            EngineOptions {
                tenants: two_tenants(),
                ..EngineOptions::default()
            },
        );
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.submit(Request::greedy(vec![BOS, 10], 2, EOS).with_tenant(7));
        }));
        assert!(result.is_err(), "out-of-range tenant must panic");
    }

    #[test]
    fn slo_admission_sheds_predicted_misses() {
        let m = trained_model();
        let mut engine = Engine::with_options(
            &m,
            EngineOptions {
                max_batch: 1,
                tenants: vec![TenantClass::new("strict").slo_steps(4)],
                slo_admission: true,
                slo_initial_service_steps: 4,
                ..EngineOptions::default()
            },
        );
        // First request fills the single slot and fits the target; the
        // backlog behind it predicts (ahead/1 + 1) * 4 > 4 and sheds.
        let ids: Vec<RequestId> = (0..4)
            .map(|_| engine.submit(Request::greedy(vec![BOS, 10], 3, EOS)))
            .collect();
        engine.run();
        let stats = engine.stats();
        let t = &stats.tenants[&0];
        assert_eq!(t.submitted, 4);
        assert!(t.slo_shed >= 2, "backlogged submits must shed: {t:?}");
        assert_eq!(t.rejected, t.slo_shed);
        assert_eq!(t.terminal_total(), t.submitted);
        assert_eq!(stats.rejected, t.rejected);
        // Everything admitted met its SLO — that is the controller's point.
        assert_eq!(t.slo_missed, 0);
        assert_eq!(t.slo_met, t.completed);
        let _ = ids;
    }

    #[test]
    fn sampling_is_purely_observational() {
        let m = trained_model();
        let outputs = |sample_steps: u64| {
            let mut engine = Engine::with_options(
                &m,
                EngineOptions {
                    max_batch: 2,
                    sample_steps,
                    ..EngineOptions::default()
                },
            );
            let reqs = prompts()
                .into_iter()
                .map(|p| Request::greedy(p, 4, EOS))
                .collect();
            engine
                .generate_batch(reqs)
                .into_iter()
                .map(|r| (r.tokens, format!("{:?}", r.outcome)))
                .collect::<Vec<_>>()
        };
        let base = outputs(0);
        let sampled = outputs(3);
        assert_eq!(base, sampled, "sampling must never change outputs");
        // And the sampled run actually left series behind.
        let snap = lm4db_obs::series_snapshot();
        let active = snap.iter().find(|(k, _)| k == "serve/active");
        assert!(
            active.is_some_and(|(_, s)| !s.is_empty()),
            "sampler must record serve/active"
        );
    }

    #[test]
    fn burn_rate_alerts_fire_and_resolve_deterministically() {
        let m = trained_model();
        let run_once = || {
            let mut engine = Engine::with_options(
                &m,
                EngineOptions {
                    max_batch: 1,
                    tenants: vec![TenantClass::new("strict").slo_steps(4)],
                    slo_admission: true,
                    slo_initial_service_steps: 4,
                    sample_steps: 1,
                    slo_alerts: Some(lm4db_obs::AlertConfig {
                        fast_samples: 1,
                        slow_samples: 2,
                        burn_num: 1,
                        burn_den: 4,
                        resolve_samples: 2,
                    }),
                    ..EngineOptions::default()
                },
            );
            // Overload phase: one fresh submission per tick against a
            // single batch slot — most shed, and every sampler tick
            // watches the cumulative burn grow.
            for _ in 0..12 {
                engine.submit(Request::greedy(vec![BOS, 10], 3, EOS));
                engine.step();
            }
            engine.run();
            // Idle cool-down ticks let the monitor see the burn stop.
            for _ in 0..8 {
                engine.step();
            }
            (engine.alert_transitions().to_vec(), engine.stats())
        };
        let (tr, stats) = run_once();
        assert!(stats.sampler_ticks > 0);
        assert!(stats.tenants[&0].slo_shed > 0, "overload must shed");
        assert!(stats.slo_firing >= 1, "overload must fire: {tr:?}");
        assert!(stats.slo_resolved >= 1, "cool-down must resolve: {tr:?}");
        let fired = tr
            .iter()
            .filter(|t| t.to == lm4db_obs::AlertState::Firing)
            .count() as u64;
        let resolved = tr
            .iter()
            .filter(|t| t.to == lm4db_obs::AlertState::Resolved)
            .count() as u64;
        assert_eq!(stats.slo_firing, fired, "stats mirror the transition log");
        assert_eq!(stats.slo_resolved, resolved);
        // Replay the identical schedule: the alert trajectory — including
        // the exact step of every transition — must be byte-identical.
        let (tr2, stats2) = run_once();
        assert_eq!(tr, tr2);
        assert_eq!(stats.slo_pending, stats2.slo_pending);
        assert_eq!(stats.slo_firing, stats2.slo_firing);
        assert_eq!(stats.slo_resolved, stats2.slo_resolved);
    }

    #[test]
    fn firing_alert_tightens_slo_admission() {
        let m = trained_model();
        // Identical overload schedules; the alerting engine halves the
        // effective step target while firing, so it must shed at least as
        // much as the alert-free engine.
        let shed_with = |alerts: Option<lm4db_obs::AlertConfig>| {
            let mut engine = Engine::with_options(
                &m,
                EngineOptions {
                    max_batch: 1,
                    tenants: vec![TenantClass::new("strict").slo_steps(12)],
                    slo_admission: true,
                    slo_initial_service_steps: 4,
                    sample_steps: 1,
                    slo_alerts: alerts,
                    ..EngineOptions::default()
                },
            );
            for _ in 0..16 {
                engine.submit(Request::greedy(vec![BOS, 10], 3, EOS));
                engine.step();
            }
            engine.run();
            engine.stats().tenants[&0].slo_shed
        };
        let base = shed_with(None);
        let alerted = shed_with(Some(lm4db_obs::AlertConfig {
            fast_samples: 1,
            slow_samples: 2,
            burn_num: 1,
            burn_den: 4,
            resolve_samples: 2,
        }));
        assert!(
            alerted >= base,
            "tightened admission must not shed less ({alerted} < {base})"
        );
    }

    #[test]
    fn default_options_keep_single_tenant_fifo_accounting() {
        let m = trained_model();
        let mut engine = Engine::new(&m);
        engine.greedy(&[BOS, 10], 3, EOS);
        engine.greedy(&[BOS, 20], 3, EOS);
        let stats = engine.stats();
        assert_eq!(stats.tenants.len(), 1);
        let t = &stats.tenants[&0];
        assert_eq!(t.submitted, 2);
        assert_eq!(t.completed, 2);
        assert_eq!(t.slo_met + t.slo_missed, 0, "no SLO configured");
    }
}

#[cfg(test)]
mod proptests {
    use super::testdraft::ConstDraft;
    use super::*;
    use lm4db_tokenize::{BOS, EOS};
    use lm4db_transformer::{
        greedy as greedy_single, greedy_cached, ConstraintMask, IncrementalSession, ModelConfig,
    };
    use proptest::prelude::*;

    proptest! {
        /// Batch-size independence as a property: any mix of prompts, any
        /// max_batch, with or without the prefix cache — the engine always
        /// reproduces the single-request KV-cached greedy output.
        #[test]
        fn engine_always_matches_single_request_greedy(
            prompts in prop::collection::vec(
                prop::collection::vec(8usize..60, 1..6), 1..6),
            max_batch in 1usize..5,
            cache in any::<bool>(),
        ) {
            let m = GptModel::new(ModelConfig::test(), 13);
            let mut engine = Engine::with_options(&m, EngineOptions {
                max_batch,
                prefix_cache_tokens: if cache { 512 } else { 0 },
                ..EngineOptions::default()
            });
            let mut reqs = Vec::new();
            for p in &prompts {
                let mut prompt = vec![BOS];
                prompt.extend_from_slice(p);
                reqs.push(Request::greedy(prompt, 6, EOS));
            }
            let responses = engine.generate_batch(reqs);
            for (p, r) in prompts.iter().zip(responses.iter()) {
                let mut prompt = vec![BOS];
                prompt.extend_from_slice(p);
                let want = greedy_cached(&m, &prompt, 6, EOS);
                prop_assert_eq!(&r.tokens, &want);
            }
        }

        /// Grammar-constrained speculative decoding as a property: for any
        /// prompts, draft lookahead (including an adversarial constant
        /// draft), batch size, and divisibility grammar, the engine never
        /// emits a mask-vetoed token and reproduces the single-request
        /// constrained greedy output byte for byte.
        #[test]
        fn constrained_speculative_decode_never_violates_mask(
            prompts in prop::collection::vec(
                prop::collection::vec(8usize..60, 1..6), 1..5),
            draft_k in 0usize..5,
            modulus in 1usize..4,
            draft_tok in 8usize..60,
            max_batch in 1usize..4,
        ) {
            let m = GptModel::new(ModelConfig::test(), 13);
            let step = modulus + 1;
            let allow = move |_p: &[usize], t: usize| t.is_multiple_of(step) || t == EOS;
            let mask = ConstraintMask(&allow);
            let draft = ConstDraft {
                vocab: m.config().vocab_size,
                tok: draft_tok % m.config().vocab_size,
            };
            let mut engine = Engine::with_options(&m, EngineOptions {
                max_batch,
                draft_k,
                ..EngineOptions::default()
            });
            engine.set_draft(&draft);
            let mut reqs = Vec::new();
            for p in &prompts {
                let mut prompt = vec![BOS];
                prompt.extend_from_slice(p);
                reqs.push(Request::greedy(prompt, 6, EOS).with_mask(&mask));
            }
            let responses = engine.generate_batch(reqs);
            for (p, r) in prompts.iter().zip(responses.iter()) {
                let mut prompt = vec![BOS];
                prompt.extend_from_slice(p);
                let mut session = IncrementalSession::new(&m);
                let want = greedy_single(&mut session, &prompt, 6, EOS, &allow);
                prop_assert_eq!(&r.tokens, &want);
                prop_assert!(
                    r.tokens.iter().all(|&t| t.is_multiple_of(step)),
                    "mask violated: {:?}", r.tokens
                );
            }
        }
    }
}
