//! Table 1 of the paper: the tutorial's organization (parts and durations).

use serde::Serialize;

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SchedulePart {
    /// Tutorial part title.
    pub part: &'static str,
    /// Duration in minutes.
    pub minutes: u32,
}

/// The tutorial schedule exactly as Table 1 lists it.
pub fn schedule() -> Vec<SchedulePart> {
    vec![
        SchedulePart {
            part: "Welcome and introduction",
            minutes: 5,
        },
        SchedulePart {
            part: "Rise of the Transformer",
            minutes: 10,
        },
        SchedulePart {
            part: "Pre-trained language models",
            minutes: 10,
        },
        SchedulePart {
            part: "Fine-tuning and prompting",
            minutes: 10,
        },
        SchedulePart {
            part: "APIs and libraries",
            minutes: 20,
        },
        SchedulePart {
            part: "Applications in data management",
            minutes: 25,
        },
        SchedulePart {
            part: "Final discussion and conclusion",
            minutes: 10,
        },
    ]
}

/// Total tutorial duration in minutes (the paper states 1.5 hours).
pub fn total_minutes() -> u32 {
    schedule().iter().map(|p| p.minutes).sum()
}

/// Renders Table 1 as aligned text.
pub fn render_table() -> String {
    let rows = schedule();
    let width = rows.iter().map(|p| p.part.len()).max().unwrap_or(0);
    let mut out = format!("{:<width$} | Duration\n", "Part");
    out.push_str(&format!("{}-+---------\n", "-".repeat(width)));
    for p in rows {
        out.push_str(&format!("{:<width$} | {:>3} min\n", p.part, p.minutes));
    }
    out.push_str(&format!(
        "{:<width$} | {:>3} min\n",
        "Total",
        total_minutes()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_has_seven_parts() {
        assert_eq!(schedule().len(), 7);
    }

    #[test]
    fn total_is_ninety_minutes() {
        // "The total duration of the tutorial is 1.5 hours."
        assert_eq!(total_minutes(), 90);
    }

    #[test]
    fn applications_part_is_longest() {
        let longest = schedule().into_iter().max_by_key(|p| p.minutes).unwrap();
        assert_eq!(longest.part, "Applications in data management");
    }

    #[test]
    fn rendered_table_lists_every_part() {
        let table = render_table();
        for p in schedule() {
            assert!(table.contains(p.part));
        }
        assert!(table.contains("90 min"));
    }
}
