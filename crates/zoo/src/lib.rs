//! # lm4db-zoo
//!
//! The static exhibits of the paper: the registry of published language
//! models with architecture specs and parameter-count formulas that
//! regenerates **Figure 1** (the growth chart from BERT's 110M to PaLM's
//! 540B parameters), and the tutorial schedule of **Table 1**.

#![warn(missing_docs)]

pub mod registry;
pub mod tutorial;

pub use registry::{figure1_models, ArchSpec, Family, ModelEntry};
pub use tutorial::{render_table, schedule, total_minutes, SchedulePart};
