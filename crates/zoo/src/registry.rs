//! Registry of the published language models that Figure 1 of the tutorial
//! plots (parameter counts over time, log scale), with architecture
//! hyper-parameters and closed-form parameter-count estimates.
//!
//! Published totals are taken from the cited papers; the `computed` estimate
//! comes from the same closed-form formulas our own models use, validating
//! that the formulas extrapolate from our laptop-scale models to the
//! hundred-billion-parameter regime the tutorial charts.

use serde::Serialize;

/// Architectural family of a published model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Family {
    /// Bidirectional encoder (BERT-style).
    Encoder,
    /// Decoder-only causal LM (GPT-style).
    Decoder,
    /// Encoder-decoder (T5-style).
    EncoderDecoder,
    /// Sparse mixture-of-experts (Switch-style); parameter count is not
    /// comparable to dense models via the dense formula.
    SparseMoe,
}

/// Core transformer hyper-parameters of a published model.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ArchSpec {
    /// Number of layers (decoder blocks, or encoder blocks for encoders).
    pub n_layers: usize,
    /// Model width.
    pub d_model: usize,
    /// Attention heads.
    pub n_heads: usize,
    /// Feed-forward width.
    pub d_ff: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Context length.
    pub max_seq_len: usize,
    /// Whether input and output embeddings are tied.
    pub tied_embeddings: bool,
}

impl ArchSpec {
    /// Dense-transformer parameter estimate: per-block attention + FFN +
    /// layer norms, plus embeddings (and an untied LM head if applicable).
    pub fn param_estimate(&self) -> u64 {
        let d = self.d_model as u64;
        let dff = self.d_ff as u64;
        let v = self.vocab_size as u64;
        let l = self.n_layers as u64;
        let per_block = 4 * (d * d + d) + (d * dff + dff) + (dff * d + d) + 4 * d;
        let embeddings = v * d + self.max_seq_len as u64 * d;
        let head = if self.tied_embeddings { 0 } else { v * d };
        embeddings + l * per_block + 2 * d + head
    }

    /// Weight bytes under our int8 inference scheme (`lm4db_tensor::quant`):
    /// the heavy matrices — per block the four attention projections and the
    /// two FFN projections — drop to 1 byte per element (+8 bytes per output
    /// row: an f32 scale and an i32 weight sum for the activation zero-point
    /// correction); everything else (embeddings, biases, layer norms, and
    /// the LM head, which stays full precision because its logits feed
    /// argmax/beam comparisons) remains f32 at 4 bytes per element.
    pub fn int8_weight_bytes(&self) -> u64 {
        let d = self.d_model as u64;
        let dff = self.d_ff as u64;
        let v = self.vocab_size as u64;
        let l = self.n_layers as u64;
        // Quantized matrices: elements + 8 bytes per output row (f32 scale
        // and i32 weight sum).
        let q_per_block = 4 * (d * d + 8 * d) + (d * dff + 8 * dff) + (dff * d + 8 * d);
        // f32 leftovers: embeddings, per-block biases + layer norms, final
        // layer norm, and the full-precision LM head (weights + bias).
        let f32_per_block = 4 * d + dff + d + 4 * d;
        let head = if self.tied_embeddings { 0 } else { v * d + v };
        let f32_elems = v * d + self.max_seq_len as u64 * d + l * f32_per_block + 2 * d + head;
        l * q_per_block + 4 * f32_elems
    }

    /// f32 weight bytes (4 per parameter), the baseline for
    /// [`ArchSpec::int8_weight_bytes`].
    pub fn f32_weight_bytes(&self) -> u64 {
        4 * self.param_estimate()
    }
}

/// One entry of the Figure 1 chart.
#[derive(Debug, Clone, Serialize)]
pub struct ModelEntry {
    /// Model name as the paper brands it.
    pub name: &'static str,
    /// Publication year (as plotted on Figure 1's x-axis).
    pub year: u32,
    /// Fractional position within the year for plotting (0.0–0.99).
    pub month: u32,
    /// Parameter count reported by the paper.
    pub published_params: u64,
    /// Architectural family.
    pub family: Family,
    /// Architecture, when the paper discloses it.
    pub spec: Option<ArchSpec>,
    /// Citation key in the tutorial's bibliography.
    pub reference: &'static str,
}

impl ModelEntry {
    /// Closed-form estimate from the architecture (None for undisclosed or
    /// sparse architectures).
    pub fn computed_params(&self) -> Option<u64> {
        if self.family == Family::SparseMoe {
            return None;
        }
        self.spec.map(|s| {
            let dense = s.param_estimate();
            if self.family == Family::EncoderDecoder {
                // `n_layers` counts one stack; an encoder-decoder has a
                // second (decoder) stack whose layers additionally carry
                // cross-attention. T5-11B is further dominated by its very
                // wide attention (128 heads x 128 dims despite d_model 1024)
                // which the dense formula under-counts; the estimate is a
                // documented lower bound for this family.
                let d = s.d_model as u64;
                let dff = s.d_ff as u64;
                let l = s.n_layers as u64;
                let decoder_stack = l * (8 * (d * d + d) + (d * dff + dff) + (dff * d + d) + 6 * d);
                dense + decoder_stack
            } else {
                dense
            }
        })
    }
}

/// The models Figure 1 charts, in chronological order.
pub fn figure1_models() -> Vec<ModelEntry> {
    vec![
        ModelEntry {
            name: "BERT-base",
            year: 2018,
            month: 10,
            published_params: 110_000_000,
            family: Family::Encoder,
            spec: Some(ArchSpec {
                n_layers: 12,
                d_model: 768,
                n_heads: 12,
                d_ff: 3072,
                vocab_size: 30_522,
                max_seq_len: 512,
                tied_embeddings: true,
            }),
            reference: "[15]",
        },
        ModelEntry {
            name: "BERT-large",
            year: 2018,
            month: 10,
            published_params: 340_000_000,
            family: Family::Encoder,
            spec: Some(ArchSpec {
                n_layers: 24,
                d_model: 1024,
                n_heads: 16,
                d_ff: 4096,
                vocab_size: 30_522,
                max_seq_len: 512,
                tied_embeddings: true,
            }),
            reference: "[15]",
        },
        ModelEntry {
            name: "GPT-2",
            year: 2019,
            month: 2,
            published_params: 1_500_000_000,
            family: Family::Decoder,
            spec: Some(ArchSpec {
                n_layers: 48,
                d_model: 1600,
                n_heads: 25,
                d_ff: 6400,
                vocab_size: 50_257,
                max_seq_len: 1024,
                tied_embeddings: true,
            }),
            reference: "[63]",
        },
        ModelEntry {
            name: "Megatron-LM",
            year: 2019,
            month: 9,
            published_params: 8_300_000_000,
            family: Family::Decoder,
            spec: Some(ArchSpec {
                n_layers: 72,
                d_model: 3072,
                n_heads: 32,
                d_ff: 12_288,
                vocab_size: 51_200,
                max_seq_len: 1024,
                tied_embeddings: true,
            }),
            reference: "[73]",
        },
        ModelEntry {
            name: "T5-11B",
            year: 2019,
            month: 10,
            published_params: 11_000_000_000,
            family: Family::EncoderDecoder,
            spec: Some(ArchSpec {
                n_layers: 24,
                d_model: 1024,
                n_heads: 128,
                d_ff: 65_536,
                vocab_size: 32_128,
                max_seq_len: 512,
                tied_embeddings: true,
            }),
            reference: "[65]",
        },
        ModelEntry {
            name: "Turing-NLG",
            year: 2020,
            month: 2,
            published_params: 17_000_000_000,
            family: Family::Decoder,
            spec: Some(ArchSpec {
                n_layers: 78,
                d_model: 4256,
                n_heads: 28,
                d_ff: 17_024,
                vocab_size: 50_257,
                max_seq_len: 1024,
                tied_embeddings: true,
            }),
            reference: "[73]",
        },
        ModelEntry {
            name: "GPT-3",
            year: 2020,
            month: 5,
            published_params: 175_000_000_000,
            family: Family::Decoder,
            spec: Some(ArchSpec {
                n_layers: 96,
                d_model: 12_288,
                n_heads: 96,
                d_ff: 49_152,
                vocab_size: 50_257,
                max_seq_len: 2048,
                tied_embeddings: true,
            }),
            reference: "[5, 18]",
        },
        ModelEntry {
            name: "Switch Transformer",
            year: 2021,
            month: 1,
            published_params: 1_600_000_000_000,
            family: Family::SparseMoe,
            spec: None,
            reference: "[17]",
        },
        ModelEntry {
            name: "GPT-3 Codex",
            year: 2021,
            month: 7,
            published_params: 12_000_000_000,
            family: Family::Decoder,
            spec: Some(ArchSpec {
                n_layers: 40,
                d_model: 5140,
                n_heads: 40,
                d_ff: 20_560,
                vocab_size: 50_257,
                max_seq_len: 4096,
                tied_embeddings: true,
            }),
            reference: "[9]",
        },
        ModelEntry {
            name: "Jurassic-1",
            year: 2021,
            month: 8,
            published_params: 178_000_000_000,
            family: Family::Decoder,
            spec: Some(ArchSpec {
                n_layers: 76,
                d_model: 13_824,
                n_heads: 96,
                d_ff: 55_296,
                vocab_size: 256_000,
                max_seq_len: 2048,
                tied_embeddings: true,
            }),
            reference: "[50]",
        },
        ModelEntry {
            name: "Gopher",
            year: 2021,
            month: 12,
            published_params: 280_000_000_000,
            family: Family::Decoder,
            spec: Some(ArchSpec {
                n_layers: 80,
                d_model: 16_384,
                n_heads: 128,
                d_ff: 65_536,
                vocab_size: 32_000,
                max_seq_len: 2048,
                tied_embeddings: true,
            }),
            reference: "[64]",
        },
        ModelEntry {
            name: "LaMDA",
            year: 2022,
            month: 1,
            published_params: 137_000_000_000,
            family: Family::Decoder,
            spec: Some(ArchSpec {
                n_layers: 64,
                d_model: 8192,
                n_heads: 128,
                d_ff: 65_536,
                vocab_size: 32_000,
                max_seq_len: 2048,
                tied_embeddings: true,
            }),
            reference: "[76]",
        },
        ModelEntry {
            name: "MT-NLG 530B",
            year: 2022,
            month: 1,
            published_params: 530_000_000_000,
            family: Family::Decoder,
            spec: Some(ArchSpec {
                n_layers: 105,
                d_model: 20_480,
                n_heads: 128,
                d_ff: 81_920,
                vocab_size: 50_257,
                max_seq_len: 2048,
                tied_embeddings: true,
            }),
            reference: "[73]",
        },
        ModelEntry {
            name: "Chinchilla",
            year: 2022,
            month: 3,
            published_params: 70_000_000_000,
            family: Family::Decoder,
            spec: Some(ArchSpec {
                n_layers: 80,
                d_model: 8192,
                n_heads: 64,
                d_ff: 32_768,
                vocab_size: 32_000,
                max_seq_len: 2048,
                tied_embeddings: true,
            }),
            reference: "[27]",
        },
        ModelEntry {
            name: "PaLM",
            year: 2022,
            month: 4,
            published_params: 540_000_000_000,
            family: Family::Decoder,
            spec: Some(ArchSpec {
                n_layers: 118,
                d_model: 18_432,
                n_heads: 48,
                d_ff: 73_728,
                vocab_size: 256_000,
                max_seq_len: 2048,
                tied_embeddings: true,
            }),
            reference: "[13]",
        },
        ModelEntry {
            name: "OPT-175B",
            year: 2022,
            month: 5,
            published_params: 175_000_000_000,
            family: Family::Decoder,
            spec: Some(ArchSpec {
                n_layers: 96,
                d_model: 12_288,
                n_heads: 96,
                d_ff: 49_152,
                vocab_size: 50_272,
                max_seq_len: 2048,
                tied_embeddings: true,
            }),
            reference: "[103]",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_is_chronological() {
        let models = figure1_models();
        let times: Vec<(u32, u32)> = models.iter().map(|m| (m.year, m.month)).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
    }

    #[test]
    fn covers_bert_to_codex() {
        let models = figure1_models();
        let names: Vec<&str> = models.iter().map(|m| m.name).collect();
        assert!(names.contains(&"BERT-base"));
        assert!(names.contains(&"GPT-3"));
        assert!(names.contains(&"GPT-3 Codex"));
        assert!(names.contains(&"PaLM"));
    }

    #[test]
    fn growth_spans_three_orders_of_magnitude() {
        // The point of Figure 1: exponential growth 2018 -> 2022.
        let models = figure1_models();
        let first = models.first().unwrap().published_params;
        let max = models.iter().map(|m| m.published_params).max().unwrap();
        assert!(max / first > 1000, "growth only {}x", max / first);
    }

    #[test]
    fn computed_estimates_match_published_counts() {
        // Closed-form dense estimates must land within 40% of the published
        // totals (papers differ in what they count: tied heads, relative
        // position parameters, etc.).
        for m in figure1_models() {
            let Some(computed) = m.computed_params() else {
                continue;
            };
            let ratio = computed as f64 / m.published_params as f64;
            assert!(
                (0.6..=1.4).contains(&ratio),
                "{}: computed {computed} vs published {} (ratio {ratio:.2})",
                m.name,
                m.published_params
            );
        }
    }

    #[test]
    fn sparse_models_have_no_dense_estimate() {
        let switch = figure1_models()
            .into_iter()
            .find(|m| m.family == Family::SparseMoe)
            .unwrap();
        assert!(switch.computed_params().is_none());
    }

    #[test]
    fn our_formula_agrees_with_transformer_crate_at_small_scale() {
        // The same closed form, applied to our own test config, must equal
        // the transformer crate's exact count minus the untied-head delta.
        use lm4db_transformer::ModelConfig;
        let cfg = ModelConfig::test();
        let spec = ArchSpec {
            n_layers: cfg.n_layers,
            d_model: cfg.d_model,
            n_heads: cfg.n_heads,
            d_ff: cfg.d_ff,
            vocab_size: cfg.vocab_size,
            max_seq_len: cfg.max_seq_len,
            tied_embeddings: false,
        };
        // The crate's decoder has a bias on the LM head; the estimate omits
        // only that bias term.
        assert_eq!(
            spec.param_estimate() + cfg.vocab_size as u64,
            cfg.param_count_decoder() as u64
        );
    }

    #[test]
    fn int8_estimate_approaches_a_quarter_at_scale() {
        // For large dense decoders the heavy matrices dominate, so the int8
        // footprint approaches 1/4 of f32; for every disclosed architecture
        // it must at least stay strictly below half.
        for m in figure1_models() {
            let Some(spec) = m.spec else { continue };
            let ratio = spec.int8_weight_bytes() as f64 / spec.f32_weight_bytes() as f64;
            assert!(
                (0.24..0.5).contains(&ratio),
                "{}: int8/f32 ratio {ratio:.3} out of range",
                m.name
            );
        }
        // GPT-3 specifically: matmul-dominated, so within a couple percent
        // of the ideal quarter.
        let gpt3 = figure1_models()
            .into_iter()
            .find(|m| m.name == "GPT-3")
            .unwrap();
        let spec = gpt3.spec.unwrap();
        let ratio = spec.int8_weight_bytes() as f64 / spec.f32_weight_bytes() as f64;
        assert!(ratio < 0.27, "GPT-3 int8 ratio {ratio:.3} not near 1/4");
    }

    #[test]
    fn int8_estimate_matches_quantizer_at_small_scale() {
        // The closed form must agree exactly with what QuantizedGpt actually
        // allocates for our own (untied) decoder config, plus the f32
        // leftovers it reads from the model.
        use lm4db_transformer::{GptModel, ModelConfig, QuantizedGpt};
        let cfg = ModelConfig::test();
        let model = GptModel::new(cfg.clone(), 7);
        let q = QuantizedGpt::from_model(&model);
        let spec = ArchSpec {
            n_layers: cfg.n_layers,
            d_model: cfg.d_model,
            n_heads: cfg.n_heads,
            d_ff: cfg.d_ff,
            vocab_size: cfg.vocab_size,
            max_seq_len: cfg.max_seq_len,
            tied_embeddings: false,
        };
        // Quantized part of the estimate = estimate minus the f32 leftovers.
        let d = cfg.d_model as u64;
        let dff = cfg.d_ff as u64;
        let v = cfg.vocab_size as u64;
        let l = cfg.n_layers as u64;
        let f32_elems = v * d
            + cfg.max_seq_len as u64 * d
            + l * (4 * d + dff + d + 4 * d)
            + 2 * d
            + (v * d + v);
        let quantized_bytes = spec.int8_weight_bytes() - 4 * f32_elems;
        // QuantizedGpt additionally carries the f32 biases of the quantized
        // layers (4 attn d-biases + dff + d per block).
        let bias_bytes = 4 * l * (4 * d + dff + d);
        assert_eq!(q.weight_bytes() as u64, quantized_bytes + bias_bytes);
    }
}
