//! # lm4db-neuraldb
//!
//! **Natural language as the storage layer** (Thorne et al., *From natural
//! language processing to neural databases*, VLDB 2021; §2.5 of the
//! tutorial): the database is a bag of sentences; query answering depends
//! on how well the system *reads* them. The crate provides the fact store
//! with lookup / count / min-max / two-hop operators, and three readers:
//! an exact canonical-template reader (the symbolic baseline), an
//! all-templates pattern reader, and a fine-tuned LM reader that
//! classifies each sentence's phrasing before slot extraction.

#![warn(missing_docs)]

pub mod extract;
pub mod store;

pub use extract::{
    extract_with_template, AllTemplatesExtractor, ExactExtractor, ExtractedFact, FactExtractor,
    LmExtractor,
};
pub use store::NeuralDb;
