//! Fact extraction from natural-language sentences.
//!
//! The exact extractor only understands the canonical template — the
//! symbolic-database position. The LM extractor classifies the sentence's
//! template with a fine-tuned encoder first, recovering facts from
//! paraphrased sentences too — the capability NeuralDB attributes to
//! transformer readers.

use lm4db_corpus::facts::TEMPLATES;
use lm4db_lm::{FineTunedClassifier, TextClassifier};
use lm4db_tensor::Rand;
use lm4db_tokenize::Bpe;
use lm4db_transformer::ModelConfig;

/// A `(subject, attribute, value)` triple recovered from a sentence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractedFact {
    /// Entity key.
    pub subject: String,
    /// Attribute name.
    pub attribute: String,
    /// Value text.
    pub value: String,
}

/// Slot extraction for a known template id, assuming single-word slots
/// (which our fact generator guarantees).
pub fn extract_with_template(sentence: &str, template: usize) -> Option<ExtractedFact> {
    let w: Vec<&str> = sentence.split_whitespace().collect();
    match template {
        // "the {a} of {s} is {v}"
        0 if w.len() == 6 && w[0] == "the" && w[2] == "of" && w[4] == "is" => Some(ExtractedFact {
            attribute: w[1].into(),
            subject: w[3].into(),
            value: w[5].into(),
        }),
        // "{s} has a {a} of {v}"
        1 if w.len() == 6 && w[1] == "has" && w[2] == "a" && w[4] == "of" => Some(ExtractedFact {
            subject: w[0].into(),
            attribute: w[3].into(),
            value: w[5].into(),
        }),
        // "{s} 's {a} is {v}"
        2 if w.len() == 5 && w[1] == "'s" && w[3] == "is" => Some(ExtractedFact {
            subject: w[0].into(),
            attribute: w[2].into(),
            value: w[4].into(),
        }),
        // "for {s} the {a} is {v}"
        3 if w.len() == 6 && w[0] == "for" && w[2] == "the" && w[4] == "is" => {
            Some(ExtractedFact {
                subject: w[1].into(),
                attribute: w[3].into(),
                value: w[5].into(),
            })
        }
        _ => None,
    }
}

/// Anything that reads one sentence into a fact.
pub trait FactExtractor {
    /// Extracts the fact, or `None` when the sentence is not understood.
    fn extract(&mut self, sentence: &str) -> Option<ExtractedFact>;
}

/// The symbolic baseline: canonical template only.
pub struct ExactExtractor;

impl FactExtractor for ExactExtractor {
    fn extract(&mut self, sentence: &str) -> Option<ExtractedFact> {
        extract_with_template(sentence, 0)
    }
}

/// LM extractor: a fine-tuned encoder classifies the sentence's template,
/// then the matching slot pattern is applied.
pub struct LmExtractor {
    clf: FineTunedClassifier<Bpe>,
}

impl LmExtractor {
    /// Trains the template classifier on synthetic labeled sentences built
    /// from the known templates over a slot vocabulary.
    pub fn train(
        cfg: ModelConfig,
        subjects: &[String],
        attributes: &[String],
        values: &[String],
        epochs: usize,
        seed: u64,
    ) -> Self {
        let mut rng = Rand::seeded(seed);
        let mut examples: Vec<(String, usize)> = Vec::new();
        for _ in 0..60 {
            let s = &subjects[rng.below(subjects.len())];
            let a = &attributes[rng.below(attributes.len())];
            let v = &values[rng.below(values.len())];
            for (tid, t) in TEMPLATES.iter().enumerate() {
                let text = t.replace("{s}", s).replace("{a}", a).replace("{v}", v);
                examples.push((text, tid));
            }
        }
        let bpe = Bpe::train(examples.iter().map(|(t, _)| t.as_str()), 700);
        let labels: Vec<String> = (0..TEMPLATES.len()).map(|i| format!("t{i}")).collect();
        let mut clf = FineTunedClassifier::new(cfg, bpe, labels, seed);
        clf.fit(&examples, epochs, 8, 2e-3);
        LmExtractor { clf }
    }
}

impl FactExtractor for LmExtractor {
    fn extract(&mut self, sentence: &str) -> Option<ExtractedFact> {
        let template = self.clf.classify(sentence);
        extract_with_template(sentence, template).or_else(|| {
            // The classifier may err; fall back to trying every template.
            (0..TEMPLATES.len()).find_map(|t| extract_with_template(sentence, t))
        })
    }
}

/// Oracle extractor that tries every template pattern (the upper bound for
/// pattern-based readers; still defeated by genuinely novel phrasings).
pub struct AllTemplatesExtractor;

impl FactExtractor for AllTemplatesExtractor {
    fn extract(&mut self, sentence: &str) -> Option<ExtractedFact> {
        (0..TEMPLATES.len()).find_map(|t| extract_with_template(sentence, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm4db_corpus::all_paraphrases;

    #[test]
    fn extracts_every_template() {
        let phrases = all_paraphrases("ada", "salary", "120");
        for (tid, p) in phrases.iter().enumerate() {
            let f = extract_with_template(p, tid).expect("pattern must match");
            assert_eq!(
                f,
                ExtractedFact {
                    subject: "ada".into(),
                    attribute: "salary".into(),
                    value: "120".into(),
                },
                "template {tid}: {p}"
            );
        }
    }

    #[test]
    fn wrong_template_does_not_match() {
        let canonical = "the salary of ada is 120";
        assert!(extract_with_template(canonical, 1).is_none());
        assert!(extract_with_template(canonical, 2).is_none());
    }

    #[test]
    fn exact_extractor_only_handles_canonical() {
        let mut e = ExactExtractor;
        assert!(e.extract("the salary of ada is 120").is_some());
        assert!(e.extract("ada has a salary of 120").is_none());
        assert!(e.extract("random words here").is_none());
    }

    #[test]
    fn all_templates_extractor_handles_paraphrases() {
        let mut e = AllTemplatesExtractor;
        for p in all_paraphrases("bob", "age", "41") {
            let f = e.extract(&p).expect("paraphrase not extracted");
            assert_eq!(f.value, "41");
        }
    }

    #[test]
    fn lm_extractor_recovers_paraphrased_facts() {
        let subjects = vec!["ada".to_string(), "bob".to_string(), "cora".to_string()];
        let attributes = vec!["salary".to_string(), "age".to_string()];
        let values = vec!["10".to_string(), "20".to_string(), "30".to_string()];
        let cfg = ModelConfig {
            max_seq_len: 24,
            ..ModelConfig::test()
        };
        let mut e = LmExtractor::train(cfg, &subjects, &attributes, &values, 6, 3);
        // Unseen slot combination, paraphrased phrasing.
        let f = e.extract("cora has a age of 30").expect("not extracted");
        assert_eq!(f.subject, "cora");
        assert_eq!(f.attribute, "age");
        assert_eq!(f.value, "30");
    }
}
