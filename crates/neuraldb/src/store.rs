//! The fact store and its query operators: the "database whose storage
//! layer is natural language" of Thorne et al. (VLDB 2021).

use std::collections::HashMap;

use crate::extract::{ExtractedFact, FactExtractor};

/// A database whose physical representation is a bag of NL sentences.
/// Queries run over the facts an extractor managed to *read* from those
/// sentences — unread sentences are silently unqueryable, which is exactly
/// the failure mode the extractor quality experiments measure.
pub struct NeuralDb {
    /// All ingested sentences (the "storage layer").
    sentences: Vec<String>,
    /// Facts successfully read.
    facts: Vec<ExtractedFact>,
    /// `(subject, attribute) -> fact index`.
    by_key: HashMap<(String, String), usize>,
    /// `attribute -> fact indices`.
    by_attr: HashMap<String, Vec<usize>>,
}

impl NeuralDb {
    /// Ingests sentences, reading facts with `extractor`.
    pub fn ingest(sentences: Vec<String>, extractor: &mut dyn FactExtractor) -> Self {
        let mut facts = Vec::new();
        let mut by_key = HashMap::new();
        let mut by_attr: HashMap<String, Vec<usize>> = HashMap::new();
        for s in &sentences {
            if let Some(f) = extractor.extract(s) {
                let idx = facts.len();
                by_key.insert((f.subject.clone(), f.attribute.clone()), idx);
                by_attr.entry(f.attribute.clone()).or_default().push(idx);
                facts.push(f);
            }
        }
        NeuralDb {
            sentences,
            facts,
            by_key,
            by_attr,
        }
    }

    /// Number of stored sentences.
    pub fn sentence_count(&self) -> usize {
        self.sentences.len()
    }

    /// Number of facts the extractor could read.
    pub fn fact_count(&self) -> usize {
        self.facts.len()
    }

    /// Fraction of sentences successfully read.
    pub fn read_rate(&self) -> f32 {
        self.fact_count() as f32 / self.sentence_count().max(1) as f32
    }

    /// Lookup: the value of `attribute` for `subject`.
    pub fn lookup(&self, subject: &str, attribute: &str) -> Option<&str> {
        self.by_key
            .get(&(subject.to_string(), attribute.to_string()))
            .map(|&i| self.facts[i].value.as_str())
    }

    /// Count: how many subjects have `attribute = value`.
    pub fn count(&self, attribute: &str, value: &str) -> usize {
        self.by_attr
            .get(attribute)
            .map(|idxs| {
                idxs.iter()
                    .filter(|&&i| self.facts[i].value == value)
                    .count()
            })
            .unwrap_or(0)
    }

    /// Min/max: the subject with the extreme numeric value of `attribute`.
    pub fn extreme(&self, attribute: &str, max: bool) -> Option<&str> {
        let idxs = self.by_attr.get(attribute)?;
        let best = idxs
            .iter()
            .filter_map(|&i| self.facts[i].value.parse::<f64>().ok().map(|v| (i, v)))
            .reduce(|a, b| {
                let better = if max { b.1 > a.1 } else { b.1 < a.1 };
                if better {
                    b
                } else {
                    a
                }
            })?;
        Some(self.facts[best.0].subject.as_str())
    }

    /// Two-hop query: the values of `target_attr` for every subject whose
    /// `filter_attr` equals `filter_value` (sorted for determinism).
    pub fn join(&self, filter_attr: &str, filter_value: &str, target_attr: &str) -> Vec<&str> {
        let Some(idxs) = self.by_attr.get(filter_attr) else {
            return vec![];
        };
        let mut out: Vec<&str> = idxs
            .iter()
            .filter(|&&i| self.facts[i].value == filter_value)
            .filter_map(|&i| {
                let subject = &self.facts[i].subject;
                self.lookup(subject, target_attr)
            })
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{AllTemplatesExtractor, ExactExtractor};
    use lm4db_corpus::{facts_from_table, make_domain, DomainKind};
    use lm4db_tensor::Rand;

    fn sentences(paraphrase_rate: f32) -> (lm4db_corpus::Domain, Vec<String>) {
        let d = make_domain(DomainKind::Employees, 20, 7);
        let mut rng = Rand::seeded(1);
        let facts = facts_from_table(&d.table, &d.key_col, paraphrase_rate, &mut rng);
        let texts = facts.into_iter().map(|f| f.text).collect();
        (d, texts)
    }

    #[test]
    fn canonical_sentences_are_fully_readable() {
        let (_, texts) = sentences(0.0);
        let db = NeuralDb::ingest(texts, &mut ExactExtractor);
        assert_eq!(db.read_rate(), 1.0);
        assert_eq!(db.fact_count(), db.sentence_count());
    }

    #[test]
    fn paraphrases_defeat_the_exact_reader_but_not_templates() {
        let (_, texts) = sentences(0.8);
        let exact = NeuralDb::ingest(texts.clone(), &mut ExactExtractor);
        let all = NeuralDb::ingest(texts, &mut AllTemplatesExtractor);
        assert!(exact.read_rate() < 0.6, "exact rate {}", exact.read_rate());
        assert_eq!(all.read_rate(), 1.0);
    }

    #[test]
    fn lookup_returns_table_values() {
        let (d, texts) = sentences(0.0);
        let db = NeuralDb::ingest(texts, &mut ExactExtractor);
        // Compare against the source table for one row.
        let name_idx = d.table.schema.index_of(&d.key_col).unwrap();
        let dept_idx = d.table.schema.index_of("dept").unwrap();
        let row = &d.table.rows[0];
        let subject = match &row[name_idx] {
            lm4db_sql::Value::Str(s) => s.clone(),
            _ => unreachable!(),
        };
        let dept = match &row[dept_idx] {
            lm4db_sql::Value::Str(s) => s.clone(),
            _ => unreachable!(),
        };
        assert_eq!(db.lookup(&subject, "dept"), Some(dept.as_str()));
    }

    #[test]
    fn count_and_extreme_queries() {
        let (d, texts) = sentences(0.0);
        let db = NeuralDb::ingest(texts, &mut ExactExtractor);
        // Count per dept must sum to the table size.
        let total: usize = d
            .distinct_text_values("dept")
            .iter()
            .map(|v| db.count("dept", v))
            .sum();
        assert_eq!(total, d.table.len());
        // The max-salary subject exists and has the max value.
        let top = db.extreme("salary", true).expect("no max found");
        let top_val: f64 = db.lookup(top, "salary").unwrap().parse().unwrap();
        for row in &d.table.rows {
            let sal = row[d.table.schema.index_of("salary").unwrap()]
                .as_f64()
                .unwrap();
            assert!(sal <= top_val);
        }
    }

    #[test]
    fn join_two_hop() {
        let (d, texts) = sentences(0.0);
        let db = NeuralDb::ingest(texts, &mut ExactExtractor);
        let depts = d.distinct_text_values("dept");
        let cities = db.join("dept", &depts[0], "city");
        assert_eq!(cities.len(), db.count("dept", &depts[0]));
    }

    #[test]
    fn unknown_queries_return_empty() {
        let (_, texts) = sentences(0.0);
        let db = NeuralDb::ingest(texts, &mut ExactExtractor);
        assert_eq!(db.lookup("nobody", "salary"), None);
        assert_eq!(db.count("nope", "x"), 0);
        assert!(db.extreme("nope", true).is_none());
        assert!(db.join("nope", "x", "y").is_empty());
    }
}
