//! Parallel/serial parity: the threaded kernels must produce bit-identical
//! output at any thread count.
//!
//! Two layers of coverage:
//! 1. In-process: every matmul-family kernel is compared against a naive
//!    serial reference that replicates the documented accumulation order,
//!    with *exact* float equality — including a proptest over random shapes.
//! 2. Cross-thread-count: a fingerprint test re-runs this binary as a
//!    subprocess under `LM4DB_THREADS` ∈ {1, 2, 7} and asserts the bit
//!    pattern of a full forward/backward suite is identical.

use lm4db_tensor::{Graph, Rand, Tensor};
use proptest::prelude::*;

/// Naive batched matmul with the same per-element fold order as the
/// parallel kernel: `out[i][j]` accumulates over `p` ascending.
fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape()[a.rank() - 2], a.shape()[a.rank() - 1]);
    let n = b.shape()[b.rank() - 1];
    let ab: usize = a.shape()[..a.rank() - 2].iter().product();
    let broadcast = b.rank() == 2 && a.rank() > 2;
    let mut out = vec![0.0f32; ab * m * n];
    for batch in 0..ab {
        let b_off = if broadcast { 0 } else { batch * k * n };
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a.data()[batch * m * k + i * k + p] * b.data()[b_off + p * n + j];
                }
                out[batch * m * n + i * n + j] = acc;
            }
        }
    }
    let mut shape = a.shape()[..a.rank() - 2].to_vec();
    shape.push(m);
    shape.push(n);
    Tensor::new(shape, out)
}

fn rand_tensor(shape: &[usize], rng: &mut Rand) -> Tensor {
    let n: usize = shape.iter().product();
    let data: Vec<f32> = rng.uniform_vec(n).into_iter().map(|u| u - 0.5).collect();
    Tensor::new(shape.to_vec(), data)
}

#[test]
fn matmul_matches_naive_reference_exactly() {
    let mut rng = Rand::seeded(99);
    for (sa, sb) in [
        (vec![3usize, 5], vec![5usize, 4]),
        (vec![2, 7, 65], vec![65, 9]), // broadcast rhs, k > K_BLOCK
        (vec![2, 3, 6, 70], vec![2, 3, 70, 5]), // batched, k > K_BLOCK
        (vec![1, 130, 33], vec![33, 64]), // many rows -> many chunks
    ] {
        let a = rand_tensor(&sa, &mut rng);
        let b = rand_tensor(&sb, &mut rng);
        assert_eq!(a.matmul(&b).data(), naive_matmul(&a, &b).data());
    }
}

#[test]
fn matmul_bt_matches_transposed_reference_exactly() {
    let mut rng = Rand::seeded(7);
    for (sa, sb) in [
        (vec![4usize, 6], vec![5usize, 6]),
        (vec![3, 8, 70], vec![9, 70]), // broadcast rhs
        (vec![2, 2, 8, 70], vec![2, 2, 9, 70]),
    ] {
        let a = rand_tensor(&sa, &mut rng);
        let b = rand_tensor(&sb, &mut rng);
        let rb = b.rank();
        let bt = b.transpose(rb - 2, rb - 1);
        assert_eq!(a.matmul_bt(&b).data(), naive_matmul(&a, &bt).data());
    }
}

#[test]
fn matmul_tn_matches_transposed_reference_exactly() {
    let mut rng = Rand::seeded(13);
    for (sa, sb) in [
        (vec![2usize, 6, 5], vec![2usize, 6, 7]),
        (vec![3, 2, 70, 8], vec![3, 2, 70, 9]),
    ] {
        let a = rand_tensor(&sa, &mut rng);
        let b = rand_tensor(&sb, &mut rng);
        let ra = a.rank();
        let at = a.transpose(ra - 2, ra - 1);
        assert_eq!(a.matmul_tn(&b).data(), naive_matmul(&at, &b).data());
    }
}

#[test]
fn matmul_tn_acc_matches_batch_summed_reference_exactly() {
    // out[p][j] folds over (batch, i) ascending — replicate exactly.
    let mut rng = Rand::seeded(17);
    let a = rand_tensor(&[3, 70, 6], &mut rng);
    let b = rand_tensor(&[3, 70, 8], &mut rng);
    let (bt, m, k, n) = (3, 70, 6, 8);
    let mut expect = vec![0.0f32; k * n];
    for p in 0..k {
        for j in 0..n {
            let mut acc = 0.0f32;
            for batch in 0..bt {
                for i in 0..m {
                    acc +=
                        a.data()[batch * m * k + i * k + p] * b.data()[batch * m * n + i * n + j];
                }
            }
            expect[p * n + j] = acc;
        }
    }
    assert_eq!(a.matmul_tn_acc(&b).data(), &expect[..]);
}

proptest! {
    #[test]
    fn matmul_matches_naive_on_random_shapes(
        batch in 1usize..4,
        m in 1usize..16,
        k in 1usize..96,
        n in 1usize..12,
        broadcast in prop::bool::ANY,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Rand::seeded(seed);
        let a = rand_tensor(&[batch, m, k], &mut rng);
        let b = if broadcast {
            rand_tensor(&[k, n], &mut rng)
        } else {
            rand_tensor(&[batch, k, n], &mut rng)
        };
        let got = a.matmul(&b);
        let want = naive_matmul(&a, &b);
        prop_assert_eq!(got.data(), want.data());
    }

    #[test]
    fn matmul_bt_matches_naive_on_random_shapes(
        batch in 1usize..4,
        m in 1usize..16,
        k in 1usize..96,
        n in 1usize..12,
        broadcast in prop::bool::ANY,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Rand::seeded(seed ^ 0xb7);
        let a = rand_tensor(&[batch, m, k], &mut rng);
        let b = if broadcast {
            rand_tensor(&[n, k], &mut rng)
        } else {
            rand_tensor(&[batch, n, k], &mut rng)
        };
        let rb = b.rank();
        let bt = b.transpose(rb - 2, rb - 1);
        let got = a.matmul_bt(&b);
        let want = naive_matmul(&a, &bt);
        prop_assert_eq!(got.data(), want.data());
    }

    #[test]
    fn matmul_tn_matches_naive_on_random_shapes(
        batch in 1usize..4,
        m in 1usize..32,
        k in 1usize..12,
        n in 1usize..12,
        seed in 0u64..1_000_000,
    ) {
        // `m` here is the reduction dim of the transposed product.
        let mut rng = Rand::seeded(seed ^ 0x73);
        let a = rand_tensor(&[batch, m, k], &mut rng);
        let b = rand_tensor(&[batch, m, n], &mut rng);
        let at = a.transpose(1, 2);
        let got = a.matmul_tn(&b);
        let want = naive_matmul(&at, &b);
        prop_assert_eq!(got.data(), want.data());
    }

    #[test]
    fn matmul_tn_acc_matches_naive_on_random_shapes(
        batch in 1usize..4,
        m in 1usize..32,
        k in 1usize..12,
        n in 1usize..12,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Rand::seeded(seed ^ 0xac);
        let a = rand_tensor(&[batch, m, k], &mut rng);
        let b = rand_tensor(&[batch, m, n], &mut rng);
        // out[p][j] folds over (batch, i) ascending.
        let mut expect = vec![0.0f32; k * n];
        for (p, row) in expect.chunks_mut(n).enumerate() {
            for (j, out) in row.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for bt in 0..batch {
                    for i in 0..m {
                        acc += a.data()[bt * m * k + i * k + p] * b.data()[bt * m * n + i * n + j];
                    }
                }
                *out = acc;
            }
        }
        let got = a.matmul_tn_acc(&b);
        prop_assert_eq!(got.data(), &expect[..]);
    }

    #[test]
    fn int8_round_trip_error_is_within_half_a_step(
        len in 1usize..256,
        scale in 0.01f32..100.0,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Rand::seeded(seed ^ 0x18);
        let x: Vec<f32> = rng
            .uniform_vec(len)
            .into_iter()
            .map(|u| (u - 0.5) * scale)
            .collect();
        let (q, s, z) = lm4db_tensor::quantize_activation(&x);
        // Asymmetric per-vector grid: every element decodes to within half
        // a quantization step (plus float slack) of the original — the
        // 254-step range guarantees no value ever clamps.
        for (&xi, &qi) in x.iter().zip(q.iter()) {
            let back = (i32::from(qi) - z) as f32 * s;
            prop_assert!(
                (xi - back).abs() <= s * 0.5 + 1e-6 * scale,
                "element {} decoded to {} with step {}", xi, back, s
            );
        }
    }

    #[test]
    fn int8_matvec_is_exact_over_i32(
        d_in in 1usize..96,
        d_out in 1usize..24,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Rand::seeded(seed ^ 0x88);
        let w: Vec<f32> = rng.uniform_vec(d_in * d_out).into_iter().map(|u| u - 0.5).collect();
        let x: Vec<f32> = rng.uniform_vec(d_in).into_iter().map(|u| u - 0.5).collect();
        let bias: Vec<f32> = rng.uniform_vec(d_out).into_iter().map(|u| u - 0.5).collect();
        let qm = lm4db_tensor::QuantizedMatrix::from_weight(&w, d_in, d_out);
        let (qx, sx, zx) = lm4db_tensor::quantize_activation(&x);
        let got = qm.matvec(&qx, sx, zx, &bias);
        for r in 0..d_out {
            // Integer accumulation is exact, so the kernel must equal the
            // widened i64 reference bit for bit after the single dequant
            // (including the zero-point correction by the row's weight sum).
            let mut acc = 0i64;
            let mut wsum = 0i64;
            for (c, &qxc) in qx.iter().enumerate() {
                let qw = i64::from(
                    (qm.dequantize(r, c) / qm.scale(r).max(f32::MIN_POSITIVE)).round() as i32,
                );
                acc += qw * i64::from(qxc);
                wsum += qw;
            }
            let want = bias[r] + (acc - i64::from(zx) * wsum) as f32 * (qm.scale(r) * sx);
            prop_assert_eq!(got[r], want);
        }
    }
}

/// A forward/backward sweep through every parallelized graph op; returns an
/// FNV-1a hash over the exact bit patterns of the value and all gradients.
fn suite_fingerprint() -> u64 {
    let mut rng = Rand::seeded(2024);
    let mut g = Graph::new();
    let x = g.param(rand_tensor(&[4, 33, 48], &mut rng));
    let w = g.param(rand_tensor(&[48, 64], &mut rng));
    let gain = g.param(Tensor::full(&[64], 1.0));
    let bias = g.param(Tensor::zeros(&[64]));
    let b = g.param(rand_tensor(&[64], &mut rng));
    let h = g.matmul(x, w); // broadcast rhs
    let h = g.add_bcast(h, b);
    let h = g.layer_norm(h, gain, bias, 1e-5);
    let h = g.gelu(h);
    let a = g.softmax_last(h);
    let w2 = g.param(rand_tensor(&[4, 64, 64], &mut rng));
    let h = g.matmul(a, w2); // batched rhs
    let loss = g.mean_all(h);
    g.backward(loss);

    let mut fp = 0xcbf29ce484222325u64;
    let mut eat = |t: &Tensor| {
        for &v in t.data() {
            fp ^= v.to_bits() as u64;
            fp = fp.wrapping_mul(0x100000001b3);
        }
    };
    eat(g.value(loss));
    for var in [x, w, gain, bias, b, w2] {
        eat(g.grad(var).expect("param has grad"));
    }
    fp
}

/// Child half of the cross-thread-count check: prints the fingerprint.
/// Run directly it is a plain (always-passing) test; the parent test below
/// spawns it under different `LM4DB_THREADS` values and compares output.
#[test]
fn parity_child_fingerprint() {
    println!("PARITY_FP={:016x}", suite_fingerprint());
}

#[test]
fn parity_across_thread_counts() {
    let exe = std::env::current_exe().expect("test binary path");
    let mut fingerprints = Vec::new();
    for threads in ["1", "2", "7"] {
        let out = std::process::Command::new(&exe)
            .args(["parity_child_fingerprint", "--exact", "--nocapture"])
            .env("LM4DB_THREADS", threads)
            .output()
            .expect("spawn parity child");
        assert!(
            out.status.success(),
            "child failed at LM4DB_THREADS={threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        // libtest may print its own prefix on the same line; search by
        // substring rather than line start.
        let fp = stdout
            .split("PARITY_FP=")
            .nth(1)
            .map(|rest| rest.chars().take(16).collect::<String>())
            .unwrap_or_else(|| panic!("no fingerprint in child output:\n{stdout}"));
        fingerprints.push((threads, fp));
    }
    let first = &fingerprints[0].1;
    for (threads, fp) in &fingerprints {
        assert_eq!(
            fp, first,
            "output at LM4DB_THREADS={threads} differs from LM4DB_THREADS=1"
        );
    }
}
