//! Shape bookkeeping helpers shared by tensor operations.

/// Returns the total number of elements implied by `shape`.
///
/// The empty shape `[]` denotes a scalar and has one element.
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Row-major strides for `shape`.
///
/// `strides(&[2, 3, 4]) == [12, 4, 1]`.
pub fn strides(shape: &[usize]) -> Vec<usize> {
    let mut out = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        out[i] = out[i + 1] * shape[i + 1];
    }
    out
}

/// Splits `shape` into `(batch, rows, cols)` treating all leading dimensions
/// as one flattened batch dimension. Requires rank >= 2.
pub fn batch_dims(shape: &[usize]) -> (usize, usize, usize) {
    assert!(
        shape.len() >= 2,
        "matrix view requires rank >= 2, got shape {shape:?}"
    );
    let cols = shape[shape.len() - 1];
    let rows = shape[shape.len() - 2];
    let batch = shape[..shape.len() - 2].iter().product();
    (batch, rows, cols)
}

/// Checks that `a` and `b` are identical shapes, panicking with a useful
/// message otherwise. Used by element-wise ops where we deliberately do not
/// support NumPy-style implicit broadcasting (explicit ops exist instead).
pub fn assert_same_shape(op: &str, a: &[usize], b: &[usize]) {
    assert!(
        a == b,
        "{op}: shape mismatch {a:?} vs {b:?} (implicit broadcasting is not supported)"
    );
}

/// True if `inner` equals the trailing dimensions of `outer`.
///
/// Used for row-broadcast ops such as bias addition, where a `[d]` tensor is
/// added to every row of a `[..., d]` tensor.
pub fn is_trailing_of(inner: &[usize], outer: &[usize]) -> bool {
    inner.len() <= outer.len() && outer[outer.len() - inner.len()..] == *inner
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_counts_elements() {
        assert_eq!(numel(&[]), 1);
        assert_eq!(numel(&[5]), 5);
        assert_eq!(numel(&[2, 3, 4]), 24);
        assert_eq!(numel(&[7, 0, 3]), 0);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides(&[6]), vec![1]);
        assert!(strides(&[]).is_empty());
    }

    #[test]
    fn batch_dims_flattens_leading() {
        assert_eq!(batch_dims(&[4, 5]), (1, 4, 5));
        assert_eq!(batch_dims(&[2, 3, 4, 5]), (6, 4, 5));
    }

    #[test]
    #[should_panic(expected = "rank >= 2")]
    fn batch_dims_rejects_vectors() {
        batch_dims(&[3]);
    }

    #[test]
    fn trailing_shapes() {
        assert!(is_trailing_of(&[4], &[2, 3, 4]));
        assert!(is_trailing_of(&[3, 4], &[2, 3, 4]));
        assert!(is_trailing_of(&[2, 3, 4], &[2, 3, 4]));
        assert!(!is_trailing_of(&[2], &[2, 3, 4]));
        assert!(!is_trailing_of(&[2, 3, 4, 5], &[3, 4, 5]));
    }
}
