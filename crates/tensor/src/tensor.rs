//! The dense `Tensor` value type and its pure (non-differentiable) kernels.
//!
//! All operations here are plain functions of their inputs; the autograd
//! layer in [`crate::graph`] composes them and supplies the matching
//! backward passes. Data is stored row-major in an `Arc<Vec<f32>>` so that
//! cloning a tensor is cheap and saved activations can be shared between the
//! forward value and the closures recorded on the tape.

use std::fmt;
use std::sync::Arc;

use crate::shape::{assert_same_shape, batch_dims, numel, strides};

/// Minimum rows per parallel chunk so a chunk amortizes both dispatch
/// overhead and the per-chunk panel packing of the tiled kernels: roughly
/// 128k multiply-adds of work per chunk (the register-tiled microkernel
/// retires madds ~4x faster than the old scalar loop did, so the work
/// floor scales up with it), and never fewer rows than one register tile
/// so packed panels are reused at least [`crate::kernels::MR`] times.
fn matmul_min_rows(_m: usize, n: usize, k: usize) -> usize {
    (131_072 / (n * k).max(1)).max(crate::kernels::MR)
}

/// Minimum elements per chunk for cheap elementwise kernels.
const ELEMWISE_MIN_CHUNK: usize = 16_384;

/// Minimum rows per chunk for softmax-style row kernels (a few passes of
/// exp/log per element).
fn softmax_min_rows(d: usize) -> usize {
    (2_048 / d.max(1)).max(1)
}

/// A dense, row-major, `f32` tensor.
///
/// Cloning is O(1): the buffer is shared until a mutation forces a copy
/// (copy-on-write via [`Tensor::data_mut`]).
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Arc<Vec<f32>>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preview: Vec<f32> = self.data.iter().copied().take(8).collect();
        let ellipsis = if self.data.len() > 8 { ", ..." } else { "" };
        write!(f, "Tensor{:?} {:?}{}", self.shape, preview, ellipsis)
    }
}

impl Tensor {
    /// Builds a tensor from a shape and matching data buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the element count of `shape`.
    pub fn new(shape: Vec<usize>, data: Vec<f32>) -> Self {
        assert_eq!(
            numel(&shape),
            data.len(),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            shape,
            data: Arc::new(data),
        }
    }

    /// A tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor::new(shape.to_vec(), vec![0.0; numel(shape)])
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor::new(shape.to_vec(), vec![value; numel(shape)])
    }

    /// A rank-0 scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor::new(vec![], vec![value])
    }

    /// A rank-1 tensor from a slice.
    pub fn from_vec(data: Vec<f32>) -> Self {
        let n = data.len();
        Tensor::new(vec![n], data)
    }

    /// The shape of this tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Read-only view of the underlying buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the buffer, copying if it is shared.
    pub fn data_mut(&mut self) -> &mut [f32] {
        let v: &mut Vec<f32> = Arc::make_mut(&mut self.data);
        v.as_mut_slice()
    }

    /// The single value of a scalar (rank-0 or one-element) tensor.
    ///
    /// # Panics
    /// Panics if the tensor holds more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.data.len(),
            1,
            "item() on tensor with shape {:?}",
            self.shape
        );
        self.data[0]
    }

    /// Returns a tensor with the same data and a new shape of equal size.
    pub fn reshape(&self, new_shape: &[usize]) -> Tensor {
        assert_eq!(
            numel(&self.shape),
            numel(new_shape),
            "reshape {:?} -> {:?} changes element count",
            self.shape,
            new_shape
        );
        Tensor {
            shape: new_shape.to_vec(),
            data: Arc::clone(&self.data),
        }
    }

    /// Element-wise map into a new tensor. Large tensors map in parallel;
    /// each element is a pure function of one input, so chunking cannot
    /// change the result.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let src = &self.data;
        let mut out = vec![0.0f32; src.len()];
        crate::pool::parallel_rows_mut(&mut out, src.len(), ELEMWISE_MIN_CHUNK, |first, block| {
            for (o, &x) in block.iter_mut().zip(src[first..].iter()) {
                *o = f(x);
            }
        });
        Tensor {
            shape: self.shape.clone(),
            data: Arc::new(out),
        }
    }

    /// Element-wise combination of two same-shaped tensors (parallel for
    /// large tensors, like [`Tensor::map`]).
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        assert_same_shape("zip", &self.shape, &other.shape);
        let (a, b) = (&self.data, &other.data);
        let mut out = vec![0.0f32; a.len()];
        crate::pool::parallel_rows_mut(&mut out, a.len(), ELEMWISE_MIN_CHUNK, |first, block| {
            for (i, o) in block.iter_mut().enumerate() {
                *o = f(a[first + i], b[first + i]);
            }
        });
        Tensor {
            shape: self.shape.clone(),
            data: Arc::new(out),
        }
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Multiplication by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// In-place `self += other * s` (axpy). Avoids allocation in gradient
    /// accumulation, the hottest loop of the backward pass.
    pub fn add_scaled_assign(&mut self, other: &Tensor, s: f32) {
        assert_same_shape("add_scaled_assign", &self.shape, &other.shape);
        let other = Arc::clone(&other.data);
        let dst = self.data_mut();
        for (d, &o) in dst.iter_mut().zip(other.iter()) {
            *d += o * s;
        }
    }

    /// Adds `row` (shape `[d]`) to every trailing row of `self`
    /// (shape `[..., d]`). Used for bias addition.
    pub fn add_row_broadcast(&self, row: &Tensor) -> Tensor {
        assert_eq!(row.rank(), 1, "add_row_broadcast expects a rank-1 bias");
        let d = row.shape[0];
        assert_eq!(
            self.shape.last().copied(),
            Some(d),
            "bias of width {d} does not match shape {:?}",
            self.shape
        );
        let mut out = self.as_ref().to_vec();
        let rows = out.len() / d.max(1);
        let bias = &row.data;
        crate::pool::parallel_rows_mut(
            &mut out,
            rows,
            (ELEMWISE_MIN_CHUNK / d.max(1)).max(1),
            |_, block| {
                for chunk in block.chunks_mut(d) {
                    for (o, &b) in chunk.iter_mut().zip(bias.iter()) {
                        *o += b;
                    }
                }
            },
        );
        Tensor {
            shape: self.shape.clone(),
            data: Arc::new(out),
        }
    }

    /// Sum of all elements, as a scalar tensor.
    pub fn sum_all(&self) -> Tensor {
        Tensor::scalar(self.data.iter().sum())
    }

    /// Mean of all elements, as a scalar tensor.
    pub fn mean_all(&self) -> Tensor {
        let n = self.data.len().max(1) as f32;
        Tensor::scalar(self.data.iter().sum::<f32>() / n)
    }

    /// Sums over all leading dimensions, collapsing `[..., d]` to `[d]`.
    /// This is the backward op of [`Tensor::add_row_broadcast`].
    pub fn sum_to_row(&self, d: usize) -> Tensor {
        assert_eq!(
            self.shape.last().copied(),
            Some(d),
            "sum_to_row({d}) on shape {:?}",
            self.shape
        );
        let mut out = vec![0.0f32; d];
        let data = &self.data;
        let rows = data.len() / d.max(1);
        // Parallel over output columns; every column still accumulates its
        // rows in ascending order, exactly like the serial loop.
        let min_cols = (ELEMWISE_MIN_CHUNK / rows.max(1)).max(1);
        crate::pool::parallel_rows_mut(&mut out, d, min_cols, |first, block| {
            for chunk in data.chunks(d) {
                for (o, &x) in block.iter_mut().zip(chunk[first..].iter()) {
                    *o += x;
                }
            }
        });
        Tensor::new(vec![d], out)
    }

    /// Swaps two axes, materializing the permuted layout.
    pub fn transpose(&self, a: usize, b: usize) -> Tensor {
        assert!(
            a < self.rank() && b < self.rank(),
            "transpose axes ({a},{b}) out of range for shape {:?}",
            self.shape
        );
        if a == b {
            return self.clone();
        }
        let mut new_shape = self.shape.clone();
        new_shape.swap(a, b);
        let in_strides = strides(&self.shape);
        let out_strides = strides(&new_shape);
        let mut out = vec![0.0f32; self.data.len()];
        // Walk output positions in order; compute the matching input index.
        let rank = self.rank();
        let mut idx = vec![0usize; rank];
        for (pos, slot) in out.iter_mut().enumerate() {
            // Decompose pos into output multi-index.
            let mut rem = pos;
            for (i, s) in out_strides.iter().enumerate() {
                idx[i] = rem / s;
                rem %= s;
            }
            idx.swap(a, b); // output index -> input index
            let src: usize = idx.iter().zip(in_strides.iter()).map(|(i, s)| i * s).sum();
            *slot = self.data[src];
        }
        Tensor::new(new_shape, out)
    }

    /// Batched matrix multiply.
    ///
    /// Accepts `[.., m, k] x [.., k, n]` where both sides share identical
    /// leading (batch) dimensions, or `[.., m, k] x [k, n]` where the 2-D
    /// right-hand side (a weight matrix) is broadcast over the batch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let _timer = lm4db_obs::leaf("kernel/matmul");
        let (ab, m, k) = batch_dims(&self.shape);
        let (bb, k2, n) = batch_dims(&other.shape);
        assert_eq!(
            k, k2,
            "matmul inner dims differ: {:?} x {:?}",
            self.shape, other.shape
        );
        let broadcast_rhs = other.rank() == 2 && self.rank() > 2;
        assert!(
            ab == bb || broadcast_rhs,
            "matmul batch dims differ: {:?} x {:?}",
            self.shape,
            other.shape
        );
        let mut out = vec![0.0f32; ab * m * n];
        let a = &self.data;
        let b = &other.data;
        // Parallel over output rows (batch x m). Each row is produced by
        // exactly one chunk with a fixed serial accumulation order (every
        // output element sums k ascending with one accumulator), so the
        // result is bit-identical at any thread count — and bit-identical
        // to a naive triple loop, since the register-tiled kernel only
        // changes which *elements* are in flight, never the order within
        // an element's chain. See `crate::kernels` for the MR x NR
        // microkernel and packed-panel layout.
        crate::pool::parallel_rows_mut(
            &mut out,
            ab * m,
            matmul_min_rows(m, n, k),
            |first, block| {
                crate::kernels::gemm_nn_block(first, block, a, b, m, k, n, broadcast_rhs);
            },
        );
        let mut shape = self.shape[..self.rank() - 2].to_vec();
        shape.push(m);
        shape.push(n);
        Tensor::new(shape, out)
    }

    /// Batched `A x B^T` without materializing the transpose: accepts
    /// `[.., m, k] x [.., n, k]` and yields `[.., m, n]`. Row-major `B`
    /// makes every inner product a contiguous dot product, which is why the
    /// backward pass prefers this over `transpose` + [`Tensor::matmul`].
    pub fn matmul_bt(&self, other: &Tensor) -> Tensor {
        let _timer = lm4db_obs::leaf("kernel/matmul_bt");
        let (ab, m, k) = batch_dims(&self.shape);
        let (bb, n, k2) = batch_dims(&other.shape);
        assert_eq!(
            k, k2,
            "matmul_bt inner dims differ: {:?} x {:?}",
            self.shape, other.shape
        );
        let broadcast_rhs = other.rank() == 2 && self.rank() > 2;
        assert!(
            ab == bb || broadcast_rhs,
            "matmul_bt batch dims differ: {:?} x {:?}",
            self.shape,
            other.shape
        );
        let mut out = vec![0.0f32; ab * m * n];
        let a = &self.data;
        let b = &other.data;
        // Packing transposes B panels up front, turning what used to be a
        // latency-bound scalar dot per output element into the same
        // register-tiled microkernel as `matmul` — with the identical
        // per-element k-ascending accumulation order.
        crate::pool::parallel_rows_mut(
            &mut out,
            ab * m,
            matmul_min_rows(m, n, k),
            |first, block| {
                crate::kernels::gemm_bt_block(first, block, a, b, m, k, n, broadcast_rhs);
            },
        );
        let mut shape = self.shape[..self.rank() - 2].to_vec();
        shape.push(m);
        shape.push(n);
        Tensor::new(shape, out)
    }

    /// Batched `A^T x B` without materializing the transpose: accepts
    /// `[.., m, k] x [.., m, n]` and yields `[.., k, n]` per batch. Used by
    /// the matmul backward pass for batched (non-broadcast) right-hand
    /// sides.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        let _timer = lm4db_obs::leaf("kernel/matmul_tn");
        let (ab, m, k) = batch_dims(&self.shape);
        let (bb, m2, n) = batch_dims(&other.shape);
        assert_eq!(
            (ab, m),
            (bb, m2),
            "matmul_tn leading dims differ: {:?} x {:?}",
            self.shape,
            other.shape
        );
        let mut out = vec![0.0f32; ab * k * n];
        let a = &self.data;
        let b = &other.data;
        // out[batch, p, :] = sum_i a[batch, i, p] * b[batch, i, :], i
        // ascending — identical to the serial ikj order on a materialized
        // transpose. The reduction walks rows of both operands, so the
        // rank-1-update microkernel gets contiguous loads with no packing.
        crate::pool::parallel_rows_mut(
            &mut out,
            ab * k,
            matmul_min_rows(k, n, m),
            |first, block| {
                crate::kernels::gemm_tn_block(first, block, a, b, m, k, n);
            },
        );
        let mut shape = self.shape[..self.rank() - 2].to_vec();
        shape.push(k);
        shape.push(n);
        Tensor::new(shape, out)
    }

    /// `A^T x B` summed over every batch: accepts `[.., m, k] x [.., m, n]`
    /// and yields `[k, n]`, i.e. `sum_batch A_b^T B_b`. This is exactly the
    /// gradient of a broadcast weight in `X x W`, computed without
    /// materializing any transpose. Parallel over the `k` output rows.
    pub fn matmul_tn_acc(&self, other: &Tensor) -> Tensor {
        let _timer = lm4db_obs::leaf("kernel/matmul_tn_acc");
        let (ab, m, k) = batch_dims(&self.shape);
        let (bb, m2, n) = batch_dims(&other.shape);
        assert_eq!(
            (ab, m),
            (bb, m2),
            "matmul_tn_acc leading dims differ: {:?} x {:?}",
            self.shape,
            other.shape
        );
        let mut out = vec![0.0f32; k * n];
        let a = &self.data;
        let b = &other.data;
        // out[p, :] = sum over (batch, i) of a[batch, i, p] * b[batch, i, :]
        // in ascending (batch, i) order — the same order a serial
        // accumulation over batches and rows would use. Same
        // rank-1-update microkernel as `matmul_tn`, with the batch
        // dimension flattened into the reduction.
        crate::pool::parallel_rows_mut(
            &mut out,
            k,
            matmul_min_rows(k, n, ab * m),
            |first, block| {
                crate::kernels::gemm_tn_acc_block(first, block, a, b, ab * m, k, n);
            },
        );
        Tensor::new(vec![k, n], out)
    }

    /// Softmax over the last dimension, numerically stabilized.
    pub fn softmax_last(&self) -> Tensor {
        let _timer = lm4db_obs::leaf("kernel/softmax");
        let d = *self.shape.last().expect("softmax_last requires rank >= 1");
        let mut out = self.as_ref().to_vec();
        let rows = out.len() / d.max(1);
        // Rows are independent, so row-parallelism is exact. The per-row
        // kernel is shared with the cached-attention path and the decoding
        // strategies (`crate::kernels::softmax_in_place`).
        crate::pool::parallel_rows_mut(&mut out, rows, softmax_min_rows(d), |_, block| {
            for row in block.chunks_mut(d) {
                crate::kernels::softmax_in_place(row);
            }
        });
        Tensor {
            shape: self.shape.clone(),
            data: Arc::new(out),
        }
    }

    /// Log-softmax over the last dimension.
    pub fn log_softmax_last(&self) -> Tensor {
        let _timer = lm4db_obs::leaf("kernel/log_softmax");
        let d = *self
            .shape
            .last()
            .expect("log_softmax_last requires rank >= 1");
        let mut out = self.as_ref().to_vec();
        let rows = out.len() / d.max(1);
        crate::pool::parallel_rows_mut(&mut out, rows, softmax_min_rows(d), |_, block| {
            for row in block.chunks_mut(d) {
                crate::kernels::log_softmax_in_place(row);
            }
        });
        Tensor {
            shape: self.shape.clone(),
            data: Arc::new(out),
        }
    }

    /// Frobenius / L2 norm of all elements.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Index of the maximum element within each trailing row, collapsing
    /// `[..., d]` to one index per row.
    pub fn argmax_last(&self) -> Vec<usize> {
        let d = *self.shape.last().expect("argmax_last requires rank >= 1");
        self.data
            .chunks(d)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }
}

impl AsRef<[f32]> for Tensor {
    fn as_ref(&self) -> &[f32] {
        &self.data
    }
}

/// GELU activation (tanh approximation, as used by BERT/GPT).
pub fn gelu(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
}

/// Derivative of [`gelu`] with respect to its input.
pub fn gelu_grad(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = SQRT_2_OVER_PI * (x + 0.044_715 * x3);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * SQRT_2_OVER_PI * (1.0 + 3.0 * 0.044_715 * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], data: &[f32]) -> Tensor {
        Tensor::new(shape.to_vec(), data.to_vec())
    }

    #[test]
    fn new_rejects_bad_lengths() {
        let result = std::panic::catch_unwind(|| Tensor::new(vec![2, 2], vec![1.0; 3]));
        assert!(result.is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = t(&[2, 2], &[1.0, 2.0, 3.0, 4.0]);
        let b = t(&[2, 2], &[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(a.add(&b).data(), &[11.0, 22.0, 33.0, 44.0]);
        assert_eq!(b.sub(&a).data(), &[9.0, 18.0, 27.0, 36.0]);
        assert_eq!(a.mul(&b).data(), &[10.0, 40.0, 90.0, 160.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn add_scaled_assign_accumulates() {
        let mut a = t(&[3], &[1.0, 1.0, 1.0]);
        let b = t(&[3], &[1.0, 2.0, 3.0]);
        a.add_scaled_assign(&b, 0.5);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn clone_is_shared_until_mutation() {
        let a = t(&[2], &[1.0, 2.0]);
        let mut b = a.clone();
        b.data_mut()[0] = 9.0;
        assert_eq!(a.data(), &[1.0, 2.0]);
        assert_eq!(b.data(), &[9.0, 2.0]);
    }

    #[test]
    fn matmul_2d() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[3, 2], &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_batched_and_broadcast() {
        // Two identical batches against a broadcast weight.
        let a = t(&[2, 1, 2], &[1.0, 2.0, 3.0, 4.0]);
        let w = t(&[2, 2], &[1.0, 0.0, 0.0, 1.0]); // identity
        let c = a.matmul(&w);
        assert_eq!(c.shape(), &[2, 1, 2]);
        assert_eq!(c.data(), a.data());

        // Fully batched.
        let b = t(&[2, 2, 1], &[1.0, 1.0, 2.0, 2.0]);
        let d = a.matmul(&b);
        assert_eq!(d.shape(), &[2, 1, 1]);
        assert_eq!(d.data(), &[3.0, 14.0]);
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_rejects_mismatch() {
        let a = t(&[2, 3], &[0.0; 6]);
        let b = t(&[2, 3], &[0.0; 6]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_swaps_axes() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let at = a.transpose(0, 1);
        assert_eq!(at.shape(), &[3, 2]);
        assert_eq!(at.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        // Transposing twice restores the original.
        assert_eq!(at.transpose(0, 1), a);
    }

    #[test]
    fn transpose_inner_axes_of_rank4() {
        // [1, 2, 2, 1] swap axes 1,2
        let a = t(&[1, 2, 2, 1], &[1.0, 2.0, 3.0, 4.0]);
        let b = a.transpose(1, 2);
        assert_eq!(b.shape(), &[1, 2, 2, 1]);
        assert_eq!(b.data(), &[1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0]);
        let s = a.softmax_last();
        for row in s.data().chunks(3) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row sums to {sum}");
        }
        // Large inputs must not overflow to NaN.
        assert!(s.data().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let a = t(&[1, 4], &[0.5, -1.0, 2.0, 0.0]);
        let ls = a.log_softmax_last();
        let s = a.softmax_last();
        for (l, p) in ls.data().iter().zip(s.data().iter()) {
            assert!((l.exp() - p).abs() < 1e-5);
        }
    }

    #[test]
    fn bias_broadcast_and_sum_back() {
        let x = t(&[2, 3], &[0.0; 6]);
        let b = t(&[3], &[1.0, 2.0, 3.0]);
        let y = x.add_row_broadcast(&b);
        assert_eq!(y.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        let back = y.sum_to_row(3);
        assert_eq!(back.data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn argmax_last_per_row() {
        let a = t(&[2, 3], &[0.1, 0.9, 0.0, 5.0, -1.0, 2.0]);
        assert_eq!(a.argmax_last(), vec![1, 0]);
    }

    #[test]
    fn gelu_matches_reference_points() {
        // Reference values from the tanh-approximation formula.
        assert!((gelu(0.0)).abs() < 1e-6);
        assert!((gelu(1.0) - 0.841_192).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.158_808).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.3, 1.7] {
            let eps = 1e-3;
            let fd = (gelu(x + eps) - gelu(x - eps)) / (2.0 * eps);
            assert!(
                (gelu_grad(x) - fd).abs() < 1e-2,
                "x={x}: analytic {} vs fd {}",
                gelu_grad(x),
                fd
            );
        }
    }
}
