//! # lm4db-tensor
//!
//! Dense `f32` tensors with reverse-mode automatic differentiation, built to
//! train the small transformer language models used throughout the LM4DB
//! reproduction of *"From BERT to GPT-3 Codex: Harnessing the Potential of
//! Very Large Language Models for Data Management"* (VLDB 2022).
//!
//! The crate deliberately implements only what transformer training needs:
//! batched matmul, softmax, layer norm, GELU, embedding gather/scatter,
//! cross-entropy, dropout, and an AdamW optimizer — all CPU, all seeded, all
//! deterministic.
//!
//! ```
//! use lm4db_tensor::{Graph, Tensor};
//!
//! let mut g = Graph::new();
//! let x = g.param(Tensor::from_vec(vec![1.0, 2.0, 3.0]));
//! let y = g.mul(x, x);
//! let loss = g.sum_all(y);
//! g.backward(loss);
//! assert_eq!(g.grad(x).unwrap().data(), &[2.0, 4.0, 6.0]);
//! ```

#![warn(missing_docs)]

pub mod graph;
pub mod init;
pub mod kernels;
pub mod optim;
pub mod pool;
pub mod quant;
pub mod shape;
pub mod tensor;

pub use graph::{Graph, Var, IGNORE_INDEX};
pub use init::Rand;
pub use optim::{clip_grad_norm, Adam, Bound, LrSchedule, ParamId, ParamStore, Sgd};
pub use pool::{
    parallel_for, parallel_rows_mut, parallel_rows_mut2, set_threads, threads,
    try_parallel_tasks_mut, TaskFailure,
};
pub use quant::{quantize_activation, QuantizedMatrix};
pub use tensor::Tensor;

#[cfg(test)]
mod proptests {
    use crate::{Graph, Tensor};
    use proptest::prelude::*;

    fn small_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
        prop::collection::vec(-2.0f32..2.0, len)
    }

    proptest! {
        #[test]
        fn softmax_rows_always_sum_to_one(data in small_vec(12)) {
            let t = Tensor::new(vec![3, 4], data);
            let s = t.softmax_last();
            for row in s.data().chunks(4) {
                let sum: f32 = row.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-4);
                prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
            }
        }

        #[test]
        fn transpose_is_involution(data in small_vec(24)) {
            let t = Tensor::new(vec![2, 3, 4], data);
            prop_assert_eq!(t.transpose(0, 2).transpose(0, 2), t.clone());
            prop_assert_eq!(t.transpose(1, 2).transpose(1, 2), t);
        }

        #[test]
        fn matmul_distributes_over_add(a in small_vec(6), b in small_vec(6), w in small_vec(6)) {
            let a = Tensor::new(vec![2, 3], a);
            let b = Tensor::new(vec![2, 3], b);
            let w = Tensor::new(vec![3, 2], w);
            let lhs = a.add(&b).matmul(&w);
            let rhs = a.matmul(&w).add(&b.matmul(&w));
            for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }

        #[test]
        fn autograd_sum_grad_is_ones(data in small_vec(8)) {
            let mut g = Graph::new();
            let x = g.param(Tensor::new(vec![2, 4], data));
            let s = g.sum_all(x);
            g.backward(s);
            prop_assert_eq!(g.grad(x).unwrap().data(), &[1.0f32; 8][..]);
        }

        #[test]
        fn cross_entropy_is_non_negative(data in small_vec(15), t0 in 0usize..5, t1 in 0usize..5, t2 in 0usize..5) {
            let mut g = Graph::new();
            let x = g.param(Tensor::new(vec![3, 5], data));
            let loss = g.cross_entropy(x, &[t0, t1, t2]);
            prop_assert!(g.value(loss).item() >= 0.0);
        }
    }
}
