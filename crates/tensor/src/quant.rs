//! Int8 weight quantization for the inference fast path.
//!
//! Scheme (DESIGN.md §5g): **symmetric per-row weights, asymmetric
//! activations** — the standard W8A8 recipe. A weight matrix is stored
//! transposed as `[d_out][d_in]` rows of `i8`, each row `r` carrying one
//! `f32` scale `s_r = max_abs(row_r) / 127`, so `w[r][c] ≈ q[r][c] · s_r`.
//! Activations are quantized dynamically per call with one scale `s_x`
//! and one zero point `z_x` for the whole vector: the quantization range
//! is `[min(x, 0), max(x, 0)]` (always containing zero, so `z_x` fits in
//! the i8 grid and zero is exactly representable), mapped with 254 steps
//! onto `[-128, 127]` — for one-sided activations such as GELU outputs
//! this roughly doubles the resolution a symmetric grid would give.
//!
//! The matvec accumulates in `i32` — integer arithmetic is exact, so the
//! result is independent of accumulation order and trivially bit-identical
//! at any thread count — and dequantizes once on store using the
//! precomputed per-row weight sums to cancel the zero point:
//!
//! ```text
//! y_r = bias_r + (Σ_c qw[r][c] · qx[c]  −  z_x · Σ_c qw[r][c]) · (s_r · s_x)
//! ```
//!
//! The accumulator cannot overflow: `|qw · qx| ≤ 127 · 128 = 16 256` per
//! term and the zero-point correction is bounded the same way, so `d_in`
//! would have to exceed 2³¹ / (2 · 16 256) ≈ 66 000 to wrap — orders of
//! magnitude above any layer width in this codebase (guarded by an
//! assert anyway).

/// Maximum quantized magnitude (symmetric: the grid is `-127..=127`).
pub const QMAX: f32 = 127.0;

/// Widths beyond this could overflow the i32 accumulator (the factor of
/// two covers the zero-point correction term).
const MAX_COLS: usize = (i32::MAX / (2 * 127 * 128)) as usize;

/// A weight matrix quantized to int8 with one scale per output row.
///
/// Storage is `[rows][cols]` row-major where `rows` is the **output**
/// dimension — i.e. the transpose of the `[d_in, d_out]` layout the f32
/// layers use — so the matvec reads each quantized row contiguously.
#[derive(Debug, Clone)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    q: Vec<i8>,
    scales: Vec<f32>,
    /// `Σ_c q[r][c]` per row, precomputed for the zero-point correction.
    row_sums: Vec<i32>,
}

impl QuantizedMatrix {
    /// Quantizes a `[d_in, d_out]` row-major f32 weight (the layout of
    /// `Linear` weights) into `[d_out][d_in]` int8 rows with per-row
    /// scales.
    pub fn from_weight(w: &[f32], d_in: usize, d_out: usize) -> Self {
        assert_eq!(w.len(), d_in * d_out, "weight length mismatch");
        assert!(d_in <= MAX_COLS, "d_in {d_in} risks i32 overflow");
        let mut q = vec![0i8; d_in * d_out];
        let mut scales = vec![0.0f32; d_out];
        for r in 0..d_out {
            let mut max_abs = 0.0f32;
            for c in 0..d_in {
                max_abs = max_abs.max(w[c * d_out + r].abs());
            }
            let scale = max_abs / QMAX;
            scales[r] = scale;
            if scale > 0.0 {
                let inv = 1.0 / scale;
                for c in 0..d_in {
                    let v = (w[c * d_out + r] * inv).round();
                    q[r * d_in + c] = v.clamp(-QMAX, QMAX) as i8;
                }
            }
        }
        let row_sums = q
            .chunks_exact(d_in)
            .map(|row| row.iter().map(|&v| i32::from(v)).sum())
            .collect();
        QuantizedMatrix {
            rows: d_out,
            cols: d_in,
            q,
            scales,
            row_sums,
        }
    }

    /// Output rows (`d_out`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Input columns (`d_in`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The scale of output row `r`.
    pub fn scale(&self, r: usize) -> f32 {
        self.scales[r]
    }

    /// Heap bytes held by the quantized representation (int8 payload plus
    /// per-row f32 scales and i32 weight sums).
    pub fn memory_bytes(&self) -> usize {
        self.q.len()
            + self.scales.len() * std::mem::size_of::<f32>()
            + self.row_sums.len() * std::mem::size_of::<i32>()
    }

    /// Dequantizes element `(r, c)` — `q[r][c] * s_r`.
    pub fn dequantize(&self, r: usize, c: usize) -> f32 {
        f32::from(self.q[r * self.cols + c]) * self.scales[r]
    }

    /// Quantized matvec with dequant-on-store:
    /// `y[r] = bias[r] + (Σ_c q[r][c] · qx[c] − zx · Σ_c q[r][c]) · (s_r · sx)`.
    ///
    /// The sum is pure i32 (exact), so the result does not depend on
    /// chunking or thread count. Parallel over output rows.
    pub fn matvec(&self, qx: &[i8], sx: f32, zx: i32, bias: &[f32]) -> Vec<f32> {
        assert_eq!(qx.len(), self.cols, "quantized input width mismatch");
        assert_eq!(bias.len(), self.rows, "bias width mismatch");
        let _timer = lm4db_obs::leaf("kernel/qmatvec");
        let mut y = bias.to_vec();
        let cols = self.cols;
        let (q, scales, row_sums) = (&self.q, &self.scales, &self.row_sums);
        // Integer madds are cheap; ask for about 4x the work of the f32
        // matmul heuristic per chunk.
        let min_rows = (131_072 / cols.max(1)).max(1);
        crate::pool::parallel_rows_mut(&mut y, self.rows, min_rows, |first, block| {
            for (i, out) in block.iter_mut().enumerate() {
                let r = first + i;
                let row = &q[r * cols..(r + 1) * cols];
                let mut acc = 0i32;
                for (&w, &x) in row.iter().zip(qx.iter()) {
                    acc += i32::from(w) * i32::from(x);
                }
                *out += (acc - zx * row_sums[r]) as f32 * (scales[r] * sx);
            }
        });
        y
    }
}

/// Dynamically quantizes an activation vector with an asymmetric grid:
/// the range `[min(x, 0), max(x, 0)]` (zero always included, so zero is
/// exactly representable) maps onto `[-128, 127]` with one scale and one
/// zero point for the whole vector, `x[c] ≈ (qx[c] − zx) · sx`. An
/// all-zero input yields scale 0, zero point 0, and an all-zero code
/// (never a division by zero).
pub fn quantize_activation(x: &[f32]) -> (Vec<i8>, f32, i32) {
    let (mut lo, mut hi) = (0.0f32, 0.0f32);
    for &v in x {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo == 0.0 && hi == 0.0 {
        return (vec![0i8; x.len()], 0.0, 0);
    }
    // 254 steps across the range leaves one grid level of headroom, so
    // rounding at the extremes can never land outside `[-128, 127]` and
    // every value round-trips within half a step — no clamping, which
    // would break that bound.
    let scale = (hi - lo) / 254.0;
    let inv = 1.0 / scale;
    // Integer zero point: zero maps to `zx` exactly, so it dequantizes to
    // exactly zero.
    let zx = -128 - (lo * inv).round() as i32;
    let q = x
        .iter()
        .map(|&v| ((v * inv).round() as i32 + zx) as i8)
        .collect();
    (q, scale, zx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_error_is_within_half_a_step() {
        let x: Vec<f32> = (0..64)
            .map(|i| ((i * 37 % 129) as f32 - 64.0) * 0.03)
            .collect();
        let (q, s, z) = quantize_activation(&x);
        for (&xi, &qi) in x.iter().zip(q.iter()) {
            let back = (i32::from(qi) - z) as f32 * s;
            assert!(
                (xi - back).abs() <= s * 0.5 + 1e-7,
                "element {xi} decoded to {back} with step {s}"
            );
        }
    }

    #[test]
    fn one_sided_activations_use_the_full_grid() {
        // GELU-like data: almost entirely positive. A symmetric grid would
        // waste half its levels; the asymmetric grid must cover the range
        // with a step close to range/254.
        let x: Vec<f32> = (0..64).map(|i| (i as f32) * 0.1 - 0.17).collect();
        let (q, s, z) = quantize_activation(&x);
        let (lo, hi) = (-0.17f32, 6.13f32);
        assert!(s <= (hi - lo) / 250.0, "step {s} too coarse for range");
        // Zero dequantizes to exactly zero.
        assert_eq!((z - z) as f32 * s, 0.0);
        // Extremes map near the ends of the grid.
        assert_eq!(*q.first().unwrap(), -128);
        assert!(*q.last().unwrap() >= 126);
    }

    #[test]
    fn zero_vector_quantizes_to_zero_scale() {
        let (q, s, z) = quantize_activation(&[0.0; 8]);
        assert_eq!(s, 0.0);
        assert_eq!(z, 0);
        assert!(q.iter().all(|&v| v == 0));
    }

    #[test]
    fn matvec_matches_i32_reference_exactly() {
        let (d_in, d_out) = (19usize, 11usize);
        let w: Vec<f32> = (0..d_in * d_out)
            .map(|i| ((i * 31 % 97) as f32 - 48.0) * 0.01)
            .collect();
        let x: Vec<f32> = (0..d_in)
            .map(|i| ((i * 13 % 29) as f32 - 14.0) * 0.1)
            .collect();
        let bias: Vec<f32> = (0..d_out).map(|i| i as f32 * 0.05).collect();
        let qm = QuantizedMatrix::from_weight(&w, d_in, d_out);
        let (qx, sx, zx) = quantize_activation(&x);
        let got = qm.matvec(&qx, sx, zx, &bias);
        for r in 0..d_out {
            let mut acc = 0i64;
            let mut wsum = 0i64;
            for (&w, &x) in qm.q[r * d_in..(r + 1) * d_in].iter().zip(qx.iter()) {
                acc += i64::from(w) * i64::from(x);
                wsum += i64::from(w);
            }
            let want = bias[r] + (acc - i64::from(zx) * wsum) as f32 * (qm.scale(r) * sx);
            assert_eq!(got[r], want, "row {r}");
        }
    }

    #[test]
    fn quantized_matvec_approximates_f32_matvec() {
        let (d_in, d_out) = (64usize, 48usize);
        let w: Vec<f32> = (0..d_in * d_out)
            .map(|i| (((i * 29 + 7) % 193) as f32 - 96.0) * 0.004)
            .collect();
        let x: Vec<f32> = (0..d_in)
            .map(|i| (((i * 17) % 41) as f32 - 20.0) * 0.05)
            .collect();
        let bias = vec![0.0f32; d_out];
        let mut want = bias.clone();
        for (i, &xi) in x.iter().enumerate() {
            for j in 0..d_out {
                want[j] += xi * w[i * d_out + j];
            }
        }
        let qm = QuantizedMatrix::from_weight(&w, d_in, d_out);
        let (qx, sx, zx) = quantize_activation(&x);
        let got = qm.matvec(&qx, sx, zx, &bias);
        let scale_y: f32 = want.iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1e-6);
        for (g, wv) in got.iter().zip(want.iter()) {
            assert!(
                (g - wv).abs() / scale_y < 0.05,
                "quantized {g} vs f32 {wv} (relative error too large)"
            );
        }
    }

    #[test]
    fn memory_is_about_a_quarter_of_f32() {
        let (d_in, d_out) = (128usize, 256usize);
        let w = vec![0.25f32; d_in * d_out];
        let qm = QuantizedMatrix::from_weight(&w, d_in, d_out);
        let f32_bytes = d_in * d_out * 4;
        assert_eq!(qm.memory_bytes(), d_in * d_out + d_out * 8);
        assert!(qm.memory_bytes() * 3 < f32_bytes);
    }
}
