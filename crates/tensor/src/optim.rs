//! Parameter storage and optimizers.
//!
//! Parameters live in a [`ParamStore`] that persists across training steps;
//! each step re-registers them on a fresh [`crate::Graph`], runs backward,
//! and applies an optimizer to the collected gradients.

use crate::graph::{Graph, Var};
use crate::tensor::Tensor;

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamId(usize);

/// Reconstructs the [`ParamId`] for a registration index. Ids are assigned
/// densely in registration order, so this is safe for stores rebuilt with
/// an identical registration sequence (checkpoint restore).
pub fn param_id_for_index(i: usize) -> ParamId {
    ParamId(i)
}

/// A named collection of trainable tensors.
#[derive(Default)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Tensor>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ParamStore::default()
    }

    /// Adds a parameter and returns its handle.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        self.names.push(name.into());
        self.values.push(value);
        ParamId(self.values.len() - 1)
    }

    /// Number of parameters (tensors, not scalar elements).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total scalar element count across all parameters.
    pub fn num_elements(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// Current value of a parameter.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Overwrites a parameter value (e.g. when loading a checkpoint).
    pub fn set(&mut self, id: ParamId, value: Tensor) {
        assert_eq!(
            self.values[id.0].shape(),
            value.shape(),
            "set() must preserve the shape of {}",
            self.names[id.0]
        );
        self.values[id.0] = value;
    }

    /// Name given at registration.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterates over `(name, tensor)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.values.iter())
    }
}

/// Per-step binding of a [`ParamStore`] onto a [`Graph`], remembering which
/// graph node corresponds to which parameter so gradients can be gathered.
pub struct Bound {
    vars: Vec<Var>,
}

impl Bound {
    /// Registers all parameters of `store` on `graph`.
    pub fn bind(store: &ParamStore, graph: &mut Graph) -> Bound {
        let vars = store
            .values
            .iter()
            .map(|t| graph.param(t.clone()))
            .collect();
        Bound { vars }
    }

    /// The graph node for a parameter.
    pub fn var(&self, id: ParamId) -> Var {
        self.vars[id.0]
    }

    /// Collects gradients for every parameter after `graph.backward()`.
    /// Parameters unreachable from the loss get zero gradients.
    pub fn grads(&self, store: &ParamStore, graph: &Graph) -> Vec<Tensor> {
        self.vars
            .iter()
            .zip(store.values.iter())
            .map(|(&v, t)| {
                graph
                    .grad(v)
                    .cloned()
                    .unwrap_or_else(|| Tensor::zeros(t.shape()))
            })
            .collect()
    }
}

/// Rescales gradients in place so their global L2 norm does not exceed
/// `max_norm`. Returns the pre-clip norm.
pub fn clip_grad_norm(grads: &mut [Tensor], max_norm: f32) -> f32 {
    let total: f32 = grads
        .iter()
        .map(|g| g.data().iter().map(|&x| x * x).sum::<f32>())
        .sum::<f32>()
        .sqrt();
    if total > max_norm && total > 0.0 {
        let scale = max_norm / total;
        for g in grads.iter_mut() {
            for x in g.data_mut() {
                *x *= scale;
            }
        }
    }
    total
}

/// Adam optimizer with decoupled weight decay (AdamW).
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    step: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an optimizer for every parameter in `store` with standard
    /// betas (0.9, 0.999).
    pub fn new(store: &ParamStore, lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            step: 0,
            m: store
                .values
                .iter()
                .map(|t| Tensor::zeros(t.shape()))
                .collect(),
            v: store
                .values
                .iter()
                .map(|t| Tensor::zeros(t.shape()))
                .collect(),
        }
    }

    /// Sets decoupled weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Updates the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Applies one update step given gradients aligned with the store.
    pub fn step(&mut self, store: &mut ParamStore, grads: &[Tensor]) {
        assert_eq!(grads.len(), store.values.len(), "gradient count mismatch");
        self.step += 1;
        let bc1 = 1.0 - self.beta1.powi(self.step as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step as i32);
        for (i, grad) in grads.iter().enumerate() {
            let g = grad.data();
            let m = self.m[i].data_mut();
            let v = self.v[i].data_mut();
            let p = store.values[i].data_mut();
            for j in 0..g.len() {
                m[j] = self.beta1 * m[j] + (1.0 - self.beta1) * g[j];
                v[j] = self.beta2 * v[j] + (1.0 - self.beta2) * g[j] * g[j];
                let mhat = m[j] / bc1;
                let vhat = v[j] / bc2;
                p[j] -= self.lr * (mhat / (vhat.sqrt() + self.eps) + self.weight_decay * p[j]);
            }
        }
    }
}

/// Plain SGD (used as a baseline and in tests).
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates an SGD optimizer with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// Applies one update step.
    pub fn step(&mut self, store: &mut ParamStore, grads: &[Tensor]) {
        assert_eq!(grads.len(), store.values.len(), "gradient count mismatch");
        for (value, grad) in store.values.iter_mut().zip(grads.iter()) {
            value.add_scaled_assign(grad, -self.lr);
        }
    }
}

/// Linear warmup followed by cosine decay to `min_lr`.
pub struct LrSchedule {
    peak_lr: f32,
    min_lr: f32,
    warmup_steps: u64,
    total_steps: u64,
}

impl LrSchedule {
    /// Builds a warmup+cosine schedule.
    pub fn warmup_cosine(peak_lr: f32, min_lr: f32, warmup_steps: u64, total_steps: u64) -> Self {
        assert!(total_steps >= warmup_steps, "total < warmup");
        LrSchedule {
            peak_lr,
            min_lr,
            warmup_steps,
            total_steps,
        }
    }

    /// Learning rate at step `t` (0-based).
    pub fn at(&self, t: u64) -> f32 {
        if self.warmup_steps > 0 && t < self.warmup_steps {
            return self.peak_lr * (t + 1) as f32 / self.warmup_steps as f32;
        }
        if t >= self.total_steps {
            return self.min_lr;
        }
        let progress =
            (t - self.warmup_steps) as f32 / (self.total_steps - self.warmup_steps).max(1) as f32;
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
        self.min_lr + (self.peak_lr - self.min_lr) * cos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Minimizing (x - 3)^2 must converge to 3 for both optimizers.
    fn converges(mut apply: impl FnMut(&mut ParamStore, &[Tensor])) -> f32 {
        let mut store = ParamStore::new();
        let x = store.add("x", Tensor::scalar(0.0));
        for _ in 0..500 {
            let mut g = Graph::new();
            let bound = Bound::bind(&store, &mut g);
            let xv = bound.var(x);
            let c = g.input(Tensor::scalar(3.0));
            let d = g.sub(xv, c);
            let loss = g.mul(d, d);
            g.backward(loss);
            let grads = bound.grads(&store, &g);
            apply(&mut store, &grads);
        }
        store.get(x).item()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let x = converges(|s, g| opt.step(s, g));
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut store_probe = ParamStore::new();
        store_probe.add("x", Tensor::scalar(0.0));
        let mut opt = Adam::new(&store_probe, 0.1);
        let x = converges(|s, g| opt.step(s, g));
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn clip_grad_norm_rescales() {
        let mut grads = vec![Tensor::from_vec(vec![3.0, 4.0])]; // norm 5
        let pre = clip_grad_norm(&mut grads, 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        let post: f32 = grads[0].data().iter().map(|&x| x * x).sum::<f32>().sqrt();
        assert!((post - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_grad_norm_leaves_small_gradients() {
        let mut grads = vec![Tensor::from_vec(vec![0.3, 0.4])]; // norm 0.5
        clip_grad_norm(&mut grads, 1.0);
        assert_eq!(grads[0].data(), &[0.3, 0.4]);
    }

    #[test]
    fn schedule_warms_up_then_decays() {
        let s = LrSchedule::warmup_cosine(1.0, 0.1, 10, 110);
        assert!(s.at(0) < s.at(5));
        assert!((s.at(9) - 1.0).abs() < 1e-6);
        assert!(s.at(50) < 1.0);
        assert!((s.at(109) - 0.1).abs() < 0.01);
        assert_eq!(s.at(500), 0.1);
    }

    #[test]
    fn param_store_counts_elements() {
        let mut store = ParamStore::new();
        store.add("a", Tensor::zeros(&[3, 4]));
        store.add("b", Tensor::zeros(&[5]));
        assert_eq!(store.len(), 2);
        assert_eq!(store.num_elements(), 17);
    }

    #[test]
    fn unreachable_params_get_zero_grads() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::scalar(1.0));
        let _b = store.add("b", Tensor::zeros(&[2]));
        let mut g = Graph::new();
        let bound = Bound::bind(&store, &mut g);
        let loss = g.mul(bound.var(a), bound.var(a));
        g.backward(loss);
        let grads = bound.grads(&store, &g);
        assert_eq!(grads[1].data(), &[0.0, 0.0]);
    }
}
