//! Cache-blocked, register-tiled compute kernels shared by the tensor ops
//! and the transformer's inference fast path.
//!
//! Every kernel preserves the crate's determinism contract (see
//! [`crate::pool`]): each output element is produced by a **single serial
//! accumulation chain** over the reduction dimension in ascending order,
//! with one `f32` accumulator. Register tiling keeps several independent
//! output elements in flight and panel packing rearranges the *inputs* for
//! contiguous loads, but neither changes the order of operations *within*
//! any element's chain — so the tiled kernels are bit-identical to a naive
//! triple loop, at any thread count, and safe for the compiler to
//! autovectorize across output lanes (Rust never contracts `a * b + c`
//! into a fused multiply-add, so lane-wise code generation cannot change
//! the result either).
//!
//! Layout of the matmul family (DESIGN.md §5g): an [`MR`]×[`NR`] register
//! microkernel over a packed B panel. Panels are `[k][NR]` slabs copied
//! out of the right-hand side once per parallel chunk (and zero-padded on
//! the last partial panel), so the inner loop reads one contiguous `NR`
//! float row per reduction step regardless of the original layout — this
//! is what turns `matmul_bt`'s latency-bound scalar dot products into the
//! same throughput-bound microkernel as plain `matmul`. The `A^T` variants
//! need no packing at all: their reduction walks *rows* of both operands,
//! so the microkernel is a rank-1 update with contiguous loads on both
//! sides.

//! On x86-64 the full-tile microkernels additionally carry a
//! runtime-detected AVX variant built from lane-wise `mul_ps`/`add_ps`
//! only — **never** fused multiply-adds. Each SIMD lane performs exactly
//! the scalar kernel's `acc[j] += a * b[j]` chain with IEEE-identical
//! rounding, so the AVX and scalar paths produce the same bits and the
//! golden outputs do not depend on which machine ran them.

// GEMM kernels take BLAS-style flat argument lists (operands, leading
// dimensions, tile origin) by design; bundling them into structs would
// obscure the correspondence with the textbook kernel signatures.
#![allow(clippy::too_many_arguments)]

/// Rows per register tile: independent output rows in flight in the
/// microkernel. `MR * NR` accumulators must fit the register file with
/// room for one packed-panel row and a broadcast lane.
pub const MR: usize = 4;

/// Columns per register tile; packed panels are zero-padded to this width
/// so the inner loop is always a fixed-trip-count, vectorizable sweep.
pub const NR: usize = 8;

/// Packs row-major `b` (`[k][n]`) into `[n/NR]` slabs of `[k][NR]`,
/// zero-padding the last panel. `panels` must hold
/// `k * n.div_ceil(NR) * NR` elements.
fn pack_row_major(b: &[f32], k: usize, n: usize, panels: &mut [f32]) {
    for (jp, slab) in panels.chunks_exact_mut(k * NR).enumerate() {
        let j0 = jp * NR;
        let nr = NR.min(n - j0);
        for (p, dst) in slab.chunks_exact_mut(NR).enumerate() {
            dst[..nr].copy_from_slice(&b[p * n + j0..p * n + j0 + nr]);
            for z in dst[nr..].iter_mut() {
                *z = 0.0;
            }
        }
    }
}

/// Packs transposed-layout `bt` (`[n][k]` row-major, i.e. `B^T`) into the
/// same `[k][NR]` panel layout as [`pack_row_major`], so `A x B^T` runs
/// through the identical microkernel.
fn pack_transposed(bt: &[f32], k: usize, n: usize, panels: &mut [f32]) {
    for (jp, slab) in panels.chunks_exact_mut(k * NR).enumerate() {
        let j0 = jp * NR;
        let nr = NR.min(n - j0);
        slab.fill(0.0);
        for jj in 0..nr {
            let col = &bt[(j0 + jj) * k..(j0 + jj) * k + k];
            for (p, &v) in col.iter().enumerate() {
                slab[p * NR + jj] = v;
            }
        }
    }
}

/// Lane-wise AVX bodies of the full-tile microkernels. Compiled only on
/// x86-64 and entered only after a runtime `avx` check; every intrinsic
/// used (`broadcast`, `loadu`, `mul_ps`, `add_ps`) is a per-lane IEEE
/// operation, so these produce bit-identical results to the scalar
/// fallbacks below — they just retire 8 lanes per instruction instead of
/// relying on what the autovectorizer manages at the SSE2 baseline.
#[cfg(target_arch = "x86_64")]
mod avx {
    use super::{MR, NR};
    use std::arch::x86_64::*;

    /// True once the CPU reports AVX; checked per kernel call (the result
    /// is cached by `is_x86_feature_detected!` itself).
    #[inline]
    pub fn usable() -> bool {
        is_x86_feature_detected!("avx")
    }

    /// AVX body of [`super::mk_nn_full`]: one 8-lane accumulator per tile
    /// row (`NR == 8`), `p` ascending.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX ([`usable`]).
    #[target_feature(enable = "avx")]
    pub unsafe fn mk_nn_full(
        a: &[f32],
        lda: usize,
        k: usize,
        panel: &[f32],
        out: &mut [f32],
        ldc: usize,
        nr: usize,
    ) {
        const { assert!(NR == 8 && MR == 4) };
        let rows = [
            &a[..k],
            &a[lda..lda + k],
            &a[2 * lda..2 * lda + k],
            &a[3 * lda..3 * lda + k],
        ];
        let mut acc = [_mm256_setzero_ps(); MR];
        // Two reduction steps per iteration: `acc += a_p*b_p` then
        // `acc += a_{p+1}*b_{p+1}` — the same ascending chain per lane,
        // just with half the loop overhead.
        let mut p = 0;
        while p + 2 <= k {
            let b0 = _mm256_loadu_ps(panel[p * NR..].as_ptr());
            let b1 = _mm256_loadu_ps(panel[(p + 1) * NR..].as_ptr());
            for (r, accr) in acc.iter_mut().enumerate() {
                // SAFETY: every row slice holds `k` elements and `p+1 < k`.
                let a0 = _mm256_broadcast_ss(rows[r].get_unchecked(p));
                let a1 = _mm256_broadcast_ss(rows[r].get_unchecked(p + 1));
                let t = _mm256_add_ps(*accr, _mm256_mul_ps(a0, b0));
                *accr = _mm256_add_ps(t, _mm256_mul_ps(a1, b1));
            }
            p += 2;
        }
        if p < k {
            let bv = _mm256_loadu_ps(panel[p * NR..].as_ptr());
            for (r, accr) in acc.iter_mut().enumerate() {
                // SAFETY: `p < k` and every row slice holds `k` elements.
                let ar = _mm256_broadcast_ss(rows[r].get_unchecked(p));
                *accr = _mm256_add_ps(*accr, _mm256_mul_ps(ar, bv));
            }
        }
        if nr == NR {
            for (r, &accr) in acc.iter().enumerate() {
                _mm256_storeu_ps(out[r * ldc..].as_mut_ptr(), accr);
            }
        } else {
            let mut lanes = [0.0f32; NR];
            for (r, &accr) in acc.iter().enumerate() {
                _mm256_storeu_ps(lanes.as_mut_ptr(), accr);
                out[r * ldc..r * ldc + nr].copy_from_slice(&lanes[..nr]);
            }
        }
    }

    /// AVX body of the full-tile case of [`super::mk_tn`]: rank-1 updates
    /// with contiguous loads on both operands, `i` ascending.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX ([`usable`]).
    #[target_feature(enable = "avx")]
    pub unsafe fn mk_tn_full(
        a: &[f32],
        b: &[f32],
        red: usize,
        lda: usize,
        ldb: usize,
        p0: usize,
        j0: usize,
        out: &mut [f32],
        ldc: usize,
    ) {
        const { assert!(NR == 8 && MR == 4) };
        let mut acc = [_mm256_setzero_ps(); MR];
        for i in 0..red {
            let bv = _mm256_loadu_ps(b[i * ldb + j0..].as_ptr());
            let av = &a[i * lda + p0..i * lda + p0 + MR];
            for (r, accr) in acc.iter_mut().enumerate() {
                let ar = _mm256_broadcast_ss(&av[r]);
                *accr = _mm256_add_ps(*accr, _mm256_mul_ps(ar, bv));
            }
        }
        for (r, &accr) in acc.iter().enumerate() {
            _mm256_storeu_ps(out[r * ldc..].as_mut_ptr(), accr);
        }
    }

    /// AVX body of the full-tile case of [`super::vec_matmul_block`]:
    /// two 8-lane column accumulators held across the whole `i` sweep.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX ([`usable`]) and
    /// `y_block.len() == 16`.
    #[target_feature(enable = "avx")]
    pub unsafe fn vec_matmul_tile16(
        x: &[f32],
        w: &[f32],
        d_out: usize,
        col0: usize,
        y_block: &mut [f32],
    ) {
        let mut acc0 = _mm256_loadu_ps(y_block.as_ptr());
        let mut acc1 = _mm256_loadu_ps(y_block[8..].as_ptr());
        for (i, xi) in x.iter().enumerate() {
            let xv = _mm256_broadcast_ss(xi);
            let wrow = &w[i * d_out + col0..i * d_out + col0 + 16];
            acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(xv, _mm256_loadu_ps(wrow.as_ptr())));
            acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(xv, _mm256_loadu_ps(wrow[8..].as_ptr())));
        }
        _mm256_storeu_ps(y_block.as_mut_ptr(), acc0);
        _mm256_storeu_ps(y_block[8..].as_mut_ptr(), acc1);
    }

    /// AVX body of the full-tile, four-row case of
    /// [`super::vec_matmul_rows`]: one 16-column weight tile is loaded per
    /// `i` and reused by four input rows, with per-row lane math identical
    /// to [`vec_matmul_tile16`] (broadcast, mul, add — no FMA).
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX ([`usable`]), that rows
    /// `row0..row0 + 4` of `xs`/`ys` are in bounds, and that columns
    /// `col0..col0 + 16` of `w`/`ys` are in bounds.
    #[target_feature(enable = "avx")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn vec_matmul_tile16_rows4(
        xs: &[f32],
        d_in: usize,
        row0: usize,
        w: &[f32],
        d_out: usize,
        col0: usize,
        ys: &mut [f32],
    ) {
        let mut acc = [[_mm256_setzero_ps(); 2]; 4];
        for (r, accr) in acc.iter_mut().enumerate() {
            let y = &ys[(row0 + r) * d_out + col0..];
            accr[0] = _mm256_loadu_ps(y.as_ptr());
            accr[1] = _mm256_loadu_ps(y[8..].as_ptr());
        }
        for i in 0..d_in {
            let wrow = &w[i * d_out + col0..i * d_out + col0 + 16];
            let w0 = _mm256_loadu_ps(wrow.as_ptr());
            let w1 = _mm256_loadu_ps(wrow[8..].as_ptr());
            for (r, accr) in acc.iter_mut().enumerate() {
                let xv = _mm256_broadcast_ss(&xs[(row0 + r) * d_in + i]);
                accr[0] = _mm256_add_ps(accr[0], _mm256_mul_ps(xv, w0));
                accr[1] = _mm256_add_ps(accr[1], _mm256_mul_ps(xv, w1));
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            let y = &mut ys[(row0 + r) * d_out + col0..];
            _mm256_storeu_ps(y.as_mut_ptr(), accr[0]);
            _mm256_storeu_ps(y[8..].as_mut_ptr(), accr[1]);
        }
    }
}

/// The MR×NR register microkernel: `out[r][j] = Σ_p a[r][p] * panel[p][j]`
/// for `MR` full rows, `p` ascending with one accumulator per output
/// element. Only the first `nr` columns are stored (padding lanes compute
/// on zeros and are discarded).
#[inline]
fn mk_nn_full(
    a: &[f32],
    lda: usize,
    k: usize,
    panel: &[f32],
    out: &mut [f32],
    ldc: usize,
    nr: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if avx::usable() {
        // SAFETY: AVX support was just checked.
        unsafe { avx::mk_nn_full(a, lda, k, panel, out, ldc, nr) };
        return;
    }
    let a0 = &a[..k];
    let a1 = &a[lda..lda + k];
    let a2 = &a[2 * lda..2 * lda + k];
    let a3 = &a[3 * lda..3 * lda + k];
    let mut acc = [[0.0f32; NR]; MR];
    for (p, brow) in panel.chunks_exact(NR).enumerate() {
        let av = [a0[p], a1[p], a2[p], a3[p]];
        for r in 0..MR {
            let ar = av[r];
            let accr = &mut acc[r];
            for j in 0..NR {
                accr[j] += ar * brow[j];
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        out[r * ldc..r * ldc + nr].copy_from_slice(&accr[..nr]);
    }
}

/// Single-row edge of [`mk_nn_full`] for the `rows % MR` remainder.
#[inline]
fn mk_nn_row(a_row: &[f32], panel: &[f32], out: &mut [f32], nr: usize) {
    let mut acc = [0.0f32; NR];
    for (brow, &av) in panel.chunks_exact(NR).zip(a_row.iter()) {
        for j in 0..NR {
            acc[j] += av * brow[j];
        }
    }
    out[..nr].copy_from_slice(&acc[..nr]);
}

/// Multiplies `rows` rows of `a` (`[rows][k]`, leading stride `k`) against
/// pre-packed panels of a `[k][n]` matrix, writing `out` (`[rows][n]`).
fn gemm_packed(a: &[f32], out: &mut [f32], panels: &[f32], rows: usize, k: usize, n: usize) {
    let np = n.div_ceil(NR);
    let mut i = 0;
    while i < rows {
        let mr = MR.min(rows - i);
        for jp in 0..np {
            let j0 = jp * NR;
            let nr = NR.min(n - j0);
            let panel = &panels[jp * k * NR..(jp + 1) * k * NR];
            if mr == MR {
                mk_nn_full(&a[i * k..], k, k, panel, &mut out[i * n + j0..], n, nr);
            } else {
                for r in i..i + mr {
                    mk_nn_row(&a[r * k..r * k + k], panel, &mut out[r * n + j0..], nr);
                }
            }
        }
        i += mr;
    }
}

/// One parallel chunk of batched `A x B`: computes output rows
/// `first..first + block.len()/n` (global over `batch * m`), packing each
/// batch's B once per run of rows. With a broadcast (2-D) right-hand side
/// the whole chunk shares one packing.
pub fn gemm_nn_block(
    first: usize,
    block: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    broadcast_rhs: bool,
) {
    if n == 0 || k == 0 {
        block.fill(0.0);
        return;
    }
    let rows = block.len() / n;
    let mut panels = vec![0.0f32; k * n.div_ceil(NR) * NR];
    let mut r0 = 0;
    while r0 < rows {
        let batch = (first + r0) / m;
        // Tiles never cross a batch boundary: each run of rows shares one
        // right-hand side (the whole chunk, when B is broadcast).
        let run = if broadcast_rhs {
            rows - r0
        } else {
            ((batch + 1) * m - (first + r0)).min(rows - r0)
        };
        let b_off = if broadcast_rhs { 0 } else { batch * k * n };
        pack_row_major(&b[b_off..b_off + k * n], k, n, &mut panels);
        gemm_packed(
            &a[(first + r0) * k..(first + r0 + run) * k],
            &mut block[r0 * n..(r0 + run) * n],
            &panels,
            run,
            k,
            n,
        );
        r0 += run;
    }
}

/// One parallel chunk of batched `A x B^T` (`b` is `[n][k]` row-major).
/// Packing transposes the panel, after which the chunk runs through the
/// exact same microkernel — and the exact same per-element `p`-ascending
/// order — as [`gemm_nn_block`].
pub fn gemm_bt_block(
    first: usize,
    block: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    broadcast_rhs: bool,
) {
    if n == 0 || k == 0 {
        block.fill(0.0);
        return;
    }
    let rows = block.len() / n;
    let mut panels = vec![0.0f32; k * n.div_ceil(NR) * NR];
    let mut r0 = 0;
    while r0 < rows {
        let batch = (first + r0) / m;
        let run = if broadcast_rhs {
            rows - r0
        } else {
            ((batch + 1) * m - (first + r0)).min(rows - r0)
        };
        let b_off = if broadcast_rhs { 0 } else { batch * n * k };
        pack_transposed(&b[b_off..b_off + n * k], k, n, &mut panels);
        gemm_packed(
            &a[(first + r0) * k..(first + r0 + run) * k],
            &mut block[r0 * n..(r0 + run) * n],
            &panels,
            run,
            k,
            n,
        );
        r0 += run;
    }
}

/// Rank-1-update microkernel for the `A^T` variants:
/// `out[r][j] = Σ_i a[i][p0 + r] * b[i][j0 + j]`, `i` ascending. Both loads
/// are contiguous (`MR` consecutive columns of a row of A, `NR` consecutive
/// columns of a row of B), so no packing is needed.
#[inline]
fn mk_tn(
    a: &[f32],
    b: &[f32],
    red: usize,
    lda: usize,
    ldb: usize,
    p0: usize,
    j0: usize,
    mr: usize,
    nr: usize,
    out: &mut [f32],
    ldc: usize,
) {
    if mr == MR && nr == NR {
        #[cfg(target_arch = "x86_64")]
        if avx::usable() {
            // SAFETY: AVX support was just checked.
            unsafe { avx::mk_tn_full(a, b, red, lda, ldb, p0, j0, out, ldc) };
            return;
        }
    }
    let mut acc = [[0.0f32; NR]; MR];
    if mr == MR && nr == NR {
        for i in 0..red {
            let av = &a[i * lda + p0..i * lda + p0 + MR];
            let bv = &b[i * ldb + j0..i * ldb + j0 + NR];
            for r in 0..MR {
                let ar = av[r];
                let accr = &mut acc[r];
                for j in 0..NR {
                    accr[j] += ar * bv[j];
                }
            }
        }
    } else {
        for i in 0..red {
            let bv = &b[i * ldb + j0..i * ldb + j0 + nr];
            for (r, accr) in acc.iter_mut().enumerate().take(mr) {
                let ar = a[i * lda + p0 + r];
                for (acc_j, &bj) in accr.iter_mut().zip(bv.iter()) {
                    *acc_j += ar * bj;
                }
            }
        }
    }
    for (r, accr) in acc.iter().enumerate().take(mr) {
        out[r * ldc..r * ldc + nr].copy_from_slice(&accr[..nr]);
    }
}

/// Tiles `rows` consecutive output rows (starting at column-of-A `p0`) of
/// one `A^T x B` product: `a` is `[red][lda]`, `b` is `[red][ldb]`, `out`
/// is `[rows][n]` with `n <= ldb` columns taken from `b[:, j0=0..n]`.
fn tn_run(
    a: &[f32],
    b: &[f32],
    red: usize,
    lda: usize,
    n: usize,
    p0: usize,
    rows: usize,
    out: &mut [f32],
) {
    let mut r = 0;
    while r < rows {
        let mr = MR.min(rows - r);
        let mut j0 = 0;
        while j0 < n {
            let nr = NR.min(n - j0);
            mk_tn(
                a,
                b,
                red,
                lda,
                n,
                p0 + r,
                j0,
                mr,
                nr,
                &mut out[r * n + j0..],
                n,
            );
            j0 += NR;
        }
        r += mr;
    }
}

/// One parallel chunk of batched `A^T x B`: output rows `first..` are
/// global over `batch * k`; runs are split at batch boundaries.
pub fn gemm_tn_block(
    first: usize,
    block: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) {
    if n == 0 {
        return;
    }
    let rows = block.len() / n;
    let mut r0 = 0;
    while r0 < rows {
        let row = first + r0;
        let (batch, p0) = (row / k, row % k);
        let run = (k - p0).min(rows - r0);
        tn_run(
            &a[batch * m * k..(batch + 1) * m * k],
            &b[batch * m * n..(batch + 1) * m * n],
            m,
            k,
            n,
            p0,
            run,
            &mut block[r0 * n..(r0 + run) * n],
        );
        r0 += run;
    }
}

/// One parallel chunk of `A^T x B` summed over every batch: `a` is
/// `[red][k]` (`red = batch * m` flattened), `b` is `[red][n]`, and the
/// chunk covers output rows `first..first + block.len()/n` of the `[k][n]`
/// result. The reduction walks `(batch, i)` ascending, exactly like a
/// serial accumulation over batches then rows.
pub fn gemm_tn_acc_block(
    first: usize,
    block: &mut [f32],
    a: &[f32],
    b: &[f32],
    red: usize,
    k: usize,
    n: usize,
) {
    if n == 0 {
        return;
    }
    let rows = block.len() / n;
    tn_run(a, b, red, k, n, first, rows, block);
}

/// Numerically stabilized softmax of one row, in place: max-fold, then a
/// single serial exp-and-sum pass (ascending), then scale by `1/sum`.
/// Shared by the tensor op, the cached-attention path, and the decoding
/// strategies so every softmax in the system uses identical float
/// operations.
pub fn softmax_in_place(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in row.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    let inv = 1.0 / sum;
    for x in row.iter_mut() {
        *x *= inv;
    }
}

/// Numerically stable log-softmax of one row, in place. Same serial
/// exp-sum chain as [`softmax_in_place`].
pub fn log_softmax_in_place(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let logsum = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln() + max;
    for x in row.iter_mut() {
        *x -= logsum;
    }
}

/// Scaled dot-product scores of one query head against every cached key:
/// `scores[t] = (Σ_p q[p] * keys[t*d + off + p]) * scale`. Four cached
/// positions run in flight — each score still sums `p` ascending with its
/// own single accumulator (bit-identical to one-at-a-time), but the four
/// independent chains hide the floating-point add latency that makes a
/// lone dot product serial.
pub fn attn_scores(q: &[f32], keys: &[f32], d: usize, off: usize, scale: f32, scores: &mut [f32]) {
    let hd = q.len();
    let total = scores.len();
    let mut t = 0;
    while t + 4 <= total {
        let base = t * d + off;
        let k0 = &keys[base..base + hd];
        let k1 = &keys[base + d..base + d + hd];
        let k2 = &keys[base + 2 * d..base + 2 * d + hd];
        let k3 = &keys[base + 3 * d..base + 3 * d + hd];
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for (p, &qp) in q.iter().enumerate() {
            a0 += qp * k0[p];
            a1 += qp * k1[p];
            a2 += qp * k2[p];
            a3 += qp * k3[p];
        }
        scores[t] = a0 * scale;
        scores[t + 1] = a1 * scale;
        scores[t + 2] = a2 * scale;
        scores[t + 3] = a3 * scale;
        t += 4;
    }
    while t < total {
        let kh = &keys[t * d + off..t * d + off + hd];
        let mut acc = 0.0f32;
        for (&qp, &kp) in q.iter().zip(kh.iter()) {
            acc += qp * kp;
        }
        scores[t] = acc * scale;
        t += 1;
    }
}

/// Probability-weighted value mix: `ctx[j] += Σ_t probs[t] *
/// vals[t*d + off + j]`, `t` ascending — an axpy over cached positions
/// that vectorizes across the `ctx` lanes.
pub fn attn_mix(probs: &[f32], vals: &[f32], d: usize, off: usize, ctx: &mut [f32]) {
    let hd = ctx.len();
    for (t, &p) in probs.iter().enumerate() {
        let vh = &vals[t * d + off..t * d + off + hd];
        for (c, &vv) in ctx.iter_mut().zip(vh.iter()) {
            *c += p * vv;
        }
    }
}

/// Fused softmax·V attention for one head: raw score logits in `scores`
/// are softmaxed in place and immediately mixed into `ctx`, so no per-head
/// probability matrix is ever materialized beyond the single reusable
/// scratch row.
pub fn attn_head(
    q: &[f32],
    keys: &[f32],
    vals: &[f32],
    d: usize,
    off: usize,
    scale: f32,
    scores: &mut [f32],
    ctx: &mut [f32],
) {
    attn_scores(q, keys, d, off, scale, scores);
    softmax_in_place(scores);
    attn_mix(scores, vals, d, off, ctx);
}

/// One parallel chunk of a vector-matrix product `y = x W + b`:
/// `y_block` covers output columns `first..first + y_block.len()` of a
/// `[d_in, d_out]` weight and must already hold the matching bias slice.
/// Columns are register-tiled so each tile stays in registers across the
/// whole `i`-ascending input sweep instead of streaming `y` through the
/// cache once per input element. Per-column accumulation order is
/// unchanged from the scalar loop.
pub fn vec_matmul_block(x: &[f32], w: &[f32], d_out: usize, first: usize, y_block: &mut [f32]) {
    /// Columns per register tile (one tile = one cache line of `f32`).
    const CT: usize = 16;
    let cols = y_block.len();
    let mut c0 = 0;
    while c0 < cols {
        let ct = CT.min(cols - c0);
        #[cfg(target_arch = "x86_64")]
        if ct == CT && avx::usable() {
            // SAFETY: AVX support was just checked and the tile is full.
            unsafe { avx::vec_matmul_tile16(x, w, d_out, first + c0, &mut y_block[c0..c0 + CT]) };
            c0 += CT;
            continue;
        }
        let mut acc = [0.0f32; CT];
        acc[..ct].copy_from_slice(&y_block[c0..c0 + ct]);
        if ct == CT {
            for (i, &xi) in x.iter().enumerate() {
                let wrow = &w[i * d_out + first + c0..i * d_out + first + c0 + CT];
                for j in 0..CT {
                    acc[j] += xi * wrow[j];
                }
            }
        } else {
            for (i, &xi) in x.iter().enumerate() {
                let wrow = &w[i * d_out + first + c0..i * d_out + first + c0 + ct];
                for (acc_j, &wj) in acc.iter_mut().zip(wrow.iter()) {
                    *acc_j += xi * wj;
                }
            }
        }
        y_block[c0..c0 + ct].copy_from_slice(&acc[..ct]);
        c0 += ct;
    }
}

/// Multi-row vector-matrix product: `rows` input vectors (`xs`, row-major,
/// `d_in` wide) against one `[d_in, d_out]` weight, into `rows` outputs
/// (`ys`, row-major, `d_out` wide, pre-filled with the bias row by the
/// caller). Per output element the accumulation is bit-identical to
/// [`vec_matmul_block`] — bias-initialized, `i` ascending — so a batched
/// application equals `rows` single applications byte for byte. The batch
/// exists for memory locality: the cached-decode matvec is bound on weight
/// traffic, and here each 16-column weight tile is streamed once per group
/// of four rows instead of once per row, which is what makes speculative
/// draft verification cheaper than re-decoding token by token.
pub fn vec_matmul_rows(xs: &[f32], d_in: usize, w: &[f32], d_out: usize, ys: &mut [f32]) {
    /// Columns per register tile (matches [`vec_matmul_block`]).
    const CT: usize = 16;
    /// Rows sharing one weight-tile sweep (4×2 AVX accumulators).
    const RT: usize = 4;
    assert!(d_in > 0 && d_out > 0, "vec_matmul_rows of empty weight");
    let rows = xs.len() / d_in;
    assert_eq!(xs.len(), rows * d_in, "xs is not a whole number of rows");
    assert_eq!(ys.len(), rows * d_out, "ys shape mismatch");
    let mut c0 = 0;
    while c0 < d_out {
        let ct = CT.min(d_out - c0);
        let mut r0 = 0;
        while r0 < rows {
            let rt = RT.min(rows - r0);
            #[cfg(target_arch = "x86_64")]
            if ct == CT && rt == RT && avx::usable() {
                // SAFETY: AVX support was just checked, the tile is full,
                // and the row group is full.
                unsafe { avx::vec_matmul_tile16_rows4(xs, d_in, r0, w, d_out, c0, ys) };
                r0 += RT;
                continue;
            }
            let mut acc = [[0.0f32; CT]; RT];
            for (r, accr) in acc[..rt].iter_mut().enumerate() {
                accr[..ct].copy_from_slice(&ys[(r0 + r) * d_out + c0..][..ct]);
            }
            for i in 0..d_in {
                let wrow = &w[i * d_out + c0..i * d_out + c0 + ct];
                for (r, accr) in acc[..rt].iter_mut().enumerate() {
                    let xi = xs[(r0 + r) * d_in + i];
                    for (a, &wj) in accr[..ct].iter_mut().zip(wrow.iter()) {
                        *a += xi * wj;
                    }
                }
            }
            for (r, accr) in acc[..rt].iter().enumerate() {
                ys[(r0 + r) * d_out + c0..][..ct].copy_from_slice(&accr[..ct]);
            }
            r0 += rt;
        }
        c0 += ct;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_nn(
        a: &[f32],
        b: &[f32],
        ab: usize,
        m: usize,
        k: usize,
        n: usize,
        bcast: bool,
    ) -> Vec<f32> {
        let mut out = vec![0.0f32; ab * m * n];
        for batch in 0..ab {
            let b_off = if bcast { 0 } else { batch * k * n };
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for p in 0..k {
                        acc += a[batch * m * k + i * k + p] * b[b_off + p * n + j];
                    }
                    out[batch * m * n + i * n + j] = acc;
                }
            }
        }
        out
    }

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        let mut s = seed;
        (0..len)
            .map(|_| {
                s = s.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (s >> 8) as f32 / (1u32 << 24) as f32 - 0.5
            })
            .collect()
    }

    #[test]
    fn nn_block_matches_naive_at_edge_shapes() {
        // Shapes straddling every tile edge: rows % MR, cols % NR, and a
        // chunk split mid-batch.
        for &(ab, m, k, n, bcast) in &[
            (1usize, 1usize, 1usize, 1usize, false),
            (1, 5, 7, 9, false),
            (2, 6, 13, 17, false),
            (3, 4, 8, 8, true),
            (2, 9, 33, 19, true),
        ] {
            let a = fill(ab * m * k, 1);
            let b = fill(if bcast { k * n } else { ab * k * n }, 2);
            let want = naive_nn(&a, &b, ab, m, k, n, bcast);
            // Run as two chunks split at an arbitrary row to exercise the
            // mid-batch entry path.
            let rows = ab * m;
            let split = (rows / 2).max(1).min(rows);
            let mut got = vec![0.0f32; rows * n];
            let (lo, hi) = got.split_at_mut(split * n);
            gemm_nn_block(0, lo, &a, &b, m, k, n, bcast);
            if !hi.is_empty() {
                gemm_nn_block(split, hi, &a, &b, m, k, n, bcast);
            }
            assert_eq!(got, want, "shape ab={ab} m={m} k={k} n={n} bcast={bcast}");
        }
    }

    #[test]
    fn bt_block_matches_naive_dot() {
        let (ab, m, k, n) = (2usize, 5usize, 11usize, 7usize);
        let a = fill(ab * m * k, 3);
        let bt = fill(ab * n * k, 4);
        let mut want = vec![0.0f32; ab * m * n];
        for batch in 0..ab {
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for p in 0..k {
                        acc += a[batch * m * k + i * k + p] * bt[batch * n * k + j * k + p];
                    }
                    want[batch * m * n + i * n + j] = acc;
                }
            }
        }
        let mut got = vec![0.0f32; ab * m * n];
        gemm_bt_block(0, &mut got, &a, &bt, m, k, n, false);
        assert_eq!(got, want);
    }

    #[test]
    fn tn_blocks_match_naive_transpose() {
        let (ab, m, k, n) = (2usize, 9usize, 6usize, 10usize);
        let a = fill(ab * m * k, 5);
        let b = fill(ab * m * n, 6);
        // matmul_tn reference.
        let mut want = vec![0.0f32; ab * k * n];
        for batch in 0..ab {
            for p in 0..k {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for i in 0..m {
                        acc += a[batch * m * k + i * k + p] * b[batch * m * n + i * n + j];
                    }
                    want[batch * k * n + p * n + j] = acc;
                }
            }
        }
        let mut got = vec![0.0f32; ab * k * n];
        gemm_tn_block(0, &mut got, &a, &b, m, k, n);
        assert_eq!(got, want);

        // matmul_tn_acc reference: summed over batches in ascending order.
        let mut want_acc = vec![0.0f32; k * n];
        for p in 0..k {
            for j in 0..n {
                let mut acc = 0.0f32;
                for bi in 0..ab * m {
                    acc += a[bi * k + p] * b[bi * n + j];
                }
                want_acc[p * n + j] = acc;
            }
        }
        let mut got_acc = vec![0.0f32; k * n];
        gemm_tn_acc_block(0, &mut got_acc, &a, &b, ab * m, k, n);
        assert_eq!(got_acc, want_acc);
    }

    #[test]
    fn vec_matmul_block_matches_scalar_axpy() {
        let (d_in, d_out) = (13usize, 37usize);
        let x = fill(d_in, 7);
        let w = fill(d_in * d_out, 8);
        let bias = fill(d_out, 9);
        let mut want = bias.clone();
        for (i, &xi) in x.iter().enumerate() {
            for j in 0..d_out {
                want[j] += xi * w[i * d_out + j];
            }
        }
        // Two chunks with an awkward split.
        let mut got = bias.clone();
        let split = 21;
        let (lo, hi) = got.split_at_mut(split);
        vec_matmul_block(&x, &w, d_out, 0, lo);
        vec_matmul_block(&x, &w, d_out, split, hi);
        assert_eq!(got, want);
    }

    #[test]
    fn vec_matmul_rows_bitwise_matches_per_row_block() {
        // The speculative-verify batch must be indistinguishable from
        // decoding row by row: exact equality, not tolerance. Shapes
        // straddle the 4-row group and 16-column tile edges.
        for &(rows, d_in, d_out) in &[
            (1usize, 13usize, 37usize),
            (3, 16, 16),
            (4, 13, 48),
            (5, 24, 33),
            (9, 7, 16),
        ] {
            let xs = fill(rows * d_in, 21);
            let w = fill(d_in * d_out, 22);
            let bias = fill(d_out, 23);
            let mut want = Vec::with_capacity(rows * d_out);
            for r in 0..rows {
                let mut y = bias.clone();
                vec_matmul_block(&xs[r * d_in..(r + 1) * d_in], &w, d_out, 0, &mut y);
                want.extend_from_slice(&y);
            }
            let mut got = Vec::with_capacity(rows * d_out);
            for _ in 0..rows {
                got.extend_from_slice(&bias);
            }
            vec_matmul_rows(&xs, d_in, &w, d_out, &mut got);
            assert_eq!(got, want, "rows={rows} d_in={d_in} d_out={d_out}");
        }
    }

    #[test]
    fn attn_head_matches_unfused_reference() {
        let (t, h, hd) = (11usize, 3usize, 5usize);
        let d = h * hd;
        let q = fill(hd, 10);
        let keys = fill(t * d, 11);
        let vals = fill(t * d, 12);
        let off = hd; // head 1
        let scale = 0.37f32;
        // Reference: the pre-rewrite per-head loop, verbatim.
        let mut scores_ref = vec![0.0f32; t];
        for (ti, s) in scores_ref.iter_mut().enumerate() {
            let kh = &keys[ti * d + off..ti * d + off + hd];
            *s = q.iter().zip(kh.iter()).map(|(a, b)| a * b).sum::<f32>() * scale;
        }
        let max = scores_ref.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for s in scores_ref.iter_mut() {
            *s = (*s - max).exp();
            sum += *s;
        }
        let inv = 1.0 / sum;
        let mut ctx_ref = vec![0.0f32; hd];
        for (ti, &s) in scores_ref.iter().enumerate() {
            let p = s * inv;
            let vh = &vals[ti * d + off..ti * d + off + hd];
            for (c, &vv) in ctx_ref.iter_mut().zip(vh.iter()) {
                *c += p * vv;
            }
        }
        let mut scratch = vec![0.0f32; t];
        let mut ctx = vec![0.0f32; hd];
        attn_head(&q, &keys, &vals, d, off, scale, &mut scratch, &mut ctx);
        assert_eq!(ctx, ctx_ref, "fused attention diverged bitwise");
    }

    #[test]
    fn softmax_in_place_normalizes() {
        let mut row = vec![1.0f32, 2.0, 3.0, 1000.0];
        softmax_in_place(&mut row);
        assert!(row.iter().all(|x| x.is_finite()));
        assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }
}
