//! Reverse-mode automatic differentiation.
//!
//! A [`Graph`] is a tape: every operation appends a node holding the forward
//! value and a closure that maps the node's output gradient to gradients for
//! its parents. Because nodes are appended in topological order, the backward
//! pass is a single reverse sweep.
//!
//! The intended usage pattern for training is:
//! 1. keep parameters in a [`crate::optim::ParamStore`],
//! 2. per step, create a fresh `Graph`, register parameters with
//!    [`Graph::param`], run the forward pass, and call [`Graph::backward`],
//! 3. read gradients back with [`Graph::grad`] and hand them to an optimizer.

use crate::shape::{is_trailing_of, numel};
// (gelu/gelu_grad re-exported through tensor for activation backward passes)
use crate::tensor::{gelu, gelu_grad, Tensor};

/// Target index that is skipped by [`Graph::cross_entropy`].
pub const IGNORE_INDEX: usize = usize::MAX;

/// Minimum elements a row-parallel backward chunk should cover; below this
/// the dispatch overhead outweighs the work.
const ROW_MIN_ELEMS: usize = 2_048;

/// Minimum elements per chunk for broadcast add / reduce passes.
const BCAST_MIN_ELEMS: usize = 16_384;

/// Handle to a node in a [`Graph`]. Cheap to copy; only valid for the graph
/// that created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

type BackwardFn = Box<dyn Fn(&Tensor) -> Vec<Tensor>>;

struct Node {
    value: Tensor,
    requires_grad: bool,
    parents: Vec<usize>,
    backward: Option<BackwardFn>,
}

/// An autograd tape over [`Tensor`] values.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    grads: Vec<Option<Tensor>>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of recorded nodes (useful for memory diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn push(&mut self, node: Node) -> Var {
        self.nodes.push(node);
        Var(self.nodes.len() - 1)
    }

    fn leaf(&mut self, value: Tensor, requires_grad: bool) -> Var {
        self.push(Node {
            value,
            requires_grad,
            parents: vec![],
            backward: None,
        })
    }

    /// Registers a constant input (no gradient tracked).
    pub fn input(&mut self, value: Tensor) -> Var {
        self.leaf(value, false)
    }

    /// Registers a trainable parameter (gradient tracked).
    pub fn param(&mut self, value: Tensor) -> Var {
        self.leaf(value, true)
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The gradient of the last [`Graph::backward`] loss with respect to `v`,
    /// or `None` if `v` does not require grad or was unreachable.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    fn unary(
        &mut self,
        parent: Var,
        value: Tensor,
        back: impl Fn(&Tensor) -> Tensor + 'static,
    ) -> Var {
        let requires_grad = self.nodes[parent.0].requires_grad;
        self.push(Node {
            value,
            requires_grad,
            parents: vec![parent.0],
            backward: requires_grad.then(|| -> BackwardFn { Box::new(move |g| vec![back(g)]) }),
        })
    }

    fn binary(
        &mut self,
        a: Var,
        b: Var,
        value: Tensor,
        back: impl Fn(&Tensor) -> (Tensor, Tensor) + 'static,
    ) -> Var {
        let requires_grad = self.nodes[a.0].requires_grad || self.nodes[b.0].requires_grad;
        self.push(Node {
            value,
            requires_grad,
            parents: vec![a.0, b.0],
            backward: requires_grad.then(|| -> BackwardFn {
                Box::new(move |g| {
                    let (ga, gb) = back(g);
                    vec![ga, gb]
                })
            }),
        })
    }

    /// Element-wise sum of two same-shaped tensors.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).add(self.value(b));
        self.binary(a, b, value, |g| (g.clone(), g.clone()))
    }

    /// Element-wise difference `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).sub(self.value(b));
        self.binary(a, b, value, |g| (g.clone(), g.scale(-1.0)))
    }

    /// Element-wise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let va = self.value(a).clone();
        let vb = self.value(b).clone();
        let value = va.mul(&vb);
        self.binary(a, b, value, move |g| (g.mul(&vb), g.mul(&va)))
    }

    /// Multiplication by a compile-time scalar.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let value = self.value(a).scale(s);
        self.unary(a, value, move |g| g.scale(s))
    }

    /// Adds tensor `b` whose shape is a trailing suffix of `a`'s shape,
    /// broadcasting `b` over the leading dimensions of `a`. Covers bias
    /// addition (`[d]` onto `[.., d]`) and attention masks (`[t, t]` onto
    /// `[b, h, t, t]`).
    pub fn add_bcast(&mut self, a: Var, b: Var) -> Var {
        let va = self.value(a);
        let vb = self.value(b);
        assert!(
            is_trailing_of(vb.shape(), va.shape()),
            "add_bcast: {:?} is not a trailing suffix of {:?}",
            vb.shape(),
            va.shape()
        );
        let chunk = numel(vb.shape());
        let b_shape = vb.shape().to_vec();
        let mut out = va.data().to_vec();
        let reps = out.len() / chunk.max(1);
        {
            let vb_data = vb.data();
            crate::pool::parallel_rows_mut(
                &mut out,
                reps.max(1),
                (BCAST_MIN_ELEMS / chunk.max(1)).max(1),
                |_, block| {
                    for c in block.chunks_mut(chunk) {
                        for (o, &x) in c.iter_mut().zip(vb_data.iter()) {
                            *o += x;
                        }
                    }
                },
            );
        }
        let value = Tensor::new(va.shape().to_vec(), out);
        self.binary(a, b, value, move |g| {
            let mut gb = vec![0.0f32; chunk];
            // Column-parallel reduction: each column sums its repeats in
            // ascending order, matching the serial accumulation exactly.
            crate::pool::parallel_rows_mut(
                &mut gb,
                chunk,
                (BCAST_MIN_ELEMS / reps.max(1)).max(1),
                |first, block| {
                    for c in g.data().chunks(chunk) {
                        for (o, &x) in block.iter_mut().zip(c[first..].iter()) {
                            *o += x;
                        }
                    }
                },
            );
            (g.clone(), Tensor::new(b_shape.clone(), gb))
        })
    }

    /// Batched matrix product (see [`Tensor::matmul`] for accepted shapes).
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let va = self.value(a).clone();
        let vb = self.value(b).clone();
        let value = va.matmul(&vb);
        let rhs_broadcast = vb.rank() == 2 && va.rank() > 2;
        self.binary(a, b, value, move |g| {
            // dA = dC @ B^T, without materializing the transpose.
            let ga = g.matmul_bt(&vb);
            // dB = A^T @ dC (summed over batch when B was broadcast)
            let gb = if rhs_broadcast {
                let k = *va.shape().last().unwrap();
                let n = *g.shape().last().unwrap();
                let rows = numel(va.shape()) / k;
                let a2 = va.reshape(&[rows, k]);
                let g2 = g.reshape(&[rows, n]);
                a2.matmul_tn_acc(&g2)
            } else {
                va.matmul_tn(g)
            };
            (ga, gb)
        })
    }

    /// Swaps two axes.
    pub fn transpose(&mut self, a: Var, d0: usize, d1: usize) -> Var {
        let value = self.value(a).transpose(d0, d1);
        self.unary(a, value, move |g| g.transpose(d0, d1))
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    pub fn reshape(&mut self, a: Var, shape: &[usize]) -> Var {
        let old = self.value(a).shape().to_vec();
        let value = self.value(a).reshape(shape);
        self.unary(a, value, move |g| g.reshape(&old))
    }

    /// Softmax over the last dimension.
    pub fn softmax_last(&mut self, a: Var) -> Var {
        let value = self.value(a).softmax_last();
        let y = value.clone();
        self.unary(a, value, move |g| {
            let d = *y.shape().last().unwrap();
            let rows = g.data().len() / d.max(1);
            let mut out = vec![0.0f32; g.data().len()];
            crate::pool::parallel_rows_mut(
                &mut out,
                rows.max(1),
                (ROW_MIN_ELEMS / d.max(1)).max(1),
                |first, block| {
                    for (r, orow) in block.chunks_mut(d).enumerate() {
                        let off = (first + r) * d;
                        let grow = &g.data()[off..off + d];
                        let yrow = &y.data()[off..off + d];
                        let dot: f32 = grow.iter().zip(yrow.iter()).map(|(&a, &b)| a * b).sum();
                        for ((o, &gi), &yi) in orow.iter_mut().zip(grow.iter()).zip(yrow.iter()) {
                            *o = (gi - dot) * yi;
                        }
                    }
                },
            );
            Tensor::new(y.shape().to_vec(), out)
        })
    }

    /// GELU activation.
    pub fn gelu(&mut self, a: Var) -> Var {
        let x = self.value(a).clone();
        let value = x.map(gelu);
        self.unary(a, value, move |g| g.zip(&x, |gi, xi| gi * gelu_grad(xi)))
    }

    /// ReLU activation.
    pub fn relu(&mut self, a: Var) -> Var {
        let x = self.value(a).clone();
        let value = x.map(|v| v.max(0.0));
        self.unary(a, value, move |g| {
            g.zip(&x, |gi, xi| if xi > 0.0 { gi } else { 0.0 })
        })
    }

    /// Hyperbolic tangent activation.
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.value(a).map(f32::tanh);
        let y = value.clone();
        self.unary(a, value, move |g| g.zip(&y, |gi, yi| gi * (1.0 - yi * yi)))
    }

    /// Layer normalization over the last dimension with learnable `gain` and
    /// `bias` (both shape `[d]`).
    pub fn layer_norm(&mut self, x: Var, gain: Var, bias: Var, eps: f32) -> Var {
        let vx = self.value(x).clone();
        let vgain = self.value(gain).clone();
        let vbias = self.value(bias).clone();
        let d = *vx.shape().last().expect("layer_norm requires rank >= 1");
        assert_eq!(vgain.shape(), [d], "layer_norm gain must be [{d}]");
        assert_eq!(vbias.shape(), [d], "layer_norm bias must be [{d}]");

        let rows = vx.len() / d;
        let min_rows = (ROW_MIN_ELEMS / d.max(1)).max(1);
        let mut xhat = vec![0.0f32; vx.len()];
        let mut inv_std = vec![0.0f32; rows];
        crate::pool::parallel_rows_mut2(
            &mut xhat,
            &mut inv_std,
            rows.max(1),
            min_rows,
            |first, xh_block, istd_block| {
                for (r, (xh, istd)) in xh_block
                    .chunks_mut(d)
                    .zip(istd_block.iter_mut())
                    .enumerate()
                {
                    let row = &vx.data()[(first + r) * d..(first + r + 1) * d];
                    let mean = row.iter().sum::<f32>() / d as f32;
                    let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
                    *istd = 1.0 / (var + eps).sqrt();
                    for (o, &v) in xh.iter_mut().zip(row.iter()) {
                        *o = (v - mean) * *istd;
                    }
                }
            },
        );
        let mut out = vec![0.0f32; vx.len()];
        {
            let xhat = &xhat;
            crate::pool::parallel_rows_mut(&mut out, rows.max(1), min_rows, |first, block| {
                for (r, orow) in block.chunks_mut(d).enumerate() {
                    let xrow = &xhat[(first + r) * d..(first + r + 1) * d];
                    for j in 0..d {
                        orow[j] = xrow[j] * vgain.data()[j] + vbias.data()[j];
                    }
                }
            });
        }
        let value = Tensor::new(vx.shape().to_vec(), out);
        let xhat = Tensor::new(vx.shape().to_vec(), xhat);
        let shape = vx.shape().to_vec();

        let requires_grad = self.nodes[x.0].requires_grad
            || self.nodes[gain.0].requires_grad
            || self.nodes[bias.0].requires_grad;
        self.push(Node {
            value,
            requires_grad,
            parents: vec![x.0, gain.0, bias.0],
            backward: requires_grad.then(|| -> BackwardFn {
                Box::new(move |g| {
                    let rows = g.data().len() / d;
                    let min_rows = (ROW_MIN_ELEMS / d.max(1)).max(1);
                    let mut dx = vec![0.0f32; g.data().len()];
                    crate::pool::parallel_rows_mut(
                        &mut dx,
                        rows.max(1),
                        min_rows,
                        |first, block| {
                            for (r, dxrow) in block.chunks_mut(d).enumerate() {
                                let off = (first + r) * d;
                                let grow = &g.data()[off..off + d];
                                let xrow = &xhat.data()[off..off + d];
                                let istd = inv_std[first + r];
                                let mut sum_dxhat = 0.0f32;
                                let mut sum_dxhat_xhat = 0.0f32;
                                for j in 0..d {
                                    let dxhat = grow[j] * vgain.data()[j];
                                    sum_dxhat += dxhat;
                                    sum_dxhat_xhat += dxhat * xrow[j];
                                }
                                let inv_d = 1.0 / d as f32;
                                for j in 0..d {
                                    let dxhat = grow[j] * vgain.data()[j];
                                    dxrow[j] = istd
                                        * (dxhat
                                            - inv_d * sum_dxhat
                                            - inv_d * xrow[j] * sum_dxhat_xhat);
                                }
                            }
                        },
                    );
                    // Column-parallel: each column accumulates its rows in
                    // ascending order — the same order as a serial sweep.
                    let mut dgain = vec![0.0f32; d];
                    let mut dbias = vec![0.0f32; d];
                    crate::pool::parallel_rows_mut2(
                        &mut dgain,
                        &mut dbias,
                        d,
                        (ROW_MIN_ELEMS / rows.max(1)).max(1),
                        |first, gblock, bblock| {
                            for (grow, xrow) in g.data().chunks(d).zip(xhat.data().chunks(d)) {
                                for (j, (dg, db)) in
                                    gblock.iter_mut().zip(bblock.iter_mut()).enumerate()
                                {
                                    *dg += grow[first + j] * xrow[first + j];
                                    *db += grow[first + j];
                                }
                            }
                        },
                    );
                    vec![
                        Tensor::new(shape.clone(), dx),
                        Tensor::new(vec![d], dgain),
                        Tensor::new(vec![d], dbias),
                    ]
                })
            }),
        })
    }

    /// Gathers rows of `table` (shape `[v, d]`) at `ids`, producing
    /// `[ids.len(), d]`. The backward pass scatter-adds into the table.
    pub fn embedding(&mut self, table: Var, ids: &[usize]) -> Var {
        let vt = self.value(table).clone();
        assert_eq!(vt.rank(), 2, "embedding table must be rank 2");
        let (v, d) = (vt.shape()[0], vt.shape()[1]);
        let mut out = Vec::with_capacity(ids.len() * d);
        for &id in ids {
            assert!(id < v, "embedding id {id} out of range (vocab {v})");
            out.extend_from_slice(&vt.data()[id * d..(id + 1) * d]);
        }
        let value = Tensor::new(vec![ids.len(), d], out);
        let ids = ids.to_vec();
        self.unary(table, value, move |g| {
            let mut dt = vec![0.0f32; v * d];
            for (row, &id) in g.data().chunks(d).zip(ids.iter()) {
                for (o, &x) in dt[id * d..(id + 1) * d].iter_mut().zip(row.iter()) {
                    *o += x;
                }
            }
            Tensor::new(vec![v, d], dt)
        })
    }

    /// Selects one row per batch from `x` of shape `[b, t, d]`, producing
    /// `[b, d]`. Used to pick the `[CLS]` position or the last token for
    /// classification heads.
    pub fn select_positions(&mut self, x: Var, positions: &[usize]) -> Var {
        let vx = self.value(x).clone();
        assert_eq!(vx.rank(), 3, "select_positions expects [b, t, d]");
        let (b, t, d) = (vx.shape()[0], vx.shape()[1], vx.shape()[2]);
        assert_eq!(positions.len(), b, "one position per batch row required");
        let mut out = Vec::with_capacity(b * d);
        for (i, &p) in positions.iter().enumerate() {
            assert!(p < t, "position {p} out of range (seq len {t})");
            let off = i * t * d + p * d;
            out.extend_from_slice(&vx.data()[off..off + d]);
        }
        let value = Tensor::new(vec![b, d], out);
        let positions = positions.to_vec();
        self.unary(x, value, move |g| {
            let mut dx = vec![0.0f32; b * t * d];
            for (i, &p) in positions.iter().enumerate() {
                let off = i * t * d + p * d;
                dx[off..off + d].copy_from_slice(&g.data()[i * d..(i + 1) * d]);
            }
            Tensor::new(vec![b, t, d], dx)
        })
    }

    /// Mean of all elements (scalar output).
    pub fn mean_all(&mut self, a: Var) -> Var {
        let shape = self.value(a).shape().to_vec();
        let n = numel(&shape).max(1) as f32;
        let value = self.value(a).mean_all();
        self.unary(a, value, move |g| Tensor::full(&shape, g.item() / n))
    }

    /// Sum of all elements (scalar output).
    pub fn sum_all(&mut self, a: Var) -> Var {
        let shape = self.value(a).shape().to_vec();
        let value = self.value(a).sum_all();
        self.unary(a, value, move |g| Tensor::full(&shape, g.item()))
    }

    /// Inverted dropout with keep-probability `1 - p`. `mask` must contain
    /// one pre-drawn uniform sample in `[0, 1)` per element; passing the
    /// randomness in keeps the graph deterministic and testable.
    pub fn dropout(&mut self, a: Var, p: f32, mask: &[f32]) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
        let vx = self.value(a);
        assert_eq!(mask.len(), vx.len(), "dropout mask length mismatch");
        if p == 0.0 {
            return a;
        }
        let scale = 1.0 / (1.0 - p);
        let keep: Vec<f32> = mask
            .iter()
            .map(|&u| if u < p { 0.0 } else { scale })
            .collect();
        let keep = Tensor::new(vx.shape().to_vec(), keep);
        let value = vx.mul(&keep);
        self.unary(a, value, move |g| g.mul(&keep))
    }

    /// Mean cross-entropy between `logits` (shape `[n, v]`) and integer
    /// `targets` (length `n`). Positions whose target equals
    /// [`IGNORE_INDEX`] contribute neither loss nor gradient.
    ///
    /// Returns a scalar. When every target is ignored, the loss is 0.
    pub fn cross_entropy(&mut self, logits: Var, targets: &[usize]) -> Var {
        let vl = self.value(logits).clone();
        assert_eq!(vl.rank(), 2, "cross_entropy expects [n, v] logits");
        let (n, v) = (vl.shape()[0], vl.shape()[1]);
        assert_eq!(targets.len(), n, "one target per logit row required");
        let log_probs = vl.log_softmax_last();
        let mut count = 0usize;
        let mut loss = 0.0f32;
        for (row, &t) in log_probs.data().chunks(v).zip(targets.iter()) {
            if t == IGNORE_INDEX {
                continue;
            }
            assert!(t < v, "target {t} out of range (vocab {v})");
            loss -= row[t];
            count += 1;
        }
        let value = Tensor::scalar(if count == 0 { 0.0 } else { loss / count as f32 });
        let probs = vl.softmax_last();
        let targets = targets.to_vec();
        self.unary(logits, value, move |g| {
            let mut dl = vec![0.0f32; n * v];
            if count > 0 {
                let scale = g.item() / count as f32;
                for (i, &t) in targets.iter().enumerate() {
                    if t == IGNORE_INDEX {
                        continue;
                    }
                    let row = &probs.data()[i * v..(i + 1) * v];
                    let drow = &mut dl[i * v..(i + 1) * v];
                    for (o, &p) in drow.iter_mut().zip(row.iter()) {
                        *o = p * scale;
                    }
                    drow[t] -= scale;
                }
            }
            Tensor::new(vec![n, v], dl)
        })
    }

    /// Runs the reverse sweep from `loss` (which must be scalar), populating
    /// gradients for every reachable node that requires one.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.value(loss).len(),
            1,
            "backward requires a scalar loss, got shape {:?}",
            self.value(loss).shape()
        );
        self.grads = vec![None; self.nodes.len()];
        self.grads[loss.0] = Some(Tensor::scalar(1.0));
        for i in (0..self.nodes.len()).rev() {
            let Some(gout) = self.grads[i].clone() else {
                continue;
            };
            let Some(back) = self.nodes[i].backward.as_ref() else {
                continue;
            };
            let parent_grads = back(&gout);
            let parents = self.nodes[i].parents.clone();
            debug_assert_eq!(parent_grads.len(), parents.len());
            for (p, pg) in parents.into_iter().zip(parent_grads) {
                if !self.nodes[p].requires_grad {
                    continue;
                }
                match &mut self.grads[p] {
                    Some(acc) => acc.add_scaled_assign(&pg, 1.0),
                    slot @ None => *slot = Some(pg),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite-difference check: perturb each input element of `x0`
    /// and compare the numeric directional derivative of `f` with the
    /// autograd gradient.
    fn check_grad(x0: Tensor, f: impl Fn(&mut Graph, Var) -> Var, tol: f32) {
        let mut g = Graph::new();
        let x = g.param(x0.clone());
        let loss = f(&mut g, x);
        g.backward(loss);
        let analytic = g.grad(x).expect("gradient must exist").clone();

        let eps = 1e-3f32;
        for i in 0..x0.len() {
            let mut plus = x0.clone();
            plus.data_mut()[i] += eps;
            let mut minus = x0.clone();
            minus.data_mut()[i] -= eps;
            let eval = |t: Tensor| {
                let mut g = Graph::new();
                let x = g.param(t);
                let loss = f(&mut g, x);
                g.value(loss).item()
            };
            let fd = (eval(plus) - eval(minus)) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!((a - fd).abs() < tol, "grad[{i}]: analytic {a} vs fd {fd}");
        }
    }

    fn sample(shape: &[usize]) -> Tensor {
        // Deterministic, irregular values avoiding symmetry.
        let n = numel(shape);
        let data = (0..n)
            .map(|i| ((i as f32 * 0.7).sin() * 0.9) + 0.05 * i as f32 % 0.3)
            .collect();
        Tensor::new(shape.to_vec(), data)
    }

    #[test]
    fn grad_of_sum_is_ones() {
        let mut g = Graph::new();
        let x = g.param(sample(&[2, 3]));
        let s = g.sum_all(x);
        g.backward(s);
        assert_eq!(g.grad(x).unwrap().data(), &[1.0; 6]);
    }

    #[test]
    fn grad_add_mul() {
        check_grad(
            sample(&[2, 3]),
            |g, x| {
                let y = g.mul(x, x); // x^2
                let z = g.add(y, x); // x^2 + x
                g.sum_all(z)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_matmul_both_sides() {
        // loss = sum((x @ w) * (x @ w)) exercises dA and dB.
        check_grad(
            sample(&[2, 3]),
            |g, x| {
                let w = g.param(sample(&[3, 4]));
                let y = g.matmul(x, w);
                let y2 = g.mul(y, y);
                g.sum_all(y2)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_matmul_broadcast_weight() {
        let mut g = Graph::new();
        let x = g.input(sample(&[2, 3, 4]));
        let w = g.param(sample(&[4, 2]));
        let y = g.matmul(x, w);
        let s = g.sum_all(y);
        g.backward(s);
        let gw = g.grad(w).unwrap();
        assert_eq!(gw.shape(), &[4, 2]);
        // dW[p, j] = sum over all (batch, row) of x[.., p]; check one entry.
        let vx = g.value(x);
        let expected: f32 = (0..2)
            .flat_map(|b| (0..3).map(move |r| (b, r)))
            .map(|(b, r)| vx.data()[b * 12 + r * 4])
            .sum();
        assert!((gw.data()[0] - expected).abs() < 1e-4);
    }

    #[test]
    fn grad_softmax() {
        check_grad(
            sample(&[2, 4]),
            |g, x| {
                let y = g.softmax_last(x);
                let y2 = g.mul(y, y);
                g.sum_all(y2)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_gelu_relu_tanh() {
        check_grad(
            sample(&[6]),
            |g, x| {
                let y = g.gelu(x);
                g.sum_all(y)
            },
            1e-2,
        );
        check_grad(
            sample(&[6]),
            |g, x| {
                let y = g.tanh(x);
                g.sum_all(y)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_layer_norm_all_inputs() {
        // Check x gradient.
        check_grad(
            sample(&[2, 4]),
            |g, x| {
                let gain = g.param(Tensor::full(&[4], 1.2));
                let bias = g.param(Tensor::full(&[4], -0.1));
                let y = g.layer_norm(x, gain, bias, 1e-5);
                let y2 = g.mul(y, y);
                g.sum_all(y2)
            },
            3e-2,
        );
        // Check gain/bias gradients via finite differences on a fixed x.
        let x0 = sample(&[2, 4]);
        let run = |gain_val: Tensor, bias_val: Tensor| {
            let mut g = Graph::new();
            let x = g.input(x0.clone());
            let gain = g.param(gain_val);
            let bias = g.param(bias_val);
            let y = g.layer_norm(x, gain, bias, 1e-5);
            let y2 = g.mul(y, y);
            let loss = g.sum_all(y2);
            g.backward(loss);
            (
                g.value(loss).item(),
                g.grad(gain).unwrap().clone(),
                g.grad(bias).unwrap().clone(),
            )
        };
        let gain0 = Tensor::full(&[4], 1.1);
        let bias0 = Tensor::full(&[4], 0.2);
        let (_, dgain, dbias) = run(gain0.clone(), bias0.clone());
        let eps = 1e-3;
        for i in 0..4 {
            let mut gp = gain0.clone();
            gp.data_mut()[i] += eps;
            let mut gm = gain0.clone();
            gm.data_mut()[i] -= eps;
            let fd = (run(gp, bias0.clone()).0 - run(gm, bias0.clone()).0) / (2.0 * eps);
            assert!((dgain.data()[i] - fd).abs() < 3e-2);

            let mut bp = bias0.clone();
            bp.data_mut()[i] += eps;
            let mut bm = bias0.clone();
            bm.data_mut()[i] -= eps;
            let fd = (run(gain0.clone(), bp).0 - run(gain0.clone(), bm).0) / (2.0 * eps);
            assert!((dbias.data()[i] - fd).abs() < 3e-2);
        }
    }

    #[test]
    fn grad_embedding_scatters() {
        let mut g = Graph::new();
        let table = g.param(sample(&[5, 3]));
        let out = g.embedding(table, &[1, 1, 4]);
        let s = g.sum_all(out);
        g.backward(s);
        let gt = g.grad(table).unwrap();
        // Row 1 used twice, row 4 once, others unused.
        assert_eq!(&gt.data()[0..3], &[0.0; 3]);
        assert_eq!(&gt.data()[3..6], &[2.0; 3]);
        assert_eq!(&gt.data()[12..15], &[1.0; 3]);
    }

    #[test]
    fn grad_cross_entropy() {
        check_grad(
            sample(&[3, 5]),
            |g, x| g.cross_entropy(x, &[0, 3, IGNORE_INDEX]),
            1e-2,
        );
    }

    #[test]
    fn cross_entropy_ignores_all_is_zero() {
        let mut g = Graph::new();
        let x = g.param(sample(&[2, 4]));
        let loss = g.cross_entropy(x, &[IGNORE_INDEX, IGNORE_INDEX]);
        assert_eq!(g.value(loss).item(), 0.0);
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().data(), &[0.0; 8]);
    }

    #[test]
    fn grad_select_positions() {
        let mut g = Graph::new();
        let x = g.param(sample(&[2, 3, 2]));
        let sel = g.select_positions(x, &[0, 2]);
        assert_eq!(g.value(sel).shape(), &[2, 2]);
        let s = g.sum_all(sel);
        g.backward(s);
        let gx = g.grad(x).unwrap();
        // Only (batch 0, pos 0) and (batch 1, pos 2) receive gradient.
        assert_eq!(gx.data()[0..2], [1.0, 1.0]);
        assert_eq!(gx.data()[2..10], [0.0; 8]);
        assert_eq!(gx.data()[10..12], [1.0, 1.0]);
    }

    #[test]
    fn grad_add_bcast_bias() {
        let mut g = Graph::new();
        let x = g.param(sample(&[2, 3]));
        let b = g.param(Tensor::from_vec(vec![0.1, 0.2, 0.3]));
        let y = g.add_bcast(x, b);
        let s = g.sum_all(y);
        g.backward(s);
        assert_eq!(g.grad(b).unwrap().data(), &[2.0, 2.0, 2.0]);
        assert_eq!(g.grad(x).unwrap().data(), &[1.0; 6]);
    }

    #[test]
    fn grad_reshape_transpose_roundtrip() {
        check_grad(
            sample(&[2, 3]),
            |g, x| {
                let y = g.transpose(x, 0, 1);
                let z = g.reshape(y, &[6]);
                let z2 = g.mul(z, z);
                g.sum_all(z2)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_mean_all() {
        let mut g = Graph::new();
        let x = g.param(sample(&[4]));
        let m = g.mean_all(x);
        g.backward(m);
        assert_eq!(g.grad(x).unwrap().data(), &[0.25; 4]);
    }

    #[test]
    fn dropout_zero_p_is_identity() {
        let mut g = Graph::new();
        let x = g.param(sample(&[4]));
        let y = g.dropout(x, 0.0, &[0.5; 4]);
        assert_eq!(y, x);
    }

    #[test]
    fn dropout_scales_kept_elements() {
        let mut g = Graph::new();
        let x = g.param(Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0]));
        // mask values below p are dropped.
        let y = g.dropout(x, 0.5, &[0.1, 0.9, 0.2, 0.8]);
        assert_eq!(g.value(y).data(), &[0.0, 2.0, 0.0, 2.0]);
        let s = g.sum_all(y);
        g.backward(s);
        assert_eq!(g.grad(x).unwrap().data(), &[0.0, 2.0, 0.0, 2.0]);
    }

    #[test]
    fn gradients_accumulate_across_uses() {
        // x used twice: loss = sum(x) + sum(x) -> grad 2.
        let mut g = Graph::new();
        let x = g.param(sample(&[3]));
        let a = g.sum_all(x);
        let b = g.sum_all(x);
        let loss = g.add(a, b);
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().data(), &[2.0; 3]);
    }

    #[test]
    fn no_grad_for_inputs() {
        let mut g = Graph::new();
        let x = g.input(sample(&[3]));
        let s = g.sum_all(x);
        g.backward(s);
        assert!(g.grad(x).is_none());
    }
}
