//! A persistent worker pool for data-parallel tensor kernels.
//!
//! Design goal: **bit-identical results at any thread count.** Work is cut
//! into chunks whose boundaries depend only on the problem size and the
//! requested granularity — never on how many threads happen to execute
//! them. Each chunk touches a disjoint slice of the output, floating-point
//! accumulation order inside a chunk is serial, and reductions over chunk
//! partials combine them in fixed chunk order. Threads only decide *who*
//! runs a chunk, never *what* a chunk computes.
//!
//! The pool is created lazily on first use. Thread count comes from
//! [`set_threads`] when called before first use, else the `LM4DB_THREADS`
//! environment variable, else `std::thread::available_parallelism()`.
//! `parallel_for` calls from inside a worker run inline, so nested
//! parallelism cannot deadlock.
//!
//! **Fault isolation.** Every chunk body runs under `catch_unwind`, so a
//! panicking kernel can never kill a worker thread or leave a dispatcher
//! waiting forever: the job drains cleanly, the pool stays usable, and the
//! panic is *reported* — [`parallel_for`] re-raises it on the dispatching
//! thread with the original message, while [`try_parallel_tasks_mut`]
//! confines each panic to its own task and returns the failures, which is
//! what the serving engine uses to retire a poisoned request without
//! taking down its batch (DESIGN.md §5f).

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Upper bound on chunks per `parallel_for`. A constant (never the thread
/// count!) so chunk boundaries — and therefore float accumulation groups —
/// are identical no matter how many threads execute them.
const MAX_CHUNKS: usize = 64;

/// Desired thread count; 0 means "not yet resolved".
static DESIRED_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True inside a pool worker; nested parallel_for then runs inline.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn default_threads() -> usize {
    if let Ok(v) = std::env::var("LM4DB_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Sets the worker thread count. Takes full effect when called before the
/// pool's first use; afterwards it can lower (but not raise) parallelism.
pub fn set_threads(n: usize) {
    DESIRED_THREADS.store(n.max(1), Ordering::SeqCst);
}

/// The thread count `parallel_for` will use.
pub fn threads() -> usize {
    let n = DESIRED_THREADS.load(Ordering::SeqCst);
    if n != 0 {
        return n;
    }
    let resolved = default_threads();
    // Racing initializers resolve to the same value; keep whichever landed.
    let _ = DESIRED_THREADS.compare_exchange(0, resolved, Ordering::SeqCst, Ordering::SeqCst);
    DESIRED_THREADS.load(Ordering::SeqCst)
}

/// One dispatched `parallel_for`: a type-erased chunk function plus the
/// fixed chunk layout and completion tracking.
struct Job {
    /// The chunk body. Lifetime is erased; the dispatching caller blocks
    /// until `done == chunks`, so the borrow outlives every worker access.
    func: *const (dyn Fn(Range<usize>) + Sync),
    n: usize,
    chunk_size: usize,
    chunks: usize,
    next: AtomicUsize,
    done: Mutex<usize>,
    finished: Condvar,
    panicked: AtomicBool,
    /// Message of the first chunk panic, for the dispatcher's re-raise.
    panic_message: Mutex<Option<String>>,
}

/// Renders a caught panic payload for reporting. Panics raised with
/// `panic!("...")` carry `String` or `&str` payloads; anything else is
/// summarized.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// SAFETY: `func` points at a `Sync` closure that the dispatching thread
// keeps alive until the job completes.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Runs chunks until none remain. Called by workers and the dispatcher.
    fn run(&self) {
        loop {
            let c = self.next.fetch_add(1, Ordering::Relaxed);
            if c >= self.chunks {
                return;
            }
            let start = c * self.chunk_size;
            let end = (start + self.chunk_size).min(self.n);
            // A panic in one chunk must still report completion, or the
            // dispatcher would wait forever.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                // SAFETY: see `Job::func`.
                (unsafe { &*self.func })(start..end);
            }));
            if let Err(payload) = result {
                let mut msg = self.panic_message.lock().unwrap();
                if msg.is_none() {
                    *msg = Some(panic_message(payload.as_ref()));
                }
                drop(msg);
                self.panicked.store(true, Ordering::SeqCst);
            }
            let mut done = self.done.lock().unwrap();
            *done += 1;
            if *done == self.chunks {
                self.finished.notify_all();
            }
        }
    }

    fn wait(&self) {
        let mut done = self.done.lock().unwrap();
        while *done < self.chunks {
            done = self.finished.wait(done).unwrap();
        }
    }
}

struct PoolState {
    queue: Mutex<VecDeque<Arc<Job>>>,
    available: Condvar,
    workers: usize,
}

static POOL: OnceLock<PoolState> = OnceLock::new();

fn pool() -> &'static PoolState {
    POOL.get_or_init(|| {
        let workers = threads().saturating_sub(1); // dispatcher participates
        for w in 0..workers {
            std::thread::Builder::new()
                .name(format!("lm4db-pool-{w}"))
                .spawn(worker_loop)
                .expect("failed to spawn pool worker");
        }
        PoolState {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            workers,
        }
    })
}

fn worker_loop() {
    IN_WORKER.with(|w| w.set(true));
    let state = pool();
    loop {
        let job = {
            let mut queue = state.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = state.available.wait(queue).unwrap();
            }
        };
        job.run();
    }
}

/// Runs `f` over `0..n`, split into chunks of at least `min_chunk` items.
///
/// Chunk boundaries depend only on `n` and `min_chunk`, so any output
/// computed per-chunk is bit-identical regardless of thread count. `f` must
/// be safe to call concurrently on disjoint ranges.
pub fn parallel_for<F: Fn(Range<usize>) + Sync>(n: usize, min_chunk: usize, f: F) {
    if n == 0 {
        return;
    }
    let min_chunk = min_chunk.max(1);
    let chunk_size = min_chunk.max(n.div_ceil(MAX_CHUNKS));
    let chunks = n.div_ceil(chunk_size);
    let inline = chunks <= 1 || threads() <= 1 || IN_WORKER.with(|w| w.get());
    if inline {
        lm4db_obs::counter_add("pool/inline_runs", 1);
        f(0..n);
        return;
    }
    let state = pool();
    if state.workers == 0 {
        lm4db_obs::counter_add("pool/inline_runs", 1);
        f(0..n);
        return;
    }
    lm4db_obs::counter_add("pool/dispatched_jobs", 1);
    lm4db_obs::counter_add("pool/dispatched_chunks", chunks as u64);
    lm4db_obs::instant_arg("pool/dispatch", chunks as u64);
    // Dispatch-to-completion latency of pooled jobs (flat: dispatch happens
    // under arbitrary callers).
    let _timer = lm4db_obs::leaf("pool/parallel_for");
    // Erase the closure's lifetime: the dispatcher blocks in `job.wait()`
    // below, so `f` outlives every worker access through this pointer.
    let func: *const (dyn Fn(Range<usize>) + Sync) = unsafe {
        std::mem::transmute::<&(dyn Fn(Range<usize>) + Sync), &'static (dyn Fn(Range<usize>) + Sync)>(
            &f,
        )
    };
    let job = Arc::new(Job {
        func,
        n,
        chunk_size,
        chunks,
        next: AtomicUsize::new(0),
        done: Mutex::new(0),
        finished: Condvar::new(),
        panicked: AtomicBool::new(false),
        panic_message: Mutex::new(None),
    });
    // Enqueue one handle per helper we want active (capped by chunk count);
    // surplus copies drain as no-ops once the chunk counter is exhausted.
    let helpers = state
        .workers
        .min(threads().saturating_sub(1))
        .min(chunks - 1);
    {
        let mut queue = state.queue.lock().unwrap();
        for _ in 0..helpers {
            queue.push_back(Arc::clone(&job));
        }
    }
    state.available.notify_all();
    job.run(); // dispatcher participates
    job.wait();
    if job.panicked.load(Ordering::SeqCst) {
        // Every chunk completed (panicked ones via catch_unwind), so the
        // pool has drained cleanly and stays usable; re-raise on the
        // dispatching thread with the original message so the failure is
        // attributable. Callers that must survive a poisoned task use
        // `try_parallel_tasks_mut` instead.
        let msg = job
            .panic_message
            .lock()
            .unwrap()
            .take()
            .unwrap_or_else(|| "unknown panic".to_string());
        panic!("parallel_for: worker chunk panicked: {msg}");
    }
}

/// One failed task from [`try_parallel_tasks_mut`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskFailure {
    /// Index of the task that panicked.
    pub index: usize,
    /// The panic message (poisoned tasks keep their diagnosis).
    pub message: String,
}

/// Runs `f(i, &mut tasks[i])` for every task across the pool, confining
/// each panic to its own task: a panicking task never unwinds into the
/// caller, never skips a sibling task, and never kills a worker. Returns
/// the failures sorted by task index (empty when everything succeeded).
///
/// This is the fault-isolated fan-out the serving engine feeds sequences
/// through: the task that panicked is *poisoned* — its `&mut` state must
/// be assumed half-written and discarded — but every other task completed
/// normally and the pool is untouched.
///
/// Each call is also a seeded chaos point (`pool/task`, salted by a
/// per-dispatch ticket and the task index): under `LM4DB_FAULTS`, tasks
/// deterministically panic or stall here so the recovery paths above it
/// are exercised end to end.
pub fn try_parallel_tasks_mut<T: Send, F: Fn(usize, &mut T) + Sync>(
    tasks: &mut [T],
    f: F,
) -> Vec<TaskFailure> {
    if tasks.is_empty() {
        return Vec::new();
    }
    let ticket = lm4db_fault::ticket();
    let failures: Mutex<Vec<TaskFailure>> = Mutex::new(Vec::new());
    let n = tasks.len();
    parallel_rows_mut(tasks, n, 1, |first, block| {
        for (off, task) in block.iter_mut().enumerate() {
            let index = first + off;
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                lm4db_fault::point("pool/task", ticket.wrapping_mul(4096) + index as u64);
                f(index, task);
            }));
            if let Err(payload) = result {
                lm4db_obs::counter_add("pool/task_panics", 1);
                failures.lock().unwrap().push(TaskFailure {
                    index,
                    message: panic_message(payload.as_ref()),
                });
            }
        }
    });
    let mut failed = failures.into_inner().unwrap();
    failed.sort_by_key(|t| t.index);
    failed
}

/// Splits `data` into consecutive row-blocks of `rows * width` elements and
/// runs `f(first_row, block)` for each, in parallel. `data.len()` must be
/// `rows * width`. Blocks are at least `min_rows` rows.
///
/// This is the safe mutable fan-out used by the tensor kernels: each block
/// is a disjoint `&mut` slice of the output.
pub fn parallel_rows_mut<T: Send, F: Fn(usize, &mut [T]) + Sync>(
    data: &mut [T],
    rows: usize,
    min_rows: usize,
    f: F,
) {
    if rows == 0 {
        return;
    }
    assert_eq!(data.len() % rows, 0, "data length not divisible by rows");
    let width = data.len() / rows;
    let base = SendPtr(data.as_mut_ptr());
    parallel_for(rows, min_rows, |range| {
        let start = range.start;
        let len = (range.end - range.start) * width;
        // SAFETY: ranges from parallel_for are disjoint, so each block is
        // an exclusive sub-slice of `data`, alive for the whole call.
        let block = unsafe { std::slice::from_raw_parts_mut(base.get().add(start * width), len) };
        f(start, block);
    });
}

/// Like [`parallel_rows_mut`], but fans out two output buffers sharing the
/// same row count (each with its own width). `f` receives the first row
/// index and the matching blocks of both buffers.
pub fn parallel_rows_mut2<T: Send, U: Send, F: Fn(usize, &mut [T], &mut [U]) + Sync>(
    a: &mut [T],
    b: &mut [U],
    rows: usize,
    min_rows: usize,
    f: F,
) {
    if rows == 0 {
        return;
    }
    assert_eq!(a.len() % rows, 0, "first buffer not divisible by rows");
    assert_eq!(b.len() % rows, 0, "second buffer not divisible by rows");
    let wa = a.len() / rows;
    let wb = b.len() / rows;
    let pa = SendPtr(a.as_mut_ptr());
    let pb = SendPtr(b.as_mut_ptr());
    parallel_for(rows, min_rows, |range| {
        let start = range.start;
        let count = range.end - range.start;
        // SAFETY: ranges are disjoint; each block is an exclusive sub-slice.
        let block_a =
            unsafe { std::slice::from_raw_parts_mut(pa.get().add(start * wa), count * wa) };
        let block_b =
            unsafe { std::slice::from_raw_parts_mut(pb.get().add(start * wb), count * wb) };
        f(start, block_a, block_b);
    });
}

/// A raw pointer that may cross threads. Used to hand each chunk its
/// disjoint output slice.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    /// Accessed via a method so closures capture the whole (Sync) wrapper,
    /// not the raw pointer field.
    fn get(self) -> *mut T {
        self.0
    }
}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_for_covers_every_index_once() {
        let n = 10_007;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, 16, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_rows_mut_writes_disjoint_blocks() {
        let rows = 257;
        let width = 31;
        let mut data = vec![0.0f32; rows * width];
        parallel_rows_mut(&mut data, rows, 4, |first_row, block| {
            for (r, row) in block.chunks_mut(width).enumerate() {
                for (c, x) in row.iter_mut().enumerate() {
                    *x = (first_row + r) as f32 * 1000.0 + c as f32;
                }
            }
        });
        for r in 0..rows {
            for c in 0..width {
                assert_eq!(data[r * width + c], r as f32 * 1000.0 + c as f32);
            }
        }
    }

    #[test]
    fn nested_parallel_for_runs_inline() {
        let outer = 64;
        let total = AtomicUsize::new(0);
        parallel_for(outer, 1, |range| {
            for _ in range {
                parallel_for(100, 1, |inner| {
                    total.fetch_add(inner.len(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), outer * 100);
    }

    #[test]
    fn zero_and_tiny_sizes_are_fine() {
        parallel_for(0, 8, |_| panic!("must not run"));
        let count = AtomicUsize::new(0);
        parallel_for(3, 8, |range| {
            count.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn panicking_chunk_reports_and_pool_survives() {
        lm4db_fault::silence_injected_panics();
        // A panic inside one chunk must surface on the dispatching thread
        // with the original message...
        let err = std::panic::catch_unwind(|| {
            parallel_for(1000, 1, |range| {
                if range.contains(&617) {
                    panic!("injected fault at test/kernel (salt 0)");
                }
            });
        })
        .expect_err("panic must propagate to the dispatcher");
        let msg = panic_message(err.as_ref());
        assert!(
            msg.contains("injected fault at test/kernel"),
            "dispatcher panic lost the original message: {msg}"
        );
        // ...and the pool must stay fully usable afterwards.
        let count = AtomicUsize::new(0);
        parallel_for(10_000, 16, |range| {
            count.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn try_parallel_tasks_confines_panics_to_their_task() {
        lm4db_fault::silence_injected_panics();
        let mut tasks: Vec<usize> = vec![0; 257];
        let failures = try_parallel_tasks_mut(&mut tasks, |i, t| {
            if i == 3 || i == 200 {
                panic!("injected fault at test/task (salt {i})");
            }
            *t = i + 1;
        });
        assert_eq!(
            failures.iter().map(|f| f.index).collect::<Vec<_>>(),
            vec![3, 200]
        );
        for f in &failures {
            assert!(f.message.contains("injected fault at test/task"));
        }
        for (i, t) in tasks.iter().enumerate() {
            if i == 3 || i == 200 {
                assert_eq!(*t, 0, "poisoned task {i} must be untouched");
            } else {
                assert_eq!(*t, i + 1, "sibling task {i} must have completed");
            }
        }
        // No failures: the empty vec, and every task ran.
        let failures = try_parallel_tasks_mut(&mut tasks, |i, t| *t = i);
        assert!(failures.is_empty());
    }

    #[test]
    fn chunk_layout_is_thread_count_independent() {
        // The chunk boundaries are a pure function of (n, min_chunk); record
        // them via the ranges each call observes.
        let collect = |n: usize, min_chunk: usize| {
            let ranges = Mutex::new(Vec::new());
            parallel_for(n, min_chunk, |r| {
                ranges.lock().unwrap().push((r.start, r.end))
            });
            let mut v = ranges.into_inner().unwrap();
            v.sort_unstable();
            v
        };
        let a = collect(1000, 10);
        let b = collect(1000, 10);
        assert_eq!(a, b);
        assert_eq!(a.first().map(|r| r.0), Some(0));
        assert_eq!(a.last().map(|r| r.1), Some(1000));
    }
}
