//! Seeded parameter initialization.

use crate::shape::numel;
use crate::tensor::Tensor;

/// Deterministic random source for initialization and data shuffling.
///
/// Self-contained splitmix64/xoshiro256** generator, so the workspace has no
/// external RNG dependency and streams are stable across toolchains.
pub struct Rand {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rand {
    /// Creates a generator from a fixed seed.
    pub fn seeded(seed: u64) -> Self {
        let mut s = seed;
        Rand {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Next raw 64-bit output (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut n = [s0, s1, s2, s3];
        n[2] ^= n[0];
        n[3] ^= n[1];
        n[1] ^= n[2];
        n[0] ^= n[3];
        n[2] ^= t;
        n[3] = n[3].rotate_left(45);
        self.state = n;
        result
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        // 24 high bits give every representable step of 2^-24 in [0, 1).
        (self.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        // Debiased multiply-shift (Lemire); the rejection loop terminates
        // quickly for any n far below 2^64.
        let n = n as u64;
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let x = self.next_u64();
            if x < zone {
                return (x % n) as usize;
            }
        }
    }

    /// Standard normal sample (Box-Muller).
    pub fn normal(&mut self) -> f32 {
        let u1: f32 = f32::EPSILON + (1.0 - f32::EPSILON) * self.uniform();
        let u2: f32 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples an index proportionally to `weights` (must be non-negative,
    /// not all zero).
    pub fn weighted(&mut self, weights: &[f32]) -> usize {
        let total: f32 = weights.iter().sum();
        assert!(total > 0.0, "weighted() requires positive total weight");
        let mut x = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Fills a vector with `n` uniform samples (for dropout masks).
    pub fn uniform_vec(&mut self, n: usize) -> Vec<f32> {
        (0..n).map(|_| self.uniform()).collect()
    }
}

/// Normal initialization with the given standard deviation (GPT-2 style uses
/// `std = 0.02`).
pub fn normal(shape: &[usize], std: f32, rng: &mut Rand) -> Tensor {
    let data = (0..numel(shape)).map(|_| rng.normal() * std).collect();
    Tensor::new(shape.to_vec(), data)
}

/// Xavier/Glorot uniform initialization for a `[fan_in, fan_out]` matrix.
pub fn xavier(shape: &[usize], rng: &mut Rand) -> Tensor {
    assert_eq!(shape.len(), 2, "xavier init expects a 2-D weight");
    let limit = (6.0 / (shape[0] + shape[1]) as f32).sqrt();
    let data = (0..numel(shape))
        .map(|_| (rng.uniform() * 2.0 - 1.0) * limit)
        .collect();
    Tensor::new(shape.to_vec(), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = Rand::seeded(7);
        let mut b = Rand::seeded(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut rng = Rand::seeded(11);
        for _ in 0..10_000 {
            let x = rng.uniform();
            assert!((0.0..1.0).contains(&x), "uniform out of range: {x}");
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let mut rng = Rand::seeded(12);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "below(7) missed a residue");
    }

    #[test]
    fn normal_has_roughly_right_std() {
        let mut rng = Rand::seeded(1);
        let t = normal(&[10_000], 0.02, &mut rng);
        let mean: f32 = t.data().iter().sum::<f32>() / 10_000.0;
        let var: f32 = t
            .data()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / 10_000.0;
        assert!(mean.abs() < 1e-3, "mean {mean}");
        assert!((var.sqrt() - 0.02).abs() < 2e-3, "std {}", var.sqrt());
    }

    #[test]
    fn xavier_within_limit() {
        let mut rng = Rand::seeded(2);
        let t = xavier(&[16, 32], &mut rng);
        let limit = (6.0f32 / 48.0).sqrt();
        assert!(t.data().iter().all(|x| x.abs() <= limit));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rand::seeded(3);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn weighted_respects_zero_weights() {
        let mut rng = Rand::seeded(4);
        for _ in 0..100 {
            let i = rng.weighted(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }
}
