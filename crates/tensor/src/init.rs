//! Seeded parameter initialization.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::shape::numel;
use crate::tensor::Tensor;

/// Deterministic random source for initialization and data shuffling.
///
/// A thin wrapper so downstream crates do not depend on `rand` directly.
pub struct Rand {
    rng: SmallRng,
}

impl Rand {
    /// Creates a generator from a fixed seed.
    pub fn seeded(seed: u64) -> Self {
        Rand {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        self.rng.gen::<f32>()
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        self.rng.gen_range(0..n)
    }

    /// Standard normal sample (Box-Muller).
    pub fn normal(&mut self) -> f32 {
        let u1: f32 = self.rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Samples an index proportionally to `weights` (must be non-negative,
    /// not all zero).
    pub fn weighted(&mut self, weights: &[f32]) -> usize {
        let total: f32 = weights.iter().sum();
        assert!(total > 0.0, "weighted() requires positive total weight");
        let mut x = self.rng.gen::<f32>() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Fills a vector with `n` uniform samples (for dropout masks).
    pub fn uniform_vec(&mut self, n: usize) -> Vec<f32> {
        (0..n).map(|_| self.uniform()).collect()
    }
}

/// Normal initialization with the given standard deviation (GPT-2 style uses
/// `std = 0.02`).
pub fn normal(shape: &[usize], std: f32, rng: &mut Rand) -> Tensor {
    let data = (0..numel(shape)).map(|_| rng.normal() * std).collect();
    Tensor::new(shape.to_vec(), data)
}

/// Xavier/Glorot uniform initialization for a `[fan_in, fan_out]` matrix.
pub fn xavier(shape: &[usize], rng: &mut Rand) -> Tensor {
    assert_eq!(shape.len(), 2, "xavier init expects a 2-D weight");
    let limit = (6.0 / (shape[0] + shape[1]) as f32).sqrt();
    let data = (0..numel(shape))
        .map(|_| (rng.uniform() * 2.0 - 1.0) * limit)
        .collect();
    Tensor::new(shape.to_vec(), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = Rand::seeded(7);
        let mut b = Rand::seeded(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn normal_has_roughly_right_std() {
        let mut rng = Rand::seeded(1);
        let t = normal(&[10_000], 0.02, &mut rng);
        let mean: f32 = t.data().iter().sum::<f32>() / 10_000.0;
        let var: f32 = t.data().iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 1e-3, "mean {mean}");
        assert!((var.sqrt() - 0.02).abs() < 2e-3, "std {}", var.sqrt());
    }

    #[test]
    fn xavier_within_limit() {
        let mut rng = Rand::seeded(2);
        let t = xavier(&[16, 32], &mut rng);
        let limit = (6.0f32 / 48.0).sqrt();
        assert!(t.data().iter().all(|x| x.abs() <= limit));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rand::seeded(3);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn weighted_respects_zero_weights() {
        let mut rng = Rand::seeded(4);
        for _ in 0..100 {
            let i = rng.weighted(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }
}
