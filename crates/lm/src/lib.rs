//! # lm4db-lm
//!
//! The high-level language-model layer of LM4DB: an interpolated **n-gram
//! baseline** ([`NGramLm`], the "small model" end of the scale axis),
//! **prompt construction** ([`Prompt`]), and **classification through LMs**
//! in both regimes the tutorial teaches — prompting
//! ([`PromptClassifier`]) and fine-tuning ([`FineTunedClassifier`]).
//!
//! Everything that scores tokens implements
//! [`lm4db_transformer::NextToken`], so the decoding strategies (greedy,
//! sampling, constrained beam search) work uniformly across the n-gram
//! model and the transformer models.

#![warn(missing_docs)]

pub mod classify;
pub mod ngram;
pub mod prompt;

pub use classify::{score_continuation, FineTunedClassifier, PromptClassifier, TextClassifier};
pub use ngram::NGramLm;
pub use prompt::Prompt;
