//! Text classification through language models, both ways the tutorial
//! teaches (§2.3):
//!
//! * **Prompting** ([`PromptClassifier`]): render the input into a prompt
//!   and score each label verbalization as a continuation — no parameter
//!   updates, works zero- or few-shot.
//! * **Fine-tuning** ([`FineTunedClassifier`]): wrap a BERT encoder with a
//!   classification head and train on labeled examples.

use lm4db_serve::{Engine, EngineOptions, Request};
use lm4db_tokenize::Tokenizer;
use lm4db_transformer::{BertClassifier, BertModel, GptModel, ModelConfig, NextToken};

use crate::prompt::Prompt;

/// Common interface over both classification regimes.
pub trait TextClassifier {
    /// The label names, index-aligned with predictions.
    fn labels(&self) -> &[String];

    /// Predicts a label index for `text`.
    fn classify(&mut self, text: &str) -> usize;

    /// Accuracy over a labeled evaluation set.
    fn accuracy(&mut self, examples: &[(String, usize)]) -> f32 {
        if examples.is_empty() {
            return 0.0;
        }
        let correct = examples
            .iter()
            .filter(|(t, l)| self.classify(t) == *l)
            .count();
        correct as f32 / examples.len() as f32
    }
}

/// Total log-probability of `continuation` following `prefix` under `model`.
pub fn score_continuation(
    model: &mut dyn NextToken,
    prefix: &[usize],
    continuation: &[usize],
) -> f32 {
    assert!(!prefix.is_empty(), "prefix must be non-empty");
    let mut seq = prefix.to_vec();
    let mut total = 0.0;
    for &tok in continuation {
        let logits = model.next_logits(&seq);
        total += log_softmax_at(&logits, tok);
        seq.push(tok);
    }
    total
}

fn log_softmax_at(logits: &[f32], idx: usize) -> f32 {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let logsum = logits.iter().map(|&x| (x - max).exp()).sum::<f32>().ln() + max;
    logits[idx] - logsum
}

/// Zero-/few-shot classification by scoring label verbalizations as prompt
/// completions.
pub struct PromptClassifier<M: NextToken, T: Tokenizer> {
    model: M,
    tokenizer: T,
    prompt: Prompt,
    labels: Vec<String>,
    /// Pre-encoded label verbalizations.
    label_ids: Vec<Vec<usize>>,
}

impl<M: NextToken, T: Tokenizer> PromptClassifier<M, T> {
    /// Builds a classifier. `labels` are both the class names and the
    /// verbalizations scored as completions.
    pub fn new(model: M, tokenizer: T, prompt: Prompt, labels: Vec<String>) -> Self {
        let label_ids = labels.iter().map(|l| tokenizer.encode(l)).collect();
        PromptClassifier {
            model,
            tokenizer,
            prompt,
            labels,
            label_ids,
        }
    }

    /// Log-probability scores per label for `text`.
    pub fn scores(&mut self, text: &str) -> Vec<f32> {
        let rendered = self.prompt.render(text);
        let mut prefix = vec![lm4db_tokenize::BOS];
        prefix.extend(self.tokenizer.encode(&rendered));
        self.label_ids
            .iter()
            .map(|cont| {
                // Length-normalize so multi-token labels are not penalized.
                score_continuation(&mut self.model, &prefix, cont) / cont.len().max(1) as f32
            })
            .collect()
    }

    /// Consumes the classifier, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }
}

impl<T: Tokenizer> PromptClassifier<GptModel, T> {
    /// Scores every text × label pair in one pass through the batched
    /// inference engine: all continuations decode concurrently, and the
    /// rendered prompt (instruction + demonstrations + input) prefills
    /// once per text via the engine's prefix cache instead of once per
    /// label. Scores match [`PromptClassifier::scores`] up to the ~1e-3
    /// float divergence between the incremental and full-forward paths.
    pub fn scores_batch(&self, texts: &[&str]) -> Vec<Vec<f32>> {
        self.scores_batch_with(texts, EngineOptions::default())
    }

    /// [`PromptClassifier::scores_batch`] with explicit engine options —
    /// e.g. `EngineOptions { quantized: true, .. }` scores every label
    /// continuation through the int8 decode path.
    pub fn scores_batch_with(&self, texts: &[&str], opts: EngineOptions) -> Vec<Vec<f32>> {
        let mut engine = Engine::with_options(&self.model, opts);
        let mut reqs = Vec::new();
        for text in texts {
            let rendered = self.prompt.render(text);
            let mut prefix = vec![lm4db_tokenize::BOS];
            prefix.extend(self.tokenizer.encode(&rendered));
            for cont in &self.label_ids {
                reqs.push(Request::score(&prefix, cont));
            }
        }
        let responses = engine.generate_batch(reqs);
        responses
            .chunks(self.label_ids.len())
            .map(|per_text| {
                per_text
                    .iter()
                    .zip(&self.label_ids)
                    // Length-normalize exactly like the sequential path.
                    .map(|(r, cont)| r.score / cont.len().max(1) as f32)
                    .collect()
            })
            .collect()
    }

    /// Batched [`TextClassifier::classify`]: predicted label index per text.
    pub fn classify_batch(&self, texts: &[&str]) -> Vec<usize> {
        self.scores_batch(texts)
            .into_iter()
            .map(|scores| {
                scores
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Batched [`TextClassifier::accuracy`] over a labeled evaluation set.
    pub fn accuracy_batch(&self, examples: &[(String, usize)]) -> f32 {
        if examples.is_empty() {
            return 0.0;
        }
        let texts: Vec<&str> = examples.iter().map(|(t, _)| t.as_str()).collect();
        let correct = self
            .classify_batch(&texts)
            .iter()
            .zip(examples)
            .filter(|(got, (_, want))| *got == want)
            .count();
        correct as f32 / examples.len() as f32
    }
}

impl<M: NextToken, T: Tokenizer> TextClassifier for PromptClassifier<M, T> {
    fn labels(&self) -> &[String] {
        &self.labels
    }

    fn classify(&mut self, text: &str) -> usize {
        let scores = self.scores(text);
        scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Fine-tuned BERT classifier over raw text.
pub struct FineTunedClassifier<T: Tokenizer> {
    clf: BertClassifier,
    tokenizer: T,
    labels: Vec<String>,
}

impl<T: Tokenizer> FineTunedClassifier<T> {
    /// Wraps a fresh BERT encoder sized to the tokenizer's vocabulary.
    pub fn new(mut cfg: ModelConfig, tokenizer: T, labels: Vec<String>, seed: u64) -> Self {
        cfg.vocab_size = tokenizer.vocab().len();
        let model = BertModel::new(cfg, seed);
        let clf = BertClassifier::new(model, labels.len(), seed ^ 0xc1a55);
        FineTunedClassifier {
            clf,
            tokenizer,
            labels,
        }
    }

    /// Wraps an already pre-trained encoder (transfer learning).
    pub fn from_pretrained(model: BertModel, tokenizer: T, labels: Vec<String>, seed: u64) -> Self {
        let clf = BertClassifier::new(model, labels.len(), seed ^ 0xc1a55);
        FineTunedClassifier {
            clf,
            tokenizer,
            labels,
        }
    }

    fn encode_clamped(&self, text: &str) -> Vec<usize> {
        let max = self.clf.encoder().config().max_seq_len;
        let mut ids = self.tokenizer.encode_pair(text, None);
        ids.truncate(max);
        ids
    }

    /// Fine-tunes on labeled text for `epochs` passes with batches of
    /// `batch_size`. Returns the mean loss of the final epoch.
    pub fn fit(
        &mut self,
        examples: &[(String, usize)],
        epochs: usize,
        batch_size: usize,
        lr: f32,
    ) -> f32 {
        assert!(!examples.is_empty(), "fit() needs at least one example");
        let mut opt = self.clf.optimizer(lr);
        let encoded: Vec<(Vec<usize>, usize)> = examples
            .iter()
            .map(|(t, l)| (self.encode_clamped(t), *l))
            .collect();
        let mut last_epoch_loss = 0.0;
        for _ in 0..epochs {
            let mut losses = Vec::new();
            for chunk in encoded.chunks(batch_size.max(1)) {
                let batch: Vec<Vec<usize>> = chunk.iter().map(|(s, _)| s.clone()).collect();
                let labels: Vec<usize> = chunk.iter().map(|(_, l)| *l).collect();
                losses.push(self.clf.train_step(&batch, &labels, &mut opt));
            }
            last_epoch_loss = losses.iter().sum::<f32>() / losses.len().max(1) as f32;
        }
        last_epoch_loss
    }

    /// Class probabilities for `text`.
    pub fn proba(&mut self, text: &str) -> Vec<f32> {
        let ids = self.encode_clamped(text);
        self.clf.predict_proba(&[ids]).remove(0)
    }
}

impl<T: Tokenizer> TextClassifier for FineTunedClassifier<T> {
    fn labels(&self) -> &[String] {
        &self.labels
    }

    fn classify(&mut self, text: &str) -> usize {
        let ids = self.encode_clamped(text);
        self.clf.predict(&[ids])[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ngram::NGramLm;
    use lm4db_tokenize::Bpe;
    use lm4db_transformer::pack_corpus;

    // NOTE: the output marker is the single word "label" and there is no
    // input marker, so the n-gram's short context window — its last tokens
    // before the label are ("nice", "label") vs ("poor", "label") — actually
    // sees the input. This mirrors how small models need the discriminative
    // signal adjacent to the completion point, which is exactly the
    // limitation the prompting-vs-scale experiment (Exp B) measures.
    fn sentiment_corpus() -> Vec<String> {
        let mut lines = Vec::new();
        for _ in 0..30 {
            lines.push("great good nice label positive .".to_string());
            lines.push("bad awful poor label negative .".to_string());
        }
        lines
    }

    fn sentiment_prompt() -> Prompt {
        Prompt::new().with_markers("", "label")
    }

    #[test]
    fn score_continuation_prefers_trained_continuations() {
        let corpus = sentiment_corpus();
        let refs: Vec<&str> = corpus.iter().map(String::as_str).collect();
        let bpe = Bpe::train(refs.iter().copied(), 300);
        let stream = pack_corpus(refs.iter().copied(), &bpe);
        let mut lm = NGramLm::new(3, bpe.vocab().len());
        lm.train(&stream);

        let prefix = {
            let mut p = vec![lm4db_tokenize::BOS];
            p.extend(bpe.encode("great good nice label"));
            p
        };
        let pos = bpe.encode("positive");
        let neg = bpe.encode("negative");
        let s_pos = score_continuation(&mut lm, &prefix, &pos);
        let s_neg = score_continuation(&mut lm, &prefix, &neg);
        assert!(
            s_pos > s_neg,
            "positive should score higher: {s_pos} vs {s_neg}"
        );
    }

    #[test]
    fn prompt_classifier_with_ngram_backend() {
        let corpus = sentiment_corpus();
        let refs: Vec<&str> = corpus.iter().map(String::as_str).collect();
        let bpe = Bpe::train(refs.iter().copied(), 300);
        let stream = pack_corpus(refs.iter().copied(), &bpe);
        let mut lm = NGramLm::new(3, bpe.vocab().len());
        lm.train(&stream);

        let mut clf = PromptClassifier::new(
            lm,
            bpe,
            sentiment_prompt(),
            vec!["positive".into(), "negative".into()],
        );
        assert_eq!(clf.classify("great good nice"), 0);
        assert_eq!(clf.classify("bad awful poor"), 1);
        let acc = clf.accuracy(&[("great good nice".into(), 0), ("bad awful poor".into(), 1)]);
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn batched_prompt_scoring_agrees_with_sequential() {
        use lm4db_transformer::{pretrain_gpt, GptModel, ModelConfig, TrainOptions};
        let corpus = sentiment_corpus();
        let refs: Vec<&str> = corpus.iter().map(String::as_str).collect();
        let bpe = Bpe::train(refs.iter().copied(), 300);
        let stream = pack_corpus(refs.iter().copied(), &bpe);
        let cfg = ModelConfig {
            vocab_size: bpe.vocab().len(),
            ..ModelConfig::tiny(0)
        };
        let mut gpt = GptModel::new(cfg, 9);
        pretrain_gpt(
            &mut gpt,
            &stream,
            &TrainOptions {
                steps: 40,
                batch_size: 4,
                seq_len: 12,
                ..Default::default()
            },
        );
        let mut clf = PromptClassifier::new(
            gpt,
            bpe,
            sentiment_prompt(),
            vec!["positive".into(), "negative".into()],
        );
        let texts = ["great good nice", "bad awful poor"];
        let batched = clf.scores_batch(&texts);
        for (text, scores) in texts.iter().zip(&batched) {
            let sequential = clf.scores(text);
            for (b, s) in scores.iter().zip(&sequential) {
                assert!(
                    (b - s).abs() < 1e-2,
                    "batched {b} vs sequential {s} for {text:?}"
                );
            }
        }
        assert_eq!(
            clf.classify_batch(&texts),
            texts.iter().map(|t| clf.classify(t)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fine_tuned_classifier_learns_separable_task() {
        let bpe = Bpe::train(["great good nice bad awful poor neutral text"], 200);
        let mut clf = FineTunedClassifier::new(
            ModelConfig::test(),
            bpe,
            vec!["positive".into(), "negative".into()],
            3,
        );
        let train: Vec<(String, usize)> = (0..6)
            .map(|i| {
                if i % 2 == 0 {
                    ("great good nice".to_string(), 0)
                } else {
                    ("bad awful poor".to_string(), 1)
                }
            })
            .collect();
        clf.fit(&train, 25, 4, 3e-3);
        assert_eq!(clf.classify("great good nice"), 0);
        assert_eq!(clf.classify("bad awful poor"), 1);
    }

    #[test]
    fn proba_is_distribution() {
        let bpe = Bpe::train(["alpha beta gamma"], 100);
        let mut clf = FineTunedClassifier::new(
            ModelConfig::test(),
            bpe,
            vec!["a".into(), "b".into(), "c".into()],
            1,
        );
        let p = clf.proba("alpha beta");
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }
}
