//! Prompt construction: instructions plus few-shot examples, rendered into
//! the flat text a causal LM completes — the "prompting" method the tutorial
//! contrasts with fine-tuning (§2.3).

/// A prompt template: an optional instruction, zero or more worked examples,
/// and the query to be completed.
#[derive(Debug, Clone, Default)]
pub struct Prompt {
    instruction: Option<String>,
    examples: Vec<(String, String)>,
    input_prefix: String,
    output_prefix: String,
}

impl Prompt {
    /// Creates an empty prompt with the default `input:`/`output:` markers.
    pub fn new() -> Self {
        Prompt {
            instruction: None,
            examples: Vec::new(),
            input_prefix: "input :".into(),
            output_prefix: "output :".into(),
        }
    }

    /// Sets the leading task instruction.
    pub fn with_instruction(mut self, text: impl Into<String>) -> Self {
        self.instruction = Some(text.into());
        self
    }

    /// Overrides the input/output field markers.
    pub fn with_markers(mut self, input: impl Into<String>, output: impl Into<String>) -> Self {
        self.input_prefix = input.into();
        self.output_prefix = output.into();
        self
    }

    /// Appends a worked example (few-shot demonstration).
    pub fn with_example(mut self, input: impl Into<String>, output: impl Into<String>) -> Self {
        self.examples.push((input.into(), output.into()));
        self
    }

    /// Number of demonstrations.
    pub fn shot_count(&self) -> usize {
        self.examples.len()
    }

    /// Renders the prompt for `query`, ending right after the output marker
    /// so the LM's completion IS the answer.
    pub fn render(&self, query: &str) -> String {
        let mut out = String::new();
        if let Some(instr) = &self.instruction {
            out.push_str(instr);
            out.push_str(" . ");
        }
        for (i, o) in &self.examples {
            out.push_str(&format!(
                "{} {} {} {} . ",
                self.input_prefix, i, self.output_prefix, o
            ));
        }
        out.push_str(&format!(
            "{} {query} {}",
            self.input_prefix, self.output_prefix
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_shot_render() {
        let p = Prompt::new().with_instruction("classify the sentiment");
        let r = p.render("great product");
        assert!(r.starts_with("classify the sentiment . "));
        assert!(r.ends_with("input : great product output :"));
        assert_eq!(p.shot_count(), 0);
    }

    #[test]
    fn few_shot_examples_appear_in_order() {
        let p = Prompt::new()
            .with_example("good", "positive")
            .with_example("bad", "negative");
        let r = p.render("fine");
        let pos_good = r.find("good").unwrap();
        let pos_bad = r.find("bad").unwrap();
        assert!(pos_good < pos_bad);
        assert_eq!(p.shot_count(), 2);
    }

    #[test]
    fn custom_markers() {
        let p = Prompt::new().with_markers("q :", "a :");
        let r = p.render("why");
        assert!(r.contains("q : why a :"));
    }

    #[test]
    fn render_ends_with_output_marker() {
        let p = Prompt::new().with_example("x", "y");
        assert!(p.render("z").ends_with("output :"));
    }
}
