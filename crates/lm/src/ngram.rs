//! Interpolated n-gram language model — the pre-neural baseline, and the
//! "small model" end of the scale axis in the capability experiments.

use std::collections::HashMap;

use lm4db_transformer::NextToken;

/// An order-`n` n-gram model with linear interpolation across orders and
/// add-one smoothing at the unigram level.
pub struct NGramLm {
    order: usize,
    vocab_size: usize,
    /// `counts[k]` maps a context of length `k` to successor counts.
    counts: Vec<HashMap<Vec<usize>, HashMap<usize, u32>>>,
    /// Interpolation weights per order (unigram first), summing to 1.
    weights: Vec<f32>,
}

impl NGramLm {
    /// Creates an untrained model of the given order (`order >= 1`).
    pub fn new(order: usize, vocab_size: usize) -> Self {
        assert!(order >= 1, "order must be at least 1");
        // Higher orders get geometrically more weight.
        let raw: Vec<f32> = (0..order).map(|k| 2.0f32.powi(k as i32)).collect();
        let total: f32 = raw.iter().sum();
        NGramLm {
            order,
            vocab_size,
            counts: vec![HashMap::new(); order],
            weights: raw.into_iter().map(|w| w / total).collect(),
        }
    }

    /// The model order.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Accumulates counts from a token stream (can be called repeatedly).
    pub fn train(&mut self, stream: &[usize]) {
        for i in 0..stream.len() {
            for k in 0..self.order {
                if i < k {
                    continue;
                }
                let ctx = stream[i - k..i].to_vec();
                *self.counts[k]
                    .entry(ctx)
                    .or_default()
                    .entry(stream[i])
                    .or_insert(0) += 1;
            }
        }
    }

    /// Interpolated probability of `token` after `context`.
    ///
    /// Orders whose context was never observed contribute nothing and their
    /// interpolation weight is redistributed to the orders that were — a
    /// backoff scheme that keeps the distribution proper for any context.
    pub fn prob(&self, context: &[usize], token: usize) -> f32 {
        let mut num = 0.0;
        let mut weight_sum = 0.0;
        for k in 0..self.order {
            if k > context.len() {
                continue;
            }
            let ctx: Vec<usize> = context[context.len() - k..].to_vec();
            let pk = match self.counts[k].get(&ctx) {
                Some(succ) => {
                    let total: u32 = succ.values().sum();
                    let c = succ.get(&token).copied().unwrap_or(0);
                    if k == 0 {
                        // Add-one smoothing at the unigram level keeps every
                        // token possible.
                        (c as f32 + 1.0) / (total as f32 + self.vocab_size as f32)
                    } else {
                        c as f32 / total as f32
                    }
                }
                None => {
                    if k == 0 {
                        1.0 / self.vocab_size as f32
                    } else {
                        continue; // unseen context: back off
                    }
                }
            };
            num += self.weights[k] * pk;
            weight_sum += self.weights[k];
        }
        if weight_sum == 0.0 {
            1.0 / self.vocab_size as f32
        } else {
            num / weight_sum
        }
    }

    /// Full next-token distribution after `context`, in one pass per order.
    ///
    /// Bit-identical to calling [`NGramLm::prob`] for every vocabulary
    /// entry (the per-token accumulation runs over orders in the same
    /// sequence, with the same float expressions), but each order's
    /// context is hashed once and its successor total summed once instead
    /// of once per token — `O(order · successors + vocab)` rather than
    /// `O(vocab · order · successors)`. This is what makes the n-gram
    /// viable as a serve-engine draft model: one distribution per drafted
    /// token, on the critical path of every speculative decode step.
    pub fn dist(&self, context: &[usize]) -> Vec<f32> {
        let mut num = vec![0.0f32; self.vocab_size];
        let mut weight_sum = 0.0;
        for k in 0..self.order {
            if k > context.len() {
                continue;
            }
            let ctx = &context[context.len() - k..];
            if k == 0 {
                let w = self.weights[0];
                match self.counts[0].get(ctx) {
                    Some(succ) => {
                        let total: u32 = succ.values().sum();
                        let denom = total as f32 + self.vocab_size as f32;
                        // Every token starts at the add-one floor
                        // ((0 + 1.0) / denom == 1.0 / denom exactly);
                        // observed successors overwrite with their count.
                        for slot in num.iter_mut() {
                            *slot = w * (1.0 / denom);
                        }
                        for (&t, &c) in succ {
                            num[t] = w * ((c as f32 + 1.0) / denom);
                        }
                    }
                    None => {
                        let p = 1.0 / self.vocab_size as f32;
                        for slot in num.iter_mut() {
                            *slot = w * p;
                        }
                    }
                }
                weight_sum += w;
            } else if let Some(succ) = self.counts[k].get(ctx) {
                let total: u32 = succ.values().sum();
                let w = self.weights[k];
                // Tokens outside the successor map would add `w * 0.0`,
                // which never changes a non-negative accumulator.
                for (&t, &c) in succ {
                    num[t] += w * (c as f32 / total as f32);
                }
                weight_sum += w;
            }
        }
        if weight_sum == 0.0 {
            return vec![1.0 / self.vocab_size as f32; self.vocab_size];
        }
        for slot in num.iter_mut() {
            *slot /= weight_sum;
        }
        num
    }

    /// Per-token perplexity of `stream` (starting from the second token).
    pub fn perplexity(&self, stream: &[usize]) -> f32 {
        assert!(stream.len() >= 2, "perplexity needs at least 2 tokens");
        let mut nll = 0.0;
        for i in 1..stream.len() {
            let p = self.prob(&stream[..i], stream[i]).max(1e-12);
            nll -= p.ln();
        }
        (nll / (stream.len() - 1) as f32).exp()
    }

    /// Number of stored n-gram contexts across all orders.
    pub fn context_count(&self) -> usize {
        self.counts.iter().map(HashMap::len).sum()
    }
}

impl NextToken for NGramLm {
    fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    fn next_logits(&mut self, prefix: &[usize]) -> Vec<f32> {
        self.dist(prefix)
            .into_iter()
            .map(|p| p.max(1e-12).ln())
            .collect()
    }
}

impl lm4db_transformer::DraftModel for NGramLm {
    fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Same logits as [`NextToken::next_logits`], through `&self`: the
    /// serve engine shares one trained n-gram across every in-flight
    /// request and uses it to draft tokens the transformer then verifies
    /// in a single batched forward. One [`NGramLm::dist`] call per drafted
    /// token is orders of magnitude cheaper than a transformer decode
    /// step, which is the whole speculative bet.
    fn draft_logits(&self, prefix: &[usize]) -> Vec<f32> {
        self.dist(prefix)
            .into_iter()
            .map(|p| p.max(1e-12).ln())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm4db_transformer::{greedy, Unconstrained};

    fn repeating_stream() -> Vec<usize> {
        // 1 2 3 1 2 3 ... deterministic trigram structure.
        (0..300).map(|i| 1 + (i % 3)).collect()
    }

    #[test]
    fn learns_deterministic_pattern() {
        let mut lm = NGramLm::new(3, 10);
        lm.train(&repeating_stream());
        // After context [1, 2], token 3 should dominate.
        let p3 = lm.prob(&[1, 2], 3);
        let p1 = lm.prob(&[1, 2], 1);
        assert!(p3 > 0.5, "p(3 | 1 2) = {p3}");
        assert!(p3 > p1 * 5.0);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut lm = NGramLm::new(2, 8);
        lm.train(&[1, 2, 3, 4, 2, 3, 1]);
        for ctx in [vec![], vec![2], vec![3, 4]] {
            let total: f32 = (0..8).map(|t| lm.prob(&ctx, t)).sum();
            assert!((total - 1.0).abs() < 1e-4, "ctx {ctx:?} sums to {total}");
        }
    }

    #[test]
    fn unseen_context_backs_off_to_unigram() {
        let mut lm = NGramLm::new(3, 10);
        lm.train(&repeating_stream());
        // Context [7, 8] was never seen; distribution is still proper.
        let total: f32 = (0..10).map(|t| lm.prob(&[7, 8], t)).sum();
        assert!((total - 1.0).abs() < 1e-4);
        // And frequent unigrams still rank higher.
        assert!(lm.prob(&[7, 8], 1) > lm.prob(&[7, 8], 9));
    }

    #[test]
    fn higher_order_fits_pattern_better() {
        let stream = repeating_stream();
        let mut uni = NGramLm::new(1, 10);
        uni.train(&stream);
        let mut tri = NGramLm::new(3, 10);
        tri.train(&stream);
        assert!(tri.perplexity(&stream) < uni.perplexity(&stream));
    }

    #[test]
    fn generation_follows_pattern() {
        let mut lm = NGramLm::new(3, 10);
        lm.train(&repeating_stream());
        let out = greedy(&mut lm, &[1, 2], 4, 999, &Unconstrained);
        assert_eq!(out, vec![3, 1, 2, 3]);
    }

    #[test]
    fn dist_is_bitwise_identical_to_per_token_prob() {
        // The dense distribution is the draft-model fast path; it must be
        // indistinguishable from the reference scalar probability — exact
        // equality, because the serve engine's speculative byte-equality
        // guarantee rests on the draft and verify paths never disagreeing
        // about float values.
        let mut lm = NGramLm::new(4, 32);
        lm.train(&repeating_stream());
        lm.train(&[5, 9, 5, 9, 5, 2, 7]);
        let untrained = NGramLm::new(3, 16);
        for ctx in [
            vec![],
            vec![1],
            vec![1, 2],
            vec![2, 3, 1],
            vec![9, 5, 9],
            vec![30, 31],
            vec![1, 2, 3, 1, 2],
        ] {
            let dense = lm.dist(&ctx);
            for (t, &p) in dense.iter().enumerate() {
                assert_eq!(
                    p.to_bits(),
                    lm.prob(&ctx, t).to_bits(),
                    "ctx {ctx:?} token {t}"
                );
            }
            if ctx.iter().all(|&t| t < 16) {
                let dense = untrained.dist(&ctx);
                for (t, &p) in dense.iter().enumerate() {
                    assert_eq!(p.to_bits(), untrained.prob(&ctx, t).to_bits());
                }
            }
        }
    }

    #[test]
    fn train_is_incremental() {
        let mut a = NGramLm::new(2, 5);
        a.train(&[1, 2, 1, 2]);
        a.train(&[3, 4]);
        let mut b = NGramLm::new(2, 5);
        b.train(&[1, 2, 1, 2]);
        // `a` knows about 3->4, `b` does not.
        assert!(a.prob(&[3], 4) > b.prob(&[3], 4));
    }
}
