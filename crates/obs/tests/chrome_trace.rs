//! Exported Chrome traces must round-trip through the workspace
//! `serde_json` shim: valid JSON, a non-empty `traceEvents` array, and
//! matched begin/end pairs per thread lane — exactly what Perfetto needs
//! to render the trace.

use std::collections::HashMap;
use std::sync::Mutex;

use serde_json::Value;

/// Trace state is process-global; tests in this binary share one lock.
static LOCK: Mutex<()> = Mutex::new(());

fn record_workload() {
    lm4db_obs::reset();
    lm4db_obs::flight_reset();
    // Main-thread nested spans under a request, plus a worker thread, plus
    // instants and a complete event: every event kind and both lanes.
    {
        let _req = lm4db_obs::request_scope(11);
        let _outer = lm4db_obs::span("serve_step");
        lm4db_obs::instant_arg("admit", 2);
        {
            let _inner = lm4db_obs::leaf("kernel");
        }
        let (_, _) = lm4db_obs::timed("validate", || 1 + 1);
    }
    std::thread::spawn(|| {
        let _req = lm4db_obs::request_scope(12);
        let _s = lm4db_obs::span("worker_feed");
    })
    .join()
    .unwrap();
}

#[test]
fn chrome_trace_parses_with_matched_pairs() {
    let _lock = LOCK.lock().unwrap();
    lm4db_obs::set_level(2);
    record_workload();
    let trace = lm4db_obs::flight_snapshot();
    lm4db_obs::set_level(0);

    let json = trace.to_chrome_json();
    let root = serde_json::parse_value(&json).expect("exported trace must be valid JSON");
    let events = match root.get("traceEvents") {
        Some(Value::Array(a)) => a,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert!(!events.is_empty(), "trace must be non-empty");

    // Per-tid begin/end balance: walking each lane in order, depth never
    // goes negative and ends back at zero.
    let mut depth: HashMap<i64, i64> = HashMap::new();
    let mut seen_req = false;
    for e in events {
        let ph = match e.get("ph") {
            Some(Value::Str(s)) => s.as_str(),
            other => panic!("event missing ph: {other:?}"),
        };
        let tid = match e.get("tid") {
            Some(Value::Int(i)) => *i,
            other => panic!("event missing tid: {other:?}"),
        };
        assert!(e.get("name").is_some(), "event missing name");
        assert!(e.get("ts").is_some(), "event missing ts");
        match ph {
            "B" => *depth.entry(tid).or_insert(0) += 1,
            "E" => {
                let d = depth.entry(tid).or_insert(0);
                *d -= 1;
                assert!(*d >= 0, "end without begin on tid {tid}");
            }
            "X" => assert!(e.get("dur").is_some(), "complete event missing dur"),
            "i" => {}
            other => panic!("unexpected phase {other:?}"),
        }
        if let Some(args) = e.get("args") {
            if args.get("req").is_some() {
                seen_req = true;
            }
        }
    }
    for (tid, d) in &depth {
        assert_eq!(*d, 0, "unbalanced begin/end on tid {tid}");
    }
    assert!(seen_req, "request attribution must appear in args.req");
    assert!(root.get("droppedEvents").is_some());
}

#[test]
fn timeline_and_breakdown_cover_the_workload() {
    let _lock = LOCK.lock().unwrap();
    lm4db_obs::set_level(2);
    record_workload();
    let trace = lm4db_obs::flight_snapshot();
    lm4db_obs::set_level(0);

    assert_eq!(trace.requests(), vec![11, 12]);
    let text = trace.to_timeline();
    assert!(text.contains("B serve_step req=11"));
    assert!(text.contains("i admit req=11 arg=2"));
    assert!(text.contains("per-request phase totals"));
    let breakdown = trace.breakdown();
    assert!(breakdown[&Some(11)].contains_key("serve_step"));
    assert!(breakdown[&Some(11)].contains_key("kernel"));
    assert!(breakdown[&Some(11)].contains_key("validate"));
    assert!(breakdown[&Some(12)].contains_key("worker_feed"));
}
