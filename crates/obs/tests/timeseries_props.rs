//! Property tests for the telemetry primitives: time-series ring
//! wraparound and histogram merge (ISSUE 9 satellite).

use lm4db_obs::timeseries::Series;
use lm4db_obs::Histogram;
use proptest::prelude::*;

proptest! {
    /// Ring wraparound as a property: for any capacity and push count,
    /// the series keeps exactly the most recent `min(n, cap)` samples,
    /// the retained sample indices (stored as values) stay strictly
    /// monotonic in chronological order after any number of overwrites,
    /// and the total/dropped accounting balances.
    #[test]
    fn series_wraparound_keeps_newest_monotonic(cap in 1usize..64, n in 0usize..300) {
        let mut s = Series::with_capacity(cap);
        for i in 0..n as u64 {
            // step strictly increases; value carries the push index.
            s.push(i * 3, i);
        }
        let kept = n.min(cap);
        prop_assert_eq!(s.len(), kept);
        prop_assert_eq!(s.total_pushed(), n as u64);
        prop_assert_eq!(s.dropped(), (n - kept) as u64);
        let pts = s.points();
        for (k, p) in pts.iter().enumerate() {
            // Exactly the newest `kept` samples, in push order.
            prop_assert_eq!(p.value, (n - kept + k) as u64);
            prop_assert_eq!(p.step, p.value * 3);
            if k > 0 {
                prop_assert!(pts[k - 1].step < p.step, "steps must stay monotonic");
                prop_assert!(pts[k - 1].value < p.value, "sample indices must stay monotonic");
            }
        }
        if kept > 0 {
            prop_assert_eq!(s.oldest().unwrap().value, (n - kept) as u64);
            prop_assert_eq!(s.latest().unwrap().value, (n - 1) as u64);
        }
    }

    /// Windowed views as a property: on a counter advancing `inc` per
    /// sample, `delta(w)` is exactly `inc * effective_window` and
    /// `rate(w)` returns the exact integer ratio.
    #[test]
    fn series_delta_and_rate_are_exact_on_linear_counters(
        cap in 2usize..48,
        n in 2usize..200,
        inc in 0u64..1000,
        stride in 1u64..50,
        window in 1usize..64,
    ) {
        let mut s = Series::with_capacity(cap);
        for i in 0..n as u64 {
            s.push(i * stride, i * inc);
        }
        let kept = n.min(cap);
        // delta/rate span at most `window` intervals, clamped to what the
        // ring retains.
        let eff = window.min(kept - 1) as u64;
        prop_assert_eq!(s.delta(window), eff * inc);
        let (dv, ds) = s.rate(window);
        prop_assert_eq!(dv, eff * inc);
        prop_assert_eq!(ds, eff * stride);
    }

    /// Histogram::merge preserves count and total exactly, keeps min/max
    /// tight, and quantiles stay monotone in `q` after any merge.
    #[test]
    fn histogram_merge_preserves_mass_and_quantile_monotonicity(
        xs in prop::collection::vec(1u64..1_000_000, 0..40),
        ys in prop::collection::vec(1u64..1_000_000, 0..40),
    ) {
        let mut a = Histogram::new();
        for &x in &xs { a.record(x); }
        let mut b = Histogram::new();
        for &y in &ys { b.record(y); }
        let mut merged = a.clone();
        merged.merge(&b);
        prop_assert_eq!(merged.count(), a.count() + b.count());
        prop_assert_eq!(merged.total(), a.total() + b.total());
        if !xs.is_empty() || !ys.is_empty() {
            let lo = xs.iter().chain(ys.iter()).copied().min().unwrap();
            let hi = xs.iter().chain(ys.iter()).copied().max().unwrap();
            prop_assert_eq!(merged.min(), lo);
            prop_assert_eq!(merged.max(), hi);
        }
        // Quantiles are monotone non-decreasing in q...
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        for w in qs.windows(2) {
            prop_assert!(
                merged.quantile(w[0]) <= merged.quantile(w[1]),
                "quantile({}) > quantile({})", w[0], w[1]
            );
        }
        // ...bounded by the true extremes, and merge order is immaterial.
        if merged.count() > 0 {
            prop_assert!(merged.quantile(1.0) <= merged.max());
            prop_assert!(merged.quantile(0.0) >= 1);
        }
        let mut other = b.clone();
        other.merge(&a);
        for q in qs {
            prop_assert_eq!(merged.quantile(q), other.quantile(q));
        }
    }
}
