//! Log₂-bucket histograms.
//!
//! [`Histogram`] is the accumulation primitive behind every timer in the
//! registry, and is public so other crates can keep their own latency
//! distributions (the serve engine records per-request queue wait and
//! end-to-end latency this way). Recording is O(1) and allocation-free:
//! bucket `i` counts observations in `[2^i, 2^(i+1))`, which for
//! nanosecond durations spans 1 ns to ~4 s in 32 buckets.

/// Number of log₂ buckets: bucket `i` holds values in `[2^i, 2^(i+1))`;
/// the last bucket absorbs everything ≥ `2^31`.
pub const BUCKETS: usize = 32;

/// A log₂-bucket histogram with count/total/min/max side statistics.
///
/// # Examples
///
/// ```
/// let mut h = lm4db_obs::Histogram::new();
/// for v in [100, 120, 90, 20_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// // p50 falls in the [64, 128) bucket; quantiles report the bucket's
/// // upper bound, clamped to the observed max.
/// assert_eq!(h.quantile(0.5), 128);
/// assert_eq!(h.quantile(1.0), 20_000);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    count: u64,
    total: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            total: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.total = self.total.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let b = (63 - v.max(1).leading_zeros()) as usize;
        self.buckets[b.min(BUCKETS - 1)] += 1;
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.total = self.total.saturating_add(other.total);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> u64 {
        self.total.checked_div(self.count).unwrap_or(0)
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Approximate quantile: the upper bound of the bucket where the
    /// cumulative count crosses `q * count`, clamped to the observed max.
    /// `q` is clamped to `[0, 1]`; returns 0 when empty. The p50/p95/p99
    /// columns of the text exporter come from here.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return upper_bound(i).min(self.max);
            }
        }
        self.max
    }
}

/// Upper bound (exclusive) of bucket `i`.
fn upper_bound(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        u64::MAX
    } else {
        1u64 << (i + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_from_log2_buckets() {
        let mut h = Histogram::new();
        // 90 fast observations in [64, 128), 9 in [1024, 2048), 1 huge.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..9 {
            h.record(1500);
        }
        h.record(1_000_000);
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.50), 128);
        assert_eq!(h.quantile(0.95), 2048);
        // p99 crosses into the [1024, 2048) bucket exactly at the 99th
        // observation; p100 reaches the outlier, clamped to max.
        assert_eq!(h.quantile(0.99), 2048);
        assert_eq!(h.quantile(1.0), 1_000_000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn merge_folds_all_fields() {
        let mut a = Histogram::new();
        a.record(10);
        let mut b = Histogram::new();
        b.record(100);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.total(), 1110);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1000);
    }

    #[test]
    fn quantile_clamps_to_observed_max() {
        let mut h = Histogram::new();
        h.record(5); // bucket [4, 8) with upper bound 8 > max 5
        assert_eq!(h.quantile(0.5), 5);
    }
}
