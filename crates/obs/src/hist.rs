//! Log₂-bucket histograms.
//!
//! [`Histogram`] is the accumulation primitive behind every timer in the
//! registry, and is public so other crates can keep their own latency
//! distributions (the serve engine records per-request queue wait and
//! end-to-end latency this way). Recording is O(1) and allocation-free:
//! bucket `i` counts observations in `[2^i, 2^(i+1))`, which for
//! nanosecond durations spans 1 ns to ~4 s in 32 buckets.

/// Number of log₂ buckets: bucket `i` holds values in `[2^i, 2^(i+1))`;
/// the last bucket absorbs everything ≥ `2^31`.
pub const BUCKETS: usize = 32;

/// A log₂-bucket histogram with count/total/min/max side statistics.
///
/// # Examples
///
/// ```
/// let mut h = lm4db_obs::Histogram::new();
/// for v in [100, 120, 90, 20_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// // p50 falls in the [64, 128) bucket; quantiles report the bucket's
/// // upper bound, clamped to the observed max.
/// assert_eq!(h.quantile(0.5), 128);
/// assert_eq!(h.quantile(1.0), 20_000);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    count: u64,
    total: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            total: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.total = self.total.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let b = (63 - v.max(1).leading_zeros()) as usize;
        self.buckets[b.min(BUCKETS - 1)] += 1;
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.total = self.total.saturating_add(other.total);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> u64 {
        self.total.checked_div(self.count).unwrap_or(0)
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Approximate quantile: the upper bound of the bucket where the
    /// cumulative count crosses `q * count`, clamped to the observed max.
    /// `q` is clamped to `[0, 1]`; returns 0 when empty. The p50/p95/p99
    /// columns of the text exporter come from here.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return upper_bound(i).min(self.max);
            }
        }
        self.max
    }
}

/// Upper bound (exclusive) of bucket `i`.
fn upper_bound(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        u64::MAX
    } else {
        1u64 << (i + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_from_log2_buckets() {
        let mut h = Histogram::new();
        // 90 fast observations in [64, 128), 9 in [1024, 2048), 1 huge.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..9 {
            h.record(1500);
        }
        h.record(1_000_000);
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.50), 128);
        assert_eq!(h.quantile(0.95), 2048);
        // p99 crosses into the [1024, 2048) bucket exactly at the 99th
        // observation; p100 reaches the outlier, clamped to max.
        assert_eq!(h.quantile(0.99), 2048);
        assert_eq!(h.quantile(1.0), 1_000_000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn merge_folds_all_fields() {
        let mut a = Histogram::new();
        a.record(10);
        let mut b = Histogram::new();
        b.record(100);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.total(), 1110);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1000);
    }

    #[test]
    fn quantile_clamps_to_observed_max() {
        let mut h = Histogram::new();
        h.record(5); // bucket [4, 8) with upper bound 8 > max 5
        assert_eq!(h.quantile(0.5), 5);
    }

    #[test]
    fn empty_histogram_quantile_is_zero_at_every_q() {
        let h = Histogram::new();
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0] {
            assert_eq!(h.quantile(q), 0, "q={q}");
        }
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let mut h = Histogram::new();
        h.record(777);
        // One observation IS the whole distribution: any q (even a
        // clamped-out-of-range one) must report it.
        for q in [-0.5, 0.0, 0.01, 0.5, 0.99, 1.0, 7.0] {
            assert_eq!(h.quantile(q), 777, "q={q}");
        }
        assert_eq!(h.min(), 777);
        assert_eq!(h.max(), 777);
        assert_eq!(h.mean(), 777);
    }

    #[test]
    fn all_samples_in_one_bucket_report_that_bucket() {
        let mut h = Histogram::new();
        // 64, 100, 127 all land in bucket [64, 128).
        for v in [64, 100, 127, 100, 64] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.01), 127, "bucket upper bound clamps to max");
        assert_eq!(h.quantile(0.5), 127);
        assert_eq!(h.quantile(1.0), 127);
    }

    #[test]
    fn zero_and_one_share_the_first_bucket() {
        let mut h = Histogram::new();
        h.record(0); // v.max(1) puts 0 in bucket [1, 2)
        h.record(1);
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.quantile(0.5), 1, "upper bound 2 clamps to observed max");
        assert_eq!(h.min(), 0);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn top_bucket_saturates_instead_of_overflowing() {
        let mut h = Histogram::new();
        // Anything ≥ 2^31 lands in the last bucket, including u64::MAX,
        // whose upper bound would overflow a shift if not special-cased.
        h.record(1u64 << 31);
        h.record(u64::MAX);
        assert_eq!(h.buckets()[BUCKETS - 1], 2);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(1.0), u64::MAX);
        // Cumulative count crosses in the saturating bucket: the reported
        // upper bound is u64::MAX clamped to the observed max.
        assert_eq!(h.quantile(0.5), u64::MAX);
        assert_eq!(h.min(), 1u64 << 31);
        // total saturates rather than wrapping.
        assert_eq!(h.total(), u64::MAX);
    }
}
