//! The global metrics registry: per-thread shards merged at snapshot time.
//!
//! Counters and timers are recorded into a shard owned by the recording
//! thread (an uncontended mutex, registered globally on first use), so
//! instrumentation inside the `lm4db-tensor` worker pool never contends
//! with the dispatcher. Gauges are last-write-wins and low-frequency, so
//! they live in one global map. [`snapshot`] folds every shard together.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::export::{Snapshot, TimerStat};

/// Number of log₂ latency buckets: bucket `i` holds durations in
/// `[2^i, 2^(i+1))` nanoseconds; the last bucket absorbs everything ≥ ~4s.
pub const BUCKETS: usize = 32;

/// One timer's accumulated state inside a shard.
#[derive(Clone)]
pub(crate) struct Timer {
    pub(crate) count: u64,
    pub(crate) total_ns: u64,
    pub(crate) min_ns: u64,
    pub(crate) max_ns: u64,
    pub(crate) buckets: [u64; BUCKETS],
}

impl Default for Timer {
    fn default() -> Self {
        Timer {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl Timer {
    pub(crate) fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        let b = (63 - ns.max(1).leading_zeros()) as usize;
        self.buckets[b.min(BUCKETS - 1)] += 1;
    }

    pub(crate) fn merge(&mut self, other: &Timer) {
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

/// One thread's private slice of the registry.
#[derive(Default)]
struct Shard {
    counters: BTreeMap<String, u64>,
    timers: BTreeMap<String, Timer>,
}

impl Shard {
    fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.timers.is_empty()
    }
}

/// All shards ever registered. Shards are never removed: a thread's
/// thread-local keeps its `Arc` alive, and `reset` clears contents in
/// place so the handles stay valid.
static SHARDS: OnceLock<Mutex<Vec<Arc<Mutex<Shard>>>>> = OnceLock::new();

/// Gauges are last-write-wins and set rarely; one global map suffices.
static GAUGES: OnceLock<Mutex<BTreeMap<String, f64>>> = OnceLock::new();

fn shards() -> &'static Mutex<Vec<Arc<Mutex<Shard>>>> {
    SHARDS.get_or_init(|| Mutex::new(Vec::new()))
}

fn gauges() -> &'static Mutex<BTreeMap<String, f64>> {
    GAUGES.get_or_init(|| Mutex::new(BTreeMap::new()))
}

thread_local! {
    /// This thread's shard, registered globally on first use.
    static LOCAL: Arc<Mutex<Shard>> = {
        let shard = Arc::new(Mutex::new(Shard::default()));
        shards().lock().unwrap().push(Arc::clone(&shard));
        shard
    };
}

fn with_shard(f: impl FnOnce(&mut Shard)) {
    LOCAL.with(|s| f(&mut s.lock().unwrap()));
}

/// Adds `delta` to the named counter. No-op while tracing is disabled.
pub fn counter_add(name: &str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    with_shard(|s| {
        if let Some(v) = s.counters.get_mut(name) {
            *v += delta;
        } else {
            s.counters.insert(name.to_string(), delta);
        }
    });
}

/// Sets the named gauge to `value` (last write wins). No-op while tracing
/// is disabled.
pub fn gauge_set(name: &str, value: f64) {
    if !crate::enabled() {
        return;
    }
    let mut g = gauges().lock().unwrap();
    g.insert(name.to_string(), value);
}

/// Records one observation of `ns` nanoseconds under the named timer.
/// No-op while tracing is disabled. Span guards call this on drop; call it
/// directly to fold in durations measured some other way.
pub fn record_duration_ns(name: &str, ns: u64) {
    if !crate::enabled() {
        return;
    }
    with_shard(|s| {
        if let Some(t) = s.timers.get_mut(name) {
            t.record(ns);
        } else {
            let mut t = Timer::default();
            t.record(ns);
            s.timers.insert(name.to_string(), t);
        }
    });
}

/// Clears every counter, gauge, and timer (shards stay registered).
/// Works whether or not tracing is enabled.
pub fn reset() {
    for shard in shards().lock().unwrap().iter() {
        let mut s = shard.lock().unwrap();
        s.counters.clear();
        s.timers.clear();
    }
    gauges().lock().unwrap().clear();
}

/// Merges every thread's shard into one point-in-time [`Snapshot`].
/// Works whether or not tracing is enabled.
pub fn snapshot() -> Snapshot {
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut timers: BTreeMap<String, Timer> = BTreeMap::new();
    let mut threads = 0usize;
    for shard in shards().lock().unwrap().iter() {
        let s = shard.lock().unwrap();
        if s.is_empty() {
            continue;
        }
        threads += 1;
        for (k, v) in &s.counters {
            *counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, t) in &s.timers {
            timers.entry(k.clone()).or_default().merge(t);
        }
    }
    Snapshot {
        counters,
        gauges: gauges().lock().unwrap().clone(),
        timers: timers
            .into_iter()
            .map(|(k, t)| (k, TimerStat::from_timer(&t)))
            .collect(),
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_buckets_are_log2() {
        let mut t = Timer::default();
        t.record(1); // bucket 0: [1, 2)
        t.record(3); // bucket 1: [2, 4)
        t.record(1024); // bucket 10
        t.record(u64::MAX); // saturates into the last bucket
        assert_eq!(t.buckets[0], 1);
        assert_eq!(t.buckets[1], 1);
        assert_eq!(t.buckets[10], 1);
        assert_eq!(t.buckets[BUCKETS - 1], 1);
        assert_eq!(t.count, 4);
        assert_eq!(t.min_ns, 1);
        assert_eq!(t.max_ns, u64::MAX);
    }

    #[test]
    fn merge_folds_all_fields() {
        let mut a = Timer::default();
        a.record(10);
        let mut b = Timer::default();
        b.record(100);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.total_ns, 1110);
        assert_eq!(a.min_ns, 10);
        assert_eq!(a.max_ns, 1000);
    }
}
