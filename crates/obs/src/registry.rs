//! The global metrics registry: per-thread shards merged at snapshot time.
//!
//! Counters and timers are recorded into a shard owned by the recording
//! thread (an uncontended mutex, registered globally on first use), so
//! instrumentation inside the `lm4db-tensor` worker pool never contends
//! with the dispatcher. Gauges are last-write-wins and low-frequency, so
//! they live in one global map. [`snapshot`] folds every shard together.
//!
//! Timers accumulate into [`Histogram`]s — the same log₂-bucket type other
//! crates use for their own latency distributions — so snapshot quantiles
//! and, say, the serve engine's per-request `Stats` histograms agree on
//! semantics.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::export::{Snapshot, TimerStat};
use crate::hist::Histogram;

pub use crate::hist::BUCKETS;

/// One thread's private slice of the registry.
#[derive(Default)]
struct Shard {
    counters: BTreeMap<String, u64>,
    timers: BTreeMap<String, Histogram>,
}

impl Shard {
    fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.timers.is_empty()
    }
}

/// All shards ever registered. Shards are never removed: a thread's
/// thread-local keeps its `Arc` alive, and `reset` clears contents in
/// place so the handles stay valid.
static SHARDS: OnceLock<Mutex<Vec<Arc<Mutex<Shard>>>>> = OnceLock::new();

/// Gauges are last-write-wins and set rarely; one global map suffices.
static GAUGES: OnceLock<Mutex<BTreeMap<String, f64>>> = OnceLock::new();

fn shards() -> &'static Mutex<Vec<Arc<Mutex<Shard>>>> {
    SHARDS.get_or_init(|| Mutex::new(Vec::new()))
}

fn gauges() -> &'static Mutex<BTreeMap<String, f64>> {
    GAUGES.get_or_init(|| Mutex::new(BTreeMap::new()))
}

thread_local! {
    /// This thread's shard, registered globally on first use.
    static LOCAL: Arc<Mutex<Shard>> = {
        let shard = Arc::new(Mutex::new(Shard::default()));
        shards().lock().unwrap().push(Arc::clone(&shard));
        shard
    };
}

fn with_shard(f: impl FnOnce(&mut Shard)) {
    LOCAL.with(|s| f(&mut s.lock().unwrap()));
}

/// Adds `delta` to the named counter. No-op while tracing is disabled.
pub fn counter_add(name: &str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    with_shard(|s| {
        if let Some(v) = s.counters.get_mut(name) {
            *v += delta;
        } else {
            s.counters.insert(name.to_string(), delta);
        }
    });
}

/// Sets the named gauge to `value` (last write wins). No-op while tracing
/// is disabled.
pub fn gauge_set(name: &str, value: f64) {
    if !crate::enabled() {
        return;
    }
    let mut g = gauges().lock().unwrap();
    g.insert(name.to_string(), value);
}

/// Records one observation of `ns` nanoseconds under the named timer.
/// No-op while tracing is disabled. Span guards call this on drop; call it
/// directly to fold in durations measured some other way.
pub fn record_duration_ns(name: &str, ns: u64) {
    if !crate::enabled() {
        return;
    }
    with_shard(|s| {
        if let Some(t) = s.timers.get_mut(name) {
            t.record(ns);
        } else {
            let mut t = Histogram::new();
            t.record(ns);
            s.timers.insert(name.to_string(), t);
        }
    });
}

/// Clears every counter, gauge, and timer (shards stay registered).
/// Works whether or not tracing is enabled.
pub fn reset() {
    for shard in shards().lock().unwrap().iter() {
        let mut s = shard.lock().unwrap();
        s.counters.clear();
        s.timers.clear();
    }
    gauges().lock().unwrap().clear();
}

/// Merges every thread's shard into one point-in-time [`Snapshot`].
/// Works whether or not tracing is enabled.
///
/// **Ordering contract.** The snapshot's `counters`, `gauges`, and
/// `timers` maps are `BTreeMap`s, so iteration is always sorted by
/// metric name — independent of shard registration order, thread count,
/// or recording interleaving. Exporters rely on this: two snapshots with
/// equal contents render byte-identical text, JSON, and Prometheus
/// exposition no matter how many threads contributed. Pinned by
/// `snapshot_iteration_is_sorted_across_shards` below.
pub fn snapshot() -> Snapshot {
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut timers: BTreeMap<String, Histogram> = BTreeMap::new();
    let mut threads = 0usize;
    for shard in shards().lock().unwrap().iter() {
        let s = shard.lock().unwrap();
        if s.is_empty() {
            continue;
        }
        threads += 1;
        for (k, v) in &s.counters {
            *counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, t) in &s.timers {
            timers.entry(k.clone()).or_default().merge(t);
        }
    }
    Snapshot {
        counters,
        gauges: gauges().lock().unwrap().clone(),
        timers: timers
            .into_iter()
            .map(|(k, t)| (k, TimerStat::from_hist(&t)))
            .collect(),
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_iteration_is_sorted_across_shards() {
        let _lock = crate::TEST_LOCK.lock().unwrap();
        crate::set_enabled(true);
        reset();
        // Record deliberately out of order, from several threads, so the
        // per-shard insertion orders disagree with each other.
        counter_add("z/last", 1);
        counter_add("a/first", 1);
        gauge_set("m/gauge", 2.0);
        gauge_set("b/gauge", 1.0);
        record_duration_ns("t/two", 10);
        record_duration_ns("s/one", 10);
        let handles: Vec<_> = (0..3)
            .map(|i| {
                std::thread::spawn(move || {
                    counter_add("k/worker", i);
                    counter_add("c/worker", 1);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = snapshot();
        crate::set_enabled(false);
        let names: Vec<&String> = snap.counters.keys().collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "counter iteration must be sorted by name");
        let gnames: Vec<&String> = snap.gauges.keys().collect();
        let mut gsorted = gnames.clone();
        gsorted.sort();
        assert_eq!(gnames, gsorted, "gauge iteration must be sorted by name");
        let tnames: Vec<&String> = snap.timers.keys().collect();
        let mut tsorted = tnames.clone();
        tsorted.sort();
        assert_eq!(tnames, tsorted, "timer iteration must be sorted by name");
        // And therefore renderings are byte-stable snapshot-to-snapshot.
        assert_eq!(snap.to_json(), snapshot().to_json());
        assert_eq!(
            crate::prom::to_prometheus(&snap, &[]),
            crate::prom::to_prometheus(&snapshot(), &[]),
        );
    }

    #[test]
    fn timer_buckets_are_log2() {
        let mut t = Histogram::new();
        t.record(1); // bucket 0: [1, 2)
        t.record(3); // bucket 1: [2, 4)
        t.record(1024); // bucket 10
        t.record(u64::MAX); // saturates into the last bucket
        assert_eq!(t.buckets()[0], 1);
        assert_eq!(t.buckets()[1], 1);
        assert_eq!(t.buckets()[10], 1);
        assert_eq!(t.buckets()[BUCKETS - 1], 1);
        assert_eq!(t.count(), 4);
        assert_eq!(t.min(), 1);
        assert_eq!(t.max(), u64::MAX);
    }
}
