//! The global metrics registry: per-thread shards merged at snapshot time.
//!
//! Counters and timers are recorded into a shard owned by the recording
//! thread (an uncontended mutex, registered globally on first use), so
//! instrumentation inside the `lm4db-tensor` worker pool never contends
//! with the dispatcher. Gauges are last-write-wins and low-frequency, so
//! they live in one global map. [`snapshot`] folds every shard together.
//!
//! Timers accumulate into [`Histogram`]s — the same log₂-bucket type other
//! crates use for their own latency distributions — so snapshot quantiles
//! and, say, the serve engine's per-request `Stats` histograms agree on
//! semantics.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::export::{Snapshot, TimerStat};
use crate::hist::Histogram;

pub use crate::hist::BUCKETS;

/// One thread's private slice of the registry.
#[derive(Default)]
struct Shard {
    counters: BTreeMap<String, u64>,
    timers: BTreeMap<String, Histogram>,
}

impl Shard {
    fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.timers.is_empty()
    }
}

/// All shards ever registered. Shards are never removed: a thread's
/// thread-local keeps its `Arc` alive, and `reset` clears contents in
/// place so the handles stay valid.
static SHARDS: OnceLock<Mutex<Vec<Arc<Mutex<Shard>>>>> = OnceLock::new();

/// Gauges are last-write-wins and set rarely; one global map suffices.
static GAUGES: OnceLock<Mutex<BTreeMap<String, f64>>> = OnceLock::new();

fn shards() -> &'static Mutex<Vec<Arc<Mutex<Shard>>>> {
    SHARDS.get_or_init(|| Mutex::new(Vec::new()))
}

fn gauges() -> &'static Mutex<BTreeMap<String, f64>> {
    GAUGES.get_or_init(|| Mutex::new(BTreeMap::new()))
}

thread_local! {
    /// This thread's shard, registered globally on first use.
    static LOCAL: Arc<Mutex<Shard>> = {
        let shard = Arc::new(Mutex::new(Shard::default()));
        shards().lock().unwrap().push(Arc::clone(&shard));
        shard
    };
}

fn with_shard(f: impl FnOnce(&mut Shard)) {
    LOCAL.with(|s| f(&mut s.lock().unwrap()));
}

/// Adds `delta` to the named counter. No-op while tracing is disabled.
pub fn counter_add(name: &str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    with_shard(|s| {
        if let Some(v) = s.counters.get_mut(name) {
            *v += delta;
        } else {
            s.counters.insert(name.to_string(), delta);
        }
    });
}

/// Sets the named gauge to `value` (last write wins). No-op while tracing
/// is disabled.
pub fn gauge_set(name: &str, value: f64) {
    if !crate::enabled() {
        return;
    }
    let mut g = gauges().lock().unwrap();
    g.insert(name.to_string(), value);
}

/// Records one observation of `ns` nanoseconds under the named timer.
/// No-op while tracing is disabled. Span guards call this on drop; call it
/// directly to fold in durations measured some other way.
pub fn record_duration_ns(name: &str, ns: u64) {
    if !crate::enabled() {
        return;
    }
    with_shard(|s| {
        if let Some(t) = s.timers.get_mut(name) {
            t.record(ns);
        } else {
            let mut t = Histogram::new();
            t.record(ns);
            s.timers.insert(name.to_string(), t);
        }
    });
}

/// Clears every counter, gauge, and timer (shards stay registered).
/// Works whether or not tracing is enabled.
pub fn reset() {
    for shard in shards().lock().unwrap().iter() {
        let mut s = shard.lock().unwrap();
        s.counters.clear();
        s.timers.clear();
    }
    gauges().lock().unwrap().clear();
}

/// Merges every thread's shard into one point-in-time [`Snapshot`].
/// Works whether or not tracing is enabled.
pub fn snapshot() -> Snapshot {
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut timers: BTreeMap<String, Histogram> = BTreeMap::new();
    let mut threads = 0usize;
    for shard in shards().lock().unwrap().iter() {
        let s = shard.lock().unwrap();
        if s.is_empty() {
            continue;
        }
        threads += 1;
        for (k, v) in &s.counters {
            *counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, t) in &s.timers {
            timers.entry(k.clone()).or_default().merge(t);
        }
    }
    Snapshot {
        counters,
        gauges: gauges().lock().unwrap().clone(),
        timers: timers
            .into_iter()
            .map(|(k, t)| (k, TimerStat::from_hist(&t)))
            .collect(),
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_buckets_are_log2() {
        let mut t = Histogram::new();
        t.record(1); // bucket 0: [1, 2)
        t.record(3); // bucket 1: [2, 4)
        t.record(1024); // bucket 10
        t.record(u64::MAX); // saturates into the last bucket
        assert_eq!(t.buckets()[0], 1);
        assert_eq!(t.buckets()[1], 1);
        assert_eq!(t.buckets()[10], 1);
        assert_eq!(t.buckets()[BUCKETS - 1], 1);
        assert_eq!(t.count(), 4);
        assert_eq!(t.min(), 1);
        assert_eq!(t.max(), u64::MAX);
    }
}
