//! Point-in-time snapshots and their text/JSON renderings.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::hist::{Histogram, BUCKETS};

/// Aggregated statistics of one timer, merged across all thread shards.
#[derive(Debug, Clone, PartialEq)]
pub struct TimerStat {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observed durations, nanoseconds.
    pub total_ns: u64,
    /// Smallest observation, nanoseconds (0 when `count == 0`).
    pub min_ns: u64,
    /// Largest observation, nanoseconds.
    pub max_ns: u64,
    /// Log₂ histogram: `buckets[i]` counts durations in `[2^i, 2^(i+1))`
    /// ns; the final bucket absorbs everything larger.
    pub buckets: Vec<u64>,
}

impl TimerStat {
    pub(crate) fn from_hist(t: &Histogram) -> Self {
        TimerStat {
            count: t.count(),
            total_ns: t.total(),
            min_ns: t.min(),
            max_ns: t.max(),
            buckets: t.buckets().to_vec(),
        }
    }

    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Total recorded time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }

    /// Approximate quantile from the log₂ histogram: the upper bound of
    /// the bucket where the cumulative count crosses `q * count`. `q` is
    /// clamped to `[0, 1]`; returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return upper_bound_ns(i).min(self.max_ns);
            }
        }
        self.max_ns
    }
}

/// Upper bound (exclusive) of bucket `i` in nanoseconds.
fn upper_bound_ns(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        u64::MAX
    } else {
        1u64 << (i + 1)
    }
}

/// A merged, point-in-time view of the whole registry, produced by
/// [`crate::snapshot`]. Maps are sorted by name so renderings are stable.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Timers (from spans, leaves, and direct duration records).
    pub timers: BTreeMap<String, TimerStat>,
    /// Number of thread shards that contributed data.
    pub threads: usize,
}

/// Renders nanoseconds with an adaptive unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl Snapshot {
    /// Renders the snapshot as an aligned, human-readable text table.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "# lm4db-obs snapshot ({} thread shards)", self.threads);
        if !self.counters.is_empty() {
            let w = self.counters.keys().map(String::len).max().unwrap_or(0);
            let _ = writeln!(s, "## counters");
            for (k, v) in &self.counters {
                let _ = writeln!(s, "{k:<w$}  {v}");
            }
        }
        if !self.gauges.is_empty() {
            let w = self.gauges.keys().map(String::len).max().unwrap_or(0);
            let _ = writeln!(s, "## gauges");
            for (k, v) in &self.gauges {
                let _ = writeln!(s, "{k:<w$}  {v}");
            }
        }
        if !self.timers.is_empty() {
            let w = self
                .timers
                .keys()
                .map(String::len)
                .max()
                .unwrap_or(0)
                .max(5);
            let _ = writeln!(s, "## timers");
            let _ = writeln!(
                s,
                "{:<w$}  {:>9}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
                "timer", "count", "total", "mean", "p50", "p95", "p99", "max"
            );
            for (k, t) in &self.timers {
                let _ = writeln!(
                    s,
                    "{:<w$}  {:>9}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
                    k,
                    t.count,
                    fmt_ns(t.total_ns),
                    fmt_ns(t.mean_ns()),
                    fmt_ns(t.quantile_ns(0.50)),
                    fmt_ns(t.quantile_ns(0.95)),
                    fmt_ns(t.quantile_ns(0.99)),
                    fmt_ns(t.max_ns),
                );
            }
        }
        s
    }

    /// Renders the snapshot as a JSON object with `counters`, `gauges`,
    /// `timers` (count/total/mean/min/max/buckets, all in ns), and
    /// `threads`. Keys are escaped; output is deterministic (sorted maps).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str("\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}:{}", json_str(k), v);
        }
        s.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}:{}", json_str(k), json_f64(*v));
        }
        s.push_str("},\"timers\":{");
        for (i, (k, t)) in self.timers.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{}:{{\"count\":{},\"total_ns\":{},\"mean_ns\":{},\"min_ns\":{},\"max_ns\":{},\"buckets\":[",
                json_str(k),
                t.count,
                t.total_ns,
                t.mean_ns(),
                t.min_ns,
                t.max_ns,
            );
            for (j, b) in t.buckets.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{b}");
            }
            s.push_str("]}");
        }
        let _ = write!(s, "}},\"threads\":{}}}", self.threads);
        s
    }
}

/// JSON string literal with escaping for quotes, backslashes, and control
/// characters (metric names are ASCII in practice, but stay correct).
/// Crate-visible: the crash-dump writer reuses it for the panic reason.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number rendering for gauges; non-finite values become null.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(observations: &[u64]) -> TimerStat {
        // Exercise the production record + merge paths: each observation
        // lands in its own single-shot histogram that is folded into `t`.
        let mut t = Histogram::new();
        for &ns in observations {
            let mut one = Histogram::new();
            one.record(ns);
            t.merge(&one);
        }
        TimerStat::from_hist(&t)
    }

    #[test]
    fn quantiles_track_buckets() {
        let s = stat(&[100, 100, 100, 100_000]);
        // p50 falls in the [64, 128) bucket → upper bound 128.
        assert_eq!(s.quantile_ns(0.5), 128);
        // p100 lands in the slow observation's bucket, clamped to max.
        assert_eq!(s.quantile_ns(1.0), 100_000);
        assert_eq!(s.mean_ns(), (100 * 3 + 100_000) / 4);
    }

    #[test]
    fn empty_stat_is_all_zero() {
        let s = stat(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_ns(), 0);
        assert_eq!(s.quantile_ns(0.99), 0);
        assert_eq!(s.min_ns, 0);
    }

    #[test]
    fn text_and_json_render_all_sections() {
        let mut snap = Snapshot::default();
        snap.counters.insert("reqs".into(), 7);
        snap.gauges.insert("depth".into(), 1.5);
        snap.timers.insert("work".into(), stat(&[1000, 2000]));
        snap.threads = 2;
        let text = snap.to_text();
        assert!(text.contains("reqs"));
        assert!(text.contains("depth"));
        assert!(text.contains("work"));
        let json = snap.to_json();
        assert!(json.contains("\"reqs\":7"));
        assert!(json.contains("\"depth\":1.5"));
        assert!(json.contains("\"count\":2"));
        assert!(json.ends_with("\"threads\":2}"));
    }

    #[test]
    fn json_escapes_special_keys() {
        let mut snap = Snapshot::default();
        snap.counters.insert("a\"b\\c".into(), 1);
        let json = snap.to_json();
        assert!(json.contains("\"a\\\"b\\\\c\":1"));
    }
}
