//! Step-clock time series: bounded per-series ring buffers with derived
//! rate/delta/window views.
//!
//! Snapshots ([`crate::snapshot`]) answer "what is the counter *now*";
//! this module answers "how did it move over the last N samples". A
//! [`Series`] is a fixed-capacity ring of [`Point`]s — `(step, value)`
//! pairs on the **virtual step clock** — that overwrites its oldest entry
//! when full and never allocates after construction, so sampling on a hot
//! scheduler cadence costs two word writes per point.
//!
//! **Determinism.** A point's `step` is a scheduler tick and its `value`
//! is whatever the sampler read at that tick. The serve engine samples
//! only step-based quantities (queue depths, outcome counters, step-
//! latency quantiles), so its series are pure functions of the request
//! schedule: byte-identical across thread counts, trace levels, and
//! replays. Wall-clock quantities (registry timers) can be sampled too —
//! [`sample_registry`] does — but they are *not* part of any fingerprint.
//!
//! The global [`series_record`] store is keyed by name, sorted, and
//! snapshotted with [`series_snapshot`]; the Prometheus and dashboard
//! exporters render from that snapshot, never from live state.
//!
//! # Examples
//!
//! ```
//! use lm4db_obs::timeseries::Series;
//!
//! let mut s = Series::with_capacity(4);
//! for step in 0..10u64 {
//!     s.push(step, step * 3); // a counter growing 3/step
//! }
//! assert_eq!(s.len(), 4);          // only the newest 4 samples retained
//! assert_eq!(s.dropped(), 6);
//! assert_eq!(s.latest().unwrap().value, 27);
//! assert_eq!(s.delta(3), 9);       // across the last 3 intervals
//! let (dv, ds) = s.rate(3);
//! assert_eq!((dv, ds), (9, 3));    // 3 value units per step
//! ```

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// One sample: a value observed at a virtual-clock step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Point {
    /// Scheduler step (virtual clock) at which the sample was taken.
    pub step: u64,
    /// Sampled value (cumulative counter, gauge reading, or quantile).
    pub value: u64,
}

/// A fixed-capacity ring of [`Point`]s: overwrite-oldest, allocation-free
/// after construction.
#[derive(Debug, Clone)]
pub struct Series {
    buf: Vec<Point>,
    cap: usize,
    /// Index of the oldest retained point (meaningful once full).
    head: usize,
    /// Points ever pushed (retained = `min(total, cap)`).
    total: u64,
}

impl Series {
    /// An empty series retaining at most `cap` points (`cap` is clamped
    /// to ≥ 1). The buffer is preallocated: pushes never allocate.
    pub fn with_capacity(cap: usize) -> Series {
        let cap = cap.max(1);
        Series {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            total: 0,
        }
    }

    /// Appends a sample, overwriting the oldest when full. Steps are
    /// expected to be non-decreasing (the sampler's cadence guarantees
    /// it); nothing breaks otherwise, but windowed views assume order.
    #[inline]
    pub fn push(&mut self, step: u64, value: u64) {
        let p = Point { step, value };
        if self.buf.len() < self.cap {
            self.buf.push(p);
        } else {
            self.buf[self.head] = p;
            self.head = (self.head + 1) % self.cap;
        }
        self.total += 1;
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no point was ever pushed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Points ever pushed, including overwritten ones.
    pub fn total_pushed(&self) -> u64 {
        self.total
    }

    /// Points lost to overwrite-oldest.
    pub fn dropped(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// The `i`-th retained point in chronological order (0 = oldest).
    pub fn get(&self, i: usize) -> Option<Point> {
        if i >= self.buf.len() {
            return None;
        }
        let idx = if self.buf.len() < self.cap {
            i
        } else {
            (self.head + i) % self.cap
        };
        Some(self.buf[idx])
    }

    /// Retained points, oldest first.
    pub fn points(&self) -> Vec<Point> {
        (0..self.buf.len()).filter_map(|i| self.get(i)).collect()
    }

    /// The newest sample.
    pub fn latest(&self) -> Option<Point> {
        self.get(self.buf.len().checked_sub(1)?)
    }

    /// The oldest retained sample.
    pub fn oldest(&self) -> Option<Point> {
        self.get(0)
    }

    /// Value change across the last `window` sampling intervals
    /// (saturating at 0 for decreasing values, so counter series — which
    /// never decrease — read exactly). With fewer points than `window`,
    /// spans everything retained.
    pub fn delta(&self, window: usize) -> u64 {
        let n = self.buf.len();
        if n < 2 {
            return 0;
        }
        let newest = self.get(n - 1).expect("non-empty");
        let base = self
            .get(n.saturating_sub(window + 1).min(n - 2))
            .expect("in range");
        newest.value.saturating_sub(base.value)
    }

    /// `(value delta, step delta)` across the last `window` sampling
    /// intervals — the windowed rate as an exact integer ratio (callers
    /// divide, or compare cross-multiplied). `(0, 0)` with < 2 points.
    pub fn rate(&self, window: usize) -> (u64, u64) {
        let n = self.buf.len();
        if n < 2 {
            return (0, 0);
        }
        let newest = self.get(n - 1).expect("non-empty");
        let base = self
            .get(n.saturating_sub(window + 1).min(n - 2))
            .expect("in range");
        (
            newest.value.saturating_sub(base.value),
            newest.step.saturating_sub(base.step),
        )
    }

    /// Largest value among the last `window` samples (0 when empty).
    pub fn window_max(&self, window: usize) -> u64 {
        self.window_iter(window).map(|p| p.value).max().unwrap_or(0)
    }

    /// Smallest value among the last `window` samples (0 when empty).
    pub fn window_min(&self, window: usize) -> u64 {
        self.window_iter(window).map(|p| p.value).min().unwrap_or(0)
    }

    fn window_iter(&self, window: usize) -> impl Iterator<Item = Point> + '_ {
        let n = self.buf.len();
        let start = n.saturating_sub(window.max(1));
        (start..n).filter_map(move |i| self.get(i))
    }
}

/// Default per-series ring capacity of the global store: enough for the
/// longest soak schedule at its sampling cadence, small enough that a few
/// hundred series stay in cache.
pub const DEFAULT_SERIES_CAP: usize = 512;

/// The global named-series store behind [`series_record`].
struct Store {
    series: BTreeMap<String, Series>,
    cap: usize,
}

static STORE: OnceLock<Mutex<Store>> = OnceLock::new();

fn store() -> &'static Mutex<Store> {
    STORE.get_or_init(|| {
        Mutex::new(Store {
            series: BTreeMap::new(),
            cap: DEFAULT_SERIES_CAP,
        })
    })
}

/// Appends a sample to the named global series, creating it (with the
/// store's ring capacity) on first use. Unlike counters this is **not**
/// gated on the trace level: the sampler that calls it is armed by its
/// own cadence (`LM4DB_SAMPLE_STEPS` / `EngineOptions`), and runs far off
/// the per-token hot path.
pub fn series_record(name: &str, step: u64, value: u64) {
    let mut s = store().lock().unwrap();
    if let Some(series) = s.series.get_mut(name) {
        series.push(step, value);
        return;
    }
    let cap = s.cap;
    let mut series = Series::with_capacity(cap);
    series.push(step, value);
    s.series.insert(name.to_string(), series);
}

/// Sets the ring capacity used for series created *after* this call.
pub fn set_series_capacity(cap: usize) {
    store().lock().unwrap().cap = cap.max(1);
}

/// A point-in-time copy of every global series, sorted by name — the
/// deterministic iteration order the exporters rely on.
pub fn series_snapshot() -> Vec<(String, Series)> {
    store()
        .lock()
        .unwrap()
        .series
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect()
}

/// Drops every global series (capacity setting survives).
pub fn series_reset() {
    store().lock().unwrap().series.clear();
}

/// Tolerant `LM4DB_SAMPLE_STEPS` parsing: the sampling cadence in
/// scheduler steps, 0 (or unset/garbage) meaning disabled.
pub fn env_sample_steps() -> u64 {
    std::env::var("LM4DB_SAMPLE_STEPS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(0)
}

/// Samples the whole metrics registry into the global series store at
/// `step`: every counter and gauge under its own name, and each timer's
/// p50/p99 under `<name>/p50_ns` / `<name>/p99_ns`. Counter samples are
/// deterministic wherever the underlying counters are; timer quantiles
/// are wall-clock and therefore excluded from any fingerprint claim.
pub fn sample_registry(step: u64) {
    let snap = crate::snapshot();
    for (k, v) in &snap.counters {
        series_record(k, step, *v);
    }
    for (k, v) in &snap.gauges {
        series_record(
            k,
            step,
            if v.is_finite() && *v >= 0.0 {
                *v as u64
            } else {
                0
            },
        );
    }
    for (k, t) in &snap.timers {
        series_record(&format!("{k}/p50_ns"), step, t.quantile_ns(0.50));
        series_record(&format!("{k}/p99_ns"), step, t.quantile_ns(0.99));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_and_keeps_order() {
        let mut s = Series::with_capacity(3);
        assert!(s.is_empty());
        for i in 0..5u64 {
            s.push(i * 10, i);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.capacity(), 3);
        assert_eq!(s.total_pushed(), 5);
        assert_eq!(s.dropped(), 2);
        let pts = s.points();
        assert_eq!(
            pts,
            vec![
                Point { step: 20, value: 2 },
                Point { step: 30, value: 3 },
                Point { step: 40, value: 4 },
            ]
        );
        assert_eq!(s.oldest().unwrap().step, 20);
        assert_eq!(s.latest().unwrap().step, 40);
        assert_eq!(s.get(3), None);
    }

    #[test]
    fn delta_and_rate_window_correctly() {
        let mut s = Series::with_capacity(8);
        for step in 0..6u64 {
            s.push(step * 2, step * 5); // +5 per sample, +2 steps per sample
        }
        assert_eq!(s.delta(1), 5);
        assert_eq!(s.delta(3), 15);
        assert_eq!(s.delta(100), 25); // clamps to everything retained
        assert_eq!(s.rate(1), (5, 2));
        assert_eq!(s.rate(5), (25, 10));
        assert_eq!(s.window_max(3), 25);
        assert_eq!(s.window_min(3), 15);
    }

    #[test]
    fn degenerate_series_views_are_zero() {
        let mut s = Series::with_capacity(4);
        assert_eq!(s.delta(3), 0);
        assert_eq!(s.rate(3), (0, 0));
        assert_eq!(s.window_max(3), 0);
        assert_eq!(s.latest(), None);
        s.push(1, 7);
        assert_eq!(s.delta(3), 0, "one point spans no interval");
        assert_eq!(s.window_max(3), 7);
    }

    #[test]
    fn delta_saturates_on_decreasing_gauges() {
        let mut s = Series::with_capacity(4);
        s.push(0, 10);
        s.push(1, 4);
        assert_eq!(s.delta(1), 0, "gauge fell; counter delta saturates at 0");
    }

    #[test]
    fn capacity_clamps_to_one() {
        let mut s = Series::with_capacity(0);
        s.push(0, 1);
        s.push(1, 2);
        assert_eq!(s.len(), 1);
        assert_eq!(s.latest().unwrap().value, 2);
    }

    #[test]
    fn global_store_roundtrip_sorted() {
        // Global state: distinct prefix so parallel tests don't collide.
        series_record("tstest/b", 0, 1);
        series_record("tstest/a", 0, 2);
        series_record("tstest/b", 4, 3);
        let snap = series_snapshot();
        let names: Vec<&str> = snap
            .iter()
            .map(|(k, _)| k.as_str())
            .filter(|k| k.starts_with("tstest/"))
            .collect();
        assert_eq!(names, vec!["tstest/a", "tstest/b"]);
        let b = &snap.iter().find(|(k, _)| k == "tstest/b").unwrap().1;
        assert_eq!(b.len(), 2);
        assert_eq!(b.latest().unwrap().value, 3);
    }

    #[test]
    fn env_sample_steps_parses_tolerantly() {
        // Not set in the test environment (CI keeps it unset for the
        // default matrix): the parse falls back to disabled.
        assert_eq!(
            std::env::var("LM4DB_SAMPLE_STEPS")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .unwrap_or(0),
            env_sample_steps()
        );
    }
}
