//! Multi-window burn-rate SLO monitoring with a deterministic alert
//! state machine.
//!
//! Google-SRE-style burn-rate alerting, reduced to integer step
//! arithmetic: a rule watches a pair of cumulative counters — `bad`
//! (SLO-violating outcomes) and `total` (all outcomes) — sampled on the
//! scheduler's step cadence, and fires when the *bad fraction* over BOTH
//! a fast and a slow trailing window exceeds the configured burn
//! threshold. The two-window conjunction gives the classic trade: the
//! slow window keeps one bad burst from paging, the fast window lets the
//! alert resolve promptly once the burn stops.
//!
//! The comparison `bad_delta * burn_den >= burn_num * total_delta` is
//! exact u128 integer arithmetic over step-clock samples, so for a given
//! request schedule every [`SloMonitor`] replay walks the identical
//! pending → firing → resolved trajectory — transition steps are
//! asserted byte-equal across replays by `expS_telemetry`.
//!
//! State machine (per rule):
//!
//! ```text
//! Inactive --cond--> Pending --cond × fast_samples--> Firing
//!     ^                 |                               |
//!     |              ¬cond                        ¬cond × resolve_samples
//!     |                 v                               v
//!     +-------------- (back) <------------------- Resolved --next obs--> Inactive/Pending
//! ```
//!
//! Every transition is returned to the caller as an [`AlertTransition`];
//! the serve engine books them as `slo/*` counters and flight-recorder
//! instants, and consults [`SloMonitor::is_firing`] to tighten
//! `slo_admission` shedding while a tenant burns.
//!
//! # Examples
//!
//! ```
//! use lm4db_obs::slo::{AlertConfig, AlertState, SloMonitor};
//!
//! let mut mon = SloMonitor::new(AlertConfig {
//!     fast_samples: 2,
//!     slow_samples: 4,
//!     burn_num: 1,
//!     burn_den: 2, // fire when >= 50% of outcomes are bad
//!     resolve_samples: 2,
//! });
//! // All-good samples: stays inactive.
//! for step in 0..4 {
//!     assert!(mon.observe("t", step * 8, 0, step + 1).is_empty());
//! }
//! // Everything turns bad: pending, then firing.
//! let mut fired_at = None;
//! for i in 0..4u64 {
//!     for t in mon.observe("t", 32 + i * 8, 4 + i, 8 + i) {
//!         if t.to == AlertState::Firing {
//!             fired_at = Some(t.step);
//!         }
//!     }
//! }
//! assert!(fired_at.is_some());
//! assert!(mon.is_firing("t"));
//! ```

use std::collections::BTreeMap;

/// Burn-rate rule parameters. All windows are counted in **samples**
/// (sampler ticks), not raw steps, so the same config scales with the
/// sampling cadence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlertConfig {
    /// Fast-window length in samples (short horizon; gates firing AND,
    /// by requiring `fast_samples` consecutive bad observations in
    /// Pending, debounces one-sample blips).
    pub fast_samples: usize,
    /// Slow-window length in samples (long horizon; keeps a single burst
    /// below the threshold from firing).
    pub slow_samples: usize,
    /// Burn threshold numerator: fire while
    /// `bad_delta / total_delta >= burn_num / burn_den` on both windows.
    pub burn_num: u64,
    /// Burn threshold denominator (must be > 0).
    pub burn_den: u64,
    /// Consecutive below-threshold observations required to move a
    /// firing alert to Resolved.
    pub resolve_samples: usize,
}

impl Default for AlertConfig {
    /// Fast window 3 samples, slow window 12, fire at a 25% bad
    /// fraction, resolve after 3 consecutive clean samples.
    fn default() -> AlertConfig {
        AlertConfig {
            fast_samples: 3,
            slow_samples: 12,
            burn_num: 1,
            burn_den: 4,
            resolve_samples: 3,
        }
    }
}

impl AlertConfig {
    fn normalized(mut self) -> AlertConfig {
        self.fast_samples = self.fast_samples.max(1);
        self.slow_samples = self.slow_samples.max(self.fast_samples);
        self.burn_den = self.burn_den.max(1);
        self.resolve_samples = self.resolve_samples.max(1);
        self
    }
}

/// Alert lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertState {
    /// No burn observed.
    Inactive,
    /// Burn condition holds but not yet for `fast_samples` consecutive
    /// observations.
    Pending,
    /// Both windows over threshold for long enough — the engine tightens
    /// admission while here.
    Firing,
    /// Burn stopped (`resolve_samples` consecutive clean observations);
    /// parks for one observation before returning to Inactive so the
    /// resolution is visible in the transition log.
    Resolved,
}

impl AlertState {
    /// Stable lower-case name, used in counter names and exports.
    pub fn name(self) -> &'static str {
        match self {
            AlertState::Inactive => "inactive",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }
}

/// One state-machine transition, in the order it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertTransition {
    /// Rule (tenant) name.
    pub rule: String,
    /// Scheduler step of the observation that caused the transition.
    pub step: u64,
    /// State before.
    pub from: AlertState,
    /// State after.
    pub to: AlertState,
}

/// One cumulative (bad, total) sample. The step it was taken at is
/// carried by the caller (transitions use the observation step), so only
/// the counter pair is retained.
#[derive(Debug, Clone, Copy, Default)]
struct BurnSample {
    bad: u64,
    total: u64,
}

/// Per-rule tracking: a bounded history of cumulative samples plus the
/// state machine.
#[derive(Debug, Clone)]
struct Rule {
    /// Trailing samples, oldest first; bounded at `slow_samples + 1`
    /// entries (window deltas need one sample beyond the window).
    history: Vec<BurnSample>,
    state: AlertState,
    /// Consecutive observations with the condition true (while Pending).
    hot_streak: usize,
    /// Consecutive observations with the condition false (while Firing).
    cool_streak: usize,
}

impl Rule {
    fn new() -> Rule {
        Rule {
            history: Vec::new(),
            state: AlertState::Inactive,
            hot_streak: 0,
            cool_streak: 0,
        }
    }

    /// Whether the burn fraction over the last `window` sampling
    /// intervals is at or above `num/den`. With no elapsed outcomes the
    /// condition is false (no traffic means no burn).
    fn over(&self, window: usize, num: u64, den: u64) -> bool {
        let n = self.history.len();
        if n < 2 {
            return false;
        }
        let newest = self.history[n - 1];
        let base = self.history[n.saturating_sub(window + 1).min(n - 2)];
        let bad = newest.bad.saturating_sub(base.bad);
        let total = newest.total.saturating_sub(base.total);
        if total == 0 {
            return false;
        }
        (bad as u128) * (den as u128) >= (num as u128) * (total as u128)
    }
}

/// Multi-rule burn-rate monitor. Rules are keyed by name (one per tenant
/// in the serve engine) and created lazily on first observation.
#[derive(Debug, Clone)]
pub struct SloMonitor {
    cfg: AlertConfig,
    rules: BTreeMap<String, Rule>,
}

impl SloMonitor {
    /// A monitor applying `cfg` (normalized: zero windows clamp to 1,
    /// `slow_samples >= fast_samples`) to every rule.
    pub fn new(cfg: AlertConfig) -> SloMonitor {
        SloMonitor {
            cfg: cfg.normalized(),
            rules: BTreeMap::new(),
        }
    }

    /// The (normalized) configuration in force.
    pub fn config(&self) -> AlertConfig {
        self.cfg
    }

    /// Feeds one cumulative sample for `rule` at `step` and advances its
    /// state machine, returning the transitions this observation caused
    /// (0, 1, or — for a Resolved alert re-entering Pending — 2).
    ///
    /// `bad` and `total` are cumulative counters as of `step`, e.g.
    /// `slo_missed + slo_shed` and all retired+shed outcomes; windowed
    /// deltas are derived internally.
    pub fn observe(&mut self, rule: &str, step: u64, bad: u64, total: u64) -> Vec<AlertTransition> {
        let cfg = self.cfg;
        let r = self.rules.entry(rule.to_string()).or_insert_with(Rule::new);
        r.history.push(BurnSample { bad, total });
        let max_hist = cfg.slow_samples + 1;
        if r.history.len() > max_hist {
            let excess = r.history.len() - max_hist;
            r.history.drain(..excess);
        }
        let cond = r.over(cfg.fast_samples, cfg.burn_num, cfg.burn_den)
            && r.over(cfg.slow_samples, cfg.burn_num, cfg.burn_den);

        let mut out = Vec::new();
        let mut transition = |r: &mut Rule, step: u64, to: AlertState| {
            out.push(AlertTransition {
                rule: rule.to_string(),
                step,
                from: r.state,
                to,
            });
            r.state = to;
        };

        // A Resolved alert parks for exactly one observation, then
        // re-enters the live states below.
        if r.state == AlertState::Resolved {
            transition(r, step, AlertState::Inactive);
        }

        match r.state {
            AlertState::Inactive => {
                if cond {
                    r.hot_streak = 1;
                    if cfg.fast_samples == 1 {
                        transition(r, step, AlertState::Firing);
                        r.cool_streak = 0;
                    } else {
                        transition(r, step, AlertState::Pending);
                    }
                }
            }
            AlertState::Pending => {
                if cond {
                    r.hot_streak += 1;
                    if r.hot_streak >= cfg.fast_samples {
                        transition(r, step, AlertState::Firing);
                        r.cool_streak = 0;
                    }
                } else {
                    r.hot_streak = 0;
                    transition(r, step, AlertState::Inactive);
                }
            }
            AlertState::Firing => {
                if cond {
                    r.cool_streak = 0;
                } else {
                    r.cool_streak += 1;
                    if r.cool_streak >= cfg.resolve_samples {
                        transition(r, step, AlertState::Resolved);
                        r.hot_streak = 0;
                    }
                }
            }
            AlertState::Resolved => unreachable!("resolved alerts re-enter above"),
        }
        out
    }

    /// Current state of `rule` (Inactive when never observed).
    pub fn state(&self, rule: &str) -> AlertState {
        self.rules
            .get(rule)
            .map(|r| r.state)
            .unwrap_or(AlertState::Inactive)
    }

    /// Whether `rule` is currently firing — the engine's admission
    /// tightening hook.
    pub fn is_firing(&self, rule: &str) -> bool {
        self.state(rule) == AlertState::Firing
    }

    /// Rule names with their current states, sorted by name.
    pub fn states(&self) -> Vec<(String, AlertState)> {
        self.rules
            .iter()
            .map(|(k, r)| (k.clone(), r.state))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AlertConfig {
        AlertConfig {
            fast_samples: 2,
            slow_samples: 4,
            burn_num: 1,
            burn_den: 4,
            resolve_samples: 2,
        }
    }

    /// Drives `mon` through cumulative (bad, total) pairs at steps
    /// 0, 10, 20, … and returns all transitions.
    fn drive(mon: &mut SloMonitor, samples: &[(u64, u64)]) -> Vec<AlertTransition> {
        let mut all = Vec::new();
        for (i, &(bad, total)) in samples.iter().enumerate() {
            all.extend(mon.observe("r", i as u64 * 10, bad, total));
        }
        all
    }

    #[test]
    fn clean_traffic_never_alerts() {
        let mut mon = SloMonitor::new(cfg());
        let t = drive(&mut mon, &[(0, 10), (0, 20), (0, 30), (0, 40), (0, 50)]);
        assert!(t.is_empty());
        assert_eq!(mon.state("r"), AlertState::Inactive);
    }

    #[test]
    fn burn_fires_then_resolves_deterministically() {
        let mut mon = SloMonitor::new(cfg());
        // 10 outcomes per sample; bad ramps to 100% then back to 0%.
        let t = drive(
            &mut mon,
            &[
                (0, 10),  // inactive
                (0, 20),  // inactive
                (10, 30), // 100% bad on both windows -> pending
                (20, 40), // still burning -> firing (hot_streak = 2)
                (30, 50), // firing
                (30, 60), // clean sample 1 (fast window still hot)
                (30, 70), // clean: fast window clean now
                (30, 80), // cool_streak reaches 2 -> resolved
                (30, 90), // resolved parks one obs -> inactive
            ],
        );
        let seq: Vec<(AlertState, u64)> = t.iter().map(|x| (x.to, x.step)).collect();
        assert_eq!(seq[0].0, AlertState::Pending);
        assert_eq!(seq[1].0, AlertState::Firing);
        assert_eq!(seq[1].1, 30);
        assert!(seq.iter().any(|&(s, _)| s == AlertState::Resolved));
        assert_eq!(seq.last().unwrap().0, AlertState::Inactive);
        assert_eq!(mon.state("r"), AlertState::Inactive);
        // Determinism: an identical replay produces identical transitions.
        let mut mon2 = SloMonitor::new(cfg());
        let t2 = drive(
            &mut mon2,
            &[
                (0, 10),
                (0, 20),
                (10, 30),
                (20, 40),
                (30, 50),
                (30, 60),
                (30, 70),
                (30, 80),
                (30, 90),
            ],
        );
        assert_eq!(t, t2);
    }

    #[test]
    fn one_sample_blip_stays_pending_only() {
        let mut mon = SloMonitor::new(cfg());
        let t = drive(
            &mut mon,
            &[(0, 10), (0, 20), (10, 30), (10, 100), (10, 150), (10, 200)],
        );
        // One burning sample (10/20 = 50% on the fast window), then the
        // traffic surge dilutes the window below 25%: Pending, back to
        // Inactive, never fires.
        assert!(t.iter().all(|x| x.to != AlertState::Firing));
        assert_eq!(t[0].to, AlertState::Pending);
        assert_eq!(t[1].to, AlertState::Inactive);
    }

    #[test]
    fn slow_window_suppresses_short_burst_against_long_good_history() {
        // Threshold 50%: a 2-sample total burn after a long clean run
        // trips the fast window but not the slow one.
        let mut mon = SloMonitor::new(AlertConfig {
            fast_samples: 1,
            slow_samples: 4,
            burn_num: 1,
            burn_den: 2,
            resolve_samples: 1,
        });
        let t = drive(
            &mut mon,
            &[(0, 100), (0, 200), (0, 300), (0, 400), (10, 410)],
        );
        // Fast window: 10/10 bad. Slow window: 10/310 — under 50%.
        assert!(t.is_empty(), "slow window must veto the burst: {t:?}");
    }

    #[test]
    fn no_traffic_is_not_a_burn() {
        let mut mon = SloMonitor::new(cfg());
        let t = drive(&mut mon, &[(5, 5), (5, 5), (5, 5)]);
        // Cumulative counters frozen: zero outcomes in every window.
        assert!(t.is_empty());
    }

    #[test]
    fn rules_are_independent_and_sorted() {
        let mut mon = SloMonitor::new(AlertConfig {
            fast_samples: 1,
            slow_samples: 1,
            burn_num: 1,
            burn_den: 2,
            resolve_samples: 1,
        });
        mon.observe("b", 0, 0, 10);
        mon.observe("a", 0, 0, 10);
        mon.observe("b", 10, 10, 20);
        mon.observe("a", 10, 0, 20);
        assert!(mon.is_firing("b"));
        assert!(!mon.is_firing("a"));
        let names: Vec<String> = mon.states().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn config_normalizes_degenerate_values() {
        let mon = SloMonitor::new(AlertConfig {
            fast_samples: 0,
            slow_samples: 0,
            burn_num: 1,
            burn_den: 0,
            resolve_samples: 0,
        });
        let c = mon.config();
        assert_eq!(c.fast_samples, 1);
        assert_eq!(c.slow_samples, 1);
        assert_eq!(c.burn_den, 1);
        assert_eq!(c.resolve_samples, 1);
    }
}
