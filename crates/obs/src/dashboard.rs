//! Self-contained HTML dashboard: every time series as an inline-SVG
//! sparkline plus the current registry snapshot, in one document with no
//! external assets — curl it from the scrape endpoint, open it from a
//! file, or paste it into a bug report.

use std::fmt::Write as _;

use crate::export::Snapshot;
use crate::timeseries::Series;

/// Escapes text for HTML body/attribute contexts.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Sparkline viewport in CSS pixels.
const W: u64 = 240;
const H: u64 = 48;

/// Renders one series as an inline SVG polyline, scaled so the window's
/// min..max spans the viewport height (a flat series draws mid-height).
fn sparkline(s: &Series) -> String {
    let pts = s.points();
    if pts.is_empty() {
        return format!("<svg width=\"{W}\" height=\"{H}\"></svg>");
    }
    let lo = pts.iter().map(|p| p.value).min().unwrap_or(0);
    let hi = pts.iter().map(|p| p.value).max().unwrap_or(0);
    let span = (hi - lo).max(1);
    let n = pts.len().max(2) as u64 - 1;
    let mut poly = String::new();
    for (i, p) in pts.iter().enumerate() {
        if i > 0 {
            poly.push(' ');
        }
        let x = (i as u64) * W / n;
        let y = if hi == lo {
            H / 2
        } else {
            // Invert: larger values draw higher (smaller y).
            H - (p.value - lo) * H / span
        };
        let _ = write!(poly, "{x},{y}");
    }
    format!(
        "<svg width=\"{W}\" height=\"{H}\" viewBox=\"0 0 {W} {H}\" \
         preserveAspectRatio=\"none\"><polyline points=\"{poly}\" \
         fill=\"none\" stroke=\"#2a6\" stroke-width=\"1.5\"/></svg>"
    )
}

/// Renders the full dashboard document. Output is deterministic for a
/// given snapshot + series (sorted inputs, no timestamps).
pub fn to_html(snap: &Snapshot, series: &[(String, Series)]) -> String {
    let mut h = String::new();
    h.push_str(
        "<!doctype html><html><head><meta charset=\"utf-8\">\
         <title>lm4db dashboard</title><style>\
         body{font-family:monospace;margin:1.5em;background:#fafafa;color:#222}\
         h1{font-size:1.3em}h2{font-size:1.1em;margin-top:1.2em}\
         table{border-collapse:collapse}\
         td,th{border:1px solid #ccc;padding:2px 8px;text-align:left}\
         td.num{text-align:right}svg{vertical-align:middle;background:#fff;\
         border:1px solid #ddd}</style></head><body>\
         <h1>lm4db dashboard</h1>",
    );

    let _ = write!(
        h,
        "<p>{} counters · {} gauges · {} timers · {} series · {} thread shards</p>",
        snap.counters.len(),
        snap.gauges.len(),
        snap.timers.len(),
        series.len(),
        snap.threads,
    );

    if !series.is_empty() {
        h.push_str("<h2>series</h2><table><tr><th>series</th><th>sparkline</th><th>latest</th><th>samples</th></tr>");
        for (name, s) in series {
            let latest = s.latest().map(|p| p.value).unwrap_or(0);
            let _ = write!(
                h,
                "<tr><td>{}</td><td>{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td></tr>",
                esc(name),
                sparkline(s),
                latest,
                s.len(),
            );
        }
        h.push_str("</table>");
    }

    if !snap.counters.is_empty() {
        h.push_str("<h2>counters</h2><table><tr><th>counter</th><th>value</th></tr>");
        for (k, v) in &snap.counters {
            let _ = write!(h, "<tr><td>{}</td><td class=\"num\">{v}</td></tr>", esc(k));
        }
        h.push_str("</table>");
    }

    if !snap.gauges.is_empty() {
        h.push_str("<h2>gauges</h2><table><tr><th>gauge</th><th>value</th></tr>");
        for (k, v) in &snap.gauges {
            let _ = write!(h, "<tr><td>{}</td><td class=\"num\">{v}</td></tr>", esc(k));
        }
        h.push_str("</table>");
    }

    if !snap.timers.is_empty() {
        h.push_str(
            "<h2>timers</h2><table><tr><th>timer</th><th>count</th>\
             <th>mean ns</th><th>p50 ns</th><th>p99 ns</th><th>max ns</th></tr>",
        );
        for (k, t) in &snap.timers {
            let _ = write!(
                h,
                "<tr><td>{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
                 <td class=\"num\">{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td></tr>",
                esc(k),
                t.count,
                t.mean_ns(),
                t.quantile_ns(0.50),
                t.quantile_ns(0.99),
                t.max_ns,
            );
        }
        h.push_str("</table>");
    }

    h.push_str("</body></html>");
    h
}

/// Convenience: renders the global registry snapshot plus the global
/// series store.
pub fn global_html() -> String {
    to_html(&crate::snapshot(), &crate::timeseries::series_snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dashboard_is_self_contained_and_escaped() {
        let mut snap = Snapshot::default();
        snap.counters.insert("a<b".into(), 3);
        snap.gauges.insert("g".into(), 1.5);
        let mut s = Series::with_capacity(8);
        for i in 0..6u64 {
            s.push(i * 4, i * i);
        }
        let html = to_html(&snap, &[("serve/queued".into(), s)]);
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.ends_with("</body></html>"));
        assert!(html.contains("a&lt;b"), "metric names must be escaped");
        assert!(html.contains("<polyline points=\""));
        assert!(
            !html.contains("src=\"http") && !html.contains("href=\"http"),
            "no external assets"
        );
        // Deterministic rendering.
        let mut s2 = Series::with_capacity(8);
        for i in 0..6u64 {
            s2.push(i * 4, i * i);
        }
        assert_eq!(html, to_html(&snap, &[("serve/queued".into(), s2)]));
    }

    #[test]
    fn flat_series_draws_mid_height() {
        let mut s = Series::with_capacity(4);
        s.push(0, 7);
        s.push(1, 7);
        let svg = sparkline(&s);
        assert!(svg.contains(&format!(",{}", H / 2)));
    }

    #[test]
    fn empty_series_renders_empty_svg() {
        let s = Series::with_capacity(4);
        assert!(sparkline(&s).contains("></svg>"));
    }
}
