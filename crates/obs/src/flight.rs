//! The flight recorder: per-thread bounded event rings and their exporters.
//!
//! At trace level 2 every span/leaf guard and instant call appends a
//! fixed-size [`Event`] to its thread's [`Ring`] — a preallocated circular
//! buffer that overwrites its oldest record on wrap, so a long run keeps
//! the *most recent* window of activity at a hard memory bound instead of
//! growing without limit (hence "flight recorder"). Ring capacity is
//! per-thread, `LM4DB_TRACE_BUF` events (default 16384, ~640 KiB/thread).
//!
//! [`snapshot`](flight_snapshot) drains every ring into a [`FlightTrace`],
//! which exports as
//!
//! * **Chrome trace-event JSON** ([`FlightTrace::to_chrome_json`]) —
//!   loadable in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`,
//!   emitted through the workspace `serde_json` shim, and
//! * **a compact text timeline** ([`FlightTrace::to_timeline`]) — shard by
//!   shard in recording order plus per-request phase totals, with a stable
//!   format for diffing and logs.
//!
//! A [panic hook](install_panic_hook) — installed automatically when
//! `LM4DB_TRACE=2` comes from the environment — drains the recorder and
//! the metrics registry to `LM4DB_TRACE_DUMP` (default `lm4db-crash.json`)
//! so a crashed run leaves a post-mortem with the in-flight requests'
//! timelines.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, Once, OnceLock};

use crate::event::{Event, EventKind};

use serde_json::Value;

/// A bounded circular event buffer: fixed capacity, overwrite-oldest on
/// wrap, O(1) allocation-free push (the backing storage is allocated
/// up front on first use of each thread's ring).
pub struct Ring {
    buf: Vec<Event>,
    cap: usize,
    /// Index the next push writes to once the buffer is full.
    next: usize,
    /// Events ever pushed (so `dropped = total - len`).
    total: u64,
}

impl Ring {
    /// A ring holding at most `cap` events (`cap` is clamped to ≥ 2).
    pub fn with_capacity(cap: usize) -> Ring {
        let cap = cap.max(2);
        Ring {
            buf: Vec::with_capacity(cap),
            cap,
            next: 0,
            total: 0,
        }
    }

    /// Appends an event, overwriting the oldest once full.
    #[inline]
    pub fn push(&mut self, e: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(e);
        } else {
            self.buf[self.next] = e;
            self.next = (self.next + 1) % self.cap;
        }
        self.total += 1;
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded (or everything was cleared).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events ever pushed, including overwritten ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events lost to overwrite-on-wrap.
    pub fn dropped(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// The held events, oldest first.
    pub fn drain_ordered(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.next..]);
        out.extend_from_slice(&self.buf[..self.next]);
        out
    }

    /// Empties the ring, keeping its allocation and capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
        self.total = 0;
    }
}

/// All rings ever registered, indexed by shard id. Like the metrics
/// registry's shards, rings are never removed; `flight_reset` clears them
/// in place so thread-local handles stay valid.
static RINGS: OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = OnceLock::new();

fn rings() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Per-thread ring capacity, resolved from `LM4DB_TRACE_BUF` once.
fn ring_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("LM4DB_TRACE_BUF")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(16_384)
            .max(2)
    })
}

thread_local! {
    /// This thread's ring, registered globally on first use.
    static LOCAL: Arc<Mutex<Ring>> = {
        let ring = Arc::new(Mutex::new(Ring::with_capacity(ring_capacity())));
        rings().lock().unwrap().push(Arc::clone(&ring));
        ring
    };
}

/// Appends an event to this thread's ring. The caller gates on
/// [`crate::events_enabled`]; the lock is uncontended except while a
/// snapshot is being taken.
#[inline]
pub(crate) fn record(e: Event) {
    LOCAL.with(|r| r.lock().unwrap().push(e));
}

/// One thread's slice of a [`FlightTrace`].
#[derive(Debug, Clone)]
pub struct ShardTrace {
    /// Shard id (registration order; stable for a thread's lifetime).
    pub tid: usize,
    /// Events lost to ring wrap on this shard.
    pub dropped: u64,
    /// Held events, oldest first.
    pub events: Vec<Event>,
}

/// A point-in-time drain of every thread's ring, produced by
/// [`flight_snapshot`]. Order within a shard is recording order; shards
/// are ordered by registration.
#[derive(Debug, Clone, Default)]
pub struct FlightTrace {
    /// Per-thread event sequences.
    pub shards: Vec<ShardTrace>,
}

/// Drains every ring into a [`FlightTrace`] (non-destructively). Works at
/// any trace level.
pub fn flight_snapshot() -> FlightTrace {
    let mut shards = Vec::new();
    for (tid, ring) in rings().lock().unwrap().iter().enumerate() {
        let r = ring.lock().unwrap();
        if r.total() == 0 {
            continue;
        }
        shards.push(ShardTrace {
            tid,
            dropped: r.dropped(),
            events: r.drain_ordered(),
        });
    }
    FlightTrace { shards }
}

/// Clears every ring (rings stay registered, allocations are kept).
pub fn flight_reset() {
    for ring in rings().lock().unwrap().iter() {
        ring.lock().unwrap().clear();
    }
}

/// Totals of one event name within one request's timeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTotal {
    /// Completed begin/end (or complete-event) intervals.
    pub count: u64,
    /// Summed interval duration in nanoseconds.
    pub total_ns: u64,
}

impl FlightTrace {
    /// Total events held across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.events.len()).sum()
    }

    /// True when no shard holds any event.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events lost to ring wrap, summed over shards.
    pub fn dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped).sum()
    }

    /// Request ids seen anywhere in the trace, ascending.
    pub fn requests(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|s| s.events.iter())
            .filter_map(|e| e.request())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// One request's events, merged across shards and sorted by timestamp
    /// (ties keep shard order) — the request's timeline.
    pub fn request_events(&self, id: u64) -> Vec<Event> {
        let mut out: Vec<Event> = self
            .shards
            .iter()
            .flat_map(|s| s.events.iter())
            .filter(|e| e.request() == Some(id))
            .copied()
            .collect();
        out.sort_by_key(|e| e.ts_ns);
        out
    }

    /// Per-request, per-phase time totals: matched begin/end pairs (and
    /// complete events) grouped by the request of the *begin* event. The
    /// `None` key collects unattributed work. Unmatched begins/ends (ring
    /// wrap, tracing toggled mid-span) are skipped, never mis-paired.
    pub fn breakdown(&self) -> BTreeMap<Option<u64>, BTreeMap<&'static str, PhaseTotal>> {
        let mut out: BTreeMap<Option<u64>, BTreeMap<&'static str, PhaseTotal>> = BTreeMap::new();
        let mut add = |req: Option<u64>, name: &'static str, dur: u64| {
            let t = out.entry(req).or_default().entry(name).or_default();
            t.count += 1;
            t.total_ns += dur;
        };
        for shard in &self.shards {
            // Begin/end pairs nest per thread, so a stack pairs them.
            let mut stack: Vec<&Event> = Vec::new();
            for e in &shard.events {
                match e.kind {
                    EventKind::Begin => stack.push(e),
                    EventKind::End => {
                        // Pop until the matching name: an unmatched begin
                        // (opened before the ring's window) is discarded.
                        while let Some(b) = stack.pop() {
                            if b.name == e.name {
                                add(b.request(), b.name, e.ts_ns.saturating_sub(b.ts_ns));
                                break;
                            }
                        }
                    }
                    EventKind::Complete => add(e.request(), e.name, e.arg),
                    EventKind::Instant => {}
                }
            }
        }
        out
    }

    /// Renders the trace as Chrome trace-event JSON (the object form, with
    /// a `traceEvents` array), loadable in Perfetto or `chrome://tracing`.
    /// Timestamps are microseconds from the trace epoch with nanosecond
    /// fractions; each shard maps to a `tid`, and attributed events carry
    /// `args.req`.
    pub fn to_chrome_json(&self) -> String {
        let mut events = Vec::with_capacity(self.len());
        for shard in &self.shards {
            for e in &shard.events {
                let mut obj = BTreeMap::new();
                obj.insert("name".to_string(), Value::Str(e.name.to_string()));
                let ph = match e.kind {
                    EventKind::Begin => "B",
                    EventKind::End => "E",
                    EventKind::Instant => "i",
                    EventKind::Complete => "X",
                };
                obj.insert("ph".to_string(), Value::Str(ph.to_string()));
                let ts = match e.kind {
                    // Complete events are stamped at their *end*; Chrome
                    // wants the start.
                    EventKind::Complete => e.ts_ns.saturating_sub(e.arg),
                    _ => e.ts_ns,
                };
                obj.insert("ts".to_string(), Value::Float(ts as f64 / 1e3));
                obj.insert("pid".to_string(), Value::Int(1));
                obj.insert("tid".to_string(), Value::Int(shard.tid as i64));
                match e.kind {
                    EventKind::Complete => {
                        obj.insert("dur".to_string(), Value::Float(e.arg as f64 / 1e3));
                    }
                    EventKind::Instant => {
                        // Thread-scoped instant marker.
                        obj.insert("s".to_string(), Value::Str("t".to_string()));
                    }
                    _ => {}
                }
                let mut args = BTreeMap::new();
                if let Some(req) = e.request() {
                    args.insert("req".to_string(), Value::UInt(req));
                }
                if e.arg != 0 && e.kind == EventKind::Instant {
                    args.insert("arg".to_string(), Value::UInt(e.arg));
                }
                if !args.is_empty() {
                    obj.insert("args".to_string(), Value::Object(args));
                }
                events.push(Value::Object(obj));
            }
        }
        let mut root = BTreeMap::new();
        root.insert("traceEvents".to_string(), Value::Array(events));
        root.insert("displayTimeUnit".to_string(), Value::Str("ms".to_string()));
        root.insert("droppedEvents".to_string(), Value::UInt(self.dropped()));
        serde_json::to_string(&Value::Object(root)).expect("trace serialization is infallible")
    }

    /// Renders a compact text timeline: each shard's events in recording
    /// order (indented by span depth, timestamps relative to the trace's
    /// first event), followed by per-request phase totals. The format is
    /// stable for a given event sequence.
    pub fn to_timeline(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "# lm4db-obs flight recorder ({} shards, {} events, {} dropped)",
            self.shards.len(),
            self.len(),
            self.dropped()
        );
        let t0 = self
            .shards
            .iter()
            .flat_map(|sh| sh.events.first())
            .map(|e| e.ts_ns)
            .min()
            .unwrap_or(0);
        for shard in &self.shards {
            let _ = writeln!(s, "## shard {} ({} dropped)", shard.tid, shard.dropped);
            let mut depth = 0usize;
            for e in &shard.events {
                let (mark, d) = match e.kind {
                    EventKind::Begin => ("B", {
                        depth += 1;
                        depth - 1
                    }),
                    EventKind::End => {
                        depth = depth.saturating_sub(1);
                        ("E", depth)
                    }
                    EventKind::Instant => ("i", depth),
                    EventKind::Complete => ("X", depth),
                };
                let _ = write!(
                    s,
                    "[{:>12}] {}{} {}",
                    format!("+{:.3}ms", (e.ts_ns.saturating_sub(t0)) as f64 / 1e6),
                    "  ".repeat(d),
                    mark,
                    e.name
                );
                if let Some(req) = e.request() {
                    let _ = write!(s, " req={req}");
                }
                if e.arg != 0 {
                    let _ = write!(s, " arg={}", e.arg);
                }
                s.push('\n');
            }
        }
        let breakdown = self.breakdown();
        if !breakdown.is_empty() {
            let _ = writeln!(s, "## per-request phase totals");
            for (req, phases) in &breakdown {
                match req {
                    Some(id) => {
                        let _ = write!(s, "req {id}:");
                    }
                    None => {
                        let _ = write!(s, "(unattributed):");
                    }
                }
                for (name, t) in phases {
                    let _ = write!(s, " {name}={:.3}ms x{}", t.total_ns as f64 / 1e6, t.count);
                }
                s.push('\n');
            }
        }
        s
    }
}

/// Path the crash dump is written to: `LM4DB_TRACE_DUMP`, or
/// `lm4db-crash.json` in the working directory.
pub fn crash_dump_path() -> PathBuf {
    std::env::var_os("LM4DB_TRACE_DUMP")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("lm4db-crash.json"))
}

/// Drains the flight recorder and the metrics registry into one JSON
/// post-mortem at [`crash_dump_path`]. Called by the panic hook; callable
/// directly for orderly shutdown dumps.
pub fn write_crash_dump(reason: &str) -> std::io::Result<PathBuf> {
    let path = crash_dump_path();
    let mut json = String::new();
    json.push_str("{\"reason\":");
    json.push_str(&crate::export::json_str(reason));
    json.push_str(",\"registry\":");
    json.push_str(&crate::snapshot().to_json());
    json.push_str(",\"trace\":");
    json.push_str(&flight_snapshot().to_chrome_json());
    json.push('}');
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Installs (once) a panic hook that, when event tracing is armed
/// (level 2), writes the post-mortem dump before delegating to the
/// previous hook. Installed automatically when `LM4DB_TRACE=2` is read
/// from the environment; call explicitly when arming via
/// [`crate::set_level`].
pub fn install_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if crate::events_enabled() {
                let reason = info.to_string();
                // Best effort: a failing dump must not mask the panic.
                if let Ok(path) = write_crash_dump(&reason) {
                    eprintln!("lm4db-obs: wrote crash dump to {}", path.display());
                }
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(kind: EventKind, name: &'static str, ts: u64, arg: u64) -> Event {
        Event {
            ts_ns: ts,
            arg,
            req1: 0,
            name,
            kind,
        }
    }

    // `Event.req1` is private to the crate; rebuild attributed events via
    // the scope API.
    fn ev_req(kind: EventKind, name: &'static str, ts: u64, req: u64) -> Event {
        let _g = crate::request_scope(req);
        let mut e = Event::now(kind, name, 0);
        e.ts_ns = ts;
        e
    }

    #[test]
    fn ring_wraps_and_reports_drops() {
        let mut r = Ring::with_capacity(4);
        for i in 0..10u64 {
            r.push(ev(EventKind::Instant, "e", i, i));
        }
        assert_eq!(r.total(), 10);
        assert_eq!(r.dropped(), 6);
        let events = r.drain_ordered();
        assert_eq!(events.len(), 4);
        let args: Vec<u64> = events.iter().map(|e| e.arg).collect();
        assert_eq!(args, vec![6, 7, 8, 9]);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn breakdown_pairs_begin_end_per_request() {
        let trace = FlightTrace {
            shards: vec![ShardTrace {
                tid: 0,
                dropped: 0,
                events: vec![
                    ev_req(EventKind::Begin, "feed", 100, 1),
                    ev_req(EventKind::Begin, "kernel", 150, 1),
                    ev_req(EventKind::End, "kernel", 250, 1),
                    ev_req(EventKind::End, "feed", 400, 1),
                    ev_req(EventKind::Begin, "feed", 500, 2),
                    ev_req(EventKind::End, "feed", 900, 2),
                ],
            }],
        };
        let b = trace.breakdown();
        assert_eq!(
            b[&Some(1)]["feed"],
            PhaseTotal {
                count: 1,
                total_ns: 300
            }
        );
        assert_eq!(
            b[&Some(1)]["kernel"],
            PhaseTotal {
                count: 1,
                total_ns: 100
            }
        );
        assert_eq!(
            b[&Some(2)]["feed"],
            PhaseTotal {
                count: 1,
                total_ns: 400
            }
        );
        assert_eq!(trace.requests(), vec![1, 2]);
        assert_eq!(trace.request_events(1).len(), 4);
    }

    #[test]
    fn unmatched_ends_do_not_mispair() {
        // An End whose Begin was overwritten by ring wrap must not steal
        // an unrelated open Begin.
        let trace = FlightTrace {
            shards: vec![ShardTrace {
                tid: 0,
                dropped: 1,
                events: vec![
                    ev(EventKind::Begin, "outer", 10, 0),
                    ev(EventKind::End, "lost", 20, 0),
                    ev(EventKind::End, "outer", 30, 0),
                ],
            }],
        };
        let b = trace.breakdown();
        // "outer" was consumed while searching for "lost"'s begin; the
        // conservative choice records nothing rather than a wrong pair.
        assert!(!b.contains_key(&Some(0)));
        assert!(b.get(&None).is_none_or(|m| !m.contains_key("lost")));
    }

    #[test]
    fn timeline_renders_depth_and_requests() {
        let trace = FlightTrace {
            shards: vec![ShardTrace {
                tid: 3,
                dropped: 0,
                events: vec![
                    ev_req(EventKind::Begin, "step", 1_000_000, 0),
                    ev_req(EventKind::Instant, "admit", 1_500_000, 0),
                    ev_req(EventKind::End, "step", 2_000_000, 0),
                ],
            }],
        };
        let text = trace.to_timeline();
        assert!(text.contains("## shard 3"));
        assert!(text.contains("B step req=0"));
        assert!(text.contains("i admit req=0"));
        assert!(text.contains("per-request phase totals"));
        assert!(text.contains("req 0: step=1.000ms x1"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::event::EventKind;
    use proptest::prelude::*;

    proptest! {
        /// Ring wraparound as a property: for any capacity and push count,
        /// the ring keeps exactly the most recent `min(n, cap)` events in
        /// push order and reports the rest as dropped.
        #[test]
        fn ring_keeps_newest_in_order(cap in 2usize..64, n in 0usize..300) {
            let mut r = Ring::with_capacity(cap);
            for i in 0..n as u64 {
                r.push(Event {
                    ts_ns: i,
                    arg: i,
                    req1: 0,
                    name: "e",
                    kind: EventKind::Instant,
                });
            }
            let events = r.drain_ordered();
            let kept = n.min(cap);
            prop_assert_eq!(events.len(), kept);
            prop_assert_eq!(r.total(), n as u64);
            prop_assert_eq!(r.dropped(), (n - kept) as u64);
            for (k, e) in events.iter().enumerate() {
                prop_assert_eq!(e.arg, (n - kept + k) as u64);
            }
        }
    }
}
