//! Fixed-size flight-recorder events and request attribution.
//!
//! An [`Event`] is a `Copy` record — timestamp, kind, static name, request
//! id, one integer argument — so recording one is a couple of word moves
//! into a preallocated ring ([`crate::flight`]): no allocation ever happens
//! on the hot path. Events are only recorded at trace level 2
//! (`LM4DB_TRACE=2` or [`crate::set_level`]`(2)`); at levels 0 and 1 every
//! event call site is the same relaxed-load-plus-branch as the rest of the
//! instrumentation.
//!
//! **Request attribution.** A thread-local *current request id* tags every
//! event recorded while a [`request_scope`] guard is alive. The serve
//! engine opens one around each sequence's forward work and each
//! selection, so kernel- and decode-level events recorded on worker-pool
//! threads carry the request that caused them — that is what turns a flat
//! event stream into per-request timelines.

use std::cell::Cell;
use std::sync::OnceLock;
use std::time::Instant;

/// What an [`Event`] marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span or leaf timer opened (`ph: "B"` in Chrome traces).
    Begin,
    /// The matching close (`ph: "E"`).
    End,
    /// A point-in-time marker (`ph: "i"`).
    Instant,
    /// A complete interval whose duration is in [`Event::arg`] (`ph: "X"`,
    /// emitted by [`crate::timed`] which only knows the duration at the
    /// end).
    Complete,
}

/// One fixed-size flight-recorder record. `Copy`, allocation-free: the
/// name is `&'static str`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    /// Nanoseconds since the process trace epoch (first event wins).
    pub ts_ns: u64,
    /// Kind-specific payload: duration for [`EventKind::Complete`], a
    /// caller-supplied value for instants, 0 otherwise.
    pub arg: u64,
    /// Request id + 1; 0 means unattributed. See [`Event::request`].
    pub(crate) req1: u64,
    /// Static event name (span/leaf/instant name).
    pub name: &'static str,
    /// What this record marks.
    pub kind: EventKind,
}

impl Event {
    /// Builds an event stamped now, attributed to the thread's current
    /// request (if any).
    #[inline]
    pub(crate) fn now(kind: EventKind, name: &'static str, arg: u64) -> Event {
        Event {
            ts_ns: now_ns(),
            arg,
            req1: CURRENT_REQ.with(|c| c.get()),
            name,
            kind,
        }
    }

    /// Same, but attributed to an explicit request id.
    #[inline]
    pub(crate) fn now_for(kind: EventKind, name: &'static str, arg: u64, req: u64) -> Event {
        Event {
            ts_ns: now_ns(),
            arg,
            req1: req + 1,
            name,
            kind,
        }
    }

    /// The request this event belongs to, if it was recorded under a
    /// [`request_scope`] (or with an explicit id).
    pub fn request(&self) -> Option<u64> {
        self.req1.checked_sub(1)
    }
}

/// The process-wide trace epoch: all event timestamps are relative to the
/// first call, so traces from one run share one clock.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the trace epoch.
#[inline]
pub(crate) fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

thread_local! {
    /// Current request id + 1 (0 = none), restored by [`RequestScope`].
    static CURRENT_REQ: Cell<u64> = const { Cell::new(0) };
}

/// Guard returned by [`request_scope`]; restores the previous attribution
/// when dropped, so scopes nest correctly.
pub struct RequestScope {
    prev: u64,
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        CURRENT_REQ.with(|c| c.set(self.prev));
    }
}

/// Attributes every event recorded on this thread to request `id` while
/// the guard lives. Cheap enough to use unconditionally (one thread-local
/// store each way), so attribution stays correct even when tracing is
/// toggled mid-request.
#[inline]
pub fn request_scope(id: u64) -> RequestScope {
    let prev = CURRENT_REQ.with(|c| c.replace(id + 1));
    RequestScope { prev }
}

/// The request id events on this thread are currently attributed to.
pub fn current_request() -> Option<u64> {
    CURRENT_REQ.with(|c| c.get()).checked_sub(1)
}

/// Records an instant event under the current request. No-op below trace
/// level 2.
#[inline]
pub fn instant(name: &'static str) {
    if crate::events_enabled() {
        crate::flight::record(Event::now(EventKind::Instant, name, 0));
    }
}

/// Records an instant event carrying an integer argument (chunk counts,
/// attempt numbers, …). No-op below trace level 2.
#[inline]
pub fn instant_arg(name: &'static str, arg: u64) {
    if crate::events_enabled() {
        crate::flight::record(Event::now(EventKind::Instant, name, arg));
    }
}

/// Records an instant event attributed to an explicit request id — for
/// call sites (submit/admit/retire) that know the request but run outside
/// any [`request_scope`]. No-op below trace level 2.
#[inline]
pub fn instant_for(name: &'static str, req: u64) {
    if crate::events_enabled() {
        crate::flight::record(Event::now_for(EventKind::Instant, name, 0, req));
    }
}

/// Like [`instant_for`], but carrying an integer argument — e.g. tagging a
/// request's trace with its tenant id at submit. No-op below trace level 2.
#[inline]
pub fn instant_for_arg(name: &'static str, req: u64, arg: u64) {
    if crate::events_enabled() {
        crate::flight::record(Event::now_for(EventKind::Instant, name, arg, req));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_scopes_nest_and_restore() {
        assert_eq!(current_request(), None);
        {
            let _a = request_scope(7);
            assert_eq!(current_request(), Some(7));
            {
                let _b = request_scope(9);
                assert_eq!(current_request(), Some(9));
            }
            assert_eq!(current_request(), Some(7));
        }
        assert_eq!(current_request(), None);
    }

    #[test]
    fn event_request_roundtrip() {
        let _g = request_scope(0);
        let e = Event::now(EventKind::Instant, "x", 0);
        assert_eq!(e.request(), Some(0));
        drop(_g);
        let e = Event::now(EventKind::Instant, "x", 0);
        assert_eq!(e.request(), None);
        let e = Event::now_for(EventKind::Instant, "x", 0, 3);
        assert_eq!(e.request(), Some(3));
    }
}
