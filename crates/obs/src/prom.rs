//! Prometheus text-exposition rendering of the registry and the global
//! time-series store, plus a line-grammar validator.
//!
//! Rendering rules:
//!
//! * Counters, gauges, and timers come from a [`Snapshot`] (sorted maps,
//!   so output is byte-stable for a given registry state — see the
//!   ordering contract on [`crate::snapshot`]).
//! * Metric names are sanitized to `[a-zA-Z_:][a-zA-Z0-9_:]*` under an
//!   `lm4db_` prefix; the registry's lazy `<sys>/tenant/<id>/<field>`
//!   naming scheme is recognized and folded into a `tenant="<id>"`
//!   label, so all tenants share one metric family as Prometheus
//!   intends: `serve/tenant/interactive/completed` becomes
//!   `lm4db_serve_tenant_completed{tenant="interactive"}`.
//! * Timers render as summaries (`quantile` labels from the log₂
//!   histogram, plus `_sum` / `_count`), in nanoseconds as the `_ns`
//!   suffix advertises.
//! * Time series render their newest sample under an `lm4db_ts_` prefix
//!   (disjoint from the registry's, so a counter and its sampled series
//!   never collide as exposition families).
//!
//! [`validate_exposition`] checks the line grammar without external
//! dependencies — CI runs it over real scrapes, and the endpoint tests
//! use it as the "is this valid exposition text" oracle.

use std::fmt::Write as _;

use crate::export::Snapshot;
use crate::timeseries::Series;

/// Sanitizes one path segment into Prometheus name characters.
fn san(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for (i, c) in s.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value (backslash, quote, newline per the format spec).
fn label_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Splits a registry name into a Prometheus family name and optional
/// tenant label: `serve/tenant/interactive/completed` →
/// `(lm4db_serve_tenant_completed, Some("interactive"))`; anything else
/// is sanitized wholesale under the `lm4db_` prefix.
fn family(name: &str, prefix: &str) -> (String, Option<String>) {
    let parts: Vec<&str> = name.split('/').collect();
    if parts.len() >= 4 {
        if let Some(pos) = parts.iter().position(|p| *p == "tenant") {
            // Need a system prefix before "tenant" and at least one field
            // after the tenant id: <sys>/tenant/<id>/<field...>.
            if pos >= 1 && pos + 2 < parts.len() {
                let tenant = parts[pos + 1].to_string();
                let mut fam = String::from(prefix);
                for (i, p) in parts.iter().enumerate() {
                    if i == pos + 1 {
                        continue; // the tenant id becomes a label
                    }
                    if i > 0 {
                        fam.push('_');
                    }
                    fam.push_str(&san(p));
                }
                return (fam, Some(tenant));
            }
        }
    }
    (format!("{prefix}{}", san(&name.replace('/', "_"))), None)
}

fn write_sample(out: &mut String, fam: &str, labels: &[(&str, &str)], value: &str) {
    out.push_str(fam);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{}\"", label_escape(v));
        }
        out.push('}');
    }
    let _ = writeln!(out, " {value}");
}

/// Renders `fmt_f64`-style: integers stay integral, floats as printed.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

/// Renders the snapshot plus time series as Prometheus text exposition
/// (version 0.0.4). Output is deterministic: sorted family order within
/// each section, one `# TYPE` header per family.
pub fn to_prometheus(snap: &Snapshot, series: &[(String, Series)]) -> String {
    let mut out = String::new();
    let mut last_family = String::new();

    for (name, v) in &snap.counters {
        let (fam, tenant) = family(name, "lm4db_");
        if fam != last_family {
            let _ = writeln!(out, "# TYPE {fam} counter");
            last_family = fam.clone();
        }
        let labels: Vec<(&str, &str)> = match &tenant {
            Some(t) => vec![("tenant", t.as_str())],
            None => vec![],
        };
        write_sample(&mut out, &fam, &labels, &v.to_string());
    }

    last_family.clear();
    for (name, v) in &snap.gauges {
        let (fam, tenant) = family(name, "lm4db_");
        if fam != last_family {
            let _ = writeln!(out, "# TYPE {fam} gauge");
            last_family = fam.clone();
        }
        let labels: Vec<(&str, &str)> = match &tenant {
            Some(t) => vec![("tenant", t.as_str())],
            None => vec![],
        };
        write_sample(&mut out, &fam, &labels, &fmt_f64(*v));
    }

    for (name, t) in &snap.timers {
        let (fam, tenant) = family(name, "lm4db_");
        let fam = format!("{fam}_ns");
        let _ = writeln!(out, "# TYPE {fam} summary");
        for (q, qs) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
            let mut labels: Vec<(&str, &str)> = Vec::new();
            if let Some(tn) = &tenant {
                labels.push(("tenant", tn.as_str()));
            }
            labels.push(("quantile", qs));
            write_sample(&mut out, &fam, &labels, &t.quantile_ns(q).to_string());
        }
        let labels: Vec<(&str, &str)> = match &tenant {
            Some(tn) => vec![("tenant", tn.as_str())],
            None => vec![],
        };
        write_sample(
            &mut out,
            &format!("{fam}_sum"),
            &labels,
            &t.total_ns.to_string(),
        );
        write_sample(
            &mut out,
            &format!("{fam}_count"),
            &labels,
            &t.count.to_string(),
        );
    }

    last_family.clear();
    for (name, s) in series {
        let Some(p) = s.latest() else { continue };
        let (fam, tenant) = family(name, "lm4db_ts_");
        if fam != last_family {
            let _ = writeln!(out, "# TYPE {fam} gauge");
            last_family = fam.clone();
        }
        let labels: Vec<(&str, &str)> = match &tenant {
            Some(t) => vec![("tenant", t.as_str())],
            None => vec![],
        };
        write_sample(&mut out, &fam, &labels, &p.value.to_string());
    }
    out
}

/// Convenience: renders the *global* registry snapshot plus the global
/// series store.
pub fn global_prometheus() -> String {
    to_prometheus(&crate::snapshot(), &crate::timeseries::series_snapshot())
}

/// Checks Prometheus text-exposition line grammar without external
/// dependencies: every line must be a comment (`# HELP` / `# TYPE` with
/// a valid metric name and, for TYPE, a known type), blank, or a sample
/// `name[{label="value",…}] value [timestamp]` with a valid metric name,
/// properly quoted/escaped label values, and a parseable float value.
/// Returns `Err` with the first offending line (1-based) and reason.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        validate_line(line).map_err(|e| format!("line {lineno}: {e}: {line:?}"))?;
    }
    Ok(())
}

fn is_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn is_value(s: &str) -> bool {
    matches!(s, "+Inf" | "-Inf" | "NaN") || s.parse::<f64>().is_ok()
}

fn validate_line(line: &str) -> Result<(), &'static str> {
    if line.is_empty() {
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix('#') {
        let rest = rest.trim_start();
        if let Some(body) = rest.strip_prefix("TYPE ") {
            let mut it = body.split_whitespace();
            let name = it.next().ok_or("TYPE missing metric name")?;
            if !is_name(name) {
                return Err("TYPE has invalid metric name");
            }
            let ty = it.next().ok_or("TYPE missing type")?;
            if !matches!(
                ty,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err("unknown metric type");
            }
            return Ok(());
        }
        if let Some(body) = rest.strip_prefix("HELP ") {
            let name = body.split_whitespace().next().ok_or("HELP missing name")?;
            if !is_name(name) {
                return Err("HELP has invalid metric name");
            }
            return Ok(());
        }
        return Ok(()); // bare comment
    }
    // Sample line: name[{labels}] value [timestamp]
    let (name_part, rest) = match line.find('{') {
        Some(open) => {
            let close = line.rfind('}').ok_or("unterminated label set")?;
            if close < open {
                return Err("unterminated label set");
            }
            validate_labels(&line[open + 1..close])?;
            (&line[..open], &line[close + 1..])
        }
        None => {
            let sp = line.find(' ').ok_or("sample missing value")?;
            (&line[..sp], &line[sp..])
        }
    };
    if !is_name(name_part) {
        return Err("invalid metric name");
    }
    let mut it = rest.split_whitespace();
    let value = it.next().ok_or("sample missing value")?;
    if !is_value(value) {
        return Err("invalid sample value");
    }
    if let Some(ts) = it.next() {
        if ts.parse::<i64>().is_err() {
            return Err("invalid timestamp");
        }
        if it.next().is_some() {
            return Err("trailing tokens after timestamp");
        }
    }
    Ok(())
}

fn validate_labels(body: &str) -> Result<(), &'static str> {
    let mut chars = body.chars().peekable();
    loop {
        // label name
        let mut name = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' {
                break;
            }
            name.push(c);
            chars.next();
        }
        if chars.next() != Some('=') {
            return Err("label missing '='");
        }
        if !is_label_name(name.trim()) {
            return Err("invalid label name");
        }
        if chars.next() != Some('"') {
            return Err("label value not quoted");
        }
        // quoted value with escapes
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') | Some('"') | Some('n') => {}
                    _ => return Err("invalid escape in label value"),
                },
                Some('"') => break,
                Some(_) => {}
                None => return Err("unterminated label value"),
            }
        }
        match chars.next() {
            None => return Ok(()),
            Some(',') => {
                // allow trailing comma before '}' (the spec tolerates it)
                if chars.peek().is_none() {
                    return Ok(());
                }
            }
            Some(_) => return Err("expected ',' between labels"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::TimerStat;
    use crate::hist::BUCKETS;

    fn snap() -> Snapshot {
        let mut s = Snapshot::default();
        s.counters.insert("serve/completed".into(), 42);
        s.counters
            .insert("serve/tenant/interactive/completed".into(), 7);
        s.counters.insert("serve/tenant/batch/completed".into(), 9);
        s.gauges.insert("serve/queued".into(), 3.0);
        s.timers.insert(
            "decode".into(),
            TimerStat {
                count: 2,
                total_ns: 3000,
                min_ns: 1000,
                max_ns: 2000,
                buckets: vec![0; BUCKETS],
            },
        );
        s.threads = 1;
        s
    }

    #[test]
    fn exposition_renders_and_validates() {
        let mut series = Vec::new();
        let mut sr = Series::with_capacity(4);
        sr.push(10, 5);
        series.push(("serve/queued".to_string(), sr));
        let text = to_prometheus(&snap(), &series);
        validate_exposition(&text).expect("self-render must validate");
        assert!(text.contains("# TYPE lm4db_serve_completed counter"));
        assert!(text.contains("lm4db_serve_completed 42"));
        assert!(text.contains("lm4db_serve_tenant_completed{tenant=\"interactive\"} 7"));
        assert!(text.contains("lm4db_serve_tenant_completed{tenant=\"batch\"} 9"));
        assert!(text.contains("# TYPE lm4db_decode_ns summary"));
        assert!(text.contains("lm4db_decode_ns_count 2"));
        assert!(text.contains("lm4db_decode_ns{quantile=\"0.5\"}"));
        assert!(text.contains("# TYPE lm4db_ts_serve_queued gauge"));
        assert!(text.contains("lm4db_ts_serve_queued 5"));
    }

    #[test]
    fn tenant_families_share_one_type_header() {
        let text = to_prometheus(&snap(), &[]);
        let headers = text
            .lines()
            .filter(|l| l.contains("TYPE lm4db_serve_tenant_completed"))
            .count();
        assert_eq!(headers, 1, "one family header for all tenants:\n{text}");
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = to_prometheus(&snap(), &[]);
        let b = to_prometheus(&snap(), &[]);
        assert_eq!(a, b);
    }

    #[test]
    fn validator_accepts_known_good_lines() {
        let good = "\
# HELP up Whether the target is up
# TYPE up gauge
up 1
metric_total{job=\"api\",instance=\"a\\\"b\"} 5 1700000000
lone_value 3.14
inf_value +Inf
nan_value NaN
";
        validate_exposition(good).expect("good exposition rejected");
    }

    #[test]
    fn validator_rejects_bad_lines() {
        for bad in [
            "1metric 5",                 // name starts with a digit
            "metric",                    // no value
            "metric abc",                // unparseable value
            "metric{label} 1",           // label missing '='
            "metric{label=value} 1",     // unquoted label value
            "metric{label=\"v} 1",       // unterminated quote... close brace inside
            "# TYPE metric frobnicator", // unknown type
            "# TYPE 9bad counter",       // invalid name in TYPE
            "metric 1 notatimestamp",    // bad timestamp
        ] {
            assert!(
                validate_exposition(bad).is_err(),
                "validator accepted {bad:?}"
            );
        }
    }

    #[test]
    fn label_values_escape() {
        let mut s = Snapshot::default();
        s.counters.insert("x/tenant/a\"b/done".into(), 1);
        let text = to_prometheus(&s, &[]);
        assert!(text.contains("tenant=\"a\\\"b\""));
        validate_exposition(&text).expect("escaped output must validate");
    }
}
