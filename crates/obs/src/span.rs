//! Hierarchical timed spans.
//!
//! [`span`] pushes its name onto a thread-local path and records the
//! elapsed time under the full slash-joined path when the guard drops, so
//! nested guards yield paths like `serve_step/feed`. [`leaf`] skips the
//! path stack entirely — hot kernels use it so `kernel/matmul` aggregates
//! under one name no matter which pool thread (and under which caller) it
//! ran. Guards are meant to drop in LIFO order, which ordinary lexical
//! scoping guarantees; an out-of-order drop only mislabels paths, it never
//! panics.
//!
//! At trace level 2 the same guards additionally emit begin/end events
//! into the [flight recorder](crate::flight), so code instrumented with
//! `span()`/`leaf()` shows up in per-request timelines with no changes.

use std::cell::RefCell;
use std::time::{Duration, Instant};

use crate::event::{Event, EventKind};
use crate::registry::record_duration_ns;

thread_local! {
    /// The slash-joined path of currently open hierarchical spans.
    static PATH: RefCell<String> = const { RefCell::new(String::new()) };
}

enum Inner {
    /// A span on the thread-local path stack; `truncate_to` restores the
    /// path when the guard drops. `events` remembers whether a begin event
    /// was emitted, so the matching end is emitted even if the trace level
    /// changes while the guard is alive.
    Hier {
        name: &'static str,
        truncate_to: usize,
        start: Instant,
        events: bool,
    },
    /// A flat timer that never touches the path stack.
    Leaf {
        name: &'static str,
        start: Instant,
        events: bool,
    },
}

/// Emits a begin event when the flight recorder is armed; returns whether
/// it did, so the guard can emit the matching end.
#[inline]
fn begin_event(name: &'static str) -> bool {
    if crate::events_enabled() {
        crate::flight::record(Event::now(EventKind::Begin, name, 0));
        true
    } else {
        false
    }
}

/// A timing guard returned by [`span`] and [`leaf`]; records its elapsed
/// time into the registry when dropped. A no-op (and nearly free) while
/// tracing is disabled.
pub struct Span(Option<Inner>);

/// Opens a hierarchical span. While the guard lives, further spans on this
/// thread nest under it (`parent/child`); the elapsed time is recorded
/// under the full path at drop.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span(None);
    }
    let truncate_to = PATH.with(|p| {
        let mut p = p.borrow_mut();
        let n = p.len();
        if n > 0 {
            p.push('/');
        }
        p.push_str(name);
        n
    });
    let events = begin_event(name);
    Span(Some(Inner::Hier {
        name,
        truncate_to,
        start: Instant::now(),
        events,
    }))
}

/// Opens a flat timer that records under `name` alone, ignoring the
/// hierarchical path. Use for hot leaf kernels that run on arbitrary pool
/// threads under arbitrary callers.
#[inline]
pub fn leaf(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span(None);
    }
    let events = begin_event(name);
    Span(Some(Inner::Leaf {
        name,
        start: Instant::now(),
        events,
    }))
}

impl Drop for Span {
    fn drop(&mut self) {
        match self.0.take() {
            None => {}
            Some(Inner::Hier {
                name,
                truncate_to,
                start,
                events,
            }) => {
                let ns = start.elapsed().as_nanos() as u64;
                let path = PATH.with(|p| {
                    let mut p = p.borrow_mut();
                    let full = p.clone();
                    p.truncate(truncate_to);
                    full
                });
                record_duration_ns(&path, ns);
                if events {
                    crate::flight::record(Event::now(EventKind::End, name, 0));
                }
            }
            Some(Inner::Leaf {
                name,
                start,
                events,
            }) => {
                record_duration_ns(name, start.elapsed().as_nanos() as u64);
                if events {
                    crate::flight::record(Event::now(EventKind::End, name, 0));
                }
            }
        }
    }
}

/// Runs `f` under a hierarchical span and returns its result.
#[inline]
pub fn time<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    let _guard = span(name);
    f()
}

/// Runs `f`, always measuring its wall-clock duration, and records it as a
/// flat timer when tracing is enabled. Benches use this so their printed
/// tables and the exported trace come from the *same* measurement and
/// cannot drift apart.
pub fn timed<R>(name: &'static str, f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let out = f();
    let elapsed = start.elapsed();
    if crate::enabled() {
        record_duration_ns(name, elapsed.as_nanos() as u64);
        if crate::events_enabled() {
            // A complete ("X") event: stamped at the end, duration in arg.
            crate::flight::record(Event::now(
                EventKind::Complete,
                name,
                elapsed.as_nanos() as u64,
            ));
        }
    }
    (out, elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_restores_after_nested_guards() {
        // Exercise only the path bookkeeping (no global registry writes
        // needed): with tracing forced on, open and close nested spans and
        // check the thread-local path empties back out.
        let _lock = crate::TEST_LOCK.lock().unwrap();
        crate::set_enabled(true);
        {
            let _a = span("a");
            {
                let _b = span("b");
                PATH.with(|p| assert_eq!(&*p.borrow(), "a/b"));
            }
            PATH.with(|p| assert_eq!(&*p.borrow(), "a"));
        }
        PATH.with(|p| assert_eq!(&*p.borrow(), ""));
        crate::set_enabled(false);
    }

    #[test]
    fn leaf_does_not_touch_the_path() {
        let _lock = crate::TEST_LOCK.lock().unwrap();
        crate::set_enabled(true);
        {
            let _a = span("outer");
            let _l = leaf("kernel");
            PATH.with(|p| assert_eq!(&*p.borrow(), "outer"));
        }
        crate::set_enabled(false);
    }

    #[test]
    fn timed_measures_even_when_disabled() {
        let _lock = crate::TEST_LOCK.lock().unwrap();
        crate::set_enabled(false);
        let (v, d) = timed("x", || {
            std::thread::sleep(Duration::from_micros(20));
            7
        });
        assert_eq!(v, 7);
        assert!(d >= Duration::from_micros(20));
    }
}
