//! Std-only metrics scrape endpoint: a background thread serving
//! `/metrics` (Prometheus text exposition) and `/dashboard` (HTML with
//! sparklines) over a plain `TcpListener`.
//!
//! The server never touches live registry internals beyond taking the
//! same snapshots any caller can take — each request renders from
//! [`crate::snapshot`] + [`crate::timeseries::series_snapshot`], so a
//! scrape mid-soak observes a consistent point-in-time view and adds
//! nothing to the decode hot path. The accept loop polls a nonblocking
//! listener (50 ms naps when idle) and exits when the [`MetricsServer`]
//! handle drops, which joins the thread — no leaked listeners between
//! tests.
//!
//! Arm it from the environment (`LM4DB_METRICS_ADDR=127.0.0.1:9898`) via
//! [`serve_metrics_from_env`], or bind explicitly — port 0 picks an
//! ephemeral port, reported by [`MetricsServer::addr`]:
//!
//! ```
//! let server = lm4db_obs::endpoint::serve_metrics("127.0.0.1:0").unwrap();
//! let addr = server.addr(); // scrape http://{addr}/metrics
//! drop(server);             // shuts down and joins the thread
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Handle to a running scrape endpoint; dropping it stops the server and
/// joins its thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and spawns
/// the serving thread. Errors are the bind/configure I/O errors.
pub fn serve_metrics<A: ToSocketAddrs>(addr: A) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("lm4db-metrics".into())
        .spawn(move || accept_loop(listener, &thread_stop))?;
    Ok(MetricsServer {
        addr,
        stop,
        handle: Some(handle),
    })
}

/// Starts the endpoint iff `LM4DB_METRICS_ADDR` is set to a bindable
/// address; `None` when unset. Bind errors are reported on stderr rather
/// than panicking — monitoring must never take down the workload.
pub fn serve_metrics_from_env() -> Option<MetricsServer> {
    let addr = std::env::var("LM4DB_METRICS_ADDR").ok()?;
    serve_metrics_or_log(&addr)
}

/// [`serve_metrics`] with the graceful-degradation policy applied: an
/// empty address is a quiet no-op, and a taken or invalid one books a
/// `fault/endpoint_bind_failed` counter, logs one stderr line, and
/// disables the scrape server — the workload keeps running unmonitored
/// rather than dying over an observability port.
pub fn serve_metrics_or_log(addr: &str) -> Option<MetricsServer> {
    let addr = addr.trim();
    if addr.is_empty() {
        return None;
    }
    match serve_metrics(addr) {
        Ok(s) => Some(s),
        Err(e) => {
            crate::counter_add("fault/endpoint_bind_failed", 1);
            eprintln!("lm4db-obs: cannot bind LM4DB_METRICS_ADDR={addr}: {e}");
            None
        }
    }
}

fn accept_loop(listener: TcpListener, stop: &AtomicBool) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve inline: scrapes are rare and renders are cheap, so
                // one connection at a time keeps the thread budget at 1.
                let _ = handle_conn(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// Reads the request head (first line is enough — bodies are ignored)
/// and routes it.
fn handle_conn(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    let mut buf = [0u8; 2048];
    let mut head = Vec::new();
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(_) => break,
        };
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 16 * 1024 {
            break;
        }
    }
    let request_line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(&[]);
    let request_line = String::from_utf8_lossy(request_line);
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);

    let (status, ctype, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                crate::prom::global_prometheus(),
            ),
            "/dashboard" | "/" => (
                "200 OK",
                "text/html; charset=utf-8",
                crate::dashboard::global_html(),
            ),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found; try /metrics or /dashboard\n".to_string(),
            ),
        }
    };
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Minimal scrape client for tests and benches: issues `GET {path}` to
/// `addr` and returns `(status_line, body)`.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw.lines().next().unwrap_or("").to_string();
    let body = match raw.find("\r\n\r\n") {
        Some(i) => raw[i + 4..].to_string(),
        None => String::new(),
    };
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_metrics_dashboard_and_404() {
        let server = serve_metrics("127.0.0.1:0").expect("bind ephemeral");
        let addr = server.addr();

        let (status, body) = http_get(addr, "/metrics").expect("GET /metrics");
        assert!(status.contains("200"), "{status}");
        crate::prom::validate_exposition(&body).expect("scrape must be valid exposition");

        let (status, body) = http_get(addr, "/dashboard").expect("GET /dashboard");
        assert!(status.contains("200"), "{status}");
        assert!(body.starts_with("<!doctype html>"));

        let (status, _) = http_get(addr, "/nope").expect("GET /nope");
        assert!(status.contains("404"), "{status}");

        drop(server); // joins the thread; a second bind of the port is now possible
    }

    #[test]
    fn bind_failure_degrades_gracefully_and_books_a_counter() {
        // Hold a port so the second bind must fail with AddrInUse.
        let taken = TcpListener::bind("127.0.0.1:0").expect("reserve a port");
        let addr = taken.local_addr().unwrap().to_string();
        crate::set_enabled(true);
        let before = crate::snapshot()
            .counters
            .get("fault/endpoint_bind_failed")
            .copied()
            .unwrap_or(0);
        assert!(
            serve_metrics_or_log(&addr).is_none(),
            "a taken address must disable the endpoint, not panic"
        );
        let after = crate::snapshot()
            .counters
            .get("fault/endpoint_bind_failed")
            .copied()
            .unwrap_or(0);
        assert_eq!(after, before + 1, "bind failure must be counted");
        // Garbage addresses take the same path.
        assert!(serve_metrics_or_log("not-an-address").is_none());
        assert!(serve_metrics_or_log("   ").is_none(), "blank stays quiet");
        crate::set_enabled(false);
    }

    #[test]
    fn env_helper_is_quiet_when_unset() {
        // LM4DB_METRICS_ADDR is not set in the test environment.
        if std::env::var("LM4DB_METRICS_ADDR").is_err() {
            assert!(serve_metrics_from_env().is_none());
        }
    }
}
