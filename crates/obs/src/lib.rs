//! # lm4db-obs
//!
//! Std-only observability for the LM4DB stack: a global metrics registry
//! (counters, gauges, log-bucketed latency timers), hierarchical timed
//! spans with per-thread shards merged at snapshot time, text/JSON
//! exporters, and — at the highest trace level — an event-granular
//! **flight recorder** with per-request timelines, Chrome/Perfetto trace
//! export, and panic post-mortems. CodexDB-style pipelines live or die by
//! per-stage cost accounting — prompt construction, decoding, validation
//! retries — and this crate is the one place every layer (kernels,
//! training, serving, the text-to-SQL and synthesis applications) reports
//! into.
//!
//! **Trace levels.** `LM4DB_TRACE` (parsed tolerantly: whitespace is
//! trimmed, `on`/`off`/`true`/`false` are accepted case-insensitively)
//! selects one of three levels:
//!
//! | level | value | what records |
//! |---|---|---|
//! | 0 | unset / `0` / `off` / `false` | nothing |
//! | 1 | `1` / `on` / `true` | metrics: counters, gauges, timers |
//! | 2 | `2` | metrics **plus** flight-recorder events |
//!
//! **Overhead contract.** Every instrumentation point is gated on
//! [`enabled`] (or [`events_enabled`]), a single relaxed atomic load plus
//! a predictable branch, so instrumented hot loops run at full speed at
//! level 0 (`expM_observability` pins this at ≤ 1% on the threaded-matmul
//! hot loop; `expN_request_tracing` bounds full event recording at ≤ 10%
//! on the serve workload). Tracing is purely observational: it never
//! changes results — the serving golden suite passes byte-exact at every
//! `LM4DB_TRACE` level.
//!
//! **Thread model.** Each thread records metrics into its own shard (an
//! uncontended mutex, registered globally on first use) and events into
//! its own bounded [ring](flight::Ring); [`snapshot`] / [`flight_snapshot`]
//! merge all shards, so spans recorded inside `lm4db-tensor` worker-pool
//! threads aggregate with the dispatcher's. Span paths nest per thread
//! (`train_step/reduce`); [`leaf`] timers skip the stack so hot kernels
//! aggregate under one flat name no matter which thread ran them. At
//! level 2 the same `span()`/`leaf()` guards additionally emit begin/end
//! [events](Event) — instrumented code needs no changes to show up in
//! timelines — and a [`request_scope`] guard attributes them to the
//! serving request that caused them.
//!
//! **Telemetry over time.** Point-in-time snapshots compose with a
//! step-clock telemetry layer: [`timeseries`] keeps bounded per-series
//! ring buffers (sampled on the serve engine's scheduler cadence,
//! `LM4DB_SAMPLE_STEPS`) with `rate()`/`delta()`/window views; [`slo`]
//! runs multi-window burn-rate rules over those samples through a
//! deterministic pending→firing→resolved alert state machine; and the
//! [`prom`]/[`dashboard`]/[`endpoint`] exporters publish everything as
//! Prometheus text exposition and a self-contained HTML dashboard from a
//! background scrape thread (`LM4DB_METRICS_ADDR`) that only ever reads
//! snapshots. Because samples and alerts live on the virtual step clock,
//! they replay byte-identically under the golden/soak matrices.
//!
//! # Examples
//!
//! ```
//! // Tracing is explicit here so the example is environment-independent.
//! lm4db_obs::set_enabled(true);
//! lm4db_obs::reset();
//!
//! lm4db_obs::counter_add("requests", 3);
//! lm4db_obs::gauge_set("queue_depth", 2.0);
//! let answer = lm4db_obs::time("compute", || 6 * 7);
//! assert_eq!(answer, 42);
//!
//! let snap = lm4db_obs::snapshot();
//! assert_eq!(snap.counters["requests"], 3);
//! assert_eq!(snap.timers["compute"].count, 1);
//! assert!(snap.to_text().contains("requests"));
//! assert!(snap.to_json().starts_with('{'));
//! lm4db_obs::set_enabled(false);
//! ```
//!
//! At level 2 the same guards feed the flight recorder:
//!
//! ```
//! lm4db_obs::set_level(2);
//! lm4db_obs::flight_reset();
//! {
//!     let _req = lm4db_obs::request_scope(7);
//!     let _s = lm4db_obs::span("serve_phase");
//! } // drop records timing AND begin/end events attributed to request 7
//! let trace = lm4db_obs::flight_snapshot();
//! assert_eq!(trace.requests(), vec![7]);
//! assert!(trace.to_chrome_json().contains("\"traceEvents\""));
//! lm4db_obs::set_level(0);
//! ```

#![warn(missing_docs)]

pub mod dashboard;
pub mod endpoint;
pub mod event;
pub mod export;
pub mod flight;
pub mod hist;
pub mod prom;
pub mod registry;
pub mod slo;
pub mod span;
pub mod timeseries;

pub use dashboard::to_html;
pub use endpoint::{serve_metrics, serve_metrics_from_env, MetricsServer};
pub use event::{
    current_request, instant, instant_arg, instant_for, instant_for_arg, request_scope, Event,
    EventKind, RequestScope,
};
pub use export::{Snapshot, TimerStat};
pub use flight::{
    crash_dump_path, flight_reset, flight_snapshot, install_panic_hook, write_crash_dump,
    FlightTrace, PhaseTotal, Ring, ShardTrace,
};
pub use hist::Histogram;
pub use prom::{global_prometheus, to_prometheus, validate_exposition};
pub use registry::{counter_add, gauge_set, record_duration_ns, reset, snapshot};
pub use slo::{AlertConfig, AlertState, AlertTransition, SloMonitor};
pub use span::{leaf, span, time, timed, Span};
pub use timeseries::{
    env_sample_steps, sample_registry, series_record, series_reset, series_snapshot, Point, Series,
};

use std::sync::atomic::{AtomicU8, Ordering};

/// Trace-level state: 0 = unresolved, otherwise `level + 1`
/// (1 = off, 2 = metrics, 3 = metrics + flight-recorder events).
static STATE: AtomicU8 = AtomicU8::new(0);

/// The current trace level (0, 1, or 2). After the first call this is one
/// relaxed atomic load — the entire cost of a disabled instrumentation
/// point is this load plus a branch.
#[inline]
pub fn level() -> u8 {
    match STATE.load(Ordering::Relaxed) {
        0 => init_from_env(),
        s => s - 1,
    }
}

/// Whether metrics tracing is on (level ≥ 1).
#[inline]
pub fn enabled() -> bool {
    level() >= 1
}

/// Whether flight-recorder events are on (level 2).
#[inline]
pub fn events_enabled() -> bool {
    level() >= 2
}

/// Turns metrics tracing on (level 1) or everything off (level 0),
/// overriding `LM4DB_TRACE`.
pub fn set_enabled(on: bool) {
    set_level(if on { 1 } else { 0 });
}

/// Sets the trace level (clamped to 0–2), overriding `LM4DB_TRACE`.
/// Arming level 2 this way does **not** install the panic hook — call
/// [`install_panic_hook`] if a crash should leave a post-mortem dump.
pub fn set_level(level: u8) {
    STATE.store(level.min(2) + 1, Ordering::Relaxed);
}

/// Tolerant `LM4DB_TRACE` parsing: trims whitespace, accepts numbers and
/// `on`/`off`/`true`/`false`/`yes`/`no` case-insensitively. Unrecognized
/// values and numbers above 2 clamp into range; garbage means off.
fn parse_trace_level(raw: &str) -> u8 {
    let v = raw.trim();
    if v.is_empty()
        || v.eq_ignore_ascii_case("off")
        || v.eq_ignore_ascii_case("false")
        || v.eq_ignore_ascii_case("no")
    {
        return 0;
    }
    if v.eq_ignore_ascii_case("on")
        || v.eq_ignore_ascii_case("true")
        || v.eq_ignore_ascii_case("yes")
    {
        return 1;
    }
    match v.parse::<u64>() {
        Ok(n) => n.min(2) as u8,
        Err(_) => 0,
    }
}

/// Resolves the initial level from `LM4DB_TRACE` exactly once. When the
/// environment arms the flight recorder (level 2), the panic post-mortem
/// hook is installed as well, so a crashed `LM4DB_TRACE=2` run always
/// leaves evidence.
#[cold]
fn init_from_env() -> u8 {
    let lvl = std::env::var("LM4DB_TRACE")
        .map(|v| parse_trace_level(&v))
        .unwrap_or(0);
    // A racing set_enabled()/set_level() wins: only replace the
    // unresolved state.
    let _ = STATE.compare_exchange(0, lvl + 1, Ordering::Relaxed, Ordering::Relaxed);
    let resolved = STATE.load(Ordering::Relaxed) - 1;
    if lvl >= 2 {
        flight::install_panic_hook();
    }
    resolved
}

/// Tracing state and the registry are process-global; every test that
/// toggles them holds this lock so parallel test threads don't race.
#[cfg(test)]
pub(crate) static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TEST_LOCK as GLOBAL;

    #[test]
    fn disabled_paths_record_nothing() {
        let _lock = GLOBAL.lock().unwrap();
        set_enabled(false);
        reset();
        counter_add("c", 1);
        gauge_set("g", 1.0);
        let s = span("s");
        let l = leaf("l");
        drop(s);
        drop(l);
        let snap = snapshot();
        assert!(!snap.counters.contains_key("c"));
        assert!(!snap.gauges.contains_key("g"));
        assert!(!snap.timers.contains_key("s"));
        assert!(!snap.timers.contains_key("l"));
    }

    #[test]
    fn enabled_paths_record() {
        let _lock = GLOBAL.lock().unwrap();
        set_enabled(true);
        reset();
        counter_add("hits", 2);
        counter_add("hits", 3);
        gauge_set("depth", 4.5);
        time("work", || {
            std::thread::sleep(std::time::Duration::from_micros(50))
        });
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.counters["hits"], 5);
        assert_eq!(snap.gauges["depth"], 4.5);
        let t = &snap.timers["work"];
        assert_eq!(t.count, 1);
        assert!(
            t.total_ns >= 50_000,
            "slept 50µs but recorded {}ns",
            t.total_ns
        );
    }

    #[test]
    fn worker_thread_spans_merge_into_snapshot() {
        let _lock = GLOBAL.lock().unwrap();
        set_enabled(true);
        reset();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(|| {
                    let _g = span("worker_job");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let g = span("main_job");
        drop(g);
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.timers["worker_job"].count, 3);
        assert_eq!(snap.timers["main_job"].count, 1);
        assert!(snap.threads >= 2, "expected shards from multiple threads");
    }

    #[test]
    fn trace_level_parsing_is_tolerant() {
        // Whitespace that used to silently disable tracing.
        assert_eq!(parse_trace_level("1 "), 1);
        assert_eq!(parse_trace_level(" 2\t"), 2);
        // Case-insensitive words.
        assert_eq!(parse_trace_level("ON"), 1);
        assert_eq!(parse_trace_level("On"), 1);
        assert_eq!(parse_trace_level("TRUE"), 1);
        assert_eq!(parse_trace_level("yes"), 1);
        assert_eq!(parse_trace_level("OFF"), 0);
        assert_eq!(parse_trace_level("False"), 0);
        assert_eq!(parse_trace_level("no"), 0);
        // Numbers, clamped into range.
        assert_eq!(parse_trace_level("0"), 0);
        assert_eq!(parse_trace_level("2"), 2);
        assert_eq!(parse_trace_level("7"), 2);
        // Garbage and emptiness mean off, never a panic.
        assert_eq!(parse_trace_level(""), 0);
        assert_eq!(parse_trace_level("  "), 0);
        assert_eq!(parse_trace_level("banana"), 0);
        assert_eq!(parse_trace_level("-1"), 0);
    }

    #[test]
    fn levels_gate_metrics_and_events_independently() {
        let _lock = GLOBAL.lock().unwrap();
        set_level(1);
        assert!(enabled());
        assert!(!events_enabled());
        set_level(2);
        assert!(enabled());
        assert!(events_enabled());
        set_level(0);
        assert!(!enabled());
        assert!(!events_enabled());
        // set_enabled keeps its historical meaning: level 1.
        set_enabled(true);
        assert_eq!(level(), 1);
        set_enabled(false);
        assert_eq!(level(), 0);
    }

    #[test]
    fn spans_feed_events_at_level_2() {
        let _lock = GLOBAL.lock().unwrap();
        set_level(2);
        reset();
        flight_reset();
        {
            let _req = request_scope(5);
            let _outer = span("outer");
            let _inner = leaf("inner");
            instant("ping");
        }
        let trace = flight_snapshot();
        set_level(0);
        assert_eq!(trace.requests(), vec![5]);
        let events = trace.request_events(5);
        // outer B, inner B, ping i, inner E, outer E.
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].kind, EventKind::Begin);
        assert_eq!(events[0].name, "outer");
        assert_eq!(events.last().unwrap().kind, EventKind::End);
        assert_eq!(events.last().unwrap().name, "outer");
        // Level 1 records metrics but no events.
        set_level(1);
        flight_reset();
        {
            let _s = span("quiet");
        }
        let trace = flight_snapshot();
        set_level(0);
        assert!(trace.is_empty(), "level 1 must not record events");
    }
}
