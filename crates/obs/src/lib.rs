//! # lm4db-obs
//!
//! Std-only observability for the LM4DB stack: a global metrics registry
//! (counters, gauges, log-bucketed latency timers), hierarchical timed
//! spans with per-thread shards merged at snapshot time, and text/JSON
//! exporters. CodexDB-style pipelines live or die by per-stage cost
//! accounting — prompt construction, decoding, validation retries — and
//! this crate is the one place every layer (kernels, training, serving,
//! the text-to-SQL and synthesis applications) reports into.
//!
//! **Overhead contract.** Tracing is off unless the `LM4DB_TRACE`
//! environment variable is set to `1`/`true`/`on` (or [`set_enabled`] is
//! called). Every instrumentation point is gated on [`enabled`], a single
//! relaxed atomic load plus a predictable branch, so instrumented hot
//! loops run at full speed when tracing is off (`expM_observability`
//! pins this at ≤ 1% on the threaded-matmul hot loop). Tracing is purely
//! observational: it never changes results — the serving golden suite
//! passes byte-exact with `LM4DB_TRACE=1`.
//!
//! **Thread model.** Each thread records into its own shard (an
//! uncontended mutex), registered globally on first use; [`snapshot`]
//! merges all shards, so spans recorded inside `lm4db-tensor` worker-pool
//! threads aggregate with the dispatcher's. Span paths nest per thread
//! (`train_step/reduce`); [`leaf`] timers skip the stack so hot kernels
//! aggregate under one flat name no matter which thread ran them.
//!
//! # Examples
//!
//! ```
//! // Tracing is explicit here so the example is environment-independent.
//! lm4db_obs::set_enabled(true);
//! lm4db_obs::reset();
//!
//! lm4db_obs::counter_add("requests", 3);
//! lm4db_obs::gauge_set("queue_depth", 2.0);
//! let answer = lm4db_obs::time("compute", || 6 * 7);
//! assert_eq!(answer, 42);
//!
//! let snap = lm4db_obs::snapshot();
//! assert_eq!(snap.counters["requests"], 3);
//! assert_eq!(snap.timers["compute"].count, 1);
//! assert!(snap.to_text().contains("requests"));
//! assert!(snap.to_json().starts_with('{'));
//! lm4db_obs::set_enabled(false);
//! ```
//!
//! Spans nest hierarchically within a thread:
//!
//! ```
//! lm4db_obs::set_enabled(true);
//! lm4db_obs::reset();
//! {
//!     let _outer = lm4db_obs::span("pipeline");
//!     let _inner = lm4db_obs::span("decode");
//! } // guards drop in LIFO order, recording "pipeline/decode" then "pipeline"
//! let snap = lm4db_obs::snapshot();
//! assert!(snap.timers.contains_key("pipeline/decode"));
//! lm4db_obs::set_enabled(false);
//! ```

#![warn(missing_docs)]

pub mod export;
pub mod registry;
pub mod span;

pub use export::{Snapshot, TimerStat};
pub use registry::{counter_add, gauge_set, record_duration_ns, reset, snapshot};
pub use span::{leaf, span, time, timed, Span};

use std::sync::atomic::{AtomicU8, Ordering};

/// Tri-state enable flag: 0 = unresolved, 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether tracing is on. After the first call this is one relaxed atomic
/// load and a branch — the entire cost of a disabled instrumentation point.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

/// Turns tracing on or off, overriding `LM4DB_TRACE`.
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Resolves the initial state from `LM4DB_TRACE` exactly once.
#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("LM4DB_TRACE")
        .map(|v| matches!(v.trim(), "1" | "true" | "on"))
        .unwrap_or(false);
    // A racing set_enabled() wins: only replace the unresolved state.
    let _ = STATE.compare_exchange(
        0,
        if on { 2 } else { 1 },
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    STATE.load(Ordering::Relaxed) == 2
}

/// Tracing state and the registry are process-global; every test that
/// toggles them holds this lock so parallel test threads don't race.
#[cfg(test)]
pub(crate) static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TEST_LOCK as GLOBAL;

    #[test]
    fn disabled_paths_record_nothing() {
        let _lock = GLOBAL.lock().unwrap();
        set_enabled(false);
        reset();
        counter_add("c", 1);
        gauge_set("g", 1.0);
        let s = span("s");
        let l = leaf("l");
        drop(s);
        drop(l);
        let snap = snapshot();
        assert!(!snap.counters.contains_key("c"));
        assert!(!snap.gauges.contains_key("g"));
        assert!(!snap.timers.contains_key("s"));
        assert!(!snap.timers.contains_key("l"));
    }

    #[test]
    fn enabled_paths_record() {
        let _lock = GLOBAL.lock().unwrap();
        set_enabled(true);
        reset();
        counter_add("hits", 2);
        counter_add("hits", 3);
        gauge_set("depth", 4.5);
        time("work", || {
            std::thread::sleep(std::time::Duration::from_micros(50))
        });
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.counters["hits"], 5);
        assert_eq!(snap.gauges["depth"], 4.5);
        let t = &snap.timers["work"];
        assert_eq!(t.count, 1);
        assert!(
            t.total_ns >= 50_000,
            "slept 50µs but recorded {}ns",
            t.total_ns
        );
    }

    #[test]
    fn worker_thread_spans_merge_into_snapshot() {
        let _lock = GLOBAL.lock().unwrap();
        set_enabled(true);
        reset();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(|| {
                    let _g = span("worker_job");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let g = span("main_job");
        drop(g);
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.timers["worker_job"].count, 3);
        assert_eq!(snap.timers["main_job"].count, 1);
        assert!(snap.threads >= 2, "expected shards from multiple threads");
    }
}
