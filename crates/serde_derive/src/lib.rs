#![warn(missing_docs)]
//! `#[derive(Serialize, Deserialize)]` for the workspace's serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (the build environment
//! has no crates.io access, so `syn`/`quote` are unavailable). Supports the
//! shapes this repository actually derives on:
//!
//! * structs with named fields (with optional `#[serde(skip)]` fields),
//! * enums whose variants are units or carry unnamed (tuple) payloads.
//!
//! Generated code follows the real serde's externally-tagged JSON layout:
//! unit variants serialize to their name as a string, payload variants to
//! `{"Name": payload}` (multi-payload variants wrap payloads in an array).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
struct Variant {
    name: String,
    arity: usize,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Splits a token sequence on commas that are not nested inside `<...>`.
/// Delimited groups (parens, brackets, braces) are single trees, so only
/// angle brackets need explicit depth tracking.
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Consumes leading `#[...]` attributes, returning whether any of them is
/// `#[serde(skip)]`.
fn take_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut skip = false;
    while i + 1 < tokens.len() {
        let is_hash = matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#');
        let bracket = match &tokens[i + 1] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket => Some(g),
            _ => None,
        };
        match (is_hash, bracket) {
            (true, Some(g)) => {
                let text = g.stream().to_string();
                if text.starts_with("serde") && text.contains("skip") {
                    skip = true;
                }
                i += 2;
            }
            _ => break,
        }
    }
    (i, skip)
}

fn parse_fields(group_tokens: Vec<TokenTree>) -> Vec<Field> {
    let mut fields = Vec::new();
    for chunk in split_top_level_commas(&group_tokens) {
        let (mut i, skip) = take_attrs(&chunk, 0);
        // Skip a visibility modifier: `pub` optionally followed by `(...)`.
        if matches!(&chunk.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(&chunk.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let Some(TokenTree::Ident(name)) = chunk.get(i) else {
            continue; // trailing comma artifact
        };
        fields.push(Field {
            name: name.to_string(),
            skip,
        });
    }
    fields
}

fn parse_variants(group_tokens: Vec<TokenTree>) -> Vec<Variant> {
    let mut variants = Vec::new();
    for chunk in split_top_level_commas(&group_tokens) {
        let (i, _) = take_attrs(&chunk, 0);
        let Some(TokenTree::Ident(name)) = chunk.get(i) else {
            continue;
        };
        let arity = match chunk.get(i + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let payload: Vec<TokenTree> = g.stream().into_iter().collect();
                if payload.is_empty() {
                    0
                } else {
                    split_top_level_commas(&payload).len()
                }
            }
            _ => 0,
        };
        variants.push(Variant {
            name: name.to_string(),
            arity,
        });
    }
    variants
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility.
    loop {
        let (ni, _) = take_attrs(&tokens, i);
        i = ni;
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    let Some(TokenTree::Ident(name)) = tokens.get(i + 1) else {
        return Err("expected item name".to_string());
    };
    let name = name.to_string();
    // Generic items are not supported (and not used in this workspace).
    if matches!(tokens.get(i + 2), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("cannot derive for generic type {name}"));
    }
    let body = tokens.iter().skip(i + 2).find_map(|t| match t {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
        _ => None,
    });
    let Some(body) = body else {
        return Err(format!("no braced body found for {name}"));
    };
    let body: Vec<TokenTree> = body.into_iter().collect();
    match kind.as_str() {
        "struct" => Ok(Item::Struct {
            name,
            fields: parse_fields(body),
        }),
        "enum" => Ok(Item::Enum {
            name,
            variants: parse_variants(body),
        }),
        other => Err(format!("cannot derive for {other} items")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let mut inserts = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                inserts.push_str(&format!(
                    "m.insert({n:?}.to_string(), ::serde::Serialize::to_value(&self.{n}));\n",
                    n = f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n\
                     let mut m = ::std::collections::BTreeMap::new();\n\
                     {inserts}\
                     ::serde::Value::Object(m)\n\
                   }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match v.arity {
                    0 => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),\n"
                    )),
                    1 => arms.push_str(&format!(
                        "{name}::{vn}(x0) => {{\n\
                           let mut m = ::std::collections::BTreeMap::new();\n\
                           m.insert({vn:?}.to_string(), ::serde::Serialize::to_value(x0));\n\
                           ::serde::Value::Object(m)\n\
                         }}\n"
                    )),
                    arity => {
                        let binders: Vec<String> = (0..arity).map(|k| format!("x{k}")).collect();
                        let elems: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {{\n\
                               let mut m = ::std::collections::BTreeMap::new();\n\
                               m.insert({vn:?}.to_string(), ::serde::Value::Array(vec![{}]));\n\
                               ::serde::Value::Object(m)\n\
                             }}\n",
                            binders.join(", "),
                            elems.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n\
                     match self {{\n{arms}}}\n\
                   }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in &fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{}: ::std::default::Default::default(),\n",
                        f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{n}: ::serde::Deserialize::from_value(v.get({n:?})\
                           .ok_or_else(|| ::serde::de_error(concat!(\"missing field \", {n:?})))?)?,\n",
                        n = f.name
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok({name} {{\n{inits}}})\n\
                   }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match v.arity {
                    0 => unit_arms.push_str(&format!(
                        "{vn:?} => return ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    1 => payload_arms.push_str(&format!(
                        "{vn:?} => return ::std::result::Result::Ok({name}::{vn}(\
                           ::serde::Deserialize::from_value(pv)?)),\n"
                    )),
                    arity => {
                        let elems: Vec<String> = (0..arity)
                            .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                            .collect();
                        payload_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                               if let ::serde::Value::Array(items) = pv {{\n\
                                 if items.len() == {arity} {{\n\
                                   return ::std::result::Result::Ok({name}::{vn}({}));\n\
                                 }}\n\
                               }}\n\
                               return ::std::result::Result::Err(::serde::de_error(\
                                 concat!(\"bad payload for variant \", {vn:?})));\n\
                             }}\n",
                            elems.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     if let ::serde::Value::Str(s) = v {{\n\
                       match s.as_str() {{\n{unit_arms}_ => {{}}\n}}\n\
                     }}\n\
                     if let ::serde::Value::Object(m) = v {{\n\
                       if m.len() == 1 {{\n\
                         let (k, pv) = m.iter().next().unwrap();\n\
                         let _ = pv;\n\
                         match k.as_str() {{\n{payload_arms}_ => {{}}\n}}\n\
                       }}\n\
                     }}\n\
                     ::std::result::Result::Err(::serde::de_error(\
                       concat!(\"no variant of \", {name:?}, \" matches\")))\n\
                   }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
