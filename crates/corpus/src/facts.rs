//! Natural-language fact generation from relational rows, with paraphrase
//! templates — the data layout of Thorne et al.'s *"From natural language
//! processing to neural databases"* (VLDB 2021), where the database IS a set
//! of NL sentences.

use lm4db_sql::{Table, Value};
use lm4db_tensor::Rand;

/// One natural-language fact derived from a `(subject, attribute, value)`
/// cell of a table.
#[derive(Debug, Clone, PartialEq)]
pub struct Fact {
    /// Entity key (e.g. the employee name).
    pub subject: String,
    /// Attribute (column) name.
    pub attribute: String,
    /// Value rendered as plain text.
    pub value: String,
    /// The sentence storing this fact.
    pub text: String,
}

/// Paraphrase templates; `{s}` = subject, `{a}` = attribute, `{v}` = value.
/// Template 0 is the canonical form.
pub const TEMPLATES: [&str; 4] = [
    "the {a} of {s} is {v}",
    "{s} has a {a} of {v}",
    "{s} 's {a} is {v}",
    "for {s} the {a} is {v}",
];

fn render(template: &str, s: &str, a: &str, v: &str) -> String {
    template
        .replace("{s}", s)
        .replace("{a}", a)
        .replace("{v}", v)
}

fn value_text(v: &Value) -> Option<String> {
    match v {
        Value::Null => None,
        Value::Str(s) => Some(s.clone()),
        Value::Int(i) => Some(i.to_string()),
        Value::Float(f) => Some(format!("{f}")),
        Value::Bool(b) => Some(b.to_string()),
    }
}

/// Converts every non-null cell of `table` (except the key column itself)
/// into a [`Fact`]. `paraphrase_rate` controls how often a non-canonical
/// template is used (0.0 = always template 0).
pub fn facts_from_table(
    table: &Table,
    key_col: &str,
    paraphrase_rate: f32,
    rng: &mut Rand,
) -> Vec<Fact> {
    let key_idx = table
        .schema
        .index_of(key_col)
        .expect("key column must exist");
    let mut out = Vec::new();
    for row in &table.rows {
        let Some(subject) = value_text(&row[key_idx]) else {
            continue;
        };
        for (ci, col) in table.schema.columns().iter().enumerate() {
            if ci == key_idx {
                continue;
            }
            let Some(value) = value_text(&row[ci]) else {
                continue;
            };
            let template = if rng.uniform() < paraphrase_rate {
                TEMPLATES[1 + rng.below(TEMPLATES.len() - 1)]
            } else {
                TEMPLATES[0]
            };
            out.push(Fact {
                subject: subject.clone(),
                attribute: col.name.clone(),
                value: value.clone(),
                text: render(template, &subject, &col.name, &value),
            });
        }
    }
    out
}

/// Renders a fact with every available template (used to build paraphrase
/// training pairs).
pub fn all_paraphrases(subject: &str, attribute: &str, value: &str) -> Vec<String> {
    TEMPLATES
        .iter()
        .map(|t| render(t, subject, attribute, value))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::{make_domain, DomainKind};

    #[test]
    fn facts_cover_all_non_key_cells() {
        let d = make_domain(DomainKind::Employees, 10, 3);
        let mut rng = Rand::seeded(1);
        let facts = facts_from_table(&d.table, &d.key_col, 0.0, &mut rng);
        // 10 rows x 4 non-key columns.
        assert_eq!(facts.len(), 40);
    }

    #[test]
    fn canonical_template_when_rate_zero() {
        let d = make_domain(DomainKind::Employees, 3, 3);
        let mut rng = Rand::seeded(1);
        for f in facts_from_table(&d.table, &d.key_col, 0.0, &mut rng) {
            assert!(
                f.text.starts_with(&format!("the {} of ", f.attribute)),
                "unexpected template: {}",
                f.text
            );
        }
    }

    #[test]
    fn paraphrases_appear_at_high_rate() {
        let d = make_domain(DomainKind::Employees, 10, 3);
        let mut rng = Rand::seeded(2);
        let facts = facts_from_table(&d.table, &d.key_col, 1.0, &mut rng);
        let canonical = facts.iter().filter(|f| f.text.starts_with("the ")).count();
        assert!(canonical < facts.len() / 2);
    }

    #[test]
    fn all_paraphrases_mention_components() {
        for p in all_paraphrases("ada", "salary", "120") {
            assert!(p.contains("ada"));
            assert!(p.contains("salary"));
            assert!(p.contains("120"));
        }
    }

    #[test]
    fn fact_text_contains_subject_attribute_value() {
        let d = make_domain(DomainKind::Products, 5, 7);
        let mut rng = Rand::seeded(3);
        for f in facts_from_table(&d.table, &d.key_col, 0.5, &mut rng) {
            assert!(f.text.contains(&f.subject));
            assert!(f.text.contains(&f.attribute));
            assert!(f.text.contains(&f.value));
        }
    }
}
