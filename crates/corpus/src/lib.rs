//! # lm4db-corpus
//!
//! Seeded synthetic data generators for every LM4DB experiment: database-
//! flavored English text (LM pre-training), product/citation entities with
//! controllable corruption (entity matching, error detection), cross-domain
//! relational tables (text-to-SQL, fact checking, code synthesis), and
//! natural-language facts (neural databases).
//!
//! The paper's demonstrations use proprietary corpora and public benchmarks
//! we cannot ship; these generators produce workloads with the same *shape*
//! (documented per experiment in `DESIGN.md` §2) while keeping every run
//! deterministic.

#![warn(missing_docs)]

pub mod corruption;
pub mod entities;
pub mod facts;
pub mod tables;
pub mod text;

pub use corruption::{corrupt, Severity};
pub use entities::{citations, products, Citation, Product};
pub use facts::{all_paraphrases, facts_from_table, Fact};
pub use tables::{all_domains, make_domain, Domain, DomainKind};
pub use text::{corpus, sentence, vocabulary};
