//! Seeded English-like text generation from a small template grammar.
//!
//! The generated prose is database-flavored (the domain the tutorial's
//! audience cares about) and statistically regular enough for tiny language
//! models to learn measurable structure: articles precede nouns, verbs agree
//! with templates, and a Zipf-like skew is applied to word choice so
//! frequent-token effects (BPE merges, n-gram backoff) appear naturally.

use lm4db_tensor::Rand;

const SUBJECTS: [&str; 12] = [
    "the optimizer",
    "the database",
    "the query",
    "the index",
    "the planner",
    "the executor",
    "the system",
    "the user",
    "the table",
    "the transaction",
    "the buffer",
    "the scheduler",
];

const VERBS: [&str; 10] = [
    "scans", "reads", "writes", "updates", "joins", "sorts", "filters", "caches", "loads", "stores",
];

const OBJECTS: [&str; 12] = [
    "the rows",
    "the data",
    "the pages",
    "the tuples",
    "the results",
    "the partitions",
    "the records",
    "the columns",
    "the statistics",
    "the plan",
    "the log",
    "the snapshot",
];

const MODIFIERS: [&str; 8] = [
    "quickly",
    "slowly",
    "in parallel",
    "in order",
    "at night",
    "on disk",
    "in memory",
    "twice",
];

const CONNECTIVES: [&str; 4] = ["and", "while", "because", "so"];

/// Picks an index with a Zipf-like skew (rank-weighted, exponent 1).
fn zipf(n: usize, rng: &mut Rand) -> usize {
    let weights: Vec<f32> = (0..n).map(|i| 1.0 / (i + 1) as f32).collect();
    rng.weighted(&weights)
}

/// Generates one sentence.
pub fn sentence(rng: &mut Rand) -> String {
    let clause = |rng: &mut Rand| {
        let s = SUBJECTS[zipf(SUBJECTS.len(), rng)];
        let v = VERBS[zipf(VERBS.len(), rng)];
        let o = OBJECTS[zipf(OBJECTS.len(), rng)];
        if rng.uniform() < 0.4 {
            let m = MODIFIERS[rng.below(MODIFIERS.len())];
            format!("{s} {v} {o} {m}")
        } else {
            format!("{s} {v} {o}")
        }
    };
    let mut out = clause(rng);
    if rng.uniform() < 0.3 {
        let c = CONNECTIVES[rng.below(CONNECTIVES.len())];
        out = format!("{out} {c} {}", clause(rng));
    }
    out
}

/// Generates a corpus of `n` sentences with a fixed seed.
pub fn corpus(n: usize, seed: u64) -> Vec<String> {
    let mut rng = Rand::seeded(seed);
    (0..n).map(|_| sentence(&mut rng)).collect()
}

/// The full generator vocabulary (useful for sizing tokenizers).
pub fn vocabulary() -> Vec<&'static str> {
    let mut words: Vec<&str> = Vec::new();
    for group in [
        &SUBJECTS[..],
        &VERBS[..],
        &OBJECTS[..],
        &MODIFIERS[..],
        &CONNECTIVES[..],
    ] {
        for phrase in group {
            words.extend(phrase.split_whitespace());
        }
    }
    words.sort_unstable();
    words.dedup();
    words
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        assert_eq!(corpus(20, 7), corpus(20, 7));
        assert_ne!(corpus(20, 7), corpus(20, 8));
    }

    #[test]
    fn sentences_use_only_known_vocabulary() {
        let vocab = vocabulary();
        for line in corpus(50, 3) {
            for w in line.split_whitespace() {
                assert!(vocab.contains(&w), "unknown word '{w}' in '{line}'");
            }
        }
    }

    #[test]
    fn sentences_have_reasonable_length() {
        for line in corpus(100, 1) {
            let n = line.split_whitespace().count();
            assert!((4..=20).contains(&n), "odd sentence length {n}: '{line}'");
        }
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let mut rng = Rand::seeded(5);
        let mut counts = [0usize; 5];
        for _ in 0..2000 {
            counts[zipf(5, &mut rng)] += 1;
        }
        assert!(counts[0] > counts[4] * 2, "no Zipf skew: {counts:?}");
    }
}
